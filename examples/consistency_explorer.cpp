// Consistency explorer: makes the memory models tangible.
//
//   * prints the four ordering tables (paper Tables 1-4);
//   * runs the classic store-buffering (Dekker) litmus test on the real
//     simulated machine under each model, many trials, and tallies the
//     outcomes — the "both loads read 0" outcome is architecturally
//     impossible under SC and routinely visible under TSO/PSO/RMO;
//   * shows that the Allowable Reordering checker agrees: the reorderings
//     the hardware performed were legal under the active table (zero
//     detections in every trial).
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "system/system.hpp"
#include "workload/scripted.hpp"
#include "obs/run_report.hpp"

using namespace dvmc;

namespace {

// X is homed at node 1 and Y at node 0: each thread's STORE is remote
// (slow to perform out of the write buffer) while its LOAD is local
// (fast) — the adversarial placement for store buffering.
constexpr Addr kX = 0x400040;  // home: node 1
constexpr Addr kY = 0x480000;  // home: node 0

struct Outcome {
  std::uint64_t r0;
  std::uint64_t r1;
  bool operator<(const Outcome& o) const {
    return r0 != o.r0 ? r0 < o.r0 : r1 < o.r1;
  }
};

Outcome runDekker(ConsistencyModel model, int jitter) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, model);
  cfg.numNodes = 2;
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;
  cfg.berEnabled = false;
  cfg.maxCycles = 2'000'000;
  // Thread 0: X = 1; r0 = Y.   Thread 1: Y = 1; r1 = X.
  // Both variables are pre-warmed into both caches, then the threads sit
  // out a settling delay so the litmus itself runs out of local caches:
  // the load hits in ~10 cycles while the store's global perform needs a
  // remote invalidation round trip — the store-buffering window.
  cfg.programFactory = [jitter](NodeId n) -> std::unique_ptr<ThreadProgram> {
    std::vector<Instr> p;
    p.push_back(Instr::load(kX));
    p.push_back(Instr::load(kY));
    p.push_back(Instr::compute(800));
    p.push_back(Instr::compute(static_cast<std::uint16_t>(
        1 + (jitter * (n + 3)) % 37)));
    if (n == 0) {
      p.push_back(Instr::store(kX, 1));
      p.push_back(Instr::load(kY, 1));
    } else {
      p.push_back(Instr::store(kY, 1));
      p.push_back(Instr::load(kX, 1));
    }
    return std::make_unique<ScriptedProgram>(p);
  };
  System sys(cfg);
  RunResult r = sys.run();
  if (!r.completed || r.detections != 0) {
    std::fprintf(stderr, "litmus run failed (completed=%d detections=%llu)\n",
                 r.completed, static_cast<unsigned long long>(r.detections));
  }
  auto& p0 = static_cast<ScriptedProgram&>(sys.core(0).program());
  auto& p1 = static_cast<ScriptedProgram&>(sys.core(1).program());
  // Pre-initialize to the memory fill pattern means "0" is encoded as the
  // pattern; treat "saw the other thread's 1" vs "saw the initial value".
  const std::uint64_t initY = MemoryStorage::initialPattern(kY).read(0, 8);
  const std::uint64_t initX = MemoryStorage::initialPattern(kX).read(0, 8);
  const std::uint64_t r0 = p0.results()[0].second == initY ? 0 : 1;
  const std::uint64_t r1 = p1.results()[0].second == initX ? 0 : 1;
  return {r0, r1};
}

}  // namespace

int runExplorer() {
  std::printf("=== Ordering tables (paper Tables 1-4) ===\n\n");
  for (ConsistencyModel m :
       {ConsistencyModel::kSC, ConsistencyModel::kTSO, ConsistencyModel::kPSO,
        ConsistencyModel::kRMO}) {
    std::printf("%s\n", OrderingTable::forModel(m).toString().c_str());
  }

  std::printf("=== Store-buffering litmus (Dekker) on the live machine ===\n");
  std::printf("thread 0: X=1; r0=Y        thread 1: Y=1; r1=X\n");
  std::printf("SC forbids (r0,r1)=(0,0); TSO/PSO/RMO allow it "
              "(store buffers!)\n\n");

  const int kTrials = 60;
  for (ConsistencyModel m :
       {ConsistencyModel::kSC, ConsistencyModel::kTSO,
        ConsistencyModel::kRMO}) {
    std::map<Outcome, int> tally;
    for (int t = 0; t < kTrials; ++t) {
      tally[runDekker(m, t)]++;
    }
    std::printf("%-4s:", modelName(m));
    for (const auto& [o, count] : tally) {
      std::printf("  (r0=%llu,r1=%llu) x%-3d",
                  static_cast<unsigned long long>(o.r0),
                  static_cast<unsigned long long>(o.r1), count);
    }
    const bool sawForbidden = tally.count(Outcome{0, 0}) != 0;
    std::printf("   %s\n",
                m == ConsistencyModel::kSC
                    ? (sawForbidden ? "<-- SC VIOLATION (bug!)" : "(0,0) never")
                    : (sawForbidden ? "(0,0) observed: store buffering"
                                    : "(0,0) not seen this time"));
    if (m == ConsistencyModel::kSC && sawForbidden) return 1;
  }
  std::printf(
      "\nEvery trial above ran with the Allowable Reordering checker armed:\n"
      "the hardware reorderings were all legal under the active table.\n");
  return 0;
}

int main(int argc, char** argv) {
  dvmc::CliParser cli("consistency_explorer",
                      "ordering tables, store-buffering litmus outcomes, "
                      "and checker agreement under each memory model");
  cli.noPositionals();
  dvmc::obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  (void)argc;
  (void)argv;
  const int rc = runExplorer();
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
