// Availability demo — the paper's motivation, end to end.
//
// A DVMC + SafetyNet system runs a database-style workload while hardware
// faults strike every few tens of thousands of cycles. Every error is
// detected by a checker and automatically rolled back; the workload keeps
// making forward progress and finishes correctly. An unprotected machine
// given the same fault stream silently corrupts state or wedges.
//
//   ./availability_demo [faults-to-survive]
#include <cstdio>
#include <cstdlib>

#include "faults/injector.hpp"
#include "system/system.hpp"
#include "obs/run_report.hpp"

using namespace dvmc;

int runDemo(int argc, char** argv) {
  const int faultBudget = argc > 1 ? std::atoi(argv[1]) : 8;

  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 800;
  cfg.autoRecover = true;  // detection -> rollback, hands-free
  cfg.dvmc.membarInjectionPeriod = 20'000;
  cfg.ber.interval = 10'000;
  cfg.ber.maxCheckpoints = 10;
  cfg.maxCycles = 100'000'000;
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;

  System sys(cfg);
  FaultInjector injector(sys, 0xBEEF);

  // A rotating storm of distinctly detected fault types.
  const FaultType storm[] = {
      FaultType::kMsgDrop,          FaultType::kMsgDataCorrupt,
      FaultType::kCacheStateFlip,   FaultType::kWbValueCorrupt,
      FaultType::kMsgMisroute,      FaultType::kMemoryDataMultiBit,
  };

  std::printf("availability demo: oltp on 4 nodes, auto-recovery on,\n");
  std::printf("one injected hardware fault every ~60k cycles\n\n");

  int injected = 0;
  std::size_t storm_i = 0;
  while (injected < faultBudget && !sys.allCoresDone()) {
    const Cycle next = sys.sim().now() + 60'000;
    sys.runUntil([&] { return sys.sim().now() >= next; });
    if (sys.allCoresDone()) break;
    FaultType f = storm[storm_i++ % (sizeof(storm) / sizeof(storm[0]))];
    if (!faultApplicable(f, cfg.model, cfg.protocol)) continue;
    if (injector.inject(f)) {
      ++injected;
      std::printf("  cycle %-9llu injected %-22s (txns so far: %llu)\n",
                  static_cast<unsigned long long>(sys.sim().now()),
                  faultTypeName(f),
                  static_cast<unsigned long long>(sys.totalTransactions()));
    }
  }

  std::printf("\nletting the system finish...\n");
  RunResult r = sys.runUntil([] { return false; });

  std::printf("\n====================== outcome ======================\n");
  std::printf("faults injected        : %d\n", injected);
  std::printf("errors detected        : %llu\n",
              static_cast<unsigned long long>(r.detections));
  std::printf("automatic recoveries   : %llu\n",
              static_cast<unsigned long long>(r.recoveries));
  std::printf("unrecoverable          : %llu\n",
              static_cast<unsigned long long>(r.unrecoverable));
  std::printf("transactions completed : %llu / %llu\n",
              static_cast<unsigned long long>(sys.totalTransactions()),
              static_cast<unsigned long long>(cfg.targetTransactions));
  std::printf("workload finished      : %s\n", r.completed ? "yes" : "NO");
  std::printf("=====================================================\n");
  std::printf("\n(Some injections are architecturally masked and need no\n"
              " recovery; every *error* that manifested was detected and\n"
              " rolled back while the work kept flowing.)\n");
  return r.completed && r.unrecoverable == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  dvmc::CliParser cli("availability_demo",
                      "fault-injected run that stays available under "
                      "DVMC + SafetyNet rollback");
  cli.usageLine("availability_demo [fault_budget]");
  dvmc::obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  const int rc = runDemo(argc, argv);
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
