// Quickstart: build an 8-node directory-based TSO multiprocessor with full
// DVMC (all three checkers) and SafetyNet, run a commercial-style workload,
// and print what the machine and the checkers did.
//
//   ./quickstart [workload] [model] [snoop] [--stats]
//   e.g. ./quickstart oltp tso
//        ./quickstart slash rmo snoop --stats
#include <cstdio>
#include <iostream>
#include <string>

#include "system/runner.hpp"
#include "system/stats_report.hpp"
#include "system/system.hpp"
#include "obs/run_report.hpp"

using namespace dvmc;

int runQuickstart(int argc, char** argv, bool stats) {
  const WorkloadKind wl =
      argc > 1 ? workloadFromName(argv[1]) : WorkloadKind::kOltp;
  ConsistencyModel model = ConsistencyModel::kTSO;
  if (argc > 2) {
    const std::string m = argv[2];
    model = m == "sc"    ? ConsistencyModel::kSC
            : m == "pso" ? ConsistencyModel::kPSO
            : m == "rmo" ? ConsistencyModel::kRMO
                         : ConsistencyModel::kTSO;
  }
  const Protocol protocol = (argc > 3 && std::string(argv[3]) == "snoop")
                                ? Protocol::kSnooping
                                : Protocol::kDirectory;

  // One call configures the paper's protected system: SC/TSO/PSO/RMO
  // support, MOSI coherence, the three DVMC checkers, SafetyNet BER.
  SystemConfig cfg = SystemConfig::withDvmc(protocol, model);
  cfg.numNodes = 8;
  cfg.workload = wl;
  cfg.targetTransactions = 400;
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;

  std::printf("DVMC quickstart: %zu-node %s system, %s, workload '%s'\n",
              cfg.numNodes, protocolName(protocol), modelName(model),
              workloadName(wl));
  std::printf("%s\n",
              OrderingTable::forModel(model).toString().c_str());

  armCaptureFromObs(cfg);
  System sys(cfg);
  RunResult r = sys.run();
  writeCaptureFileOnce(r.trace);

  std::printf("run %s in %llu cycles\n",
              r.completed ? "completed" : "DID NOT complete",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  transactions        : %llu\n",
              static_cast<unsigned long long>(r.transactions));
  std::printf("  instructions retired: %llu\n",
              static_cast<unsigned long long>(r.retiredInstructions));
  std::printf("  memory ops emitted  : %llu (%.1f%% 32-bit TSO-forced)\n",
              static_cast<unsigned long long>(r.memOps),
              r.memOps ? 100.0 * r.memOps32 / r.memOps : 0.0);
  std::printf("  peak link load      : %.3f bytes/cycle\n",
              r.peakLinkBytesPerCycle);
  std::printf("  load squashes       : %llu (speculation repair)\n",
              static_cast<unsigned long long>(r.squashes));
  std::printf("  replay L1 misses    : %llu (of %llu execution misses)\n",
              static_cast<unsigned long long>(r.replayL1Misses),
              static_cast<unsigned long long>(r.regularL1Misses));

  // Checker activity: the machinery ran constantly, found nothing wrong.
  std::uint64_t informs = 0;
  std::uint64_t accessChecks = 0;
  std::uint64_t performs = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    if (sys.cet(n) != nullptr) {
      informs += sys.cet(n)->stats().get("cet.informEpoch");
      accessChecks += sys.cet(n)->stats().get("cet.accessChecks");
    }
    if (sys.met(n) != nullptr) {
      performs += sys.met(n)->stats().get("met.informsProcessed");
    }
  }
  std::printf("checker activity:\n");
  std::printf("  CET perform checks  : %llu\n",
              static_cast<unsigned long long>(accessChecks));
  std::printf("  Inform-Epochs sent  : %llu\n",
              static_cast<unsigned long long>(informs));
  std::printf("  MET informs checked : %llu\n",
              static_cast<unsigned long long>(performs));
  std::printf("  checkpoints kept    : %zu (window %llu cycles)\n",
              sys.ber()->checkpointCount(),
              static_cast<unsigned long long>(sys.ber()->recoveryWindow()));
  std::printf("  errors detected     : %llu%s\n",
              static_cast<unsigned long long>(r.detections),
              r.detections == 0 ? " (error-free run, as expected)" : "");
  if (stats) printStatsReport(sys, std::cout);
  if (obs::reportingActive()) {
    Json run = Json::object();
    run.set("kind", Json::str("quickstart"));
    run.set("config", configJson(cfg));
    run.set("result", toJson(r));
    obs::addReportRun(std::move(run));
  }
  return r.detections == 0 && r.completed ? 0 : 1;
}

int main(int argc, char** argv) {
  CliParser cli("quickstart",
                "8-node directory system with full DVMC and SafetyNet");
  cli.usageLine("quickstart [workload] [model] [snoop] [--stats]");
  bool stats = false;
  cli.flag("--stats", &stats, "print the full statistics report");
  addRunnerFlags(cli);
  obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  const int rc = runQuickstart(argc, argv, stats);
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
