// Checker microscope: drives the Cache Coherence checker's data structures
// directly (no simulator in the loop) to show the epoch life cycle from
// Section 4.3 — CET entries, Inform-Epoch messages on the wire, MET
// processing with the begin-time sorting queue, rule violations, and the
// 16-bit wraparound scrubbing handshake.
#include <cstdio>
#include <vector>

#include "common/crc16.hpp"
#include "dvmc/cache_epoch_checker.hpp"
#include "dvmc/memory_epoch_checker.hpp"
#include "sim/simulator.hpp"
#include "obs/run_report.hpp"

using namespace dvmc;

namespace {

class ManualClock final : public LogicalClock {
 public:
  std::uint64_t now() override { return value; }
  std::uint64_t value = 0;
};

DataBlock block(std::uint64_t v) {
  DataBlock d;
  d.write(0, 8, v);
  return d;
}

const char* typeName(MsgType t) { return msgTypeName(t); }

}  // namespace

int runMicroscope() {
  Simulator sim;
  sim.setTracer(dvmc::obs::activeTracer());
  DvmcConfig cfg;
  cfg.scrubAgeTicks = 64;  // tiny so the demo shows scrubbing quickly
  ErrorSink sink;
  ManualClock clock;

  std::vector<Message> wire;
  CacheEpochChecker cet(sim, /*node=*/0, cfg, &sink,
                        [&wire](Message m) { wire.push_back(m); });
  MemoryEpochChecker met(sim, /*node=*/1, cfg, &sink, clock);

  auto shipInforms = [&] {
    for (Message& m : wire) {
      std::printf("    wire: %-18s begin=%-5u end=%-5u rw=%d beginHash=%04x "
                  "endHash=%04x\n",
                  typeName(m.type), m.epoch.begin, m.epoch.end,
                  m.epoch.readWrite, m.epoch.beginHash, m.epoch.endHash);
      met.onInform(m);
    }
    wire.clear();
    met.drain();
  };

  std::printf("== 1. a block's life: memory -> RW epoch -> RO epoch ==\n");
  const Addr blk = 0x1000;
  met.onHomeRequest(blk, block(0));  // MET entry seeded from memory image
  std::printf("  MET seeded: entries=%zu\n", met.metEntries());

  cet.onEpochBegin(blk, /*rw=*/true, block(0), 10);
  cet.onPerformAccess(blk, /*isWrite=*/true);  // rule 1: fine in RW
  std::printf("  RW epoch open at the cache; store checked against CET\n");
  cet.onEpochEnd(blk, block(42), 25);
  shipInforms();

  cet.onEpochBegin(blk, /*rw=*/false, block(42), 26);
  cet.onPerformAccess(blk, /*isWrite=*/false);
  cet.onEpochEnd(blk, block(42), 40);
  shipInforms();
  std::printf("  violations so far: %zu (clean handoff)\n\n", sink.count());

  std::printf("== 2. rule 1: a store in a Read-Only epoch ==\n");
  cet.onEpochBegin(blk, /*rw=*/false, block(42), 50);
  cet.onPerformAccess(blk, /*isWrite=*/true);
  std::printf("  -> %s\n", sink.any() ? sink.detections().back().what.c_str()
                                      : "(missed!)");
  cet.onEpochEnd(blk, block(42), 55);
  shipInforms();

  std::printf("\n== 3. rule 3: data propagation mismatch ==\n");
  cet.onEpochBegin(blk, /*rw=*/false, block(999), 60);  // corrupted begin
  cet.onEpochEnd(blk, block(999), 70);
  const std::size_t before = sink.count();
  shipInforms();
  std::printf("  -> %s\n", sink.count() > before
                               ? sink.detections().back().what.c_str()
                               : "(missed!)");

  std::printf("\n== 4. rule 2: overlapping Read-Write epochs ==\n");
  Message fake;
  fake.type = MsgType::kInformEpoch;
  fake.src = 2;
  fake.addr = blk;
  fake.epoch.readWrite = true;
  fake.epoch.begin = 60;  // overlaps the RO epoch that ended at 70
  fake.epoch.end = 80;
  fake.epoch.beginHash = hashBlock(block(42));  // data itself is fine
  fake.epoch.endHash = fake.epoch.beginHash;
  const std::size_t before2 = sink.count();
  met.onInform(fake);
  met.drain();
  std::printf("  -> %s\n", sink.count() > before2
                               ? sink.detections().back().what.c_str()
                               : "(missed!)");

  std::printf("\n== 5. wraparound scrubbing: a long-lived epoch ==\n");
  const Addr longBlk = 0x2000;
  met.onHomeRequest(longBlk, block(7));
  cet.onEpochBegin(longBlk, /*rw=*/true, block(7), 100);
  // Time marches on (other blocks churn); the scrub sweep announces the
  // still-open epoch before its 16-bit timestamp could wrap.
  cet.onEpochBegin(0x3000, false, block(1), 100 + cfg.scrubAgeTicks + 1);
  sim.run(1'000'000);  // run the periodic scrub sweeps
  shipInforms();
  std::printf("  after sweep: open epochs tracked at MET via "
              "Inform-Open-Epoch\n");
  cet.onEpochEnd(longBlk, block(8), 300);
  shipInforms();
  std::printf("  epoch finally closed with a short Inform-Closed-Epoch\n");

  std::printf("\ntotal violations reported: %zu (three staged, zero "
              "spurious)\n",
              sink.count());
  return sink.count() == 3 ? 0 : 1;
}

int main(int argc, char** argv) {
  dvmc::CliParser cli("checker_microscope",
                      "drives the coherence checker's CET/MET data "
                      "structures directly through the epoch life cycle");
  cli.noPositionals();
  dvmc::obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  (void)argc;
  (void)argv;
  const int rc = runMicroscope();
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
