// Error-detection demo (the paper's Section 6.1 story, narrated):
//
//   1. run a workload on a DVMC-protected system;
//   2. inject a hardware fault mid-run (default: a dropped coherence
//      message — pick another with argv[1]);
//   3. watch a DVMC checker detect the resulting error;
//   4. roll the machine back with SafetyNet to a pre-error checkpoint;
//   5. continue to completion, error-free.
//
//   ./error_detection_demo [fault]
//   faults: cache-data-multibit cache-state-flip memory-data-multibit
//           msg-drop msg-duplicate msg-misroute msg-data-corrupt
//           lsq-wrong-forward wb-value-corrupt wb-reorder
#include <cstdio>
#include <cstring>
#include <string>

#include "faults/injector.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
#include "obs/run_report.hpp"

using namespace dvmc;

int runDemo(int argc, char** argv) {
  FaultType fault = FaultType::kMsgDrop;
  if (argc > 1) {
    bool found = false;
    for (FaultType f : allFaultTypes()) {
      if (std::strcmp(argv[1], faultTypeName(f)) == 0) {
        fault = f;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown fault '%s'\n", argv[1]);
      return 2;
    }
  }

  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 600;
  cfg.dvmc.membarInjectionPeriod = 20'000;
  cfg.ber.interval = 10'000;
  cfg.ber.maxCheckpoints = 10;
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;
  if (!faultApplicable(fault, cfg.model, cfg.protocol)) {
    std::fprintf(stderr, "fault %s is not an error under %s/%s\n",
                 faultTypeName(fault), protocolName(cfg.protocol),
                 modelName(cfg.model));
    return 2;
  }

  System sys(cfg);
  FaultInjector injector(sys, /*seed=*/42);

  std::printf("[phase 1] running oltp on a 4-node DVMC-protected system\n");
  sys.runUntil([&] { return sys.sim().now() >= 40'000; });
  std::printf("          cycle %-8llu txns=%llu  checkpoints=%zu  "
              "detections=%llu\n",
              static_cast<unsigned long long>(sys.sim().now()),
              static_cast<unsigned long long>(sys.totalTransactions()),
              sys.ber()->checkpointCount(),
              static_cast<unsigned long long>(sys.sink().count()));

  std::printf("[phase 2] injecting fault: %s\n", faultTypeName(fault));
  Cycle injectedAt = 0;
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (injector.inject(fault)) {
      injectedAt = sys.sim().now();
      break;
    }
    sys.runUntil([&, until = sys.sim().now() + 1000] {
      return sys.sim().now() >= until;
    });
  }
  if (injectedAt == 0) {
    std::fprintf(stderr, "could not inject\n");
    return 1;
  }
  std::printf("          injected at cycle %llu\n",
              static_cast<unsigned long long>(injectedAt));

  std::printf("[phase 3] waiting for a DVMC checker to notice...\n");
  auto flushes = [&] {
    std::uint64_t t = 0;
    for (NodeId n = 0; n < sys.numNodes(); ++n) {
      t += sys.core(n).stats().get("cpu.uoFlushes");
    }
    return t;
  };
  const std::uint64_t f0 = flushes();
  const bool viaFlush = fault == FaultType::kLsqWrongForward;
  sys.runUntil([&] {
    return sys.sink().any() || (viaFlush && flushes() > f0) ||
           sys.sim().now() > injectedAt + 2'000'000;
  });

  if (viaFlush && !sys.sink().any() && flushes() > f0) {
    std::printf("          the verification stage caught a wrong load value "
                "and repaired it with a pipeline flush\n");
    std::printf("          (speculative-path faults never reach committed "
                "state; no rollback needed)\n");
    sys.runUntil([] { return false; });
    std::printf("[phase 5] run completed, %llu transactions\n",
                static_cast<unsigned long long>(sys.totalTransactions()));
    return 0;
  }
  if (!sys.sink().any()) {
    std::printf("          nothing detected (the fault was masked); "
                "try another fault or seed\n");
    return 1;
  }
  const Detection& d = sys.sink().first();
  std::printf("          DETECTED by %s at cycle %llu (latency %llu):\n",
              checkerKindName(d.kind),
              static_cast<unsigned long long>(d.cycle),
              static_cast<unsigned long long>(d.cycle - injectedAt));
  std::printf("          node %u, addr 0x%llx: %s\n", d.node,
              static_cast<unsigned long long>(d.addr), d.what.c_str());

  std::printf("[phase 4] SafetyNet rollback to a pre-error checkpoint "
              "(oldest kept: cycle %llu)\n",
              static_cast<unsigned long long>(sys.ber()->oldestCheckpoint()));
  if (!sys.recover(injectedAt)) {
    std::printf("          recovery window expired!\n");
    return 1;
  }
  std::printf("          restored; caches invalidated, memory rolled back, "
              "cores replaying\n");

  std::printf("[phase 5] continuing to completion...\n");
  sys.sink().clear();
  RunResult r = sys.runUntil([] { return false; });
  if (obs::reportingActive()) {
    Json run = Json::object();
    run.set("kind", Json::str("error_detection_demo"));
    run.set("config", configJson(cfg));
    run.set("result", toJson(r));
    obs::addReportRun(std::move(run));
  }
  std::printf("          %s: %llu transactions in %llu cycles, "
              "%llu post-recovery detections\n",
              r.completed ? "done" : "INCOMPLETE",
              static_cast<unsigned long long>(sys.totalTransactions()),
              static_cast<unsigned long long>(sys.sim().now()),
              static_cast<unsigned long long>(sys.sink().count()));
  return r.completed && sys.sink().count() == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  dvmc::CliParser cli("error_detection_demo",
                      "inject one hardware fault, watch a DVMC checker "
                      "detect it and SafetyNet roll it back");
  cli.usageLine("error_detection_demo [fault_type]");
  dvmc::obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  const int rc = runDemo(argc, argv);
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
