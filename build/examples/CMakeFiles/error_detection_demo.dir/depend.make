# Empty dependencies file for error_detection_demo.
# This may be replaced when dependencies are built.
