file(REMOVE_RECURSE
  "CMakeFiles/error_detection_demo.dir/error_detection_demo.cpp.o"
  "CMakeFiles/error_detection_demo.dir/error_detection_demo.cpp.o.d"
  "error_detection_demo"
  "error_detection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_detection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
