# Empty compiler generated dependencies file for checker_microscope.
# This may be replaced when dependencies are built.
