file(REMOVE_RECURSE
  "CMakeFiles/checker_microscope.dir/checker_microscope.cpp.o"
  "CMakeFiles/checker_microscope.dir/checker_microscope.cpp.o.d"
  "checker_microscope"
  "checker_microscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
