file(REMOVE_RECURSE
  "CMakeFiles/dvmc_coherence.dir/cache_array.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/cache_array.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/directory_cache.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/directory_cache.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/directory_home.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/directory_home.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/hierarchy.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/logical_clock.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/logical_clock.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/memory_storage.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/memory_storage.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/snoop_cache.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/snoop_cache.cpp.o.d"
  "CMakeFiles/dvmc_coherence.dir/snoop_memory.cpp.o"
  "CMakeFiles/dvmc_coherence.dir/snoop_memory.cpp.o.d"
  "libdvmc_coherence.a"
  "libdvmc_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
