
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/cache_array.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/cache_array.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/cache_array.cpp.o.d"
  "/root/repo/src/coherence/directory_cache.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/directory_cache.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/directory_cache.cpp.o.d"
  "/root/repo/src/coherence/directory_home.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/directory_home.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/directory_home.cpp.o.d"
  "/root/repo/src/coherence/hierarchy.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/hierarchy.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/hierarchy.cpp.o.d"
  "/root/repo/src/coherence/logical_clock.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/logical_clock.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/logical_clock.cpp.o.d"
  "/root/repo/src/coherence/memory_storage.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/memory_storage.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/memory_storage.cpp.o.d"
  "/root/repo/src/coherence/snoop_cache.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/snoop_cache.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/snoop_cache.cpp.o.d"
  "/root/repo/src/coherence/snoop_memory.cpp" "src/coherence/CMakeFiles/dvmc_coherence.dir/snoop_memory.cpp.o" "gcc" "src/coherence/CMakeFiles/dvmc_coherence.dir/snoop_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvmc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/dvmc_consistency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
