# Empty dependencies file for dvmc_coherence.
# This may be replaced when dependencies are built.
