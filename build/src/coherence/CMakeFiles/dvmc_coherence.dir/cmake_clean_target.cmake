file(REMOVE_RECURSE
  "libdvmc_coherence.a"
)
