# Empty dependencies file for dvmc_net.
# This may be replaced when dependencies are built.
