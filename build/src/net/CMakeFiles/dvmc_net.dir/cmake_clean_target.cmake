file(REMOVE_RECURSE
  "libdvmc_net.a"
)
