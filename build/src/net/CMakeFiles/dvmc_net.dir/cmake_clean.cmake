file(REMOVE_RECURSE
  "CMakeFiles/dvmc_net.dir/broadcast_tree.cpp.o"
  "CMakeFiles/dvmc_net.dir/broadcast_tree.cpp.o.d"
  "CMakeFiles/dvmc_net.dir/message.cpp.o"
  "CMakeFiles/dvmc_net.dir/message.cpp.o.d"
  "CMakeFiles/dvmc_net.dir/torus.cpp.o"
  "CMakeFiles/dvmc_net.dir/torus.cpp.o.d"
  "libdvmc_net.a"
  "libdvmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
