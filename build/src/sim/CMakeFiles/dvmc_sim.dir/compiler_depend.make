# Empty compiler generated dependencies file for dvmc_sim.
# This may be replaced when dependencies are built.
