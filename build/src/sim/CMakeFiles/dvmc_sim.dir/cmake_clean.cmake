file(REMOVE_RECURSE
  "CMakeFiles/dvmc_sim.dir/simulator.cpp.o"
  "CMakeFiles/dvmc_sim.dir/simulator.cpp.o.d"
  "libdvmc_sim.a"
  "libdvmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
