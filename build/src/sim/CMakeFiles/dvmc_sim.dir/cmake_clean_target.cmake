file(REMOVE_RECURSE
  "libdvmc_sim.a"
)
