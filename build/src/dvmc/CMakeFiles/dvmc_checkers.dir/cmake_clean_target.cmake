file(REMOVE_RECURSE
  "libdvmc_checkers.a"
)
