# Empty compiler generated dependencies file for dvmc_checkers.
# This may be replaced when dependencies are built.
