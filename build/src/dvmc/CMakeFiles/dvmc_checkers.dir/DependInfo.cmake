
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvmc/cache_epoch_checker.cpp" "src/dvmc/CMakeFiles/dvmc_checkers.dir/cache_epoch_checker.cpp.o" "gcc" "src/dvmc/CMakeFiles/dvmc_checkers.dir/cache_epoch_checker.cpp.o.d"
  "/root/repo/src/dvmc/hw_cost.cpp" "src/dvmc/CMakeFiles/dvmc_checkers.dir/hw_cost.cpp.o" "gcc" "src/dvmc/CMakeFiles/dvmc_checkers.dir/hw_cost.cpp.o.d"
  "/root/repo/src/dvmc/memory_epoch_checker.cpp" "src/dvmc/CMakeFiles/dvmc_checkers.dir/memory_epoch_checker.cpp.o" "gcc" "src/dvmc/CMakeFiles/dvmc_checkers.dir/memory_epoch_checker.cpp.o.d"
  "/root/repo/src/dvmc/reorder_checker.cpp" "src/dvmc/CMakeFiles/dvmc_checkers.dir/reorder_checker.cpp.o" "gcc" "src/dvmc/CMakeFiles/dvmc_checkers.dir/reorder_checker.cpp.o.d"
  "/root/repo/src/dvmc/shadow_checker.cpp" "src/dvmc/CMakeFiles/dvmc_checkers.dir/shadow_checker.cpp.o" "gcc" "src/dvmc/CMakeFiles/dvmc_checkers.dir/shadow_checker.cpp.o.d"
  "/root/repo/src/dvmc/verification_cache.cpp" "src/dvmc/CMakeFiles/dvmc_checkers.dir/verification_cache.cpp.o" "gcc" "src/dvmc/CMakeFiles/dvmc_checkers.dir/verification_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvmc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/dvmc_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dvmc_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
