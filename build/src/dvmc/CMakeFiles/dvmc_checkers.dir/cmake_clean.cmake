file(REMOVE_RECURSE
  "CMakeFiles/dvmc_checkers.dir/cache_epoch_checker.cpp.o"
  "CMakeFiles/dvmc_checkers.dir/cache_epoch_checker.cpp.o.d"
  "CMakeFiles/dvmc_checkers.dir/hw_cost.cpp.o"
  "CMakeFiles/dvmc_checkers.dir/hw_cost.cpp.o.d"
  "CMakeFiles/dvmc_checkers.dir/memory_epoch_checker.cpp.o"
  "CMakeFiles/dvmc_checkers.dir/memory_epoch_checker.cpp.o.d"
  "CMakeFiles/dvmc_checkers.dir/reorder_checker.cpp.o"
  "CMakeFiles/dvmc_checkers.dir/reorder_checker.cpp.o.d"
  "CMakeFiles/dvmc_checkers.dir/shadow_checker.cpp.o"
  "CMakeFiles/dvmc_checkers.dir/shadow_checker.cpp.o.d"
  "CMakeFiles/dvmc_checkers.dir/verification_cache.cpp.o"
  "CMakeFiles/dvmc_checkers.dir/verification_cache.cpp.o.d"
  "libdvmc_checkers.a"
  "libdvmc_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
