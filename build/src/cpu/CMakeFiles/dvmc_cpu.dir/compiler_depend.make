# Empty compiler generated dependencies file for dvmc_cpu.
# This may be replaced when dependencies are built.
