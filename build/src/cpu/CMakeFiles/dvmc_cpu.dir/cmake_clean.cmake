file(REMOVE_RECURSE
  "CMakeFiles/dvmc_cpu.dir/core.cpp.o"
  "CMakeFiles/dvmc_cpu.dir/core.cpp.o.d"
  "libdvmc_cpu.a"
  "libdvmc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
