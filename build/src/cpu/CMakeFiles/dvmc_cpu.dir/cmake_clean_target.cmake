file(REMOVE_RECURSE
  "libdvmc_cpu.a"
)
