file(REMOVE_RECURSE
  "CMakeFiles/dvmc_system.dir/runner.cpp.o"
  "CMakeFiles/dvmc_system.dir/runner.cpp.o.d"
  "CMakeFiles/dvmc_system.dir/stats_report.cpp.o"
  "CMakeFiles/dvmc_system.dir/stats_report.cpp.o.d"
  "CMakeFiles/dvmc_system.dir/system.cpp.o"
  "CMakeFiles/dvmc_system.dir/system.cpp.o.d"
  "libdvmc_system.a"
  "libdvmc_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
