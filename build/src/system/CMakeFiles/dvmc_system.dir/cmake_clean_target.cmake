file(REMOVE_RECURSE
  "libdvmc_system.a"
)
