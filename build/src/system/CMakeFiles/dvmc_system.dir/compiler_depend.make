# Empty compiler generated dependencies file for dvmc_system.
# This may be replaced when dependencies are built.
