file(REMOVE_RECURSE
  "CMakeFiles/dvmc_ber.dir/safety_net.cpp.o"
  "CMakeFiles/dvmc_ber.dir/safety_net.cpp.o.d"
  "libdvmc_ber.a"
  "libdvmc_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
