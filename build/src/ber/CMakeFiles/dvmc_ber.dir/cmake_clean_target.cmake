file(REMOVE_RECURSE
  "libdvmc_ber.a"
)
