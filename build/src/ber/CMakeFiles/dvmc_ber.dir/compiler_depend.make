# Empty compiler generated dependencies file for dvmc_ber.
# This may be replaced when dependencies are built.
