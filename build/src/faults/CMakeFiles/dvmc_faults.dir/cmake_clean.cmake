file(REMOVE_RECURSE
  "CMakeFiles/dvmc_faults.dir/injector.cpp.o"
  "CMakeFiles/dvmc_faults.dir/injector.cpp.o.d"
  "libdvmc_faults.a"
  "libdvmc_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
