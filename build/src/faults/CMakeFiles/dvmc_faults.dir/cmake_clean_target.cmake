file(REMOVE_RECURSE
  "libdvmc_faults.a"
)
