# Empty compiler generated dependencies file for dvmc_faults.
# This may be replaced when dependencies are built.
