# Empty compiler generated dependencies file for dvmc_common.
# This may be replaced when dependencies are built.
