file(REMOVE_RECURSE
  "CMakeFiles/dvmc_common.dir/crc16.cpp.o"
  "CMakeFiles/dvmc_common.dir/crc16.cpp.o.d"
  "CMakeFiles/dvmc_common.dir/data_block.cpp.o"
  "CMakeFiles/dvmc_common.dir/data_block.cpp.o.d"
  "CMakeFiles/dvmc_common.dir/stats.cpp.o"
  "CMakeFiles/dvmc_common.dir/stats.cpp.o.d"
  "libdvmc_common.a"
  "libdvmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
