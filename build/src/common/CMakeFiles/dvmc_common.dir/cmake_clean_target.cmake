file(REMOVE_RECURSE
  "libdvmc_common.a"
)
