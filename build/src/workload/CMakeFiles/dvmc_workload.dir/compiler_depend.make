# Empty compiler generated dependencies file for dvmc_workload.
# This may be replaced when dependencies are built.
