file(REMOVE_RECURSE
  "CMakeFiles/dvmc_workload.dir/presets.cpp.o"
  "CMakeFiles/dvmc_workload.dir/presets.cpp.o.d"
  "CMakeFiles/dvmc_workload.dir/synthetic.cpp.o"
  "CMakeFiles/dvmc_workload.dir/synthetic.cpp.o.d"
  "libdvmc_workload.a"
  "libdvmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
