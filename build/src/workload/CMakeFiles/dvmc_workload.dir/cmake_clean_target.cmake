file(REMOVE_RECURSE
  "libdvmc_workload.a"
)
