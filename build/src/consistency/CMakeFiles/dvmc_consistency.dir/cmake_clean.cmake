file(REMOVE_RECURSE
  "CMakeFiles/dvmc_consistency.dir/ordering_table.cpp.o"
  "CMakeFiles/dvmc_consistency.dir/ordering_table.cpp.o.d"
  "libdvmc_consistency.a"
  "libdvmc_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
