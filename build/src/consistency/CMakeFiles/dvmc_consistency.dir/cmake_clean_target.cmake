file(REMOVE_RECURSE
  "libdvmc_consistency.a"
)
