# Empty compiler generated dependencies file for dvmc_consistency.
# This may be replaced when dependencies are built.
