# Empty dependencies file for bench_fig5_components.
# This may be replaced when dependencies are built.
