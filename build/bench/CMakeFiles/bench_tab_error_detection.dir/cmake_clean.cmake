file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_error_detection.dir/bench_tab_error_detection.cpp.o"
  "CMakeFiles/bench_tab_error_detection.dir/bench_tab_error_detection.cpp.o.d"
  "bench_tab_error_detection"
  "bench_tab_error_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_error_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
