# Empty dependencies file for bench_fig8_linkbw.
# This may be replaced when dependencies are built.
