file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_linkbw.dir/bench_fig8_linkbw.cpp.o"
  "CMakeFiles/bench_fig8_linkbw.dir/bench_fig8_linkbw.cpp.o.d"
  "bench_fig8_linkbw"
  "bench_fig8_linkbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_linkbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
