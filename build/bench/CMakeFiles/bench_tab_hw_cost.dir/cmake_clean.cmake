file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_hw_cost.dir/bench_tab_hw_cost.cpp.o"
  "CMakeFiles/bench_tab_hw_cost.dir/bench_tab_hw_cost.cpp.o.d"
  "bench_tab_hw_cost"
  "bench_tab_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
