file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_replay_misses.dir/bench_fig6_replay_misses.cpp.o"
  "CMakeFiles/bench_fig6_replay_misses.dir/bench_fig6_replay_misses.cpp.o.d"
  "bench_fig6_replay_misses"
  "bench_fig6_replay_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_replay_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
