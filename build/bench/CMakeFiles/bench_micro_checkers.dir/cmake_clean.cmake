file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_checkers.dir/bench_micro_checkers.cpp.o"
  "CMakeFiles/bench_micro_checkers.dir/bench_micro_checkers.cpp.o.d"
  "bench_micro_checkers"
  "bench_micro_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
