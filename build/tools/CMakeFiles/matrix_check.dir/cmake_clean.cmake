file(REMOVE_RECURSE
  "CMakeFiles/matrix_check.dir/matrix_check.cpp.o"
  "CMakeFiles/matrix_check.dir/matrix_check.cpp.o.d"
  "matrix_check"
  "matrix_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
