# Empty compiler generated dependencies file for matrix_check.
# This may be replaced when dependencies are built.
