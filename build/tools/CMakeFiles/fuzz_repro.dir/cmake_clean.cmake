file(REMOVE_RECURSE
  "CMakeFiles/fuzz_repro.dir/fuzz_repro.cpp.o"
  "CMakeFiles/fuzz_repro.dir/fuzz_repro.cpp.o.d"
  "fuzz_repro"
  "fuzz_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
