# Empty dependencies file for dvmc_debug.
# This may be replaced when dependencies are built.
