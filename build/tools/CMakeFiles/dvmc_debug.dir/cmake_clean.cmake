file(REMOVE_RECURSE
  "CMakeFiles/dvmc_debug.dir/debug_main.cpp.o"
  "CMakeFiles/dvmc_debug.dir/debug_main.cpp.o.d"
  "dvmc_debug"
  "dvmc_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvmc_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
