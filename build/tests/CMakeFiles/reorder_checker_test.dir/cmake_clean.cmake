file(REMOVE_RECURSE
  "CMakeFiles/reorder_checker_test.dir/reorder_checker_test.cpp.o"
  "CMakeFiles/reorder_checker_test.dir/reorder_checker_test.cpp.o.d"
  "reorder_checker_test"
  "reorder_checker_test.pdb"
  "reorder_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
