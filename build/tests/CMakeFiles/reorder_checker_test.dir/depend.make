# Empty dependencies file for reorder_checker_test.
# This may be replaced when dependencies are built.
