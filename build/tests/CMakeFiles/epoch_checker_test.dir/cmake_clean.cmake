file(REMOVE_RECURSE
  "CMakeFiles/epoch_checker_test.dir/epoch_checker_test.cpp.o"
  "CMakeFiles/epoch_checker_test.dir/epoch_checker_test.cpp.o.d"
  "epoch_checker_test"
  "epoch_checker_test.pdb"
  "epoch_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
