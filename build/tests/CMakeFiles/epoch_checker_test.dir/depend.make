# Empty dependencies file for epoch_checker_test.
# This may be replaced when dependencies are built.
