# Empty dependencies file for cache_array_test.
# This may be replaced when dependencies are built.
