
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu_test.cpp" "tests/CMakeFiles/cpu_test.dir/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/cpu_test.dir/cpu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/dvmc_system.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/dvmc_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dvmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ber/CMakeFiles/dvmc_ber.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dvmc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dvmc/CMakeFiles/dvmc_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dvmc_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/dvmc_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
