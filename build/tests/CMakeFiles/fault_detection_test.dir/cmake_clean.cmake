file(REMOVE_RECURSE
  "CMakeFiles/fault_detection_test.dir/fault_detection_test.cpp.o"
  "CMakeFiles/fault_detection_test.dir/fault_detection_test.cpp.o.d"
  "fault_detection_test"
  "fault_detection_test.pdb"
  "fault_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
