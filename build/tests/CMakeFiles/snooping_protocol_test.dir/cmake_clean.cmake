file(REMOVE_RECURSE
  "CMakeFiles/snooping_protocol_test.dir/snooping_protocol_test.cpp.o"
  "CMakeFiles/snooping_protocol_test.dir/snooping_protocol_test.cpp.o.d"
  "snooping_protocol_test"
  "snooping_protocol_test.pdb"
  "snooping_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snooping_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
