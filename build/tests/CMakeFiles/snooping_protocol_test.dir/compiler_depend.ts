# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for snooping_protocol_test.
