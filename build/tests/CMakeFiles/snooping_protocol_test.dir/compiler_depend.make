# Empty compiler generated dependencies file for snooping_protocol_test.
# This may be replaced when dependencies are built.
