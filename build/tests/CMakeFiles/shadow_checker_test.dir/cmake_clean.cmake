file(REMOVE_RECURSE
  "CMakeFiles/shadow_checker_test.dir/shadow_checker_test.cpp.o"
  "CMakeFiles/shadow_checker_test.dir/shadow_checker_test.cpp.o.d"
  "shadow_checker_test"
  "shadow_checker_test.pdb"
  "shadow_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
