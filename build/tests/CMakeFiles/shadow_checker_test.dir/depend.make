# Empty dependencies file for shadow_checker_test.
# This may be replaced when dependencies are built.
