file(REMOVE_RECURSE
  "CMakeFiles/directory_protocol_test.dir/directory_protocol_test.cpp.o"
  "CMakeFiles/directory_protocol_test.dir/directory_protocol_test.cpp.o.d"
  "directory_protocol_test"
  "directory_protocol_test.pdb"
  "directory_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
