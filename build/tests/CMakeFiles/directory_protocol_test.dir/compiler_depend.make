# Empty compiler generated dependencies file for directory_protocol_test.
# This may be replaced when dependencies are built.
