file(REMOVE_RECURSE
  "CMakeFiles/hw_cost_test.dir/hw_cost_test.cpp.o"
  "CMakeFiles/hw_cost_test.dir/hw_cost_test.cpp.o.d"
  "hw_cost_test"
  "hw_cost_test.pdb"
  "hw_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
