file(REMOVE_RECURSE
  "CMakeFiles/system_features_test.dir/system_features_test.cpp.o"
  "CMakeFiles/system_features_test.dir/system_features_test.cpp.o.d"
  "system_features_test"
  "system_features_test.pdb"
  "system_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
