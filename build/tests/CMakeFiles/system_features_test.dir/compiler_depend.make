# Empty compiler generated dependencies file for system_features_test.
# This may be replaced when dependencies are built.
