# Empty dependencies file for ar_conformance_test.
# This may be replaced when dependencies are built.
