file(REMOVE_RECURSE
  "CMakeFiles/ar_conformance_test.dir/ar_conformance_test.cpp.o"
  "CMakeFiles/ar_conformance_test.dir/ar_conformance_test.cpp.o.d"
  "ar_conformance_test"
  "ar_conformance_test.pdb"
  "ar_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
