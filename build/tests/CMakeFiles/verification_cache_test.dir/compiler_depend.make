# Empty compiler generated dependencies file for verification_cache_test.
# This may be replaced when dependencies are built.
