file(REMOVE_RECURSE
  "CMakeFiles/verification_cache_test.dir/verification_cache_test.cpp.o"
  "CMakeFiles/verification_cache_test.dir/verification_cache_test.cpp.o.d"
  "verification_cache_test"
  "verification_cache_test.pdb"
  "verification_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
