# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/cache_array_test[1]_include.cmake")
include("/root/repo/build/tests/directory_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/snooping_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/verification_cache_test[1]_include.cmake")
include("/root/repo/build/tests/reorder_checker_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_checker_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/ber_test[1]_include.cmake")
include("/root/repo/build/tests/fault_detection_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/hw_cost_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/system_features_test[1]_include.cmake")
include("/root/repo/build/tests/ar_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_test[1]_include.cmake")
include("/root/repo/build/tests/shadow_checker_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
