#!/usr/bin/env python3
"""Perf-gate comparator for dvmc-bench JSON documents.

Usage:
  check_perf.py BASELINE CURRENT [--max-regression 0.30]
  check_perf.py --rss FILE --rss-ceiling-mb N

Both files must follow the "dvmc-bench" schema written by the bench
binaries' --json flag (see bench/bench_common.hpp). For every row name
present in BOTH files, the current events/sec must be at least
(1 - max_regression) times the baseline events/sec; any row below that
threshold fails the gate. Rows only present on one side are reported but
do not fail (benchmarks get added and retired), and the machines running
baseline and current may differ, which is why the default margin is a
deliberately loose 30%.

The --rss mode gates the in-process memory sampler instead: FILE is a
dvmc-run-report or dvmc-status document whose "resource" section carries
peakRssBytes (getrusage high-water mark of the producing process); the
gate fails when it exceeds --rss-ceiling-mb. This replaces the old
shell-level getrusage(RUSAGE_CHILDREN) wrapper in CI, which charged every
subprocess in the step to the same ceiling.

Exit status: 0 = within budget, 1 = regression/breach, 2 = bad input.
"""

import argparse
import json
import sys


def check_rss(path, ceiling_mb):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    resource = doc.get("resource")
    # Accept both the nested v2 report/status layout and a bare
    # {"peakRssBytes"/"peak_rss_bytes": N} document.
    holder = resource if isinstance(resource, dict) else doc
    peak = holder.get("peakRssBytes", holder.get("peak_rss_bytes"))
    if not isinstance(peak, (int, float)) or peak <= 0:
        print(f"error: {path}: no peakRssBytes in the resource section",
              file=sys.stderr)
        return 2
    peak_mb = peak / (1024 * 1024)
    if peak_mb > ceiling_mb:
        print(f"FAIL: peak RSS {peak_mb:.1f} MB exceeds the "
              f"{ceiling_mb} MB ceiling", file=sys.stderr)
        return 1
    print(f"OK: peak RSS {peak_mb:.1f} MB within the {ceiling_mb} MB ceiling")
    return 0


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "dvmc-bench":
        print(f"error: {path}: schema is {doc.get('schema')!r}, "
              "expected 'dvmc-bench'", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        eps = row.get("eventsPerSec", 0)
        if not name or not isinstance(eps, (int, float)) or eps <= 0:
            print(f"error: {path}: malformed row {row!r}", file=sys.stderr)
            sys.exit(2)
        # Same name measured twice (e.g. repeated configs): keep the best,
        # matching how a human would read the table.
        rows[name] = max(rows.get(name, 0), eps)
    if not rows:
        print(f"error: {path}: no result rows", file=sys.stderr)
        sys.exit(2)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="allowed fractional slowdown (default 0.30)")
    ap.add_argument("--rss", metavar="FILE",
                    help="gate peakRssBytes from a run-report/status file "
                         "instead of comparing benchmarks")
    ap.add_argument("--rss-ceiling-mb", type=float, default=256,
                    help="peak-RSS ceiling for --rss mode (default 256)")
    args = ap.parse_args()

    if args.rss:
        if args.baseline or args.current:
            ap.error("--rss mode takes no baseline/current arguments")
        return check_rss(args.rss, args.rss_ceiling_mb)
    if not args.baseline or not args.current:
        ap.error("baseline and current are required without --rss")

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    floor = 1.0 - args.max_regression

    failures = []
    width = max(len(n) for n in sorted(set(base) | set(cur)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<{width}}  {'--':>12}  {cur[name]:>12.3e}  (new)")
            continue
        if name not in cur:
            print(f"{name:<{width}}  {base[name]:>12.3e}  {'--':>12}  (gone)")
            continue
        ratio = cur[name] / base[name]
        verdict = "" if ratio >= floor else "  REGRESSION"
        print(f"{name:<{width}}  {base[name]:>12.3e}  {cur[name]:>12.3e}  "
              f"{ratio:5.2f}x{verdict}")
        if ratio < floor:
            failures.append((name, ratio))

    if failures:
        print(f"\nFAIL: {len(failures)} row(s) regressed more than "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x of baseline", file=sys.stderr)
        return 1
    print(f"\nOK: all shared rows within {args.max_regression:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
