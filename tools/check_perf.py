#!/usr/bin/env python3
"""Perf-gate comparator for dvmc-bench JSON documents.

Usage:
  check_perf.py BASELINE CURRENT [--max-regression 0.30]
  check_perf.py --rss FILE --rss-ceiling-mb N

Both files must follow the "dvmc-bench" schema written by the bench
binaries' --json flag (see bench/bench_common.hpp). For every row name
present in BOTH files, the current events/sec must be at least
(1 - max_regression) times the baseline events/sec; any row below that
threshold fails the gate. Rows only present on one side are reported but
do not fail (benchmarks get added and retired), and the machines running
baseline and current may differ, which is why the default margin is a
deliberately loose 30%.

Rows that carry a counted allocsPerEvent figure (binaries built with the
DVMC_BENCH_ALLOC_HOOK operator-new hook, e.g. bench_micro_sim) are gated
on it too: current allocations per event may not exceed the baseline by
more than --max-alloc-growth. A baseline of exactly 0 is a hard
zero-allocation claim — ANY current allocation in that row fails the
gate, regardless of the growth margin. Unlike throughput, allocation
counts are machine-independent, so this gate is tight by design.

The --rss mode gates the in-process memory sampler instead: FILE is a
dvmc-run-report or dvmc-status document whose "resource" section carries
peakRssBytes (getrusage high-water mark of the producing process); the
gate fails when it exceeds --rss-ceiling-mb. This replaces the old
shell-level getrusage(RUSAGE_CHILDREN) wrapper in CI, which charged every
subprocess in the step to the same ceiling.

Exit status: 0 = within budget, 1 = regression/breach, 2 = bad input.
"""

import argparse
import json
import sys


def check_rss(path, ceiling_mb):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    resource = doc.get("resource")
    # Accept both the nested v2 report/status layout and a bare
    # {"peakRssBytes"/"peak_rss_bytes": N} document.
    holder = resource if isinstance(resource, dict) else doc
    peak = holder.get("peakRssBytes", holder.get("peak_rss_bytes"))
    if not isinstance(peak, (int, float)) or peak <= 0:
        print(f"error: {path}: no peakRssBytes in the resource section",
              file=sys.stderr)
        return 2
    peak_mb = peak / (1024 * 1024)
    if peak_mb > ceiling_mb:
        print(f"FAIL: peak RSS {peak_mb:.1f} MB exceeds the "
              f"{ceiling_mb} MB ceiling", file=sys.stderr)
        return 1
    print(f"OK: peak RSS {peak_mb:.1f} MB within the {ceiling_mb} MB ceiling")
    return 0


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "dvmc-bench":
        print(f"error: {path}: schema is {doc.get('schema')!r}, "
              "expected 'dvmc-bench'", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        eps = row.get("eventsPerSec", 0)
        if not name or not isinstance(eps, (int, float)) or eps <= 0:
            print(f"error: {path}: malformed row {row!r}", file=sys.stderr)
            sys.exit(2)
        allocs = row.get("allocsPerEvent")
        if allocs is not None and (not isinstance(allocs, (int, float))
                                   or allocs < 0):
            print(f"error: {path}: malformed allocsPerEvent in {row!r}",
                  file=sys.stderr)
            sys.exit(2)
        # Same name measured twice (e.g. repeated configs): keep the best
        # of each column, matching how a human would read the table.
        if name in rows:
            prev_eps, prev_allocs = rows[name]
            eps = max(prev_eps, eps)
            if allocs is None:
                allocs = prev_allocs
            elif prev_allocs is not None:
                allocs = min(prev_allocs, allocs)
        rows[name] = (eps, allocs)
    if not rows:
        print(f"error: {path}: no result rows", file=sys.stderr)
        sys.exit(2)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="allowed fractional slowdown (default 0.30)")
    ap.add_argument("--max-alloc-growth", type=float, default=0.10,
                    help="allowed fractional growth in allocsPerEvent for "
                         "rows that count it; a baseline of 0 always means "
                         "zero allocations allowed (default 0.10)")
    ap.add_argument("--rss", metavar="FILE",
                    help="gate peakRssBytes from a run-report/status file "
                         "instead of comparing benchmarks")
    ap.add_argument("--rss-ceiling-mb", type=float, default=256,
                    help="peak-RSS ceiling for --rss mode (default 256)")
    args = ap.parse_args()

    if args.rss:
        if args.baseline or args.current:
            ap.error("--rss mode takes no baseline/current arguments")
        return check_rss(args.rss, args.rss_ceiling_mb)
    if not args.baseline or not args.current:
        ap.error("baseline and current are required without --rss")

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    floor = 1.0 - args.max_regression

    failures = []
    alloc_failures = []

    def alloc_cell(allocs):
        return "--" if allocs is None else f"{allocs:.6g}"

    width = max(len(n) for n in sorted(set(base) | set(cur)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>6}  {'allocs/evt':>10}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            eps, allocs = cur[name]
            print(f"{name:<{width}}  {'--':>12}  {eps:>12.3e}  "
                  f"{'(new)':>6}  {alloc_cell(allocs):>10}")
            continue
        if name not in cur:
            eps, allocs = base[name]
            print(f"{name:<{width}}  {eps:>12.3e}  {'--':>12}  "
                  f"{'(gone)':>6}  {alloc_cell(allocs):>10}")
            continue
        base_eps, base_allocs = base[name]
        cur_eps, cur_allocs = cur[name]
        ratio = cur_eps / base_eps
        verdict = "" if ratio >= floor else "  REGRESSION"
        if ratio < floor:
            failures.append((name, ratio))
        if base_allocs is not None and cur_allocs is not None:
            # Baseline 0 is a zero-allocation claim: no growth margin.
            allowed = base_allocs * (1.0 + args.max_alloc_growth)
            if cur_allocs > allowed:
                alloc_failures.append((name, base_allocs, cur_allocs))
                verdict += "  ALLOC-REGRESSION"
        print(f"{name:<{width}}  {base_eps:>12.3e}  {cur_eps:>12.3e}  "
              f"{ratio:5.2f}x  {alloc_cell(cur_allocs):>10}{verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} row(s) regressed more than "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x of baseline", file=sys.stderr)
    if alloc_failures:
        print(f"\nFAIL: {len(alloc_failures)} row(s) allocate more per "
              "event than the baseline allows:", file=sys.stderr)
        for name, base_allocs, cur_allocs in alloc_failures:
            claim = (" (baseline claims zero allocations)"
                     if base_allocs == 0 else "")
            print(f"  {name}: {cur_allocs:.6g} vs baseline "
                  f"{base_allocs:.6g}{claim}", file=sys.stderr)
    if failures or alloc_failures:
        return 1
    print(f"\nOK: all shared rows within {args.max_regression:.0%} "
          "of baseline (and no allocation regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
