// Offline consistency oracle CLI over "dvmc-trace" captures.
//
//   dvmc_oracle check FILE    first violation (if any); exit 0 clean, 1 not
//   dvmc_oracle explain FILE  every independent violation with the records
//                             involved and their byte offsets in FILE
//   dvmc_oracle stats FILE    trace header + constraint-graph statistics
//
// Checks run through the bounded-window streaming oracle by default; when
// the stream leaves its settle window (or breaches --max-resident-events)
// the tool reruns the whole-trace batch oracle automatically, so the
// verdict is always authoritative. --batch forces the batch path.
//
// Exit codes: 0 = trace is consistent, 1 = violation found, 2 = usage or
// unreadable/malformed file.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli.hpp"
#include "obs/log.hpp"
#include "obs/run_report.hpp"
#include "obs/spans.hpp"
#include "verify/oracle.hpp"
#include "verify/streaming_oracle.hpp"
#include "verify/trace.hpp"

using namespace dvmc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dvmc_oracle {check|explain|stats} FILE\n"
               "  check    report the first violation; exit 0 iff clean\n"
               "  explain  report every independent violation in detail\n"
               "  stats    trace header and constraint-graph statistics\n"
               "try: dvmc_oracle --help\n");
  return 2;
}

void printHeader(const verify::CapturedTrace& t) {
  std::printf("schema    %s v%d\n", verify::kTraceSchemaName,
              verify::kTraceSchemaVersion);
  std::printf("model     %s\n",
              modelName(ConsistencyModel(t.declaredModel)));
  std::printf("protocol  %s\n", t.protocol == 0 ? "directory" : "snooping");
  std::printf("cores     %u\n", t.numCores);
  std::printf("seed      %llu\n", (unsigned long long)t.seed);
  std::printf("records   %zu%s\n", t.records.size(),
              t.truncated ? " (TRUNCATED)" : "");
}

void printViolation(const verify::CapturedTrace& t,
                    const verify::OracleViolation& v) {
  std::printf("violation [%s] %s\n", verify::violationKindName(v.kind),
              v.message.c_str());
  std::printf("  record A: %s (byte offset %zu)\n",
              verify::describeRecord(t, v.recordA).c_str(), v.byteA);
  if (v.recordB != v.recordA) {
    std::printf("  record B: %s (byte offset %zu)\n",
                verify::describeRecord(t, v.recordB).c_str(), v.byteB);
  }
}

int runOracle(int argc, char** argv) {
  CliParser cli("dvmc_oracle",
                "offline consistency oracle over dvmc-trace captures");
  cli.usageLine("dvmc_oracle [options] {check|explain|stats} FILE");
  bool batch = false;
  bool streaming = false;
  std::uint64_t maxResident = 0;
  std::uint64_t horizon = 0;
  std::uint64_t jobs = 0;
  cli.flag("--batch", &batch,
           "force the whole-trace batch oracle (no bounded-window pass)");
  cli.flag("--streaming", &streaming,
           "use the bounded-window streaming oracle (the default; kept "
           "explicit for scripts)");
  cli.count("--max-resident-events", &maxResident, "N",
            "streaming: ceiling on live (unretired) records; a breach "
            "falls back to the batch oracle (default: unbounded)");
  cli.count("--settle-horizon", &horizon, "CYCLES",
            "streaming: assumed bound on commit-vs-perform skew "
            "(default 65536)");
  cli.count("--jobs", &jobs, "N",
            "streaming: worker threads for sharded read justification "
            "(default 1; verdict identical for every value)")
      .alias("-j");
  obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  if (batch && streaming) {
    std::fprintf(stderr, "dvmc_oracle: --batch and --streaming conflict\n");
    return 2;
  }

  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  if (cmd != "check" && cmd != "explain" && cmd != "stats") return usage();

  verify::CapturedTrace t;
  std::string err;
  {
    obs::ScopedSpan span("read");
    if (!verify::readTraceFile(argv[2], &t, &err)) {
      std::fprintf(stderr, "dvmc_oracle: %s: %s\n", argv[2], err.c_str());
      return 2;
    }
  }

  verify::OracleOptions opts;
  if (cmd == "explain") opts.maxViolations = 16;

  verify::OracleResult res;
  const char* mode = "batch";
  std::size_t peakResident = 0;
  {
    obs::ScopedSpan span("oracle");
    if (!batch) {
      verify::StreamingOracleOptions so;
      so.maxViolations = opts.maxViolations;
      if (horizon != 0) so.settleHorizon = horizon;
      so.maxResidentEvents = static_cast<std::size_t>(maxResident);
      if (jobs != 0) so.jobs = static_cast<int>(jobs);
      bool exceeded = false;
      res = verify::checkTraceStreaming(t, so, /*chunkRecords=*/4096,
                                        &exceeded, &peakResident);
      if (exceeded) {
        obs::logWarn("oracle",
                     "trace left the streaming settle window; falling back "
                     "to the batch oracle");
        res = verify::checkTrace(t, opts);
      } else {
        mode = "streaming";
      }
    } else {
      res = verify::checkTrace(t, opts);
    }
  }

  if (cmd == "stats") {
    printHeader(t);
    const verify::OracleStats& s = res.stats;
    std::printf("reads     %zu (%zu forwarded, %zu initial, %zu ambiguous)\n",
                s.reads, s.forwardedReads, s.initReads, s.ambiguousReads);
    std::printf("writes    %zu\n", s.writes);
    std::printf("membars   %zu (%zu barrier nodes)\n", s.membars,
                s.virtualNodes);
    std::printf("edges     %zu (rf=%zu ws=%zu fr=%zu)\n", s.edges, s.rfEdges,
                s.wsEdges, s.frEdges);
    if (std::strcmp(mode, "streaming") == 0) {
      std::printf("oracle    streaming (peak %zu resident record(s))\n",
                  peakResident);
    } else {
      std::printf("oracle    batch\n");
    }
    std::printf("verdict   %s\n", res.clean ? "CONSISTENT" : "VIOLATION");
    return res.clean ? 0 : 1;
  }

  if (cmd == "explain") printHeader(t);
  if (res.clean) {
    std::printf("CONSISTENT: %zu record(s) admit a legal %s execution\n",
                t.records.size(),
                modelName(ConsistencyModel(t.declaredModel)));
    return 0;
  }
  for (const verify::OracleViolation& v : res.violations) {
    printViolation(t, v);
  }
  std::printf("VIOLATION: %zu violation(s) found\n", res.violations.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = runOracle(argc, argv);
  const int obsRc = obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
