// Offline consistency oracle CLI over "dvmc-trace" captures.
//
//   dvmc_oracle check FILE    first violation (if any); exit 0 clean, 1 not
//   dvmc_oracle explain FILE  every independent violation with the records
//                             involved and their byte offsets in FILE
//   dvmc_oracle stats FILE    trace header + constraint-graph statistics
//
// Exit codes: 0 = trace is consistent, 1 = violation found, 2 = usage or
// unreadable/malformed file.
#include <cstdio>
#include <cstring>
#include <string>

#include "verify/oracle.hpp"
#include "verify/trace.hpp"

using namespace dvmc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dvmc_oracle {check|explain|stats} FILE\n"
               "  check    report the first violation; exit 0 iff clean\n"
               "  explain  report every independent violation in detail\n"
               "  stats    trace header and constraint-graph statistics\n");
  return 2;
}

void printHeader(const verify::CapturedTrace& t) {
  std::printf("schema    %s v%d\n", verify::kTraceSchemaName,
              verify::kTraceSchemaVersion);
  std::printf("model     %s\n",
              modelName(ConsistencyModel(t.declaredModel)));
  std::printf("protocol  %s\n", t.protocol == 0 ? "directory" : "snooping");
  std::printf("cores     %u\n", t.numCores);
  std::printf("seed      %llu\n", (unsigned long long)t.seed);
  std::printf("records   %zu%s\n", t.records.size(),
              t.truncated ? " (TRUNCATED)" : "");
}

void printViolation(const verify::CapturedTrace& t,
                    const verify::OracleViolation& v) {
  std::printf("violation [%s] %s\n", verify::violationKindName(v.kind),
              v.message.c_str());
  std::printf("  record A: %s (byte offset %zu)\n",
              verify::describeRecord(t, v.recordA).c_str(), v.byteA);
  if (v.recordB != v.recordA) {
    std::printf("  record B: %s (byte offset %zu)\n",
                verify::describeRecord(t, v.recordB).c_str(), v.byteB);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  if (cmd != "check" && cmd != "explain" && cmd != "stats") return usage();

  verify::CapturedTrace t;
  std::string err;
  if (!verify::readTraceFile(argv[2], &t, &err)) {
    std::fprintf(stderr, "dvmc_oracle: %s: %s\n", argv[2], err.c_str());
    return 2;
  }

  verify::OracleOptions opts;
  if (cmd == "explain") opts.maxViolations = 16;
  const verify::OracleResult res = verify::checkTrace(t, opts);

  if (cmd == "stats") {
    printHeader(t);
    const verify::OracleStats& s = res.stats;
    std::printf("reads     %zu (%zu forwarded, %zu initial, %zu ambiguous)\n",
                s.reads, s.forwardedReads, s.initReads, s.ambiguousReads);
    std::printf("writes    %zu\n", s.writes);
    std::printf("membars   %zu (%zu barrier nodes)\n", s.membars,
                s.virtualNodes);
    std::printf("edges     %zu (rf=%zu ws=%zu fr=%zu)\n", s.edges, s.rfEdges,
                s.wsEdges, s.frEdges);
    std::printf("verdict   %s\n", res.clean ? "CONSISTENT" : "VIOLATION");
    return res.clean ? 0 : 1;
  }

  if (cmd == "explain") printHeader(t);
  if (res.clean) {
    std::printf("CONSISTENT: %zu record(s) admit a legal %s execution\n",
                t.records.size(),
                modelName(ConsistencyModel(t.declaredModel)));
    return 0;
  }
  for (const verify::OracleViolation& v : res.violations) {
    printViolation(t, v);
  }
  std::printf("VIOLATION: %zu violation(s) found\n", res.violations.size());
  return 1;
}
