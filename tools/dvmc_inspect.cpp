// dvmc-inspect: query tool for DVMC observability artifacts.
//
// Loads the files the simulator emits — run reports (--report-json),
// forensics bundles (--forensics), Chrome event traces (--trace), status
// snapshots (--status-file), JSONL logs (--log-json), and collapsed-stack
// profiles (--profile-out) — and answers the questions a detection
// post-mortem starts with, without loading anything into a browser or
// writing throwaway scripts:
//
//   dvmc_inspect summary FILE...            what is in this artifact?
//   dvmc_inspect detections FILE...         every detection, with the
//                                           firing checker's state dump
//   dvmc_inspect timeline --addr=A FILE...  events touching a block
//   dvmc_inspect series --metric=M FILE...  one sampled telemetry column
//   dvmc_inspect watch FILE                 tail a live --status-file
//                                           snapshot until the run ends
//
// File types are auto-detected from the content ("schema" field for
// reports/forensics/status, "traceEvents" for traces, a dvmc-log or
// dvmc-journal meta first line for JSONL streams, "path count" lines for
// collapsed stacks). Exit codes: 0 on success, 1 on a parse/schema error
// or a failed/crashed run, 2 on a usage error, 3 when watch --stale-after
// declares the producer dead.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/types.hpp"
#include "obs/forensics.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "obs/run_report.hpp"

using dvmc::Addr;
using dvmc::Json;

namespace {

enum class ArtifactKind { kReport, kForensics, kTrace, kStatus, kLog,
                          kJournal, kProfile };

struct Artifact {
  std::string path;
  ArtifactKind kind;
  Json root;
  /// kLog: {"meta": {...}, "records": [...]} lives in `root`.
  /// kProfile: the raw collapsed-stack text (root stays null).
  std::string text;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: dvmc_inspect <command> [options] FILE...\n"
      "  summary FILE...              what each artifact contains\n"
      "  detections FILE...           every detection with checker state\n"
      "  timeline --addr=A FILE...    events touching block A (hex ok)\n"
      "  series --metric=M FILE...    sampled values of telemetry column M\n"
      "  watch FILE                   tail a live status snapshot "
      "(--once: render and exit;\n"
      "                               --stale-after=SEC: declare the "
      "producer dead, exit 3)\n");
  return 2;
}

/// True when `text` looks like collapsed-stack profile lines: every
/// non-empty line is "frame[;frame...] <digits>" (the speedscope /
/// flamegraph.pl input format).
bool looksLikeCollapsedStacks(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 == line.size()) {
      return false;
    }
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      if (line[i] < '0' || line[i] > '9') return false;
    }
    ++lines;
  }
  return lines > 0;
}

/// Parses a dvmc-log JSONL stream into {"meta": {...}, "records": [...]}.
bool loadLogLines(const std::string& path, const std::string& text,
                  Artifact* out) {
  std::istringstream in(text);
  std::string line;
  Json records = Json::array();
  Json meta;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::string err;
    std::optional<Json> parsed = Json::parse(line, &err);
    if (!parsed) {
      std::fprintf(stderr, "dvmc_inspect: %s:%zu: %s\n", path.c_str(), lineNo,
                   err.c_str());
      return false;
    }
    if (lineNo == 1) {
      const std::uint64_t version =
          parsed->find("version") ? parsed->find("version")->asUint() : 0;
      if (version > dvmc::obs::kLogSchemaVersion) {
        std::fprintf(stderr, "dvmc_inspect: %s: log version %llu is newer "
                             "than this tool understands\n",
                     path.c_str(), static_cast<unsigned long long>(version));
        return false;
      }
      meta = std::move(*parsed);
      continue;
    }
    records.push(std::move(*parsed));
  }
  out->kind = ArtifactKind::kLog;
  out->root =
      Json::object().set("meta", std::move(meta)).set("records",
                                                      std::move(records));
  return true;
}

/// Loads and classifies one artifact; prints the reason and returns false
/// on unreadable input, malformed JSON, or an unrecognized/newer schema.
bool load(const std::string& path, Artifact* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "dvmc_inspect: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  out->path = path;

  // A dvmc-log JSONL stream is many documents, so classify it by its
  // first-line meta stamp before trying a whole-file parse.
  const std::size_t firstNl = text.find('\n');
  const std::string firstLine =
      firstNl == std::string::npos ? text : text.substr(0, firstNl);
  if (firstLine.find("\"dvmc-log\"") != std::string::npos) {
    if (std::optional<Json> metaLine = Json::parse(firstLine)) {
      const Json* schema = metaLine->find("schema");
      if (schema != nullptr &&
          schema->asString() == dvmc::obs::kLogSchemaName) {
        return loadLogLines(path, text, out);
      }
    }
  }
  // Campaign journals are JSONL too; readJournal validates the meta line
  // and tolerates a torn final record (the writer died mid-append).
  if (firstLine.find("\"dvmc-journal\"") != std::string::npos) {
    std::string jerr;
    std::optional<dvmc::obs::JournalContents> jc =
        dvmc::obs::readJournal(path, &jerr);
    if (!jc) {
      std::fprintf(stderr, "dvmc_inspect: %s: %s\n", path.c_str(),
                   jerr.c_str());
      return false;
    }
    Json records = Json::array();
    for (Json& rec : jc->records) records.push(std::move(rec));
    out->kind = ArtifactKind::kJournal;
    out->root = Json::object()
                    .set("meta", std::move(jc->meta))
                    .set("records", std::move(records));
    return true;
  }

  std::string err;
  std::optional<Json> parsed = Json::parse(text, &err);
  if (!parsed) {
    if (looksLikeCollapsedStacks(text)) {
      out->kind = ArtifactKind::kProfile;
      out->text = text;
      return true;
    }
    std::fprintf(stderr, "dvmc_inspect: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  out->root = std::move(*parsed);
  if (const Json* schema = out->root.find("schema")) {
    const std::string& name = schema->asString();
    const std::uint64_t version =
        out->root.find("version") ? out->root.find("version")->asUint() : 0;
    if (name == dvmc::obs::kReportSchemaName) {
      out->kind = ArtifactKind::kReport;
      if (version > dvmc::obs::kReportSchemaVersion) {
        std::fprintf(stderr, "dvmc_inspect: %s: report version %llu is newer "
                             "than this tool understands\n",
                     path.c_str(), static_cast<unsigned long long>(version));
        return false;
      }
      return true;
    }
    if (name == dvmc::kForensicsSchemaName) {
      out->kind = ArtifactKind::kForensics;
      if (version > dvmc::kForensicsSchemaVersion) {
        std::fprintf(stderr, "dvmc_inspect: %s: forensics version %llu is "
                             "newer than this tool understands\n",
                     path.c_str(), static_cast<unsigned long long>(version));
        return false;
      }
      return true;
    }
    if (name == dvmc::obs::kStatusSchemaName) {
      out->kind = ArtifactKind::kStatus;
      if (version > dvmc::obs::kStatusSchemaVersion) {
        std::fprintf(stderr, "dvmc_inspect: %s: status version %llu is "
                             "newer than this tool understands\n",
                     path.c_str(), static_cast<unsigned long long>(version));
        return false;
      }
      return true;
    }
    std::fprintf(stderr, "dvmc_inspect: %s: unknown schema '%s'\n",
                 path.c_str(), name.c_str());
    return false;
  }
  if (out->root.find("traceEvents") != nullptr) {
    out->kind = ArtifactKind::kTrace;
    return true;
  }
  std::fprintf(stderr,
               "dvmc_inspect: %s: not a dvmc artifact (no schema field "
               "and no traceEvents)\n",
               path.c_str());
  return false;
}

const char* kindName(ArtifactKind k) {
  switch (k) {
    case ArtifactKind::kReport: return "run report";
    case ArtifactKind::kForensics: return "forensics";
    case ArtifactKind::kTrace: return "event trace";
    case ArtifactKind::kStatus: return "status snapshot";
    case ArtifactKind::kLog: return "log stream";
    case ArtifactKind::kJournal: return "campaign journal";
    case ArtifactKind::kProfile: return "collapsed-stack profile";
  }
  return "?";
}

std::uint64_t uintField(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->asUint() : 0;
}

std::string strField(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->asString() : std::string("?");
}

const Json* objField(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return (v != nullptr && v->isObject()) ? v : nullptr;
}

const Json* arrField(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return (v != nullptr && v->isArray()) ? v : nullptr;
}

// --- summary ---------------------------------------------------------------

void summarizeReport(const Artifact& a) {
  const Json* runs = arrField(a.root, "runs");
  const std::size_t n = runs ? runs->size() : 0;
  std::printf("%s: run report, %zu run%s\n", a.path.c_str(), n,
              n == 1 ? "" : "s");
  for (std::size_t i = 0; i < n; ++i) {
    const Json& run = runs->at(i);
    const Json* cfg = objField(run, "config");
    const Json* res = objField(run, "result");
    std::printf("  [%zu] %s", i, strField(run, "kind").c_str());
    if (cfg != nullptr) {
      std::printf(" %s/%s/%s", strField(*cfg, "protocol").c_str(),
                  strField(*cfg, "model").c_str(),
                  strField(*cfg, "workload").c_str());
    }
    if (res != nullptr) {
      std::printf("  detections=%llu",
                  static_cast<unsigned long long>(uintField(*res, "detections")));
      if (const Json* series = objField(*res, "series")) {
        const Json* samples = arrField(*series, "samples");
        std::printf("  series=%zu samples",
                    samples != nullptr ? samples->size() : std::size_t{0});
      }
    }
    std::printf("\n");
  }
}

void summarizeForensics(const Artifact& a) {
  const Json* bundles = arrField(a.root, "bundles");
  const std::size_t n = bundles ? bundles->size() : 0;
  std::printf("%s: forensics, %zu bundle%s (%llu dropped)\n", a.path.c_str(),
              n, n == 1 ? "" : "s",
              static_cast<unsigned long long>(
                  uintField(a.root, "droppedBundles")));
  for (std::size_t i = 0; i < n; ++i) {
    const Json* det = objField(bundles->at(i), "detection");
    if (det == nullptr) continue;
    std::printf("  [%zu] %s at cycle %llu  node %llu  addr 0x%llx\n", i,
                strField(*det, "checker").c_str(),
                static_cast<unsigned long long>(uintField(*det, "cycle")),
                static_cast<unsigned long long>(uintField(*det, "node")),
                static_cast<unsigned long long>(uintField(*det, "addr")));
  }
}

void summarizeTrace(const Artifact& a) {
  const Json* events = arrField(a.root, "traceEvents");
  const std::size_t n = events ? events->size() : 0;
  std::uint64_t first = 0, last = 0, detections = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Json& e = events->at(i);
    const std::uint64_t ts = uintField(e, "ts");
    if (i == 0 || ts < first) first = ts;
    if (ts > last) last = ts;
    if (strField(e, "cat") == "detection") ++detections;
  }
  std::printf("%s: event trace, %zu events, cycles %llu..%llu, "
              "%llu detection instants\n",
              a.path.c_str(), n, static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(last),
              static_cast<unsigned long long>(detections));
}

/// One-line digest of a dvmc-status snapshot ("campaign 42/200 done ...").
void printStatusLine(const Json& root) {
  const std::string phase = strField(root, "phase");
  const std::string state = strField(root, "state");
  std::printf("%s %llu/%llu %s", phase.c_str(),
              static_cast<unsigned long long>(uintField(root, "done")),
              static_cast<unsigned long long>(uintField(root, "total")),
              state.c_str());
  if (const Json* v = root.find("escapes"); v != nullptr && v->asUint() > 0) {
    std::printf("  escapes=%llu",
                static_cast<unsigned long long>(v->asUint()));
  }
  if (const Json* v = root.find("falsePositives");
      v != nullptr && v->asUint() > 0) {
    std::printf("  false-positives=%llu",
                static_cast<unsigned long long>(v->asUint()));
  }
  if (const Json* running = arrField(root, "running");
      running != nullptr && running->size() > 0) {
    std::printf("  in-flight=%zu", running->size());
  }
  if (const Json* res = objField(root, "resource")) {
    std::printf("  rss=%lluMB",
                static_cast<unsigned long long>(
                    uintField(*res, "peakRssBytes") / (1024 * 1024)));
  }
  const std::uint64_t eta = uintField(root, "etaMs");
  if (eta > 0) {
    std::printf("  eta=%llus", static_cast<unsigned long long>(eta / 1000));
  }
  std::printf("\n");
}

void summarizeStatus(const Artifact& a) {
  std::printf("%s: status snapshot (%s)\n  ", a.path.c_str(),
              strField(a.root, "generator").c_str());
  printStatusLine(a.root);
  if (const Json* running = arrField(a.root, "running")) {
    for (std::size_t i = 0; i < running->size(); ++i) {
      const Json& h = running->at(i);
      std::printf("  in-flight param %lld since unix ms %llu\n",
                  static_cast<long long>(
                      h.find("param") ? h.find("param")->asInt() : 0),
                  static_cast<unsigned long long>(
                      uintField(h, "startedUnixMs")));
    }
  }
}

void summarizeLog(const Artifact& a) {
  const Json* records = arrField(a.root, "records");
  const std::size_t n = records ? records->size() : 0;
  std::map<std::string, std::size_t> byLevel;
  std::map<std::string, std::size_t> byComponent;
  for (std::size_t i = 0; i < n; ++i) {
    const Json& r = records->at(i);
    ++byLevel[strField(r, "level")];
    ++byComponent[strField(r, "component")];
  }
  const Json* meta = objField(a.root, "meta");
  std::printf("%s: log stream, %zu record%s (%s)\n", a.path.c_str(), n,
              n == 1 ? "" : "s",
              meta != nullptr ? strField(*meta, "generator").c_str() : "?");
  for (const auto& [level, count] : byLevel) {
    std::printf("  %-5s %zu\n", level.c_str(), count);
  }
  for (const auto& [component, count] : byComponent) {
    std::printf("  component %-10s %zu\n", component.c_str(), count);
  }
}

void summarizeJournal(const Artifact& a) {
  const Json* records = arrField(a.root, "records");
  const std::size_t n = records ? records->size() : 0;
  const Json* meta = objField(a.root, "meta");
  std::size_t escapes = 0, falsePositives = 0, retried = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Json& rec = records->at(i);
    if (const Json* c = objField(rec, "clean");
        c != nullptr && c->find("falsePositive") != nullptr &&
        c->find("falsePositive")->asBool()) {
      ++falsePositives;
    }
    if (const Json* f = objField(rec, "faulted");
        f != nullptr && f->find("escape") != nullptr &&
        f->find("escape")->asBool()) {
      ++escapes;
    }
    if (uintField(rec, "attempts") > 1) ++retried;
  }
  std::printf("%s: campaign journal, %zu completed config%s (%s)\n",
              a.path.c_str(), n, n == 1 ? "" : "s",
              meta != nullptr ? strField(*meta, "generator").c_str() : "?");
  std::printf("  escapes=%zu false-positives=%zu retried=%zu\n", escapes,
              falsePositives, retried);
}

void summarizeProfile(const Artifact& a) {
  std::istringstream in(a.text);
  std::string line;
  std::size_t stacks = 0;
  std::uint64_t totalUs = 0;
  std::string hottest;
  std::uint64_t hottestUs = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t us = std::strtoull(line.c_str() + space + 1,
                                           nullptr, 10);
    totalUs += us;
    if (us > hottestUs) {
      hottestUs = us;
      hottest = line.substr(0, space);
    }
    ++stacks;
  }
  std::printf("%s: collapsed-stack profile, %zu stack%s, %llu us total\n",
              a.path.c_str(), stacks, stacks == 1 ? "" : "s",
              static_cast<unsigned long long>(totalUs));
  if (!hottest.empty()) {
    std::printf("  hottest: %s (%llu us self)\n", hottest.c_str(),
                static_cast<unsigned long long>(hottestUs));
  }
}

// --- watch -----------------------------------------------------------------

/// Tails a --status-file snapshot: re-reads it every 500 ms, prints a
/// digest line whenever updatedUnixMs advances, and exits once the state
/// leaves "running" (0 for done, 1 for failed/crashed). With `once`,
/// renders the current snapshot and exits immediately (schema errors are
/// exit 1, like every other load). With staleAfterSec > 0, a snapshot
/// whose heartbeat stops advancing for that long — or a file that never
/// appears — means the producer died without finalizing: report it and
/// exit 3.
int watchStatus(const std::string& path, bool once,
                std::uint64_t staleAfterSec) {
  const auto nowUnixMs = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  };
  std::uint64_t lastUpdated = 0;
  // Wall clock of the last observed heartbeat advance (or watch start):
  // judged against the snapshot's own updatedUnixMs would trip on clock
  // skew between producer and watcher hosts sharing the file.
  std::uint64_t lastProgressMs = nowUnixMs();
  bool sawFile = false;
  for (;;) {
    {
      std::ifstream probe(path);
      if (probe) {
        Artifact a;
        if (!load(path, &a)) return 1;
        if (a.kind != ArtifactKind::kStatus) {
          std::fprintf(stderr,
                       "dvmc_inspect: %s: watch needs a status snapshot, "
                       "not a %s\n",
                       path.c_str(), kindName(a.kind));
          return 1;
        }
        sawFile = true;
        const std::uint64_t updated = uintField(a.root, "updatedUnixMs");
        if (updated != lastUpdated) {
          lastUpdated = updated;
          lastProgressMs = nowUnixMs();
          printStatusLine(a.root);
          std::fflush(stdout);
        }
        const std::string state = strField(a.root, "state");
        if (once || (state != "running" && state != "?")) {
          return (state == "failed" || state == "crashed") ? 1 : 0;
        }
      } else if (once) {
        std::fprintf(stderr, "dvmc_inspect: cannot open %s\n", path.c_str());
        return 1;
      } else if (!sawFile) {
        // The producer may not have written its first snapshot yet; the
        // stale timer below bounds how long that grace lasts.
      }
    }
    if (staleAfterSec > 0 &&
        nowUnixMs() - lastProgressMs > staleAfterSec * 1000) {
      std::fprintf(stderr,
                   "dvmc_inspect: %s: producer appears dead — %s for more "
                   "than %llu s (--stale-after)\n",
                   path.c_str(),
                   sawFile ? "no heartbeat advance" : "no snapshot appeared",
                   static_cast<unsigned long long>(staleAfterSec));
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
}

// --- detections ------------------------------------------------------------

void printCheckerDump(const char* label, const Json& dump, int indent) {
  std::printf("%*s%s:", indent, "", label);
  for (const auto& [key, value] : dump.members()) {
    if (value.isObject() || value.isArray() || value.isNull()) continue;
    if (value.isString()) {
      std::printf(" %s=%s", key.c_str(), value.asString().c_str());
    } else if (value.isBool()) {
      std::printf(" %s=%s", key.c_str(), value.asBool() ? "true" : "false");
    } else {
      std::printf(" %s=%llu", key.c_str(),
                  static_cast<unsigned long long>(value.asUint()));
    }
  }
  std::printf("\n");
  // One nested level: the focus rows (focusEpoch, focusEpochRow, ...).
  for (const auto& [key, value] : dump.members()) {
    if (!value.isObject()) continue;
    printCheckerDump(key.c_str(), value, indent + 2);
  }
}

int detectionsForensics(const Artifact& a) {
  const Json* bundles = arrField(a.root, "bundles");
  if (bundles == nullptr) {
    std::fprintf(stderr, "dvmc_inspect: %s: no bundles array\n",
                 a.path.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < bundles->size(); ++i) {
    const Json& b = bundles->at(i);
    const Json* det = objField(b, "detection");
    if (det == nullptr) {
      std::fprintf(stderr, "dvmc_inspect: %s: bundle %zu has no detection\n",
                   a.path.c_str(), i);
      return 1;
    }
    std::printf("bundle %zu (seed %llu)\n", i,
                static_cast<unsigned long long>(uintField(b, "seed")));
    std::printf("  checker: %s\n", strField(*det, "checker").c_str());
    std::printf("  cycle:   %llu\n",
                static_cast<unsigned long long>(uintField(*det, "cycle")));
    std::printf("  node:    %llu\n",
                static_cast<unsigned long long>(uintField(*det, "node")));
    std::printf("  addr:    0x%llx\n",
                static_cast<unsigned long long>(uintField(*det, "addr")));
    std::printf("  what:    %s\n", strField(*det, "what").c_str());
    if (const Json* checkers = objField(b, "checkers")) {
      for (const auto& [name, dump] : checkers->members()) {
        printCheckerDump(name.c_str(), dump, 2);
      }
    }
    if (const Json* history = arrField(b, "addrHistory")) {
      std::printf("  addr history: %zu events\n", history->size());
    }
    if (const Json* sn = objField(b, "safetyNet")) {
      std::printf("  safetynet: %llu checkpoints, cycles %llu..%llu, "
                  "window %llu\n",
                  static_cast<unsigned long long>(
                      uintField(*sn, "checkpoints")),
                  static_cast<unsigned long long>(
                      uintField(*sn, "oldestCheckpoint")),
                  static_cast<unsigned long long>(
                      uintField(*sn, "newestCheckpoint")),
                  static_cast<unsigned long long>(
                      uintField(*sn, "recoveryWindow")));
    }
  }
  std::printf("%zu bundle%s, %llu dropped\n", bundles->size(),
              bundles->size() == 1 ? "" : "s",
              static_cast<unsigned long long>(
                  uintField(a.root, "droppedBundles")));
  return 0;
}

int detectionsTrace(const Artifact& a) {
  const Json* events = arrField(a.root, "traceEvents");
  std::size_t n = 0;
  for (std::size_t i = 0; events != nullptr && i < events->size(); ++i) {
    const Json& e = events->at(i);
    if (strField(e, "cat") != "detection") continue;
    const Json* args = objField(e, "args");
    std::printf("cycle %-10llu node %-3llu %-24s addr 0x%llx\n",
                static_cast<unsigned long long>(uintField(e, "ts")),
                static_cast<unsigned long long>(uintField(e, "tid")),
                strField(e, "name").c_str(),
                static_cast<unsigned long long>(
                    args != nullptr ? uintField(*args, "addr") : 0));
    ++n;
  }
  std::printf("%zu detection instant%s\n", n, n == 1 ? "" : "s");
  return 0;
}

int detectionsReport(const Artifact& a) {
  const Json* runs = arrField(a.root, "runs");
  for (std::size_t i = 0; runs != nullptr && i < runs->size(); ++i) {
    const Json* res = objField(runs->at(i), "result");
    std::printf("run %zu: %llu detection%s\n", i,
                static_cast<unsigned long long>(
                    res != nullptr ? uintField(*res, "detections") : 0),
                (res != nullptr && uintField(*res, "detections") == 1) ? ""
                                                                       : "s");
  }
  return 0;
}

// --- timeline --------------------------------------------------------------

void printTraceEventLine(std::uint64_t ts, const std::string& cat,
                         const std::string& name, std::uint64_t node,
                         std::uint64_t addr) {
  std::printf("cycle %-10llu node %-3llu %-10s %-24s addr 0x%llx\n",
              static_cast<unsigned long long>(ts),
              static_cast<unsigned long long>(node), cat.c_str(),
              name.c_str(), static_cast<unsigned long long>(addr));
}

int timeline(const Artifact& a, Addr addr) {
  const Addr blk = dvmc::blockAddr(addr);
  std::size_t n = 0;
  if (a.kind == ArtifactKind::kTrace) {
    const Json* events = arrField(a.root, "traceEvents");
    for (std::size_t i = 0; events != nullptr && i < events->size(); ++i) {
      const Json& e = events->at(i);
      const Json* args = objField(e, "args");
      const Addr ea = args != nullptr ? uintField(*args, "addr") : 0;
      if (ea == 0 || dvmc::blockAddr(ea) != blk) continue;
      printTraceEventLine(uintField(e, "ts"), strField(e, "cat"),
                          strField(e, "name"), uintField(e, "tid"), ea);
      ++n;
    }
  } else if (a.kind == ArtifactKind::kForensics) {
    const Json* bundles = arrField(a.root, "bundles");
    for (std::size_t i = 0; bundles != nullptr && i < bundles->size(); ++i) {
      const Json* tw = objField(bundles->at(i), "traceWindow");
      const Json* events = tw != nullptr ? arrField(*tw, "events") : nullptr;
      for (std::size_t j = 0; events != nullptr && j < events->size(); ++j) {
        const Json& e = events->at(j);
        const Addr ea = uintField(e, "addr");
        if (ea == 0 || dvmc::blockAddr(ea) != blk) continue;
        printTraceEventLine(uintField(e, "ts"), strField(e, "kind"),
                            strField(e, "name"), uintField(e, "node"), ea);
        ++n;
      }
    }
  } else {
    std::fprintf(stderr,
                 "dvmc_inspect: %s: timeline needs a trace or forensics "
                 "file, not a %s\n",
                 a.path.c_str(), kindName(a.kind));
    return 1;
  }
  std::printf("%zu event%s on block 0x%llx\n", n, n == 1 ? "" : "s",
              static_cast<unsigned long long>(blk));
  return 0;
}

// --- series ----------------------------------------------------------------

int seriesFromRun(const Json& series, const std::string& metric,
                  std::size_t* printed) {
  const Json* columns = arrField(series, "columns");
  const Json* samples = arrField(series, "samples");
  if (columns == nullptr || samples == nullptr) {
    std::fprintf(stderr, "dvmc_inspect: malformed series section\n");
    return 1;
  }
  std::size_t col = columns->size();
  for (std::size_t i = 0; i < columns->size(); ++i) {
    if (columns->at(i).asString() == metric) col = i;
  }
  if (col == columns->size()) {
    std::fprintf(stderr, "dvmc_inspect: metric '%s' not sampled; columns:\n",
                 metric.c_str());
    for (std::size_t i = 0; i < columns->size(); ++i) {
      std::fprintf(stderr, "  %s\n", columns->at(i).asString().c_str());
    }
    return 1;
  }
  for (std::size_t i = 0; i < samples->size(); ++i) {
    const Json& row = samples->at(i);
    // Each row is [cycle, v0, v1, ...]: column k lives at index k + 1.
    std::printf("%llu %llu\n",
                static_cast<unsigned long long>(row.at(0).asUint()),
                static_cast<unsigned long long>(row.at(col + 1).asUint()));
    ++*printed;
  }
  return 0;
}

int series(const Artifact& a, const std::string& metric) {
  if (a.kind != ArtifactKind::kReport) {
    std::fprintf(stderr,
                 "dvmc_inspect: %s: series needs a run report, not a %s\n",
                 a.path.c_str(), kindName(a.kind));
    return 1;
  }
  const Json* runs = arrField(a.root, "runs");
  std::size_t printed = 0;
  bool found = false;
  for (std::size_t i = 0; runs != nullptr && i < runs->size(); ++i) {
    const Json& run = runs->at(i);
    const Json* s = objField(run, "series");
    if (s == nullptr) {
      const Json* res = objField(run, "result");
      if (res != nullptr) s = objField(*res, "series");
    }
    if (s == nullptr) continue;
    found = true;
    const int rc = seriesFromRun(*s, metric, &printed);
    if (rc != 0) return rc;
  }
  if (!found) {
    std::fprintf(stderr,
                 "dvmc_inspect: %s: no series section (run with "
                 "--sample-every=N to record one)\n",
                 a.path.c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu sample%s\n", printed, printed == 1 ? "" : "s");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dvmc::CliParser cli("dvmc_inspect",
                      "query tool for DVMC observability artifacts "
                      "(run reports, forensics bundles, event traces)");
  cli.usageLine(
      "dvmc_inspect {summary|detections|timeline|series|watch} [options] "
      "FILE...");
  std::string addrText, metric;
  bool once = false;
  std::uint64_t staleAfterSec = 30;
  cli.option("--addr", &addrText, "A",
             "block address for the timeline command (hex ok)");
  cli.option("--metric", &metric, "NAME",
             "telemetry column for the series command");
  cli.flag("--once", &once,
           "watch: render the current status snapshot and exit");
  cli.option("--stale-after", &staleAfterSec, "SEC",
             "watch: exit 3 when the heartbeat stops advancing for SEC "
             "seconds (default 30, 0 = wait forever)");
  argc = cli.parse(argc, argv);
  const bool haveAddr = !addrText.empty();
  const bool haveMetric = !metric.empty();

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr, "dvmc_inspect: no input files\n");
    return usage();
  }

  Addr addr = 0;
  if (cmd == "timeline") {
    if (!haveAddr) {
      std::fprintf(stderr, "dvmc_inspect: timeline requires --addr=A\n");
      return usage();
    }
    char* end = nullptr;
    addr = std::strtoull(addrText.c_str(), &end, 0);
    if (end == addrText.c_str() || *end != '\0') {
      std::fprintf(stderr, "dvmc_inspect: bad address '%s'\n",
                   addrText.c_str());
      return usage();
    }
  } else if (cmd == "series") {
    if (!haveMetric) {
      std::fprintf(stderr, "dvmc_inspect: series requires --metric=NAME\n");
      return usage();
    }
  } else if (cmd == "watch") {
    if (args.size() != 1) {
      std::fprintf(stderr, "dvmc_inspect: watch takes exactly one FILE\n");
      return usage();
    }
    return watchStatus(args[0], once, staleAfterSec);
  } else if (cmd != "summary" && cmd != "detections") {
    std::fprintf(stderr, "dvmc_inspect: unknown command '%s'\n", cmd.c_str());
    return usage();
  }

  int rc = 0;
  for (const std::string& path : args) {
    Artifact a;
    if (!load(path, &a)) {
      rc = 1;
      continue;
    }
    if (cmd == "summary") {
      switch (a.kind) {
        case ArtifactKind::kReport: summarizeReport(a); break;
        case ArtifactKind::kForensics: summarizeForensics(a); break;
        case ArtifactKind::kTrace: summarizeTrace(a); break;
        case ArtifactKind::kStatus: summarizeStatus(a); break;
        case ArtifactKind::kLog: summarizeLog(a); break;
        case ArtifactKind::kJournal: summarizeJournal(a); break;
        case ArtifactKind::kProfile: summarizeProfile(a); break;
      }
    } else if (cmd == "detections") {
      int r = 0;
      switch (a.kind) {
        case ArtifactKind::kReport: r = detectionsReport(a); break;
        case ArtifactKind::kForensics: r = detectionsForensics(a); break;
        case ArtifactKind::kTrace: r = detectionsTrace(a); break;
        case ArtifactKind::kStatus:
        case ArtifactKind::kLog:
        case ArtifactKind::kJournal:
        case ArtifactKind::kProfile:
          std::fprintf(stderr,
                       "dvmc_inspect: %s: detections needs a report, "
                       "forensics, or trace file, not a %s\n",
                       a.path.c_str(), kindName(a.kind));
          r = 1;
          break;
      }
      if (r != 0) rc = r;
    } else if (cmd == "timeline") {
      const int r = timeline(a, addr);
      if (r != 0) rc = r;
    } else if (cmd == "series") {
      const int r = series(a, metric);
      if (r != 0) rc = r;
    }
  }
  return rc;
}
