// Differential fuzz/fault campaign driver (the nightly CI workhorse).
//
// Each campaign case regenerates a fuzz_test configuration by parameter
// index (workload/fuzz_config.hpp), runs it with commit-trace capture, and
// cross-checks the runtime DVMC checkers against the offline oracle:
//
//   clean case    no fault injected. The checkers must stay silent AND the
//                 oracle must accept the trace — an oracle violation here
//                 is an oracle false positive and fails the campaign.
//   faulted case  a randomly drawn applicable fault type is injected
//                 (re-injected until it manifests, like the paper's §6.1
//                 campaign). If the oracle proves the committed execution
//                 inconsistent but no checker fired, that is a reproducible
//                 checker escape: the trace and a JSON description are
//                 written to --escape-dir and the campaign fails.
//
// Checker detections without an oracle violation are expected (checkers
// catch errors before they corrupt the committed history; masked faults
// harm nothing), so they do not fail the campaign.
//
// Oracle cross-checks run through the streaming oracle attached as the
// capture's live TraceSink (bounded-memory: the full trace is never held
// resident). On a violation, a window excess, or a --max-resident-events
// breach, the deterministic case is re-run with in-memory capture and
// judged by the batch oracle — the rerun also regenerates the trace for
// the escape bundle. --batch-oracle forces that path for every case.
//
// Supervision (docs/robustness.md): by default every config runs in its
// own child process (`dvmc_campaign --worker <spec-json>` self-exec), so a
// wild pointer, sanitizer abort, or livelock in one config cannot take the
// campaign down. The parent enforces a per-attempt wall-clock deadline
// (SIGTERM -> grace -> SIGKILL against the child's process group), retries
// per --attempts with deterministic exponential backoff, and writes a
// triage bundle (exit taxonomy, rlimit snapshot, stderr tail, repro
// cmdline, fuzz config) under --quarantine-dir for every failed attempt.
// With --journal each completed config lands as one fsynced dvmc-journal
// record, and --resume replays those records instead of re-running the
// work — the merged summary is bit-identical to an uninterrupted run.
// --in-process restores the old single-process behavior.
//
//   dvmc_campaign [--configs N] [--param-base P] [--seed-base S]
//                 [--clean-only | --faulted] [--jobs N]
//                 [--escape-dir DIR] [--sample-trace FILE]
//                 [--batch-oracle] [--max-resident-events N]
//                 [--in-process] [--attempts K] [--backoff-ms MS]
//                 [--deadline-sec S] [--child-mem-mb MB]
//                 [--quarantine-dir DIR] [--journal FILE] [--resume FILE]
//                 [observability flags — --log-json, --status-file,
//                  --profile-out, ...: see --help]
//
// With --status-file the driver atomically rewrites a live dvmc-status
// snapshot (configs done/escaped/retried/quarantined, per-child heartbeats
// with pid and attempt, peak RSS, ETA); `dvmc_inspect watch FILE` tails
// it and detects a dead producer via --stale-after.
//
// Exit codes: 0 = full agreement, 1 = escape, false positive, or a config
// lost to retry exhaustion, 2 = usage.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/subprocess.hpp"
#include "common/thread_pool.hpp"
#include "common/version.hpp"
#include "faults/injector.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "obs/run_report.hpp"
#include "obs/spans.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
#include "verify/oracle.hpp"
#include "verify/streaming_oracle.hpp"
#include "verify/trace.hpp"
#include "workload/fuzz_config.hpp"

using namespace dvmc;

namespace {

constexpr const char* kResultSchemaName = "dvmc-campaign-result";
constexpr const char* kQuarantineSchemaName = "dvmc-quarantine";

struct CampaignOptions {
  int configs = 200;
  int paramBase = 0;
  std::uint64_t seedBase = 0xCA3B41;
  bool clean = true;
  bool faulted = true;
  std::string escapeDir = "campaign-escapes";
  std::string sampleTrace;
  bool batchOracle = false;        // force batch checkTrace for every case
  std::size_t maxResidentEvents = 0;  // streaming live-record ceiling
  // Supervision (ignored under --in-process).
  bool inProcess = false;
  int attempts = 3;
  std::uint64_t backoffMs = 500;
  std::uint64_t deadlineSec = 300;  // per-attempt wall clock; 0 = none
  std::uint64_t childMemMb = 0;     // RLIMIT_AS cap; 0 = inherit
  std::string quarantineDir = "campaign-quarantine";
  std::string journalFile;
  std::string resumeFile;
};

struct CaseOutcome {
  bool ran = false;
  bool completed = false;
  bool checkersDetected = false;
  bool oracleViolation = false;
  bool escape = false;         // oracle flagged, checkers silent (faulted)
  bool falsePositive = false;  // oracle flagged a clean run
  FaultType fault = FaultType::kCacheDataMultiBit;
  int injections = 0;
  std::string detail;
  std::shared_ptr<const verify::CapturedTrace> trace;
};

std::uint64_t totalFlushes(System& sys) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    total += sys.core(n).stats().get("cpu.uoFlushes");
    total += sys.core(n).stats().get("cpu.rmoReplayFlushes");
  }
  return total;
}

/// Arms a case config for oracle cross-checking. In streaming mode the
/// oracle rides the capture as its live sink and nothing stays resident;
/// in batch mode (--batch-oracle, or a rerun after a streaming verdict
/// needs the trace bytes) the capture stays in memory for checkTrace and
/// the escape bundle.
bool armOracle(SystemConfig& cfg, const CampaignOptions& opt,
               verify::StreamingOracle& oracle, bool keepTrace) {
  cfg.trace.capture = true;
  if (opt.batchOracle || keepTrace) return false;
  cfg.trace.sink = &oracle;
  cfg.trace.keepInMemory = false;
  return true;
}

/// The streaming verdict, or a signal to rerun in batch mode: a window
/// excess means the verdict is not guaranteed, and a violation needs the
/// resident trace to dump the escape bundle.
bool streamingVerdictUsable(verify::StreamingOracle& oracle,
                            const verify::OracleResult** res) {
  *res = &oracle.finish();
  return !oracle.windowExceeded() && (*res)->clean;
}

CaseOutcome runClean(int param, const CampaignOptions& opt,
                     bool keepTrace = false) {
  SystemConfig cfg = makeFuzzConfig(param);
  verify::StreamingOracleOptions so;
  so.maxResidentEvents = opt.maxResidentEvents;
  verify::StreamingOracle oracle(so);
  const bool streaming = armOracle(cfg, opt, oracle, keepTrace);
  System sys(cfg);
  RunResult r;
  {
    obs::ScopedSpan span("run");
    r = sys.run();
    // Final sweep: epochs still open at program end carry unchecked state;
    // flushing them through the MET keeps the clean/faulted cases
    // symmetric.
    sys.drainCheckers();
  }
  r = sys.collectResult(r.completed, r.cycles);
  CaseOutcome out;
  out.ran = true;
  out.completed = r.completed;
  out.checkersDetected = r.detections > 0;
  verify::OracleResult batchRes;
  const verify::OracleResult* o = nullptr;
  {
    obs::ScopedSpan span("oracle");
    if (streaming) {
      // A clean in-window stream is the common case and never needed the
      // trace; everything else re-runs the deterministic config with the
      // capture resident and judges by the batch oracle.
      if (!streamingVerdictUsable(oracle, &o)) {
        return runClean(param, opt, /*keepTrace=*/true);
      }
    } else {
      batchRes = verify::checkTrace(*r.trace);
      o = &batchRes;
      out.trace = r.trace;
    }
  }
  out.oracleViolation = !o->clean;
  if (!o->clean) {
    out.falsePositive = true;
    out.detail = o->violations.empty() ? "?" : o->violations[0].message;
  } else if (r.detections > 0) {
    // A clean-run checker detection is covered by fuzz_test/tier-1; the
    // campaign only tracks oracle agreement, but surface it anyway.
    out.detail = "checker detection on a fault-free run";
  }
  return out;
}

CaseOutcome runFaulted(int param, const CampaignOptions& opt,
                       std::uint64_t seedBase, bool keepTrace = false) {
  SystemConfig cfg = makeFuzzConfig(param);
  verify::StreamingOracleOptions so;
  so.maxResidentEvents = opt.maxResidentEvents;
  verify::StreamingOracle oracle(so);
  const bool streaming = armOracle(cfg, opt, oracle, keepTrace);
  Rng rng(seedBase ^ (0x9E3779B97F4A7C15ull * (param + 1)));

  std::vector<FaultType> applicable;
  for (FaultType t : allFaultTypes()) {
    if (faultApplicable(t, cfg.model, cfg.protocol) &&
        faultCoveredBy(t, cfg.coherenceChecker)) {
      applicable.push_back(t);
    }
  }
  const FaultType fault = applicable[rng.below(applicable.size())];

  System sys(cfg);
  FaultInjector inj(sys, seedBase + param);
  CaseOutcome out;
  out.ran = true;
  out.fault = fault;

  auto done = [&] { return sys.allCoresDone(); };
  {
    obs::ScopedSpan span("run");
    sys.runUntil([&] { return sys.sim().now() >= 3'000 || done(); });
    const std::uint64_t flushesBefore = totalFlushes(sys);
    auto detected = [&] {
      return sys.sink().any() || totalFlushes(sys) > flushesBefore;
    };
    for (int round = 0; round < 40 && !detected() && !done(); ++round) {
      if (inj.inject(fault)) ++out.injections;
      const Cycle until = sys.sim().now() + 20'000;
      sys.runUntil(
          [&] { return detected() || done() || sys.sim().now() >= until; });
    }
    // Let the run settle so in-flight effects of the fault reach the
    // trace.
    const Cycle settle = sys.sim().now() + 30'000;
    sys.runUntil([&] { return done() || sys.sim().now() >= settle; });

    // Final sweep: a corruption living in a still-open epoch is only
    // checked once that epoch's inform reaches the MET, so flush before
    // judging.
    sys.finishTraceCapture();
    sys.drainCheckers();
    out.checkersDetected = detected();
  }

  RunResult r = sys.collectResult(done(), sys.sim().now());
  out.completed = r.completed;
  verify::OracleResult batchRes;
  const verify::OracleResult* o = nullptr;
  {
    obs::ScopedSpan span("oracle");
    if (streaming) {
      if (!streamingVerdictUsable(oracle, &o)) {
        return runFaulted(param, opt, seedBase, /*keepTrace=*/true);
      }
    } else {
      batchRes = verify::checkTrace(*r.trace);
      o = &batchRes;
      out.trace = r.trace;
    }
  }
  out.oracleViolation = !o->clean;
  if (!o->clean) {
    out.detail = o->violations.empty() ? "?" : o->violations[0].message;
    out.escape = !out.checkersDetected;
  }
  return out;
}

void dumpEscape(const CampaignOptions& opt, int param, const char* kind,
                const CaseOutcome& out) {
  std::error_code ec;
  std::filesystem::create_directories(opt.escapeDir, ec);
  const std::string base =
      opt.escapeDir + "/" + kind + "_" + std::to_string(param);
  std::string err;
  if (out.trace != nullptr &&
      !verify::writeTraceFile(base + ".trace", *out.trace, &err)) {
    obs::logError("campaign", "cannot write escape trace",
                  Json::object()
                      .set("file", Json::str(base + ".trace"))
                      .set("error", Json::str(err)));
  }
  Json j = Json::object();
  j.set("kind", Json::str(kind));
  j.set("param", Json::num(std::int64_t{param}));
  j.set("fault", Json::str(faultTypeName(out.fault)));
  j.set("injections", Json::num(std::int64_t{out.injections}));
  j.set("checkersDetected", Json::boolean(out.checkersDetected));
  j.set("violation", Json::str(out.detail));
  j.set("trace", Json::str(base + ".trace"));
  j.set("repro",
        Json::str("dvmc_oracle explain " + base + ".trace  # and: fuzz_repro " +
                  std::to_string(param)));
  std::FILE* f = std::fopen((base + ".json").c_str(), "w");
  if (f != nullptr) {
    const std::string s = j.dump(2);
    std::fwrite(s.data(), 1, s.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
}

// ---------------------------------------------------------------------------
// Record plumbing: a CaseOutcome crosses the worker -> parent pipe (and the
// journal) as JSON, and the merged summary is derived ONLY from these
// records — a resumed campaign replays journal records through the same
// code path and prints bit-identical output.

bool jBool(const Json& j, const char* key) {
  const Json* p = j.find(key);
  return p != nullptr && p->asBool();
}

std::int64_t jInt(const Json& j, const char* key, std::int64_t fallback = 0) {
  const Json* p = j.find(key);
  return p != nullptr ? p->asInt(fallback) : fallback;
}

std::string jStr(const Json& j, const char* key) {
  const Json* p = j.find(key);
  return p != nullptr && p->isString() ? p->asString() : std::string();
}

Json caseJson(const CaseOutcome& o) {
  Json j = Json::object();
  j.set("ran", Json::boolean(o.ran));
  j.set("completed", Json::boolean(o.completed));
  j.set("checkersDetected", Json::boolean(o.checkersDetected));
  j.set("oracleViolation", Json::boolean(o.oracleViolation));
  j.set("escape", Json::boolean(o.escape));
  j.set("falsePositive", Json::boolean(o.falsePositive));
  j.set("fault", Json::str(faultTypeName(o.fault)));
  j.set("injections", Json::num(std::int64_t{o.injections}));
  j.set("detail", Json::str(o.detail));
  return j;
}

// ---------------------------------------------------------------------------
// Worker mode: `dvmc_campaign --worker <spec-json>` runs exactly one
// config in this process and reports its verdict as the last stdout line
// ({"schema":"dvmc-campaign-result",...}). Escape/false-positive bundles
// are written by the worker (it holds the trace); the parent only
// aggregates. Exit 0 = the case ran to a verdict (even an escape — the
// parent judges), 2 = bad spec.

/// CI chaos hook: DVMC_TEST_CRASH_AT="<param>[=<mode>],..." makes the
/// matching worker die on its FIRST attempt (mode abort|segv|hang,
/// default abort), so the supervision path — triage, quarantine, retry —
/// is exercised end to end. Deaths restore the default signal disposition
/// first: the kernel, not a sanitizer's exit(1) translation, must report
/// the signal or the parent's taxonomy test would misclassify.
void maybeInjectTestCrash(int param, int attempt) {
  const char* env = std::getenv("DVMC_TEST_CRASH_AT");
  if (env == nullptr || attempt != 1) return;
  std::string spec(env);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::string mode = "abort";
    if (const std::size_t eq = entry.find('='); eq != std::string::npos) {
      mode = entry.substr(eq + 1);
      entry.resize(eq);
    }
    if (std::atoi(entry.c_str()) != param) continue;
    if (mode == "segv") {
      std::signal(SIGSEGV, SIG_DFL);
      std::raise(SIGSEGV);
    }
    if (mode == "hang") {
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    std::signal(SIGABRT, SIG_DFL);
    std::raise(SIGABRT);
  }
}

int runWorkerMode(const char* specText) {
  std::string err;
  const std::optional<Json> spec = Json::parse(specText, &err);
  if (!spec || !spec->isObject()) {
    std::fprintf(stderr, "dvmc_campaign --worker: bad spec: %s\n",
                 err.empty() ? "not an object" : err.c_str());
    return 2;
  }
  const int param = static_cast<int>(jInt(*spec, "param", -1));
  const int attempt = static_cast<int>(jInt(*spec, "attempt", 1));
  if (param < 0) {
    std::fprintf(stderr, "dvmc_campaign --worker: spec lacks param\n");
    return 2;
  }
  CampaignOptions opt;
  opt.clean = jBool(*spec, "clean");
  opt.faulted = jBool(*spec, "faulted");
  opt.seedBase = [&] {
    const Json* p = spec->find("seedBase");
    return p != nullptr ? p->asUint(opt.seedBase) : opt.seedBase;
  }();
  opt.batchOracle = jBool(*spec, "batchOracle");
  opt.maxResidentEvents = static_cast<std::size_t>([&] {
    const Json* p = spec->find("maxResidentEvents");
    return p != nullptr ? p->asUint(0) : 0;
  }());
  if (const std::string dir = jStr(*spec, "escapeDir"); !dir.empty()) {
    opt.escapeDir = dir;
  }
  if (const std::string lvl = jStr(*spec, "logLevel"); !lvl.empty()) {
    obs::LogLevel level;
    if (obs::parseLogLevel(lvl, &level)) {
      obs::Logger::instance().setLevel(level);
    }
  }

  maybeInjectTestCrash(param, attempt);

  Json result = Json::object();
  result.set("schema", Json::str(kResultSchemaName));
  result.set("version", Json::num(std::int64_t{1}));
  result.set("param", Json::num(std::int64_t{param}));
  if (opt.clean) {
    const CaseOutcome c = runClean(param, opt);
    if (c.falsePositive) dumpEscape(opt, param, "false_positive", c);
    result.set("clean", caseJson(c));
  }
  if (opt.faulted) {
    const CaseOutcome f = runFaulted(param, opt, opt.seedBase);
    if (f.escape) dumpEscape(opt, param, "escape", f);
    result.set("faulted", caseJson(f));
  }
  const std::string line = result.dump();
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// Parent-side supervision plumbing.

std::string selfExePath(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0;
}

Json workerSpec(const CampaignOptions& opt, int param, int attempt) {
  Json j = Json::object();
  j.set("param", Json::num(std::int64_t{param}));
  j.set("attempt", Json::num(std::int64_t{attempt}));
  j.set("clean", Json::boolean(opt.clean));
  j.set("faulted", Json::boolean(opt.faulted));
  j.set("seedBase", Json::num(opt.seedBase));
  j.set("batchOracle", Json::boolean(opt.batchOracle));
  j.set("maxResidentEvents", Json::num(std::uint64_t{opt.maxResidentEvents}));
  j.set("escapeDir", Json::str(opt.escapeDir));
  j.set("logLevel",
        Json::str(obs::logLevelName(obs::Logger::instance().level())));
  return j;
}

/// The worker's verdict is its LAST stdout line; anything before it
/// (stray library prints) is ignored. Returns nullopt when the line is
/// missing, unparseable, the wrong schema, or for the wrong param — all
/// of which count as a failed attempt even on a clean exit.
std::optional<Json> parseResultLine(const std::string& stdoutTail,
                                    int param) {
  const std::size_t end = stdoutTail.find_last_not_of(" \t\r\n");
  if (end == std::string::npos) return std::nullopt;
  std::size_t begin = stdoutTail.rfind('\n', end);
  begin = begin == std::string::npos ? 0 : begin + 1;
  std::optional<Json> parsed =
      Json::parse(std::string_view(stdoutTail).substr(begin, end - begin + 1));
  if (!parsed || !parsed->isObject()) return std::nullopt;
  if (jStr(*parsed, "schema") != kResultSchemaName) return std::nullopt;
  if (jInt(*parsed, "param", -1) != param) return std::nullopt;
  return parsed;
}

/// One triage bundle per failed attempt: everything needed to classify
/// the death and reproduce it without the campaign around it.
void writeQuarantine(const CampaignOptions& opt, int param, int attempt,
                     const SubprocessOptions& spawn,
                     const SubprocessResult& r) {
  std::error_code ec;
  std::filesystem::create_directories(opt.quarantineDir, ec);
  const std::string path = opt.quarantineDir + "/param_" +
                           std::to_string(param) + "_attempt_" +
                           std::to_string(attempt) + ".json";
  std::string repro;
  for (const std::string& a : spawn.argv) {
    if (!repro.empty()) repro += ' ';
    repro += '\'' + a + '\'';
  }
  Json j = Json::object();
  j.set("schema", Json::str(kQuarantineSchemaName));
  j.set("version", Json::num(std::int64_t{1}));
  j.set("generator", Json::str(versionString()));
  j.set("param", Json::num(std::int64_t{param}));
  j.set("attempt", Json::num(std::int64_t{attempt}));
  j.set("exitReason", Json::str(exitReasonName(r.status.reason)));
  j.set("exit", Json::object()
                    .set("describe", Json::str(r.status.describe()))
                    .set("code", Json::num(std::int64_t{r.status.exitCode}))
                    .set("signal", Json::num(std::int64_t{r.status.termSignal}))
                    .set("coreDumped", Json::boolean(r.status.coreDumped)));
  if (!r.spawnError.empty()) j.set("spawnError", Json::str(r.spawnError));
  j.set("wallMs", Json::num(r.wallMs));
  j.set("maxRssBytes", Json::num(r.maxRssBytes));
  j.set("limits", Json::object()
                      .set("memoryBytes", Json::num(spawn.limits.memoryBytes))
                      .set("cpuSeconds", Json::num(spawn.limits.cpuSeconds))
                      .set("deadlineMs", Json::num(spawn.deadlineMs)));
  j.set("stderrTail", Json::str(r.stderrTail));
  j.set("repro", Json::str(repro));
  j.set("fuzz", Json::object()
                    .set("param", Json::num(std::int64_t{param}))
                    .set("seedBase", Json::num(opt.seedBase)));
  j.set("config", configJson(makeFuzzConfig(param)));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    obs::logError("campaign", "cannot write quarantine bundle",
                  Json::object().set("file", Json::str(path)));
    return;
  }
  const std::string s = j.dump(2);
  std::fwrite(s.data(), 1, s.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

struct Heartbeat {
  std::uint64_t startedUnixMs = 0;
  int pid = 0;
  int attempt = 0;
};

}  // namespace

int main(int argc, char** argv) {
  // Self-exec worker protocol, handled before CliParser: the spec is one
  // JSON blob, not flags.
  if (argc >= 3 && std::strcmp(argv[1], "--worker") == 0) {
    return runWorkerMode(argv[2]);
  }

  CampaignOptions opt;
  CliParser cli("dvmc_campaign",
                "differential fuzz/fault campaign: runtime checkers "
                "cross-checked against the offline consistency oracle");
  bool cleanOnly = false;
  bool faultedOnly = false;
  cli.option("--configs", &opt.configs, "N",
             "number of fuzz configurations to run (default 200)");
  cli.option("--param-base", &opt.paramBase, "P",
             "first fuzz parameter index (default 0)");
  cli.option("--seed-base", &opt.seedBase, "S",
             "base seed for fault-type draws and injection timing");
  cli.flag("--clean-only", &cleanOnly, "run only the fault-free cases");
  cli.flag("--faulted", &faultedOnly, "run only the fault-injected cases");
  cli.option("--escape-dir", &opt.escapeDir, "DIR",
             "where escape/false-positive bundles are written "
             "(default campaign-escapes)");
  cli.path("--sample-trace", &opt.sampleTrace, "FILE",
           "also write the first case's capture as a dvmc-trace file");
  cli.flag("--batch-oracle", &opt.batchOracle,
           "judge every case with the whole-trace batch oracle instead of "
           "the streaming sink");
  cli.count("--max-resident-events", &opt.maxResidentEvents, "N",
            "streaming: ceiling on live oracle records; a breach reruns "
            "the case under the batch oracle (default: unbounded)");
  cli.flag("--in-process", &opt.inProcess,
           "run every config in this process (pre-supervision behavior: "
           "one crash or hang kills the whole campaign)");
  cli.option("--attempts", &opt.attempts, "K",
             "max attempts per config under supervision, including the "
             "first (default 3)");
  cli.option("--backoff-ms", &opt.backoffMs, "MS",
             "base retry delay; doubles per retry with deterministic "
             "seed-derived jitter (default 500, 0 = immediate)");
  cli.option("--deadline-sec", &opt.deadlineSec, "S",
             "wall-clock budget per config attempt; on breach the child's "
             "process group gets SIGTERM then SIGKILL (default 300, "
             "0 = none)");
  cli.option("--child-mem-mb", &opt.childMemMb, "MB",
             "RLIMIT_AS cap for each worker child (default 0 = inherit; "
             "keep 0 under sanitizers)");
  cli.option("--quarantine-dir", &opt.quarantineDir, "DIR",
             "where crash/hang/retry triage bundles are written "
             "(default campaign-quarantine)");
  cli.path("--journal", &opt.journalFile, "FILE",
           "append one fsynced dvmc-journal record per completed config");
  cli.path("--resume", &opt.resumeFile, "FILE",
           "skip configs already recorded in FILE and append new records "
           "to it (implies --journal FILE)");
  addRunnerFlags(cli);
  obs::addObsFlags(cli);
  cli.noPositionals();
  argc = cli.parse(argc, argv);
  (void)argc;
  if (cleanOnly && faultedOnly) {
    std::fprintf(stderr,
                 "dvmc_campaign: --clean-only and --faulted conflict\n");
    return 2;
  }
  if (cleanOnly) opt.faulted = false;
  if (faultedOnly) opt.clean = false;
  if (opt.configs <= 0) {
    std::fprintf(stderr, "dvmc_campaign: --configs must be positive\n");
    return 2;
  }
  if (opt.attempts < 1) {
    std::fprintf(stderr, "dvmc_campaign: --attempts must be at least 1\n");
    return 2;
  }
  if (!opt.resumeFile.empty()) {
    if (!opt.journalFile.empty() && opt.journalFile != opt.resumeFile) {
      std::fprintf(stderr,
                   "dvmc_campaign: --journal and --resume name different "
                   "files\n");
      return 2;
    }
    opt.journalFile = opt.resumeFile;
  }

  const std::size_t n = static_cast<std::size_t>(opt.configs);

  // Resume: completed records by param. A missing journal just means
  // nothing is done yet (a fresh nightly shard resuming an empty cache).
  std::map<int, Json> journaled;
  if (!opt.resumeFile.empty()) {
    std::string err;
    if (std::optional<obs::JournalContents> jc =
            obs::readJournal(opt.resumeFile, &err)) {
      for (Json& rec : jc->records) {
        const int param = static_cast<int>(jInt(rec, "param", -1));
        if (param >= opt.paramBase &&
            param < opt.paramBase + static_cast<int>(n)) {
          journaled[param] = std::move(rec);
        }
      }
      obs::logInfo("campaign", "resuming from journal",
                   Json::object()
                       .set("file", Json::str(opt.resumeFile))
                       .set("completed",
                            Json::num(std::uint64_t{journaled.size()})));
    } else {
      obs::logWarn("campaign", "resume journal not readable; starting fresh",
                   Json::object()
                       .set("file", Json::str(opt.resumeFile))
                       .set("error", Json::str(err)));
    }
  }

  // Journal identity: resuming someone else's campaign would silently
  // corrupt the merge, so these keys must match an existing journal.
  obs::JournalWriter journal;
  std::mutex journalMu;
  if (!opt.journalFile.empty()) {
    Json meta = Json::object();
    meta.set("tool", Json::str("dvmc_campaign"));
    meta.set("paramBase", Json::num(std::int64_t{opt.paramBase}));
    meta.set("configs", Json::num(std::int64_t{opt.configs}));
    meta.set("seedBase", Json::num(opt.seedBase));
    meta.set("clean", Json::boolean(opt.clean));
    meta.set("faulted", Json::boolean(opt.faulted));
    std::string err;
    if (!journal.open(opt.journalFile, meta,
                      {"tool", "paramBase", "configs", "seedBase", "clean",
                       "faulted"},
                      &err)) {
      std::fprintf(stderr, "dvmc_campaign: cannot open journal: %s\n",
                   err.c_str());
      return 2;
    }
  }

  // Crash-injection harness for the parent itself (the crash-handler
  // test): die after arming the status surface.
  const char* exitAfterEnv = std::getenv("DVMC_TEST_EXIT_AFTER");
  const long exitAfter = exitAfterEnv != nullptr ? std::atol(exitAfterEnv) : 0;
  std::atomic<long> journalAppends{0};
  // Simulated hard parent death after the k-th durable record: _exit skips
  // every destructor and flush, exactly like SIGKILL would.
  const auto maybeTestExitAfter = [&] {
    if (exitAfter > 0 && journalAppends.fetch_add(1) + 1 == exitAfter) {
      _exit(3);
    }
  };

  const std::size_t resumed = journaled.size();
  std::vector<CaseOutcome> cleanOut(opt.clean ? n : 0);
  std::vector<CaseOutcome> faultOut(opt.faulted ? n : 0);
  std::vector<Json> records(n);
  std::vector<char> recordValid(n, 0);
  std::atomic<std::size_t> doneCount{resumed};
  std::atomic<std::size_t> escapesSoFar{0};
  std::atomic<std::size_t> falsePositivesSoFar{0};
  std::atomic<std::size_t> retriesSoFar{0};
  std::atomic<std::size_t> quarantinedSoFar{0};
  std::atomic<std::size_t> lostSoFar{0};

  std::vector<std::size_t> pendingSlots;
  for (std::size_t s = 0; s < n; ++s) {
    const int param = opt.paramBase + static_cast<int>(s);
    if (auto it = journaled.find(param); it != journaled.end()) {
      records[s] = std::move(it->second);
      recordValid[s] = 1;
    } else {
      pendingSlots.push_back(s);
    }
  }

  // Live health surface: currently in-flight params with their child pid
  // and attempt (the heartbeat — a shard stuck on one param shows up as a
  // stale startedUnixMs), counts, and an ETA, published atomically
  // whenever --status-file is armed.
  obs::StatusWriter* status = obs::activeStatusWriter();
  std::mutex inFlightMu;
  std::map<int, Heartbeat> inFlight;
  const auto nowUnixMs = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  };
  const auto nowSteadyMs = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  const std::uint64_t startedMs = nowSteadyMs();
  const auto publishStatus = [&](const char* state, bool force) {
    if (status == nullptr) return;
    const std::size_t d = doneCount.load();
    Json heartbeats = Json::array();
    {
      std::lock_guard<std::mutex> lock(inFlightMu);
      for (const auto& [param, hb] : inFlight) {
        heartbeats.push(Json::object()
                            .set("param", Json::num(std::int64_t{param}))
                            .set("startedUnixMs", Json::num(hb.startedUnixMs))
                            .set("pid", Json::num(std::int64_t{hb.pid}))
                            .set("attempt",
                                 Json::num(std::int64_t{hb.attempt})));
      }
    }
    const std::uint64_t elapsed = nowSteadyMs() - startedMs;
    const std::size_t fresh = d > resumed ? d - resumed : 0;
    Json body = Json::object();
    body.set("phase", Json::str("campaign"));
    body.set("state", Json::str(state));
    body.set("total", Json::num(std::uint64_t{n}));
    body.set("done", Json::num(std::uint64_t{d}));
    body.set("resumed", Json::num(std::uint64_t{resumed}));
    body.set("escapes", Json::num(std::uint64_t{escapesSoFar.load()}));
    body.set("falsePositives",
             Json::num(std::uint64_t{falsePositivesSoFar.load()}));
    body.set("retries", Json::num(std::uint64_t{retriesSoFar.load()}));
    body.set("quarantined",
             Json::num(std::uint64_t{quarantinedSoFar.load()}));
    body.set("lost", Json::num(std::uint64_t{lostSoFar.load()}));
    body.set("running", std::move(heartbeats));
    body.set("elapsedMs", Json::num(elapsed));
    body.set("etaMs",
             Json::num(fresh > 0 ? elapsed * (n - d) / fresh : 0));
    status->update(body, force);
  };
  publishStatus("running", /*force=*/true);
  if (std::getenv("DVMC_TEST_CRASH_PARENT") != nullptr) std::abort();

  SystemConfig jobsProbe;  // resolveJobs needs a config; use the default
  const unsigned workers = static_cast<unsigned>(resolveJobs(jobsProbe));

  // Liveness ticker: republish the snapshot every second even when no
  // config completes, so updatedUnixMs is a true heartbeat and
  // `dvmc_inspect watch --stale-after` can tell "slow config" from
  // "producer died" (the StatusWriter's own rate limit still applies).
  std::atomic<bool> runFinished{false};
  std::thread ticker;
  if (status != nullptr) {
    ticker = std::thread([&] {
      while (!runFinished.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1000));
        if (!runFinished.load(std::memory_order_acquire)) {
          publishStatus("running", /*force=*/false);
        }
      }
    });
  }

  if (opt.inProcess) {
    parallelFor(pendingSlots.size(), workers, [&](std::size_t pi) {
      obs::ScopedSpan span("case");
      const std::size_t s = pendingSlots[pi];
      const int param = opt.paramBase + static_cast<int>(s);
      {
        std::lock_guard<std::mutex> lock(inFlightMu);
        inFlight[param] = Heartbeat{nowUnixMs(), 0, 1};
      }
      Json rec = Json::object();
      rec.set("param", Json::num(std::int64_t{param}));
      rec.set("attempts", Json::num(std::int64_t{1}));
      if (opt.clean) {
        cleanOut[s] = runClean(param, opt);
        if (cleanOut[s].falsePositive) ++falsePositivesSoFar;
        rec.set("clean", caseJson(cleanOut[s]));
      }
      if (opt.faulted) {
        faultOut[s] = runFaulted(param, opt, opt.seedBase);
        if (faultOut[s].escape) ++escapesSoFar;
        rec.set("faulted", caseJson(faultOut[s]));
      }
      {
        std::lock_guard<std::mutex> lock(journalMu);
        records[s] = std::move(rec);
        recordValid[s] = 1;
        if (journal.isOpen() && !journal.append(records[s])) {
          obs::logError("campaign", "journal append failed",
                        Json::object().set("file",
                                           Json::str(journal.path())));
        }
        maybeTestExitAfter();
      }
      {
        std::lock_guard<std::mutex> lock(inFlightMu);
        inFlight.erase(param);
      }
      const std::size_t d = ++doneCount;
      if (d % 25 == 0 || d == n) {
        obs::logInfo("campaign", "progress",
                     Json::object()
                         .set("done", Json::num(std::uint64_t{d}))
                         .set("total", Json::num(std::uint64_t{n})));
      }
      publishStatus("running", /*force=*/false);
    });
  } else {
    const std::string selfExe = selfExePath(argv[0]);
    const auto makeWorkerOptions = [&](int param, int attempt) {
      SubprocessOptions o;
      o.argv = {selfExe, "--worker", workerSpec(opt, param, attempt).dump()};
      o.deadlineMs = opt.deadlineSec * 1000;
      o.limits.memoryBytes = opt.childMemMb * 1024 * 1024;
      o.onSpawn = [&inFlightMu, &inFlight, param](int pid) {
        std::lock_guard<std::mutex> lock(inFlightMu);
        if (auto it = inFlight.find(param); it != inFlight.end()) {
          it->second.pid = pid;
        }
      };
      return o;
    };

    std::vector<SupervisedTask> tasks(pendingSlots.size());
    for (std::size_t i = 0; i < pendingSlots.size(); ++i) {
      const int param =
          opt.paramBase + static_cast<int>(pendingSlots[i]);
      tasks[i].name = "param " + std::to_string(param);
      tasks[i].key = static_cast<std::uint64_t>(param);
      tasks[i].makeOptions = [&makeWorkerOptions, param](int attempt) {
        return makeWorkerOptions(param, attempt);
      };
    }

    RetryPolicy policy;
    policy.maxAttempts = opt.attempts;
    policy.baseDelayMs = opt.backoffMs;
    policy.seed = opt.seedBase;
    Supervisor sup(workers, policy);
    std::vector<std::optional<Json>> resultJson(tasks.size());

    sup.isSuccess = [&](std::size_t i, const SubprocessResult& r) {
      if (!r.status.clean()) return false;
      const int param =
          opt.paramBase + static_cast<int>(pendingSlots[i]);
      std::optional<Json> parsed = parseResultLine(r.stdoutTail, param);
      if (!parsed) return false;
      resultJson[i] = std::move(parsed);
      return true;
    };
    sup.onAttemptStart = [&](std::size_t i, int attempt) {
      const int param =
          opt.paramBase + static_cast<int>(pendingSlots[i]);
      {
        std::lock_guard<std::mutex> lock(inFlightMu);
        inFlight[param] = Heartbeat{nowUnixMs(), 0, attempt};
      }
      publishStatus("running", /*force=*/false);
    };
    sup.onAttemptDone = [&](std::size_t i, int attempt,
                            const SubprocessResult& r, bool willRetry) {
      const std::size_t s = pendingSlots[i];
      const int param = opt.paramBase + static_cast<int>(s);
      {
        std::lock_guard<std::mutex> lock(inFlightMu);
        inFlight.erase(param);
      }
      if (!resultJson[i].has_value()) {
        ++quarantinedSoFar;
        writeQuarantine(opt, param, attempt, makeWorkerOptions(param, attempt),
                        r);
        Json fields = Json::object()
                          .set("param", Json::num(std::int64_t{param}))
                          .set("attempt", Json::num(std::int64_t{attempt}))
                          .set("exit", Json::str(r.status.describe()));
        if (willRetry) {
          ++retriesSoFar;
          obs::logWarn("campaign", "config attempt failed; retrying",
                       std::move(fields));
        } else {
          ++lostSoFar;
          obs::logError("campaign", "config lost: retry budget exhausted",
                        std::move(fields));
        }
      } else {
        const Json& res = *resultJson[i];
        Json rec = Json::object();
        rec.set("param", Json::num(std::int64_t{param}));
        rec.set("attempts", Json::num(std::int64_t{attempt}));
        if (const Json* c = res.find("clean"); c != nullptr) {
          if (jBool(*c, "falsePositive")) ++falsePositivesSoFar;
          rec.set("clean", *c);
        }
        if (const Json* f = res.find("faulted"); f != nullptr) {
          if (jBool(*f, "escape")) ++escapesSoFar;
          rec.set("faulted", *f);
        }
        {
          std::lock_guard<std::mutex> lock(journalMu);
          records[s] = std::move(rec);
          recordValid[s] = 1;
          if (journal.isOpen() && !journal.append(records[s])) {
            obs::logError("campaign", "journal append failed",
                          Json::object().set("file",
                                             Json::str(journal.path())));
          }
          maybeTestExitAfter();
        }
        const std::size_t d = ++doneCount;
        if (d % 25 == 0 || d == n) {
          obs::logInfo("campaign", "progress",
                       Json::object()
                           .set("done", Json::num(std::uint64_t{d}))
                           .set("total", Json::num(std::uint64_t{n})));
        }
      }
      publishStatus("running", /*force=*/false);
    };
    sup.run(tasks);
  }

  runFinished.store(true, std::memory_order_release);
  if (ticker.joinable()) ticker.join();

  // Merged summary, derived ONLY from the per-config records so a resumed
  // campaign prints bit-identical output to an uninterrupted one.
  // Supervision/retry chatter goes through the logger (stderr) instead.
  std::size_t falsePositives = 0, escapes = 0, detections = 0, masked = 0,
              agreements = 0, lost = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const int param = opt.paramBase + static_cast<int>(s);
    if (!recordValid[s]) {
      ++lost;
      continue;
    }
    const Json& rec = records[s];
    const Json* c = rec.find("clean");
    if (opt.clean && c != nullptr && jBool(*c, "falsePositive")) {
      ++falsePositives;
      std::printf("FALSE-POSITIVE param=%d: %s\n", param,
                  jStr(*c, "detail").c_str());
      // Supervised workers dump their own bundles (they hold the trace).
      if (opt.inProcess) {
        dumpEscape(opt, param, "false_positive", cleanOut[s]);
      }
    }
    if (!opt.faulted) continue;
    const Json* f = rec.find("faulted");
    if (f == nullptr) continue;
    if (jBool(*f, "escape")) {
      ++escapes;
      std::printf("ESCAPE param=%d fault=%s injections=%d: %s\n", param,
                  jStr(*f, "fault").c_str(),
                  static_cast<int>(jInt(*f, "injections")),
                  jStr(*f, "detail").c_str());
      if (opt.inProcess) dumpEscape(opt, param, "escape", faultOut[s]);
    } else if (jBool(*f, "checkersDetected")) {
      ++detections;
      if (jBool(*f, "oracleViolation")) ++agreements;
    } else {
      ++masked;
    }
  }

  if (!opt.sampleTrace.empty()) {
    // Streaming and supervised cases never held their trace; regenerate
    // the first case (deterministic by param) with the capture resident.
    std::shared_ptr<const verify::CapturedTrace> sample =
        opt.clean && !cleanOut.empty() ? cleanOut[0].trace
        : !faultOut.empty()            ? faultOut[0].trace
                                       : nullptr;
    if (sample == nullptr) {
      sample = opt.clean
                   ? runClean(opt.paramBase, opt, /*keepTrace=*/true).trace
                   : runFaulted(opt.paramBase, opt, opt.seedBase,
                                /*keepTrace=*/true)
                         .trace;
    }
    std::string err;
    if (sample != nullptr &&
        !verify::writeTraceFile(opt.sampleTrace, *sample, &err)) {
      obs::logError("campaign", "cannot write sample trace",
                    Json::object().set("error", Json::str(err)));
    }
  }

  std::printf(
      "campaign: %d config(s)%s%s | detections=%zu (oracle agreed on %zu) "
      "masked=%zu false-positives=%zu escapes=%zu\n",
      opt.configs, opt.clean ? " +clean" : "", opt.faulted ? " +faulted" : "",
      detections, agreements, masked, falsePositives, escapes);
  if (lost > 0) {
    std::printf("campaign: %zu config(s) lost to retry exhaustion — see %s/\n",
                lost, opt.quarantineDir.c_str());
  }
  const bool failed = falsePositives + escapes + lost > 0;
  publishStatus(failed ? "failed" : "done", /*force=*/true);
  const int obsRc = obs::finalizeObs();
  if (failed) {
    std::printf("campaign: FAILED — see %s/\n",
                falsePositives + escapes > 0 ? opt.escapeDir.c_str()
                                             : opt.quarantineDir.c_str());
    return 1;
  }
  std::printf("campaign: checkers and oracle agree on every case\n");
  return obsRc;
}
