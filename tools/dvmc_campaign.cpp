// Differential fuzz/fault campaign driver (the nightly CI workhorse).
//
// Each campaign case regenerates a fuzz_test configuration by parameter
// index (workload/fuzz_config.hpp), runs it with commit-trace capture, and
// cross-checks the runtime DVMC checkers against the offline oracle:
//
//   clean case    no fault injected. The checkers must stay silent AND the
//                 oracle must accept the trace — an oracle violation here
//                 is an oracle false positive and fails the campaign.
//   faulted case  a randomly drawn applicable fault type is injected
//                 (re-injected until it manifests, like the paper's §6.1
//                 campaign). If the oracle proves the committed execution
//                 inconsistent but no checker fired, that is a reproducible
//                 checker escape: the trace and a JSON description are
//                 written to --escape-dir and the campaign fails.
//
// Checker detections without an oracle violation are expected (checkers
// catch errors before they corrupt the committed history; masked faults
// harm nothing), so they do not fail the campaign.
//
// Oracle cross-checks run through the streaming oracle attached as the
// capture's live TraceSink (bounded-memory: the full trace is never held
// resident). On a violation, a window excess, or a --max-resident-events
// breach, the deterministic case is re-run with in-memory capture and
// judged by the batch oracle — the rerun also regenerates the trace for
// the escape bundle. --batch-oracle forces that path for every case.
//
//   dvmc_campaign [--configs N] [--param-base P] [--seed-base S]
//                 [--clean-only | --faulted] [--jobs N]
//                 [--escape-dir DIR] [--sample-trace FILE]
//                 [--batch-oracle] [--max-resident-events N]
//                 [observability flags — --log-json, --status-file,
//                  --profile-out, ...: see --help]
//
// With --status-file the driver atomically rewrites a live dvmc-status
// snapshot (configs done/escaped, in-flight heartbeats, peak RSS, ETA);
// `dvmc_inspect watch FILE` tails it.
//
// Exit codes: 0 = full agreement, 1 = escape or false positive, 2 = usage.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "faults/injector.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "obs/run_report.hpp"
#include "obs/spans.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
#include "verify/oracle.hpp"
#include "verify/streaming_oracle.hpp"
#include "verify/trace.hpp"
#include "workload/fuzz_config.hpp"

using namespace dvmc;

namespace {

struct CampaignOptions {
  int configs = 200;
  int paramBase = 0;
  std::uint64_t seedBase = 0xCA3B41;
  bool clean = true;
  bool faulted = true;
  std::string escapeDir = "campaign-escapes";
  std::string sampleTrace;
  bool batchOracle = false;        // force batch checkTrace for every case
  std::size_t maxResidentEvents = 0;  // streaming live-record ceiling
};

struct CaseOutcome {
  bool ran = false;
  bool completed = false;
  bool checkersDetected = false;
  bool oracleViolation = false;
  bool escape = false;         // oracle flagged, checkers silent (faulted)
  bool falsePositive = false;  // oracle flagged a clean run
  FaultType fault = FaultType::kCacheDataMultiBit;
  int injections = 0;
  std::string detail;
  std::shared_ptr<const verify::CapturedTrace> trace;
};

std::uint64_t totalFlushes(System& sys) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    total += sys.core(n).stats().get("cpu.uoFlushes");
    total += sys.core(n).stats().get("cpu.rmoReplayFlushes");
  }
  return total;
}

/// Arms a case config for oracle cross-checking. In streaming mode the
/// oracle rides the capture as its live sink and nothing stays resident;
/// in batch mode (--batch-oracle, or a rerun after a streaming verdict
/// needs the trace bytes) the capture stays in memory for checkTrace and
/// the escape bundle.
bool armOracle(SystemConfig& cfg, const CampaignOptions& opt,
               verify::StreamingOracle& oracle, bool keepTrace) {
  cfg.trace.capture = true;
  if (opt.batchOracle || keepTrace) return false;
  cfg.trace.sink = &oracle;
  cfg.trace.keepInMemory = false;
  return true;
}

/// The streaming verdict, or a signal to rerun in batch mode: a window
/// excess means the verdict is not guaranteed, and a violation needs the
/// resident trace to dump the escape bundle.
bool streamingVerdictUsable(verify::StreamingOracle& oracle,
                            const verify::OracleResult** res) {
  *res = &oracle.finish();
  return !oracle.windowExceeded() && (*res)->clean;
}

CaseOutcome runClean(int param, const CampaignOptions& opt,
                     bool keepTrace = false) {
  SystemConfig cfg = makeFuzzConfig(param);
  verify::StreamingOracleOptions so;
  so.maxResidentEvents = opt.maxResidentEvents;
  verify::StreamingOracle oracle(so);
  const bool streaming = armOracle(cfg, opt, oracle, keepTrace);
  System sys(cfg);
  RunResult r;
  {
    obs::ScopedSpan span("run");
    r = sys.run();
    // Final sweep: epochs still open at program end carry unchecked state;
    // flushing them through the MET keeps the clean/faulted cases
    // symmetric.
    sys.drainCheckers();
  }
  r = sys.collectResult(r.completed, r.cycles);
  CaseOutcome out;
  out.ran = true;
  out.completed = r.completed;
  out.checkersDetected = r.detections > 0;
  verify::OracleResult batchRes;
  const verify::OracleResult* o = nullptr;
  {
    obs::ScopedSpan span("oracle");
    if (streaming) {
      // A clean in-window stream is the common case and never needed the
      // trace; everything else re-runs the deterministic config with the
      // capture resident and judges by the batch oracle.
      if (!streamingVerdictUsable(oracle, &o)) {
        return runClean(param, opt, /*keepTrace=*/true);
      }
    } else {
      batchRes = verify::checkTrace(*r.trace);
      o = &batchRes;
      out.trace = r.trace;
    }
  }
  out.oracleViolation = !o->clean;
  if (!o->clean) {
    out.falsePositive = true;
    out.detail = o->violations.empty() ? "?" : o->violations[0].message;
  } else if (r.detections > 0) {
    // A clean-run checker detection is covered by fuzz_test/tier-1; the
    // campaign only tracks oracle agreement, but surface it anyway.
    out.detail = "checker detection on a fault-free run";
  }
  return out;
}

CaseOutcome runFaulted(int param, const CampaignOptions& opt,
                       std::uint64_t seedBase, bool keepTrace = false) {
  SystemConfig cfg = makeFuzzConfig(param);
  verify::StreamingOracleOptions so;
  so.maxResidentEvents = opt.maxResidentEvents;
  verify::StreamingOracle oracle(so);
  const bool streaming = armOracle(cfg, opt, oracle, keepTrace);
  Rng rng(seedBase ^ (0x9E3779B97F4A7C15ull * (param + 1)));

  std::vector<FaultType> applicable;
  for (FaultType t : allFaultTypes()) {
    if (faultApplicable(t, cfg.model, cfg.protocol) &&
        faultCoveredBy(t, cfg.coherenceChecker)) {
      applicable.push_back(t);
    }
  }
  const FaultType fault = applicable[rng.below(applicable.size())];

  System sys(cfg);
  FaultInjector inj(sys, seedBase + param);
  CaseOutcome out;
  out.ran = true;
  out.fault = fault;

  auto done = [&] { return sys.allCoresDone(); };
  {
    obs::ScopedSpan span("run");
    sys.runUntil([&] { return sys.sim().now() >= 3'000 || done(); });
    const std::uint64_t flushesBefore = totalFlushes(sys);
    auto detected = [&] {
      return sys.sink().any() || totalFlushes(sys) > flushesBefore;
    };
    for (int round = 0; round < 40 && !detected() && !done(); ++round) {
      if (inj.inject(fault)) ++out.injections;
      const Cycle until = sys.sim().now() + 20'000;
      sys.runUntil(
          [&] { return detected() || done() || sys.sim().now() >= until; });
    }
    // Let the run settle so in-flight effects of the fault reach the
    // trace.
    const Cycle settle = sys.sim().now() + 30'000;
    sys.runUntil([&] { return done() || sys.sim().now() >= settle; });

    // Final sweep: a corruption living in a still-open epoch is only
    // checked once that epoch's inform reaches the MET, so flush before
    // judging.
    sys.finishTraceCapture();
    sys.drainCheckers();
    out.checkersDetected = detected();
  }

  RunResult r = sys.collectResult(done(), sys.sim().now());
  out.completed = r.completed;
  verify::OracleResult batchRes;
  const verify::OracleResult* o = nullptr;
  {
    obs::ScopedSpan span("oracle");
    if (streaming) {
      if (!streamingVerdictUsable(oracle, &o)) {
        return runFaulted(param, opt, seedBase, /*keepTrace=*/true);
      }
    } else {
      batchRes = verify::checkTrace(*r.trace);
      o = &batchRes;
      out.trace = r.trace;
    }
  }
  out.oracleViolation = !o->clean;
  if (!o->clean) {
    out.detail = o->violations.empty() ? "?" : o->violations[0].message;
    out.escape = !out.checkersDetected;
  }
  return out;
}

void dumpEscape(const CampaignOptions& opt, int param, const char* kind,
                const CaseOutcome& out) {
  std::error_code ec;
  std::filesystem::create_directories(opt.escapeDir, ec);
  const std::string base =
      opt.escapeDir + "/" + kind + "_" + std::to_string(param);
  std::string err;
  if (out.trace != nullptr &&
      !verify::writeTraceFile(base + ".trace", *out.trace, &err)) {
    obs::logError("campaign", "cannot write escape trace",
                  Json::object()
                      .set("file", Json::str(base + ".trace"))
                      .set("error", Json::str(err)));
  }
  Json j = Json::object();
  j.set("kind", Json::str(kind));
  j.set("param", Json::num(std::int64_t{param}));
  j.set("fault", Json::str(faultTypeName(out.fault)));
  j.set("injections", Json::num(std::int64_t{out.injections}));
  j.set("checkersDetected", Json::boolean(out.checkersDetected));
  j.set("violation", Json::str(out.detail));
  j.set("trace", Json::str(base + ".trace"));
  j.set("repro",
        Json::str("dvmc_oracle explain " + base + ".trace  # and: fuzz_repro " +
                  std::to_string(param)));
  std::FILE* f = std::fopen((base + ".json").c_str(), "w");
  if (f != nullptr) {
    const std::string s = j.dump(2);
    std::fwrite(s.data(), 1, s.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions opt;
  CliParser cli("dvmc_campaign",
                "differential fuzz/fault campaign: runtime checkers "
                "cross-checked against the offline consistency oracle");
  bool cleanOnly = false;
  bool faultedOnly = false;
  cli.option("--configs", &opt.configs, "N",
             "number of fuzz configurations to run (default 200)");
  cli.option("--param-base", &opt.paramBase, "P",
             "first fuzz parameter index (default 0)");
  cli.option("--seed-base", &opt.seedBase, "S",
             "base seed for fault-type draws and injection timing");
  cli.flag("--clean-only", &cleanOnly, "run only the fault-free cases");
  cli.flag("--faulted", &faultedOnly, "run only the fault-injected cases");
  cli.option("--escape-dir", &opt.escapeDir, "DIR",
             "where escape/false-positive bundles are written "
             "(default campaign-escapes)");
  cli.path("--sample-trace", &opt.sampleTrace, "FILE",
           "also write the first case's capture as a dvmc-trace file");
  cli.flag("--batch-oracle", &opt.batchOracle,
           "judge every case with the whole-trace batch oracle instead of "
           "the streaming sink");
  cli.count("--max-resident-events", &opt.maxResidentEvents, "N",
            "streaming: ceiling on live oracle records; a breach reruns "
            "the case under the batch oracle (default: unbounded)");
  addRunnerFlags(cli);
  obs::addObsFlags(cli);
  cli.noPositionals();
  argc = cli.parse(argc, argv);
  (void)argc;
  if (cleanOnly && faultedOnly) {
    std::fprintf(stderr,
                 "dvmc_campaign: --clean-only and --faulted conflict\n");
    return 2;
  }
  if (cleanOnly) opt.faulted = false;
  if (faultedOnly) opt.clean = false;
  if (opt.configs <= 0) {
    std::fprintf(stderr, "dvmc_campaign: --configs must be positive\n");
    return 2;
  }

  const std::size_t n = static_cast<std::size_t>(opt.configs);
  std::vector<CaseOutcome> cleanOut(opt.clean ? n : 0);
  std::vector<CaseOutcome> faultOut(opt.faulted ? n : 0);
  std::atomic<std::size_t> doneCount{0};
  std::atomic<std::size_t> escapesSoFar{0};
  std::atomic<std::size_t> falsePositivesSoFar{0};

  // Live health surface: currently in-flight params (the heartbeat — a
  // shard stuck on one param shows up as a stale startedUnixMs), counts,
  // and an ETA, published atomically whenever --status-file is armed.
  obs::StatusWriter* status = obs::activeStatusWriter();
  std::mutex inFlightMu;
  std::map<int, std::uint64_t> inFlight;  // param -> unix ms started
  const auto nowUnixMs = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  };
  const auto nowSteadyMs = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  const std::uint64_t startedMs = nowSteadyMs();
  const auto publishStatus = [&](const char* state, bool force) {
    if (status == nullptr) return;
    const std::size_t d = doneCount.load();
    Json heartbeats = Json::array();
    {
      std::lock_guard<std::mutex> lock(inFlightMu);
      for (const auto& [param, since] : inFlight) {
        heartbeats.push(Json::object()
                            .set("param", Json::num(std::int64_t{param}))
                            .set("startedUnixMs", Json::num(since)));
      }
    }
    const std::uint64_t elapsed = nowSteadyMs() - startedMs;
    Json body = Json::object();
    body.set("phase", Json::str("campaign"));
    body.set("state", Json::str(state));
    body.set("total", Json::num(std::uint64_t{n}));
    body.set("done", Json::num(std::uint64_t{d}));
    body.set("escapes", Json::num(std::uint64_t{escapesSoFar.load()}));
    body.set("falsePositives",
             Json::num(std::uint64_t{falsePositivesSoFar.load()}));
    body.set("running", std::move(heartbeats));
    body.set("elapsedMs", Json::num(elapsed));
    body.set("etaMs", Json::num(d > 0 ? elapsed * (n - d) / d : 0));
    status->update(body, force);
  };
  publishStatus("running", /*force=*/true);

  SystemConfig jobsProbe;  // resolveJobs needs a config; use the default
  const unsigned workers = static_cast<unsigned>(resolveJobs(jobsProbe));
  parallelFor(n, workers, [&](std::size_t s) {
    obs::ScopedSpan span("case");
    const int param = opt.paramBase + static_cast<int>(s);
    {
      std::lock_guard<std::mutex> lock(inFlightMu);
      inFlight[param] = nowUnixMs();
    }
    if (opt.clean) {
      cleanOut[s] = runClean(param, opt);
      if (cleanOut[s].falsePositive) ++falsePositivesSoFar;
    }
    if (opt.faulted) {
      faultOut[s] = runFaulted(param, opt, opt.seedBase);
      if (faultOut[s].escape) ++escapesSoFar;
    }
    {
      std::lock_guard<std::mutex> lock(inFlightMu);
      inFlight.erase(param);
    }
    const std::size_t d = ++doneCount;
    if (d % 25 == 0 || d == n) {
      obs::logInfo("campaign", "progress",
                   Json::object()
                       .set("done", Json::num(std::uint64_t{d}))
                       .set("total", Json::num(std::uint64_t{n})));
    }
    publishStatus("running", /*force=*/false);
  });

  std::size_t falsePositives = 0, escapes = 0, detections = 0, masked = 0,
              agreements = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const int param = opt.paramBase + static_cast<int>(s);
    if (opt.clean && cleanOut[s].falsePositive) {
      ++falsePositives;
      std::printf("FALSE-POSITIVE param=%d: %s\n", param,
                  cleanOut[s].detail.c_str());
      dumpEscape(opt, param, "false_positive", cleanOut[s]);
    }
    if (!opt.faulted) continue;
    const CaseOutcome& f = faultOut[s];
    if (f.escape) {
      ++escapes;
      std::printf("ESCAPE param=%d fault=%s injections=%d: %s\n", param,
                  faultTypeName(f.fault), f.injections, f.detail.c_str());
      dumpEscape(opt, param, "escape", f);
    } else if (f.checkersDetected) {
      ++detections;
      if (f.oracleViolation) ++agreements;
    } else {
      ++masked;
    }
  }

  if (!opt.sampleTrace.empty()) {
    // Streaming cases never held their trace; regenerate the first case
    // (deterministic by param) with the capture resident.
    std::shared_ptr<const verify::CapturedTrace> sample =
        opt.clean && !cleanOut.empty() ? cleanOut[0].trace
        : !faultOut.empty()            ? faultOut[0].trace
                                       : nullptr;
    if (sample == nullptr) {
      sample = opt.clean
                   ? runClean(opt.paramBase, opt, /*keepTrace=*/true).trace
                   : runFaulted(opt.paramBase, opt, opt.seedBase,
                                /*keepTrace=*/true)
                         .trace;
    }
    std::string err;
    if (sample != nullptr &&
        !verify::writeTraceFile(opt.sampleTrace, *sample, &err)) {
      obs::logError("campaign", "cannot write sample trace",
                    Json::object().set("error", Json::str(err)));
    }
  }

  std::printf(
      "campaign: %d config(s)%s%s | detections=%zu (oracle agreed on %zu) "
      "masked=%zu false-positives=%zu escapes=%zu\n",
      opt.configs, opt.clean ? " +clean" : "", opt.faulted ? " +faulted" : "",
      detections, agreements, masked, falsePositives, escapes);
  const bool failed = falsePositives + escapes > 0;
  publishStatus(failed ? "failed" : "done", /*force=*/true);
  const int obsRc = obs::finalizeObs();
  if (failed) {
    std::printf("campaign: FAILED — see %s/\n", opt.escapeDir.c_str());
    return 1;
  }
  std::printf("campaign: checkers and oracle agree on every case\n");
  return obsRc;
}
