// Reproduces a fuzz_test case by parameter index and dumps state on hang.
#include <cstdio>
#include <cstdlib>
#include "common/rng.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
using namespace dvmc;
int main(int argc, char** argv) {
  const int param = argc > 1 ? std::atoi(argv[1]) : 7;
  Rng rng(0xF022 + param);
  WorkloadParams p;
  p.kind = WorkloadKind::kMicroMix;
  p.privateBlocks = 16 + rng.below(512);
  p.sharedBlocks = 8 + rng.below(256);
  p.hotBlocks = 1 + rng.below(16);
  p.hotFraction = rng.uniform();
  p.numLocks = 1 + rng.below(32);
  p.txOps = 4 + rng.below(64);
  p.sharedFraction = rng.uniform();
  p.writeFraction = rng.uniform() * 0.6;
  p.lockFraction = rng.uniform();
  p.csOps = 1 + rng.below(12);
  p.computeMin = 1;
  p.computeMax = static_cast<std::uint16_t>(1 + rng.below(12));
  p.frac32Bit = rng.uniform() * 0.4;
  p.barrierEveryTx = rng.chance(0.25) ? 1 + rng.below(3) : 0;
  SystemConfig cfg = SystemConfig::withDvmc(
      rng.chance(0.5) ? Protocol::kDirectory : Protocol::kSnooping,
      static_cast<ConsistencyModel>(rng.below(4)));
  cfg.numNodes = 2 + rng.below(7);
  cfg.workloadOverride = p;
  cfg.targetTransactions = p.barrierEveryTx != 0 ? 2 + rng.below(3)
                                                 : 40 + rng.below(80);
  cfg.l1 = {std::size_t(1) << rng.below(6), 1 + rng.below(3)};
  cfg.l2 = {std::size_t(4) << rng.below(6), 2 + rng.below(6)};
  cfg.cpu.robSize = 8 << rng.below(4);
  cfg.cpu.wbCapacity = 4 << rng.below(5);
  cfg.cpu.wbConcurrency = 1 + rng.below(7);
  cfg.cpu.storePrefetch = rng.chance(0.8);
  cfg.cpu.wbCoalescing = rng.chance(0.8);
  cfg.coherenceChecker =
      rng.chance(0.3) ? SystemConfig::CoherenceCheckerKind::kShadow
                      : SystemConfig::CoherenceCheckerKind::kEpoch;
  cfg.seed = 1000 + param;
  cfg.maxCycles = 3'000'000;  // shorter for diagnosis
  printf("param=%d nodes=%zu proto=%s model=%s l1={%zu,%zu} l2={%zu,%zu}\n"
         "rob=%zu wbCap=%zu wbConc=%zu pf=%d coal=%d checker=%s\n"
         "wl: priv=%zu shared=%zu hot=%zu locks=%zu tx=%zu lockFrac=%.2f "
         "barrier=%zu target=%llu\n",
         param, cfg.numNodes, protocolName(cfg.protocol),
         modelName(cfg.model), cfg.l1.sets, cfg.l1.ways, cfg.l2.sets,
         cfg.l2.ways, cfg.cpu.robSize, cfg.cpu.wbCapacity,
         cfg.cpu.wbConcurrency, (int)cfg.cpu.storePrefetch,
         (int)cfg.cpu.wbCoalescing,
         cfg.coherenceChecker == SystemConfig::CoherenceCheckerKind::kShadow
             ? "shadow" : "epoch",
         p.privateBlocks, p.sharedBlocks, p.hotBlocks, p.numLocks, p.txOps,
         p.lockFraction, p.barrierEveryTx,
         (unsigned long long)cfg.targetTransactions);
  System sys(cfg);
  RunResult r = sys.run();
  printf("completed=%d cycles=%llu txns=%llu det=%llu\n", r.completed,
         (unsigned long long)r.cycles, (unsigned long long)r.transactions,
         (unsigned long long)r.detections);
  if (!r.completed) {
    for (NodeId n = 0; n < sys.numNodes(); ++n) sys.core(n).debugDump();
  }
  return 0;
}
