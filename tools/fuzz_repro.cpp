// Reproduces a fuzz_test case by parameter index and dumps state on hang.
#include <cstdio>
#include <cstdlib>
#include "system/runner.hpp"
#include "system/system.hpp"
#include "workload/fuzz_config.hpp"
using namespace dvmc;
int main(int argc, char** argv) {
  CliParser cli("fuzz_repro",
                "reproduce one fuzz_test case by parameter index");
  cli.usageLine("fuzz_repro [param_index]");
  argc = cli.parse(argc, argv);
  const int param = argc > 1 ? std::atoi(argv[1]) : 7;
  SystemConfig cfg = makeFuzzConfig(param);
  cfg.maxCycles = 3'000'000;  // shorter for diagnosis
  const WorkloadParams& p = *cfg.workloadOverride;
  printf("param=%d nodes=%zu proto=%s model=%s l1={%zu,%zu} l2={%zu,%zu}\n"
         "rob=%zu wbCap=%zu wbConc=%zu pf=%d coal=%d checker=%s\n"
         "wl: priv=%zu shared=%zu hot=%zu locks=%zu tx=%zu lockFrac=%.2f "
         "barrier=%zu target=%llu\n",
         param, cfg.numNodes, protocolName(cfg.protocol),
         modelName(cfg.model), cfg.l1.sets, cfg.l1.ways, cfg.l2.sets,
         cfg.l2.ways, cfg.cpu.robSize, cfg.cpu.wbCapacity,
         cfg.cpu.wbConcurrency, (int)cfg.cpu.storePrefetch,
         (int)cfg.cpu.wbCoalescing,
         cfg.coherenceChecker == SystemConfig::CoherenceCheckerKind::kShadow
             ? "shadow" : "epoch",
         p.privateBlocks, p.sharedBlocks, p.hotBlocks, p.numLocks, p.txOps,
         p.lockFraction, p.barrierEveryTx,
         (unsigned long long)cfg.targetTransactions);
  System sys(cfg);
  RunResult r = sys.run();
  printf("completed=%d cycles=%llu txns=%llu det=%llu\n", r.completed,
         (unsigned long long)r.cycles, (unsigned long long)r.transactions,
         (unsigned long long)r.detections);
  if (!r.completed) {
    for (NodeId n = 0; n < sys.numNodes(); ++n) sys.core(n).debugDump();
  }
  return 0;
}
