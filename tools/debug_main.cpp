// Developer tool: run one {protocol, model, workload} configuration on a
// small DVMC-protected system and print completion/detection details plus
// core dumps on hangs. Block-level checker tracing via DVMC_TRACE_BLOCK /
// DVMC_TRACE_WORD environment variables.
//
//   ./dvmc_debug [dir|snoop] [sc|tso|pso|rmo] [workload]
#include <cstdio>

#include "obs/run_report.hpp"
#include "system/system.hpp"

using namespace dvmc;

int main(int argc, char** argv) {
  CliParser cli("dvmc_debug",
                "run one {protocol, model, workload} configuration and "
                "print completion/detection details");
  cli.usageLine("dvmc_debug [dir|snoop] [sc|tso|pso|rmo] [workload]");
  obs::addObsFlags(cli);
  argc = cli.parse(argc, argv);
  Protocol proto = (argc > 1 && std::string(argv[1]) == "snoop")
                       ? Protocol::kSnooping : Protocol::kDirectory;
  ConsistencyModel model = ConsistencyModel::kSC;
  if (argc > 2) {
    std::string m = argv[2];
    model = m == "tso" ? ConsistencyModel::kTSO
          : m == "pso" ? ConsistencyModel::kPSO
          : m == "rmo" ? ConsistencyModel::kRMO : ConsistencyModel::kSC;
  }
  WorkloadKind wl = argc > 3 ? workloadFromName(argv[3]) : WorkloadKind::kApache;
  SystemConfig cfg = SystemConfig::withDvmc(proto, model);
  cfg.numNodes = 4;
  cfg.workload = wl;
  cfg.targetTransactions = 60;
  cfg.maxCycles = 30'000'000;
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;
  System sys(cfg);
  RunResult r = sys.run();
  printf("completed=%d cycles=%llu txns=%llu detections=%llu\n",
         r.completed, (unsigned long long)r.cycles,
         (unsigned long long)r.transactions, (unsigned long long)r.detections);
  if (!r.completed) {
    for (NodeId n = 0; n < sys.numNodes(); ++n) sys.core(n).debugDump();
  }
  int i = 0;
  for (const auto& d : sys.sink().detections()) {
    printf("  [%d] %s @%llu node=%u addr=0x%llx : %s\n", i++,
           checkerKindName(d.kind), (unsigned long long)d.cycle, d.node,
           (unsigned long long)d.addr, d.what.c_str());
    if (i > 10) break;
  }
  return obs::finalizeObs();
}
