#include <cstdio>
#include "common/cli.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
using namespace dvmc;
int main(int argc, char** argv) {
  CliParser cli("matrix_check",
                "run the full {protocol, model, workload} matrix and "
                "report any incomplete or detecting configuration");
  cli.noPositionals();
  addRunnerFlags(cli);
  cli.parse(argc, argv);
  int bad = 0;
  for (int p = 0; p < 2; ++p) {
    for (auto m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                   ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
      for (auto wl : {WorkloadKind::kApache, WorkloadKind::kOltp,
                      WorkloadKind::kJbb, WorkloadKind::kSlash,
                      WorkloadKind::kBarnes}) {
        for (int seed = 1; seed <= 2; ++seed) {
          SystemConfig cfg = SystemConfig::withDvmc(
              p ? Protocol::kSnooping : Protocol::kDirectory, m);
          cfg.numNodes = 8;
          cfg.workload = wl;
          cfg.targetTransactions = wl == WorkloadKind::kBarnes ? 4 : 300;
          cfg.seed = seed;
          RunResult r = runOnce(cfg);
          if (!r.completed || r.detections) {
            printf("BAD %s %s %s seed=%d completed=%d det=%llu\n",
                   p ? "snoop" : "dir", modelName(m), workloadName(wl), seed,
                   r.completed, (unsigned long long)r.detections);
            ++bad;
          }
        }
      }
    }
  }
  printf(bad ? "MATRIX BAD=%d\n" : "MATRIX CLEAN\n", bad);
  return bad != 0;
}
