// Full-system statistics reporter: one call dumps a gem5-style text report
// of every component's counters — pipeline, caches, protocol controllers,
// interconnect, checkers, and BER — for a System that has finished (or
// paused) a run. Used by the quickstart's --stats flag and by tooling.
#pragma once

#include <ostream>

#include "system/system.hpp"

namespace dvmc {

struct StatsReportOptions {
  bool perNode = true;      // per-node breakdowns (vs aggregates only)
  bool includeZero = false; // print zero-valued counters too
};

/// Writes the report to `os`.
void printStatsReport(System& sys, std::ostream& os,
                      const StatsReportOptions& opts = {});

}  // namespace dvmc
