#include "system/system.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace dvmc {

namespace {

/// Directory-system per-node endpoint: dispatches torus messages to the
/// home controller, the cache controller, or the MET checker.
class DirNodeRouter final : public NetworkEndpoint {
 public:
  DirNodeRouter(DirectoryHome* home, DirectoryCacheController* cache,
                MemoryEpochChecker* met, Counter* ckptMsgs)
      : home_(home), cache_(cache), met_(met), ckpt_(ckptMsgs) {}

  void onMessage(const Message& msg) override {
    switch (msg.type) {
      case MsgType::kGetS:
      case MsgType::kGetM:
      case MsgType::kPutM:
      case MsgType::kUnblock:
        home_->onMessage(msg);
        return;
      case MsgType::kInformEpoch:
      case MsgType::kInformOpenEpoch:
      case MsgType::kInformClosedEpoch:
        if (met_ != nullptr) met_->onInform(msg);
        return;
      case MsgType::kCkptSync:
      case MsgType::kCkptLog:
        if (ckpt_ != nullptr) ckpt_->inc();
        return;
      default:
        cache_->onMessage(msg);
        return;
    }
  }

 private:
  DirectoryHome* home_;
  DirectoryCacheController* cache_;
  MemoryEpochChecker* met_;
  Counter* ckpt_;
};

/// Snooping address-network endpoint: every broadcast reaches both the
/// cache controller and the memory controller (in that fixed order, which
/// is deterministic and identical at every node).
class SnoopAddrRouter final : public NetworkEndpoint {
 public:
  SnoopAddrRouter(SnoopCacheController* cache, SnoopMemoryController* mem)
      : cache_(cache), mem_(mem) {}
  void onMessage(const Message& msg) override {
    cache_->onSnoop(msg);
    mem_->onSnoop(msg);
  }

 private:
  SnoopCacheController* cache_;
  SnoopMemoryController* mem_;
};

/// Snooping data-network endpoint.
class SnoopDataRouter final : public NetworkEndpoint {
 public:
  SnoopDataRouter(SnoopCacheController* cache, SnoopMemoryController* mem,
                  MemoryEpochChecker* met, Counter* ckptMsgs)
      : cache_(cache), mem_(mem), met_(met), ckpt_(ckptMsgs) {}
  void onMessage(const Message& msg) override {
    switch (msg.type) {
      case MsgType::kSnpWbData:
        mem_->onMessage(msg);
        return;
      case MsgType::kInformEpoch:
      case MsgType::kInformOpenEpoch:
      case MsgType::kInformClosedEpoch:
        if (met_ != nullptr) met_->onInform(msg);
        return;
      case MsgType::kCkptSync:
      case MsgType::kCkptLog:
        if (ckpt_ != nullptr) ckpt_->inc();
        return;
      default:
        cache_->onMessage(msg);
        return;
    }
  }

 private:
  SnoopCacheController* cache_;
  SnoopMemoryController* mem_;
  MemoryEpochChecker* met_;
  Counter* ckpt_;
};

}  // namespace

System::System(SystemConfig cfg) : cfg_(std::move(cfg)) {
  // Fold the deprecated captureTrace/traceCaptureLimit aliases into the
  // grouped options and validate the result once, up front.
  cfg_.trace = cfg_.effectiveTrace();
  if (const char* why = cfg_.trace.validate(); why != nullptr) {
    DVMC_FATAL(why);
  }
  map_.numNodes = cfg_.numNodes;
  torus_ = std::make_unique<TorusNetwork>(sim_, cfg_.numNodes, cfg_.torus);
  if (cfg_.protocol == Protocol::kSnooping) {
    tree_ = std::make_unique<BroadcastTree>(sim_, cfg_.numNodes, cfg_.tree);
  }
  // Event tracing: hand the run's tracer to the simulator kernel so every
  // component reaches it through sim_.tracer() (one null check per site
  // when tracing is off), and mirror checker detections into the trace
  // through the sink's observer API.
  sim_.setTracer(cfg_.tracer);
  if (cfg_.forensics != nullptr && sim_.tracer() == nullptr) {
    // Forensics needs the last-K event window even when no --trace tracer
    // was configured: arm a private one sized to the recorder's window.
    ownedTracer_ =
        std::make_unique<EventTracer>(cfg_.forensics->config().windowEvents);
    sim_.setTracer(ownedTracer_.get());
  }
  if (sim_.tracer() != nullptr) {
    sink_.addObserver([this](const Detection& d) {
      if (auto* t = sim_.tracer()) {
        t->instant(d.cycle, TraceKind::kDetection, checkerKindName(d.kind),
                   d.node, d.addr, 0);
      }
    });
  }
  if (cfg_.forensics != nullptr) {
    // Registered after the trace mirror so the detection instant itself is
    // part of the captured window. Building a bundle only reads component
    // state (no report() re-entry); skip the work once the recorder is
    // full — a fault burst raises many downstream detections and only the
    // first few bundles carry diagnostic value.
    sink_.addObserver([this](const Detection& d) {
      if (cfg_.forensics->bundleCount() <
          cfg_.forensics->config().maxBundles) {
        cfg_.forensics->addBundle(buildForensicsBundle(d));
      } else {
        cfg_.forensics->addBundle(Json::object());  // counted, then dropped
      }
    });
  }

  nodes_.resize(cfg_.numNodes);
  for (NodeId n = 0; n < cfg_.numNodes; ++n) buildNode(n);

  if (cfg_.trace.capture) {
    // BER rollback re-executes in-flight work under fresh sequence
    // numbers, which would duplicate already-recorded history; there is no
    // sound way to splice a rollback into a linear commit trace.
    DVMC_ASSERT(!cfg_.autoRecover,
                "trace.capture is incompatible with autoRecover");
    traceRecorder_ = std::make_unique<verify::TraceRecorder>(
        static_cast<std::uint32_t>(cfg_.numNodes), cfg_.model,
        static_cast<std::uint8_t>(cfg_.protocol), cfg_.seed,
        cfg_.trace.captureLimit, cfg_.trace.sink, cfg_.trace.chunkRecords,
        cfg_.trace.keepInMemory);
    for (Node& n : nodes_) n.core->setTraceRecorder(traceRecorder_.get());
  }

  if (cfg_.berEnabled) {
    ber_ = std::make_unique<SafetyNet>(
        sim_, cfg_.ber, [this] { return captureSnapshot(); },
        [this](const SafetyNet::Snapshot& target,
               const std::vector<const SafetyNet::Snapshot*>& newer) {
          restoreSnapshot(target, newer);
        },
        [this] { sendCheckpointTraffic(); });
  }
}

System::~System() = default;

std::unique_ptr<ThreadProgram> System::makeProgram(NodeId n) const {
  if (cfg_.programFactory) return cfg_.programFactory(n);
  WorkloadParams p = cfg_.workloadOverride ? *cfg_.workloadOverride
                                           : workloadPreset(cfg_.workload);
  if (p.barrierEveryTx != 0) {
    // Barrier workloads (barnes): every thread runs the same number of
    // phases to completion; targetTransactions is per-thread phases.
    p.maxTransactions = cfg_.targetTransactions;
  }
  return std::make_unique<SyntheticWorkload>(p, cfg_.model, n, cfg_.numNodes,
                                             cfg_.seed);
}

void System::buildNode(NodeId n) {
  Node& node = nodes_[n];
  const Cycle skew = n % 4;  // below the minimum cross-node latency

  if (cfg_.protocol == Protocol::kDirectory) {
    node.home = std::make_unique<DirectoryHome>(sim_, *torus_, n, map_,
                                                cfg_.timings, &sink_);
    auto ctrl = std::make_unique<DirectoryCacheController>(
        sim_, *torus_, n, map_, cfg_.l2, cfg_.timings, &sink_,
        std::make_unique<PhysicalLogicalClock>(sim_, cfg_.dirClockDivisor,
                                               skew));
    node.dirCache = ctrl.get();
    node.l2 = std::move(ctrl);
  } else {
    node.snoopMem = std::make_unique<SnoopMemoryController>(
        sim_, *torus_, n, map_, cfg_.timings, &sink_);
    auto ctrl = std::make_unique<SnoopCacheController>(
        sim_, *tree_, *torus_, n, map_, cfg_.l2, cfg_.timings, &sink_);
    node.snpCache = ctrl.get();
    node.l2 = std::move(ctrl);
  }

  node.hierarchy = std::make_unique<CacheHierarchy>(
      sim_, *node.l2, cfg_.l1, cfg_.timings, &sink_, n);

  if (cfg_.dvmc.cacheCoherence &&
      cfg_.coherenceChecker == SystemConfig::CoherenceCheckerKind::kEpoch) {
    node.cet = std::make_unique<CacheEpochChecker>(
        sim_, n, cfg_.dvmc, &sink_, [this, n](Message m) {
          m.src = n;
          m.dest = map_.homeOf(m.addr);
          torus_->send(std::move(m));
        });
    node.l2->setEpochObserver(node.cet.get());

    if (cfg_.protocol == Protocol::kDirectory) {
      node.metClock = std::make_unique<PhysicalLogicalClock>(
          sim_, cfg_.dirClockDivisor, skew);
      node.met = std::make_unique<MemoryEpochChecker>(sim_, n, cfg_.dvmc,
                                                      &sink_, *node.metClock);
      node.home->setHomeObserver(node.met.get());
    } else {
      node.met = std::make_unique<MemoryEpochChecker>(
          sim_, n, cfg_.dvmc, &sink_, node.snoopMem->clock());
      node.snoopMem->setHomeObserver(node.met.get());
    }
  } else if (cfg_.dvmc.cacheCoherence) {
    // Cantin-style shadow-replay coherence checker: no inform traffic.
    node.shadowCache = std::make_unique<ShadowCacheChecker>(sim_, n, &sink_);
    node.l2->setEpochObserver(node.shadowCache.get());
    node.shadowHome = std::make_unique<ShadowHomeChecker>(sim_, n, &sink_);
    if (cfg_.protocol == Protocol::kDirectory) {
      node.home->setHomeObserver(node.shadowHome.get());
    } else {
      node.snoopMem->setHomeObserver(node.shadowHome.get());
    }
  }

  if (cfg_.dvmc.uniprocOrdering) {
    node.vc = std::make_unique<VerificationCache>(
        n, cfg_.dvmc.vcWordCapacity, &sink_);
  }
  if (cfg_.dvmc.allowableReordering) {
    node.ar = std::make_unique<ReorderChecker>(sim_, n, &sink_);
  }

  // Architectural memory shadow for SafetyNet (plus the audit hook). With
  // BER on, the first store to a block per checkpoint interval logs the
  // block's prior state into the live undo segment BEFORE mutating it —
  // SafetyNet-style incremental old-value logging.
  node.l2->setStorePerformHook(
      [this, n](Addr addr, std::size_t size, std::uint64_t value) {
        const Addr blk = blockAddr(addr);
        auto it = shadow_.find(blk);
        const bool absent = (it == shadow_.end());
        if (cfg_.berEnabled && dirtySinceCkpt_.try_emplace(blk, true).second) {
          SafetyNet::UndoRecord rec;
          rec.blk = blk;
          rec.wasAbsent = absent;
          if (!absent) rec.oldValue = it->second;
          liveUndo_.push_back(std::move(rec));
        }
        if (absent) {
          it = shadow_.emplace(blk, MemoryStorage::initialPattern(blk)).first;
        }
        it->second.write(blockOffset(addr), size, value);
        ++storesSinceCkpt_;
        if (auditHook_) auditHook_(n, addr, size, value);
      });

  node.core = std::make_unique<Core>(sim_, n, cfg_.model, cfg_.cpu,
                                     *node.hierarchy, makeProgram(n), &sink_,
                                     node.vc.get(), node.ar.get(), cfg_.dvmc);
  node.hierarchy->setCpuNotifier(node.core.get());

  if (cfg_.protocol == Protocol::kDirectory) {
    node.dataRouter = std::make_unique<DirNodeRouter>(
        node.home.get(), node.dirCache, node.met.get(),
        &cCkptMsgsReceived_);
    torus_->attach(n, node.dataRouter.get());
  } else {
    node.dataRouter = std::make_unique<SnoopDataRouter>(
        node.snpCache, node.snoopMem.get(), node.met.get(),
        &cCkptMsgsReceived_);
    torus_->attach(n, node.dataRouter.get());
    node.addrRouter = std::make_unique<SnoopAddrRouter>(node.snpCache,
                                                        node.snoopMem.get());
    tree_->attach(n, node.addrRouter.get());
  }
}

std::uint64_t System::totalTransactions() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) total += n.core->transactions();
  return total;
}

bool System::allCoresDone() const {
  for (const Node& n : nodes_) {
    if (!n.core->done()) return false;
  }
  return true;
}

RunResult System::run() {
  RunResult r = runUntil([] { return false; });
  // run() is the whole-run entry point: the capture is complete, so close
  // the chunk stream (flushing the unsettled tail to any attached sink).
  // Callers driving runUntil/collectResult by hand own this call.
  finishTraceCapture();
  return r;
}

void System::finishTraceCapture() {
  if (traceRecorder_) traceRecorder_->finish();
}

RunResult System::runUntil(const std::function<bool()>& extraPred) {
  if (!started_) {
    started_ = true;
    for (Node& n : nodes_) n.core->start();
    if (ber_) ber_->start();
    if (cfg_.autoRecover && ber_) armAutoRecovery();
    if (cfg_.sampleEvery > 0) {
      series_ = std::make_shared<TimeSeries>(defaultSampleColumns(),
                                             cfg_.sampleCapacity);
      buildSamplePlan();
      scheduleSampleTick();
    }
  }
  const WorkloadParams p = cfg_.workloadOverride
                               ? *cfg_.workloadOverride
                               : workloadPreset(cfg_.workload);
  const bool barrierWorkload = p.barrierEveryTx != 0;
  const Cycle startCycle = sim_.now();

  auto pred = [this, barrierWorkload, &extraPred] {
    if (extraPred()) return true;
    if (allCoresDone()) return true;  // finite programs ran to completion
    if (barrierWorkload) return false;
    return totalTransactions() >= cfg_.targetTransactions;
  };
  const bool reached = sim_.runUntil(pred, startCycle + cfg_.maxCycles);
  return collectResult(reached, sim_.now() - startCycle);
}

void System::drainCheckers() {
  for (Node& n : nodes_) {
    if (n.cet) n.cet->flush(n.l2->clock().now());
  }
  // Let the flushed informs reach the homes before draining the MET
  // processing queues.
  sim_.runUntil([] { return false; }, sim_.now() + 5'000);
  for (Node& n : nodes_) {
    if (n.met) n.met->drain();
  }
}

RunResult System::collectResult(bool completed, Cycle cycles) const {
  RunResult r;
  r.completed = completed;
  r.cycles = cycles;
  r.transactions = totalTransactions();
  r.peakLinkBytesPerCycle = torus_->peakLinkUtilization();
  r.totalNetBytes = torus_->totalBytes();
  r.coherenceBytes = torus_->classBytes(TrafficClass::kCoherence);
  r.informBytes = torus_->classBytes(TrafficClass::kInform);
  r.ckptBytes = torus_->classBytes(TrafficClass::kCkpt);
  r.detections = sink_.count();
  r.recoveries = ber_ ? ber_->recoveries() : 0;
  r.unrecoverable = unrecoverable_;
  for (const Node& n : nodes_) {
    r.retiredInstructions += n.core->retired();
    r.regularL1Misses += n.hierarchy->regularLoadL1Misses();
    r.replayL1Misses += n.hierarchy->replayLoadL1Misses();
    r.squashes += n.core->stats().get("cpu.squashes");
    r.uoFlushes += n.core->stats().get("cpu.uoFlushes");
    const auto* wl = dynamic_cast<const SyntheticWorkload*>(
        &const_cast<Core&>(*n.core).program());
    if (wl != nullptr) {
      r.memOps += wl->memOpsEmitted();
      r.memOps32 += wl->memOps32Emitted();
    }
  }
  r.metrics = metricsSnapshot();
  r.series = series_;
  if (traceRecorder_) r.trace = traceRecorder_->trace();
  return r;
}

void System::buildSamplePlan() {
  // Every metric is registered at component construction (the MetricSet
  // contract), so resolving names once at run start sees the full
  // registry; slot addresses stay stable afterwards.
  samplePlan_.clear();
  samplePlan_.reserve(series_->columns().size());
  for (const std::string& c : series_->columns()) {
    SampleColumn col;
    if (c == "net.totalBytes") {
      col.net = SampleColumn::Net::kTotal;
    } else if (c == "net.coherenceBytes") {
      col.net = SampleColumn::Net::kCoherence;
    } else if (c == "net.informBytes") {
      col.net = SampleColumn::Net::kInform;
    } else if (c == "net.ckptBytes") {
      col.net = SampleColumn::Net::kCkpt;
    } else {
      auto add = [&col, &c](const MetricSet& s) {
        if (const std::uint64_t* p = s.findScalar(c)) col.slots.push_back(p);
      };
      for (const Node& n : nodes_) {
        add(n.core->stats());
        add(n.hierarchy->stats());
        if (n.dirCache) add(n.dirCache->stats());
        if (n.snpCache) add(n.snpCache->stats());
        if (n.home) add(n.home->stats());
        if (n.snoopMem) add(n.snoopMem->stats());
        if (n.cet) add(n.cet->stats());
        if (n.met) add(n.met->stats());
        if (n.shadowCache) add(n.shadowCache->stats());
        if (n.shadowHome) add(n.shadowHome->stats());
        if (n.vc) add(n.vc->stats());
        if (n.ar) add(n.ar->stats());
      }
      if (ber_) add(ber_->stats());
      add(ckptMsgStats_);
    }
    samplePlan_.push_back(std::move(col));
  }
}

void System::scheduleSampleTick() {
  sim_.schedule(cfg_.sampleEvery, [this] {
    std::vector<std::uint64_t> row;
    row.reserve(samplePlan_.size());
    for (const SampleColumn& col : samplePlan_) {
      std::uint64_t v = 0;
      switch (col.net) {
        case SampleColumn::Net::kTotal:
          v = torus_->totalBytes();
          break;
        case SampleColumn::Net::kCoherence:
          v = torus_->classBytes(TrafficClass::kCoherence);
          break;
        case SampleColumn::Net::kInform:
          v = torus_->classBytes(TrafficClass::kInform);
          break;
        case SampleColumn::Net::kCkpt:
          v = torus_->classBytes(TrafficClass::kCkpt);
          break;
        case SampleColumn::Net::kNone:
          for (const std::uint64_t* p : col.slots) v += *p;
          break;
      }
      row.push_back(v);
    }
    series_->sample(sim_.now(), row);
    scheduleSampleTick();
  });
}

Json System::buildForensicsBundle(const Detection& d) {
  Json b = Json::object();
  b.set("seed", Json::num(cfg_.seed));

  Json det = Json::object();
  det.set("checker", Json::str(checkerKindName(d.kind)))
      .set("cycle", Json::num(d.cycle))
      .set("node", Json::num(std::uint64_t{d.node}))
      .set("addr", Json::num(d.addr))
      .set("what", Json::str(d.what));
  b.set("detection", std::move(det));

  // Last-K event window leading up to the detection, plus the violating
  // address's slice of it (its recent operation history).
  if (const EventTracer* t = sim_.tracer()) {
    const Addr blk = blockAddr(d.addr);
    Json window = Json::array();
    Json history = Json::array();
    for (std::size_t i = 0; i < t->size(); ++i) {
      const TraceEvent& e = t->at(i);
      Json ev = Json::object();
      ev.set("ts", Json::num(e.ts));
      if (e.dur != 0) ev.set("dur", Json::num(e.dur));
      ev.set("kind", Json::str(traceKindName(e.kind)))
          .set("name", Json::str(e.name))
          .set("node", Json::num(std::uint64_t{e.node}))
          .set("addr", Json::num(e.addr));
      if (e.arg != 0) ev.set("arg", Json::num(e.arg));
      if (e.addr != 0 && blockAddr(e.addr) == blk) history.push(ev);
      window.push(std::move(ev));
    }
    Json tw = Json::object();
    tw.set("droppedEvents", Json::num(t->dropped()))
        .set("events", std::move(window));
    b.set("traceWindow", std::move(tw));
    b.set("addrHistory", std::move(history));
  }

  // The firing node's checker state; the MET/home-side row lives at the
  // violating address's home node, which need not be the detecting one.
  Json checkers = Json::object();
  if (d.node < nodes_.size()) {
    const Node& fn = nodes_[d.node];
    if (fn.vc) {
      Json j = Json::object();
      fn.vc->dumpForensics(j, d.addr);
      checkers.set("verificationCache", std::move(j));
    }
    if (fn.ar) {
      Json j = Json::object();
      fn.ar->dumpForensics(j);
      checkers.set("reorderChecker", std::move(j));
    }
    if (fn.cet) {
      Json j = Json::object();
      fn.cet->dumpForensics(j, d.addr);
      checkers.set("cacheEpochTable", std::move(j));
    }
    if (fn.shadowCache) {
      Json j = Json::object();
      fn.shadowCache->dumpForensics(j, d.addr);
      checkers.set("shadowCache", std::move(j));
    }
  }
  const NodeId home = map_.homeOf(d.addr);
  if (home < nodes_.size()) {
    const Node& hn = nodes_[home];
    if (hn.met) {
      Json j = Json::object();
      j.set("homeNode", Json::num(std::uint64_t{home}));
      hn.met->dumpForensics(j, d.addr);
      checkers.set("memoryEpochTable", std::move(j));
    }
    if (hn.shadowHome) {
      Json j = Json::object();
      j.set("homeNode", Json::num(std::uint64_t{home}));
      hn.shadowHome->dumpForensics(j, d.addr);
      checkers.set("shadowHome", std::move(j));
    }
  }
  b.set("checkers", std::move(checkers));

  // The violating block's cache-line state at every node (L1 and L2):
  // which caches hold it, in what MOSI state, with what data hash.
  Json caches = Json::array();
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    Node& nd = nodes_[n];
    Json entry = Json::object();
    entry.set("node", Json::num(std::uint64_t{n}));
    Json l1 = Json::object();
    nd.hierarchy->l1().dumpForensics(l1, d.addr);
    entry.set("l1", std::move(l1));
    Json l2 = Json::object();
    if (nd.dirCache != nullptr) {
      nd.dirCache->array().dumpForensics(l2, d.addr);
    } else if (nd.snpCache != nullptr) {
      nd.snpCache->array().dumpForensics(l2, d.addr);
    }
    entry.set("l2", std::move(l2));
    caches.push(std::move(entry));
  }
  b.set("cacheLines", std::move(caches));

  // The recovery options available at detection time.
  if (ber_) {
    Json sn = Json::object();
    sn.set("checkpoints",
           Json::num(static_cast<std::uint64_t>(ber_->checkpointCount())))
        .set("oldestCheckpoint", Json::num(ber_->oldestCheckpoint()))
        .set("newestCheckpoint", Json::num(ber_->newestCheckpoint()))
        .set("recoveryWindow", Json::num(ber_->recoveryWindow()));
    b.set("safetyNet", std::move(sn));
  }
  return b;
}

MetricSnapshot System::metricsSnapshot(bool perNode) const {
  MetricSnapshot snap;
  auto collect = [&snap](const Node& n, const std::string& prefix) {
    n.core->stats().snapshotInto(snap, prefix);
    n.hierarchy->stats().snapshotInto(snap, prefix);
    if (n.dirCache) n.dirCache->stats().snapshotInto(snap, prefix);
    if (n.snpCache) n.snpCache->stats().snapshotInto(snap, prefix);
    if (n.home) n.home->stats().snapshotInto(snap, prefix);
    if (n.snoopMem) n.snoopMem->stats().snapshotInto(snap, prefix);
    if (n.cet) n.cet->stats().snapshotInto(snap, prefix);
    if (n.met) n.met->stats().snapshotInto(snap, prefix);
    if (n.shadowCache) n.shadowCache->stats().snapshotInto(snap, prefix);
    if (n.shadowHome) n.shadowHome->stats().snapshotInto(snap, prefix);
    if (n.vc) n.vc->stats().snapshotInto(snap, prefix);
    if (n.ar) n.ar->stats().snapshotInto(snap, prefix);
  };
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    collect(nodes_[i], {});
    if (perNode) collect(nodes_[i], "node" + std::to_string(i) + "/");
  }
  if (ber_) ber_->stats().snapshotInto(snap);
  ckptMsgStats_.snapshotInto(snap);
  snap.counters["net.totalBytes"] += torus_->totalBytes();
  snap.counters["net.coherenceBytes"] +=
      torus_->classBytes(TrafficClass::kCoherence);
  snap.counters["net.informBytes"] += torus_->classBytes(TrafficClass::kInform);
  snap.counters["net.ckptBytes"] += torus_->classBytes(TrafficClass::kCkpt);
  return snap;
}

void System::resetNetStats() {
  torus_->resetStats();
  if (tree_) tree_->resetStats();
}

SafetyNet::Snapshot System::captureSnapshot() {
  // Seal the live undo segment into the checkpoint: O(blocks dirtied since
  // the previous capture), not O(memory image). The new interval starts
  // with an empty segment and dirty set.
  SafetyNet::Snapshot s;
  s.cycle = sim_.now();
  s.undo = std::move(liveUndo_);
  liveUndo_.clear();
  dirtySinceCkpt_.clear();
  s.cores.reserve(nodes_.size());
  for (Node& n : nodes_) s.cores.push_back(n.core->snapshotState());
  return s;
}

void System::restoreSnapshot(
    const SafetyNet::Snapshot& target,
    const std::vector<const SafetyNet::Snapshot*>& newerNewestFirst) {
  // 1. Squash every in-flight message and pending controller event.
  torus_->bumpEpoch();
  if (tree_) tree_->bumpEpoch();

  // 2. Roll the architectural memory image back by replaying undo records.
  //    The live segment undoes stores since the newest checkpoint; each
  //    newer checkpoint's segment then undoes one more interval, newest
  //    first, until the shadow is bit-identical to its state at
  //    target.cycle. Within a segment every block appears exactly once, so
  //    application order inside a segment is immaterial.
  auto applyUndo = [this](const std::vector<SafetyNet::UndoRecord>& undo) {
    for (const SafetyNet::UndoRecord& rec : undo) {
      if (rec.wasAbsent) {
        shadow_.erase(rec.blk);
      } else {
        shadow_[rec.blk] = rec.oldValue;
      }
    }
  };
  applyUndo(liveUndo_);
  for (const SafetyNet::Snapshot* s : newerNewestFirst) applyUndo(s->undo);
  liveUndo_.clear();
  dirtySinceCkpt_.clear();

  std::vector<FlatMap<Addr, DataBlock>> perHome(cfg_.numNodes);
  for (const auto& [blk, data] : shadow_) {
    perHome[map_.homeOf(blk)].emplace(blk, data);
  }
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    Node& node = nodes_[n];
    if (node.home) {
      node.home->memory().restore(perHome[n]);
      node.home->resetDirectory();
    }
    if (node.snoopMem) {
      node.snoopMem->memory().restore(perHome[n]);
      node.snoopMem->resetState();
    }
    if (node.dirCache) node.dirCache->invalidateAll();
    if (node.snpCache) node.snpCache->invalidateAll();
    node.hierarchy->invalidateL1();
    if (node.cet) node.cet->reset();
    if (node.met) node.met->reset();
    if (node.shadowCache) node.shadowCache->reset();
    if (node.shadowHome) node.shadowHome->reset();
  }

  // 3. Restart the cores after a drain gap. The snapshot lives in
  // SafetyNet's checkpoint deque; copy the per-core state for the deferred
  // restart (the checkpoint may be trimmed meanwhile).
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    Core::ArchSnapshot coreSnap = target.cores[n];
    sim_.schedule(cfg_.ber.restartDrainDelay,
                  [this, n, coreSnap = std::move(coreSnap)] {
                    nodes_[n].core->restoreState(coreSnap);
                  });
  }
}

bool System::recover(Cycle errorCycle) {
  DVMC_ASSERT(ber_ != nullptr, "recover without BER");
  return ber_->recoverBefore(errorCycle);
}

void System::armAutoRecovery() {
  // Reacts to detections through the ErrorSink observer API (this used to
  // be a 64-cycle polling loop that ran for the whole simulation). The
  // first detection of a burst schedules one recovery event a short drain
  // gap later; that event consumes the entire burst — detections raised by
  // the squashed timeline included — so one error does not cause recovery
  // loops. The observer itself only schedules: reacting inline would
  // re-enter component code mid-report.
  sink_.addObserver([this](const Detection&) {
    if (recoveryPending_) return;
    recoveryPending_ = true;
    sim_.schedule(64, [this] {
      recoveryPending_ = false;
      if (sink_.count() > handledDetections_) {
        const Detection& d = sink_.detections()[handledDetections_];
        handledDetections_ = sink_.count();
        if (!ber_->recoverBefore(d.cycle)) {
          ++unrecoverable_;
        }
      }
    });
  });
}

void System::sendCheckpointTraffic() {
  // Coordination: every node notifies every home slice (unicast control
  // messages); logging: ~one message per few performed stores, modeling
  // SafetyNet's old-value logging at the memory controllers.
  const std::uint64_t stores = storesSinceCkpt_;
  storesSinceCkpt_ = 0;
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    for (NodeId h = 0; h < cfg_.numNodes; ++h) {
      if (h == n) continue;
      Message m;
      m.type = MsgType::kCkptSync;
      m.src = n;
      m.dest = h;
      m.addr = 0;
      torus_->send(m);
    }
  }
  const std::uint64_t logMsgs =
      std::min<std::uint64_t>(stores / 4, 64 * cfg_.numNodes);
  for (std::uint64_t i = 0; i < logMsgs; ++i) {
    Message m;
    m.type = MsgType::kCkptLog;
    m.src = static_cast<NodeId>(i % cfg_.numNodes);
    m.dest = static_cast<NodeId>((i * 7 + 3) % cfg_.numNodes);
    if (m.dest == m.src) m.dest = (m.dest + 1) % cfg_.numNodes;
    m.addr = 0;
    m.hasData = true;  // old-value log entries carry block data
    torus_->send(m);
  }
}

}  // namespace dvmc
