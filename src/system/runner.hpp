// Experiment runner: the paper runs every configuration ten times with
// small pseudo-random perturbations and reports mean +/- one standard
// deviation. Here each "perturbation" is a different workload seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "system/config.hpp"

namespace dvmc {

struct MultiRunResult {
  RunningStat cycles;
  RunningStat peakLinkBytesPerCycle;
  RunningStat replayMissRatio;   // replay L1 misses / regular L1 misses
  RunningStat frac32;            // measured 32-bit op fraction (Table 8)
  std::uint64_t detections = 0;  // summed across runs (0 in error-free runs)
  std::uint64_t squashes = 0;
  bool allCompleted = true;

  std::string summary() const;
};

/// Builds a System from `cfg`, runs it once, returns the result.
RunResult runOnce(const SystemConfig& cfg);

/// Runs `seedCount` perturbations (seeds seedBase..seedBase+seedCount-1).
MultiRunResult runSeeds(SystemConfig cfg, int seedCount,
                        std::uint64_t seedBase = 1);

/// Number of perturbation runs for benches: DVMC_BENCH_SEEDS env override,
/// default 3 (the paper uses 10; 3 keeps the full harness fast).
int benchSeedCount();

/// Global transaction target for benches: DVMC_BENCH_TXNS env override.
std::uint64_t benchTransactionTarget();

}  // namespace dvmc
