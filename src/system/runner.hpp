// Experiment runner: the paper runs every configuration ten times with
// small pseudo-random perturbations and reports mean +/- one standard
// deviation. Here each "perturbation" is a different workload seed.
//
// Perturbation runs share nothing — each builds its own System + Simulator
// — so runSeeds fans them out across a thread pool (SystemConfig::jobs,
// default hardware concurrency) and merges per-seed results in seed order.
// The merged statistics are bit-identical to a sequential run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"
#include "system/config.hpp"

namespace dvmc {

struct MultiRunResult {
  RunningStat cycles;
  RunningStat peakLinkBytesPerCycle;
  RunningStat replayMissRatio;   // replay L1 misses / regular L1 misses
  RunningStat frac32;            // measured 32-bit op fraction (Table 8)
  std::uint64_t detections = 0;  // summed across runs (0 in error-free runs)
  std::uint64_t squashes = 0;
  bool allCompleted = true;

  /// Per-seed metric snapshots merged in seed order (bit-identical to a
  /// sequential run regardless of the worker count).
  MetricSnapshot metrics;

  /// Per-seed commit traces in seed order (each null unless
  /// SystemConfig::trace.capture; the whole vector is empty when capture
  /// was off). Feed to verify::checkTrace for offline oracle runs.
  std::vector<std::shared_ptr<const verify::CapturedTrace>> traces;

  std::string summary() const;
};

/// Builds a System from `cfg`, runs it once, returns the result.
RunResult runOnce(const SystemConfig& cfg);

// --- commit-trace capture plumbing (--capture-trace) ---
// runOnce/runSeeds call these automatically; they are public for mains
// that drive a System directly (quickstart, demos) but should still
// honour the flag.

/// Arms SystemConfig::trace.capture when --capture-trace was given
/// (no-op under autoRecover: recovery rewinds architectural state but
/// not the append-only trace).
void armCaptureFromObs(SystemConfig& cfg);

/// Writes the --capture-trace file from the first non-null trace offered
/// process-wide; later calls are no-ops.
void writeCaptureFileOnce(
    const std::shared_ptr<const verify::CapturedTrace>& trace);

/// Runs `seedCount` perturbations (seeds seedBase..seedBase+seedCount-1),
/// in parallel on resolveJobs(cfg) workers. When cfg.programFactory is set
/// and jobs > 1 it is invoked concurrently and must be thread-safe.
MultiRunResult runSeeds(SystemConfig cfg, int seedCount,
                        std::uint64_t seedBase = 1);

/// Process-wide default worker count used when cfg.jobs == 0.
/// Initialized from DVMC_JOBS if set, else hardware concurrency.
/// The bench/example binaries set this from their --jobs flag.
int defaultJobs();
void setDefaultJobs(int jobs);

/// cfg.jobs if > 0, else defaultJobs().
int resolveJobs(const SystemConfig& cfg);

/// Registers the runner flag group (--jobs/-j) on a CliParser; the value
/// feeds setDefaultJobs. Paired with obs::addObsFlags and
/// bench::addBenchFlags so every binary shares one flag surface.
void addRunnerFlags(CliParser& cli);

/// Legacy lenient form: strips a `--jobs N` (or `-j N` / `--jobs=N`) flag
/// from argv, if present, and feeds it to setDefaultJobs. Returns the new
/// argc. New code should build a strict CliParser and call addRunnerFlags.
int parseJobsFlag(int argc, char** argv);

// --- run-report serialization (the --report-json machinery) ---
// runOnce/runSeeds feed these into the obs collector automatically while a
// report file is armed; they are public so tools can build custom reports.

/// Scalar run measurements plus the merged metric snapshot.
Json toJson(const RunResult& r);
Json toJson(const MultiRunResult& r);
/// The configuration knobs that identify an experiment.
Json configJson(const SystemConfig& cfg);

/// Number of perturbation runs for benches: DVMC_BENCH_SEEDS env override,
/// default 3 (the paper uses 10; 3 keeps the full harness fast).
int benchSeedCount();

/// Global transaction target for benches: DVMC_BENCH_TXNS env override.
std::uint64_t benchTransactionTarget();

}  // namespace dvmc
