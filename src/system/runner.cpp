#include "system/runner.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/thread_pool.hpp"
#include "system/system.hpp"

namespace dvmc {

RunResult runOnce(const SystemConfig& cfg) {
  System sys(cfg);
  return sys.run();
}

namespace {

std::atomic<int> g_defaultJobs{0};  // 0 = not yet initialized

int initialDefaultJobs() {
  if (const char* env = std::getenv("DVMC_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return static_cast<int>(ThreadPool::hardwareWorkers());
}

}  // namespace

int defaultJobs() {
  int v = g_defaultJobs.load(std::memory_order_relaxed);
  if (v == 0) {
    v = initialDefaultJobs();
    g_defaultJobs.store(v, std::memory_order_relaxed);
  }
  return v;
}

void setDefaultJobs(int jobs) {
  g_defaultJobs.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

int resolveJobs(const SystemConfig& cfg) {
  return cfg.jobs > 0 ? cfg.jobs : defaultJobs();
}

int parseJobsFlag(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int jobs = 0;
    int consumed = 0;
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = std::atoi(arg + 7);
      consumed = 1;
    } else if ((std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) &&
               i + 1 < argc) {
      jobs = std::atoi(argv[i + 1]);
      consumed = 2;
    }
    if (consumed > 0) {
      if (jobs > 0) setDefaultJobs(jobs);
      i += consumed - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  argv[out] = nullptr;
  return out;
}

MultiRunResult runSeeds(SystemConfig cfg, int seedCount,
                        std::uint64_t seedBase) {
  // Fan the independent per-seed simulations out across workers; results
  // land in a slot per seed so the merge below is in seed order and the
  // aggregated statistics match a sequential run bit for bit.
  std::vector<RunResult> results(static_cast<std::size_t>(seedCount));
  const int jobs = resolveJobs(cfg);
  parallelFor(
      static_cast<std::size_t>(seedCount), static_cast<unsigned>(jobs),
      [&](std::size_t s) {
        SystemConfig c = cfg;
        c.seed = seedBase + static_cast<std::uint64_t>(s);
        results[s] = runOnce(c);
      });

  MultiRunResult out;
  for (const RunResult& r : results) {
    out.cycles.addTracked(static_cast<double>(r.cycles));
    out.peakLinkBytesPerCycle.addTracked(r.peakLinkBytesPerCycle);
    if (r.regularL1Misses > 0) {
      out.replayMissRatio.addTracked(static_cast<double>(r.replayL1Misses) /
                                     static_cast<double>(r.regularL1Misses));
    }
    if (r.memOps > 0) {
      out.frac32.addTracked(static_cast<double>(r.memOps32) /
                            static_cast<double>(r.memOps));
    }
    out.detections += r.detections;
    out.squashes += r.squashes;
    out.allCompleted = out.allCompleted && r.completed;
  }
  return out;
}

std::string MultiRunResult::summary() const {
  std::ostringstream os;
  os << "cycles=" << static_cast<std::uint64_t>(cycles.mean()) << " (+/- "
     << static_cast<std::uint64_t>(cycles.stddev()) << ")";
  if (!allCompleted) os << " [INCOMPLETE]";
  return os.str();
}

int benchSeedCount() {
  if (const char* env = std::getenv("DVMC_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

std::uint64_t benchTransactionTarget() {
  if (const char* env = std::getenv("DVMC_BENCH_TXNS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 300;
}

}  // namespace dvmc
