#include "system/runner.hpp"

#include <cstdlib>
#include <sstream>

#include "system/system.hpp"

namespace dvmc {

RunResult runOnce(const SystemConfig& cfg) {
  System sys(cfg);
  return sys.run();
}

MultiRunResult runSeeds(SystemConfig cfg, int seedCount,
                        std::uint64_t seedBase) {
  MultiRunResult out;
  for (int s = 0; s < seedCount; ++s) {
    cfg.seed = seedBase + static_cast<std::uint64_t>(s);
    const RunResult r = runOnce(cfg);
    out.cycles.addTracked(static_cast<double>(r.cycles));
    out.peakLinkBytesPerCycle.addTracked(r.peakLinkBytesPerCycle);
    if (r.regularL1Misses > 0) {
      out.replayMissRatio.addTracked(static_cast<double>(r.replayL1Misses) /
                                     static_cast<double>(r.regularL1Misses));
    }
    if (r.memOps > 0) {
      out.frac32.addTracked(static_cast<double>(r.memOps32) /
                            static_cast<double>(r.memOps));
    }
    out.detections += r.detections;
    out.squashes += r.squashes;
    out.allCompleted = out.allCompleted && r.completed;
  }
  return out;
}

std::string MultiRunResult::summary() const {
  std::ostringstream os;
  os << "cycles=" << static_cast<std::uint64_t>(cycles.mean()) << " (+/- "
     << static_cast<std::uint64_t>(cycles.stddev()) << ")";
  if (!allCompleted) os << " [INCOMPLETE]";
  return os.str();
}

int benchSeedCount() {
  if (const char* env = std::getenv("DVMC_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

std::uint64_t benchTransactionTarget() {
  if (const char* env = std::getenv("DVMC_BENCH_TXNS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 300;
}

}  // namespace dvmc
