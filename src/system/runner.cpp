#include "system/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "obs/run_report.hpp"
#include "obs/spans.hpp"
#include "system/system.hpp"
#include "verify/trace.hpp"
#include "verify/trace_sink.hpp"

namespace dvmc {

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// --capture-trace support: the first completed capture of the process
/// wins the file (mirrors the tracer's first-run-only semantics). Written
/// eagerly — unlike the report, a crash later in the harness should not
/// lose the trace that explains it.
std::atomic<bool> g_captureTraceWritten{false};

/// --capture-trace-spill: the chunked v2 sink streaming the first run's
/// capture to disk during the run (keepInMemory off). Single-threaded like
/// the tracer — only one run gets it.
std::unique_ptr<verify::ChunkedTraceFileSink> g_spillSink;

/// Prints the spill outcome once the armed run has finished and releases
/// the sink (closing the file).
void reportSpillOnce() {
  if (!g_spillSink) return;
  const obs::ObsOptions& opts = obs::options();
  if (!g_spillSink->ok()) {
    obs::logError("runner", "capture-trace spill failed",
                  Json::object().set("error", Json::str(g_spillSink->error())));
  } else {
    obs::logInfo("runner", "streamed capture trace (chunked v2)",
                 Json::object()
                     .set("records", Json::num(g_spillSink->recordsWritten()))
                     .set("file", Json::str(opts.captureTraceFile)));
  }
  g_spillSink.reset();
}

Json statJson(const RunningStat& s) {
  return Json::object()
      .set("mean", Json::num(s.mean()))
      .set("stddev", Json::num(s.stddev()))
      .set("min", Json::num(s.min()))
      .set("max", Json::num(s.max()))
      .set("count", Json::num(s.count()));
}

Json snapshotJson(const MetricSnapshot& m) {
  Json counters = Json::object();
  for (const auto& [name, v] : m.counters) counters.set(name, Json::num(v));
  Json histos = Json::object();
  for (const auto& [name, h] : m.histograms) {
    Json buckets = Json::array();
    for (std::uint64_t b : h.buckets()) buckets.push(Json::num(b));
    histos.set(name, Json::object()
                         .set("count", Json::num(h.count()))
                         .set("sum", Json::num(h.sum()))
                         .set("max", Json::num(h.maxValue()))
                         .set("p50", Json::num(h.p50()))
                         .set("p90", Json::num(h.p90()))
                         .set("p99", Json::num(h.p99()))
                         .set("buckets", std::move(buckets)));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("histograms", std::move(histos));
}

/// One entry of the report's "runs" array.
void recordReport(const char* kind, const SystemConfig& cfg, Json result) {
  Json run = Json::object();
  run.set("kind", Json::str(kind));
  run.set("config", configJson(cfg));
  run.set("result", std::move(result));
  obs::addReportRun(std::move(run));
}

}  // namespace

Json toJson(const RunResult& r) {
  Json j = Json::object()
      .set("completed", Json::boolean(r.completed))
      .set("cycles", Json::num(r.cycles))
      .set("transactions", Json::num(r.transactions))
      .set("retiredInstructions", Json::num(r.retiredInstructions))
      .set("memOps", Json::num(r.memOps))
      .set("memOps32", Json::num(r.memOps32))
      .set("peakLinkBytesPerCycle", Json::num(r.peakLinkBytesPerCycle))
      .set("totalNetBytes", Json::num(r.totalNetBytes))
      .set("coherenceBytes", Json::num(r.coherenceBytes))
      .set("informBytes", Json::num(r.informBytes))
      .set("ckptBytes", Json::num(r.ckptBytes))
      .set("regularL1Misses", Json::num(r.regularL1Misses))
      .set("replayL1Misses", Json::num(r.replayL1Misses))
      .set("detections", Json::num(r.detections))
      .set("recoveries", Json::num(r.recoveries))
      .set("unrecoverable", Json::num(r.unrecoverable))
      .set("squashes", Json::num(r.squashes))
      .set("uoFlushes", Json::num(r.uoFlushes))
      .set("metrics", snapshotJson(r.metrics));
  if (r.series) j.set("series", r.series->toJson());
  return j;
}

Json toJson(const MultiRunResult& r) {
  return Json::object()
      .set("allCompleted", Json::boolean(r.allCompleted))
      .set("cycles", statJson(r.cycles))
      .set("peakLinkBytesPerCycle", statJson(r.peakLinkBytesPerCycle))
      .set("replayMissRatio", statJson(r.replayMissRatio))
      .set("frac32", statJson(r.frac32))
      .set("detections", Json::num(r.detections))
      .set("squashes", Json::num(r.squashes))
      .set("metrics", snapshotJson(r.metrics));
}

Json configJson(const SystemConfig& cfg) {
  return Json::object()
      .set("numNodes", Json::num(static_cast<std::uint64_t>(cfg.numNodes)))
      .set("protocol", Json::str(protocolName(cfg.protocol)))
      .set("model", Json::str(modelName(cfg.model)))
      .set("dvmc",
           Json::object()
               .set("uniprocOrdering",
                    Json::boolean(cfg.dvmc.uniprocOrdering))
               .set("allowableReordering",
                    Json::boolean(cfg.dvmc.allowableReordering))
               .set("cacheCoherence", Json::boolean(cfg.dvmc.cacheCoherence)))
      .set("coherenceChecker",
           Json::str(cfg.coherenceChecker ==
                             SystemConfig::CoherenceCheckerKind::kEpoch
                         ? "epoch"
                         : "shadow"))
      .set("berEnabled", Json::boolean(cfg.berEnabled))
      .set("autoRecover", Json::boolean(cfg.autoRecover))
      .set("workload", Json::str(workloadName(cfg.workload)))
      .set("seed", Json::num(cfg.seed))
      .set("targetTransactions", Json::num(cfg.targetTransactions));
}

void armCaptureFromObs(SystemConfig& cfg) {
  const obs::ObsOptions& opts = obs::options();
  if (opts.captureTraceFile.empty()) return;
  // autoRecover re-executes instructions after rollback, which would
  // duplicate trace history; leave capture off rather than abort the run.
  if (cfg.autoRecover) return;
  cfg.trace.capture = true;
  cfg.trace.captureLimit = opts.captureTraceLimit;
  // Spill mode: the first armed run streams its capture straight to the
  // file as settled chunks and keeps nothing resident. Claiming the
  // written flag here keeps the v1 fallback writer off the same file.
  if (opts.captureTraceSpill && !g_captureTraceWritten.exchange(true)) {
    g_spillSink =
        std::make_unique<verify::ChunkedTraceFileSink>(opts.captureTraceFile);
    cfg.trace.sink = g_spillSink.get();
    cfg.trace.keepInMemory = false;
  }
}

void writeCaptureFileOnce(
    const std::shared_ptr<const verify::CapturedTrace>& trace) {
  // Spill mode wrote the file during the run; report that outcome even
  // for mains that drive a System directly and pass a null trace here.
  reportSpillOnce();
  if (!trace) return;
  const obs::ObsOptions& opts = obs::options();
  if (opts.captureTraceFile.empty()) return;
  if (g_captureTraceWritten.exchange(true)) return;
  std::string err;
  if (!verify::writeTraceFile(opts.captureTraceFile, *trace, &err)) {
    obs::logError("runner", "cannot write capture-trace file",
                  Json::object().set("error", Json::str(err)));
  } else {
    obs::logInfo(
        "runner", "wrote capture trace",
        Json::object()
            .set("records", Json::num(std::uint64_t{trace->records.size()}))
            .set("file", Json::str(opts.captureTraceFile)));
  }
}

RunResult runOnce(const SystemConfig& cfg) {
  SystemConfig c = cfg;
  armCaptureFromObs(c);
  std::optional<System> sys;
  {
    obs::ScopedSpan span("build");
    sys.emplace(c);
  }
  RunResult r;
  {
    obs::ScopedSpan span("run");
    r = sys->run();
  }
  {
    obs::ScopedSpan span("capture");
    writeCaptureFileOnce(r.trace);
    reportSpillOnce();
  }
  if (obs::reportingActive()) {
    obs::ScopedSpan span("report");
    recordReport("runOnce", c, toJson(r));
  }
  return r;
}

namespace {

std::atomic<int> g_defaultJobs{0};  // 0 = not yet initialized

int initialDefaultJobs() {
  if (const char* env = std::getenv("DVMC_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return static_cast<int>(ThreadPool::hardwareWorkers());
}

}  // namespace

int defaultJobs() {
  int v = g_defaultJobs.load(std::memory_order_relaxed);
  if (v == 0) {
    v = initialDefaultJobs();
    g_defaultJobs.store(v, std::memory_order_relaxed);
  }
  return v;
}

void setDefaultJobs(int jobs) {
  g_defaultJobs.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

int resolveJobs(const SystemConfig& cfg) {
  return cfg.jobs > 0 ? cfg.jobs : defaultJobs();
}

void addRunnerFlags(CliParser& cli) {
  cli.optionFn("--jobs", "N",
               "worker threads for multi-seed runs (default: DVMC_JOBS or "
               "hardware concurrency)",
               [](const std::string& v) -> std::string {
                 const int jobs = std::atoi(v.c_str());
                 if (jobs > 0) setDefaultJobs(jobs);
                 return {};
               })
      .alias("-j");
}

int parseJobsFlag(int argc, char** argv) {
  CliParser cli("runner", "runner flags");
  cli.lenient();
  addRunnerFlags(cli);
  return cli.parse(argc, argv);
}

MultiRunResult runSeeds(SystemConfig cfg, int seedCount,
                        std::uint64_t seedBase) {
  // Fan the independent per-seed simulations out across workers; results
  // land in a slot per seed so the merge below is in seed order and the
  // aggregated statistics match a sequential run bit for bit.
  armCaptureFromObs(cfg);
  std::vector<RunResult> results(static_cast<std::size_t>(seedCount));
  const int jobs = resolveJobs(cfg);
  const std::size_t total = static_cast<std::size_t>(seedCount);
  std::atomic<std::size_t> completed{0};
  std::atomic<std::uint64_t> detectionsSoFar{0};
  std::atomic<std::uint64_t> lastProgressMs{0};
  obs::StatusWriter* status = obs::activeStatusWriter();
  const std::uint64_t startedMs = steadyMs();
  if (status != nullptr) {
    status->update(Json::object()
                       .set("phase", Json::str("runSeeds"))
                       .set("state", Json::str("running"))
                       .set("total", Json::num(std::uint64_t{total}))
                       .set("done", Json::num(std::uint64_t{0})),
                   /*force=*/true);
  }
  parallelFor(
      static_cast<std::size_t>(seedCount), static_cast<unsigned>(jobs),
      [&](std::size_t s) {
        SystemConfig c = cfg;
        c.seed = seedBase + static_cast<std::uint64_t>(s);
        // A tracer is single-threaded state: only the first seed records.
        // Same for a trace sink (the spill file): later seeds keep their
        // captures in memory instead.
        if (s != 0) {
          c.tracer = nullptr;
          c.trace.sink = nullptr;
          c.trace.keepInMemory = true;
        }
        // Per-seed results are folded into one report entry below, not
        // recorded individually — build the System directly.
        const std::uint64_t seedStartMs = steadyMs();
        {
          obs::ScopedSpan span("run");
          System sys(c);
          results[s] = sys.run();
        }
        const RunResult& r = results[s];
        const std::size_t done = completed.fetch_add(1) + 1;
        detectionsSoFar.fetch_add(r.detections, std::memory_order_relaxed);
        const std::uint64_t now = steadyMs();
        // Per-seed progress is debug-level (off by default — the merged
        // output stays bit-identical either way) and rate-limited to one
        // record per 100 ms, except the final seed which always logs.
        if (obs::Logger::instance().enabled(obs::LogLevel::kDebug)) {
          std::uint64_t last = lastProgressMs.load(std::memory_order_relaxed);
          const bool due = now - last >= 100 || done == total;
          if (due && (lastProgressMs.compare_exchange_strong(last, now) ||
                      done == total)) {
            obs::logDebug(
                "runner", "seed finished",
                Json::object()
                    .set("seed", Json::num(c.seed))
                    .set("cycles", Json::num(r.cycles))
                    .set("detections", Json::num(r.detections))
                    .set("wallMs", Json::num(now - seedStartMs))
                    .set("done", Json::num(std::uint64_t{done}))
                    .set("total", Json::num(std::uint64_t{total})));
          }
        }
        if (status != nullptr) {
          const std::uint64_t elapsed = now - startedMs;
          const std::uint64_t eta =
              done > 0 ? elapsed * (total - done) / done : 0;
          status->update(
              Json::object()
                  .set("phase", Json::str("runSeeds"))
                  .set("state",
                       Json::str(done == total ? "done" : "running"))
                  .set("total", Json::num(std::uint64_t{total}))
                  .set("done", Json::num(std::uint64_t{done}))
                  .set("detections",
                       Json::num(detectionsSoFar.load(
                           std::memory_order_relaxed)))
                  .set("elapsedMs", Json::num(elapsed))
                  .set("etaMs", Json::num(eta)),
              /*force=*/done == total);
        }
      });

  MultiRunResult out;
  if (cfg.effectiveTrace().capture) {
    obs::ScopedSpan span("capture");
    out.traces.reserve(results.size());
    for (const RunResult& r : results) out.traces.push_back(r.trace);
    // The file mirrors the first seed's capture, like the tracer/series.
    if (!results.empty()) writeCaptureFileOnce(results[0].trace);
    reportSpillOnce();
  }
  for (const RunResult& r : results) {
    out.cycles.addTracked(static_cast<double>(r.cycles));
    out.peakLinkBytesPerCycle.addTracked(r.peakLinkBytesPerCycle);
    if (r.regularL1Misses > 0) {
      out.replayMissRatio.addTracked(static_cast<double>(r.replayL1Misses) /
                                     static_cast<double>(r.regularL1Misses));
    }
    if (r.memOps > 0) {
      out.frac32.addTracked(static_cast<double>(r.memOps32) /
                            static_cast<double>(r.memOps));
    }
    out.detections += r.detections;
    out.squashes += r.squashes;
    out.allCompleted = out.allCompleted && r.completed;
    out.metrics.merge(r.metrics);
  }
  if (obs::reportingActive()) {
    obs::ScopedSpan span("report");
    Json merged = toJson(out);
    merged.set("seedBase", Json::num(seedBase));
    merged.set("seedCount", Json::num(static_cast<std::int64_t>(seedCount)));
    // Interval samples are a per-run signal, not a mergeable statistic:
    // the report carries the first seed's series (the traced run).
    if (!results.empty() && results[0].series) {
      merged.set("series", results[0].series->toJson());
    }
    recordReport("runSeeds", cfg, std::move(merged));
  }
  return out;
}

std::string MultiRunResult::summary() const {
  std::ostringstream os;
  os << "cycles=" << static_cast<std::uint64_t>(cycles.mean()) << " (+/- "
     << static_cast<std::uint64_t>(cycles.stddev()) << ")";
  if (!allCompleted) os << " [INCOMPLETE]";
  return os.str();
}

int benchSeedCount() {
  if (const char* env = std::getenv("DVMC_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

std::uint64_t benchTransactionTarget() {
  if (const char* env = std::getenv("DVMC_BENCH_TXNS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 300;
}

}  // namespace dvmc
