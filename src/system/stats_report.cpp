#include "system/stats_report.hpp"

#include <iomanip>
#include <map>
#include <string>

namespace dvmc {

namespace {

void printMetricSet(std::ostream& os, const std::string& prefix,
                    const MetricSet& stats, bool includeZero) {
  for (const auto& [name, value] : stats.all()) {
    if (value == 0 && !includeZero) continue;
    os << "  " << std::left << std::setw(44) << (prefix + name) << " "
       << value << "\n";
  }
}

/// Sums same-named counters across nodes.
class Aggregate {
 public:
  void add(const MetricSet& s) {
    for (const auto& [name, value] : s.all()) sums_[name] += value;
  }
  void print(std::ostream& os, const std::string& prefix,
             bool includeZero) const {
    for (const auto& [name, value] : sums_) {
      if (value == 0 && !includeZero) continue;
      os << "  " << std::left << std::setw(44) << (prefix + name) << " "
         << value << "\n";
    }
  }

 private:
  std::map<std::string, std::uint64_t> sums_;
};

}  // namespace

void printStatsReport(System& sys, std::ostream& os,
                      const StatsReportOptions& opts) {
  const SystemConfig& cfg = sys.config();
  os << "==================== system statistics ====================\n";
  os << "config: " << cfg.numNodes << "-node " << protocolName(cfg.protocol)
     << ", " << modelName(cfg.model) << ", workload "
     << workloadName(cfg.workload) << ", seed " << cfg.seed << "\n";
  os << "cycles: " << sys.sim().now()
     << "  events: " << sys.sim().eventsExecuted() << "\n\n";

  // --- cores ---
  os << "[cores]\n";
  Aggregate cores;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    cores.add(sys.core(n).stats());
    if (opts.perNode) {
      os << " node " << n << ": retired=" << sys.core(n).retired()
         << " transactions=" << sys.core(n).transactions() << "\n";
    }
  }
  cores.print(os, "cpu/", opts.includeZero);

  // --- hierarchy (L1) ---
  os << "\n[cache hierarchy]\n";
  Aggregate l1;
  std::uint64_t replayMisses = 0;
  std::uint64_t regularMisses = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    l1.add(sys.hierarchy(n).stats());
    replayMisses += sys.hierarchy(n).replayLoadL1Misses();
    regularMisses += sys.hierarchy(n).regularLoadL1Misses();
  }
  l1.print(os, "l1/", opts.includeZero);
  if (regularMisses > 0) {
    os << "  " << std::left << std::setw(44) << "l1/replayMissRatio" << " "
       << static_cast<double>(replayMisses) /
              static_cast<double>(regularMisses)
       << "\n";
  }

  // --- protocol controllers ---
  os << "\n[coherence]\n";
  Aggregate l2;
  Aggregate homes;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    if (cfg.protocol == Protocol::kDirectory) {
      l2.add(static_cast<DirectoryCacheController&>(sys.l2(n)).stats());
      homes.add(sys.home(n)->stats());
    } else {
      l2.add(static_cast<SnoopCacheController&>(sys.l2(n)).stats());
      homes.add(sys.snoopMem(n)->stats());
    }
  }
  l2.print(os, "l2/", opts.includeZero);
  homes.print(os, "home/", opts.includeZero);

  // --- interconnect ---
  os << "\n[interconnect]\n";
  os << "  " << std::left << std::setw(44) << "net/totalBytes" << " "
     << sys.dataNet().totalBytes() << "\n";
  os << "  " << std::left << std::setw(44) << "net/maxLinkBytes" << " "
     << sys.dataNet().maxLinkBytes() << "\n";
  os << "  " << std::left << std::setw(44) << "net/peakLinkBytesPerCycle"
     << " " << sys.dataNet().peakLinkUtilization() << "\n";
  os << "  " << std::left << std::setw(44) << "net/coherenceBytes" << " "
     << sys.dataNet().classBytes(TrafficClass::kCoherence) << "\n";
  os << "  " << std::left << std::setw(44) << "net/informBytes" << " "
     << sys.dataNet().classBytes(TrafficClass::kInform) << "\n";
  os << "  " << std::left << std::setw(44) << "net/ckptBytes" << " "
     << sys.dataNet().classBytes(TrafficClass::kCkpt) << "\n";
  if (sys.addrNet() != nullptr) {
    os << "  " << std::left << std::setw(44) << "addrnet/broadcasts" << " "
       << sys.addrNet()->broadcastsIssued() << "\n";
    os << "  " << std::left << std::setw(44) << "addrnet/totalBytes" << " "
       << sys.addrNet()->totalBytes() << "\n";
  }

  // --- checkers ---
  os << "\n[dvmc checkers]\n";
  Aggregate cet;
  Aggregate met;
  Aggregate shadow;
  std::size_t metEntries = 0;
  std::size_t metPeak = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    if (sys.cet(n) != nullptr) cet.add(sys.cet(n)->stats());
    if (sys.met(n) != nullptr) {
      met.add(sys.met(n)->stats());
      metEntries += sys.met(n)->metEntries();
      metPeak += sys.met(n)->peakMetEntries();
    }
    if (sys.shadowCache(n) != nullptr) {
      shadow.add(sys.shadowCache(n)->stats());
    }
    if (sys.shadowHome(n) != nullptr) {
      shadow.add(sys.shadowHome(n)->stats());
    }
  }
  cet.print(os, "cet/", opts.includeZero);
  met.print(os, "met/", opts.includeZero);
  shadow.print(os, "shadow/", opts.includeZero);
  if (metPeak > 0) {
    os << "  " << std::left << std::setw(44) << "met/entries" << " "
       << metEntries << "\n";
    os << "  " << std::left << std::setw(44) << "met/peakEntries" << " "
       << metPeak << "\n";
  }

  // --- BER ---
  if (sys.ber() != nullptr) {
    os << "\n[safetynet]\n";
    printMetricSet(os, "ber/", sys.ber()->stats(), opts.includeZero);
    os << "  " << std::left << std::setw(44) << "ber/checkpointsHeld" << " "
       << sys.ber()->checkpointCount() << "\n";
    os << "  " << std::left << std::setw(44) << "ber/recoveryWindow" << " "
       << sys.ber()->recoveryWindow() << "\n";
  }

  // --- detections ---
  os << "\n[detections] count=" << sys.sink().count() << "\n";
  std::size_t shown = 0;
  for (const Detection& d : sys.sink().detections()) {
    if (shown++ >= 10) {
      os << "  ... (" << sys.sink().count() - 10 << " more)\n";
      break;
    }
    os << "  " << checkerKindName(d.kind) << " @" << d.cycle << " node "
       << d.node << " addr 0x" << std::hex << d.addr << std::dec << ": "
       << d.what << "\n";
  }
  os << "============================================================\n";
}

}  // namespace dvmc
