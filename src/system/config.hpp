// Whole-system configuration (Tables 6 and 7 analogues).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "ber/safety_net.hpp"
#include "coherence/cache_array.hpp"
#include "coherence/interfaces.hpp"
#include "consistency/model.hpp"
#include "cpu/core.hpp"
#include "dvmc/dvmc_config.hpp"
#include "net/broadcast_tree.hpp"
#include "net/torus.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "verify/trace.hpp"
#include "workload/params.hpp"

namespace dvmc {

enum class Protocol : std::uint8_t { kDirectory, kSnooping };

inline const char* protocolName(Protocol p) {
  return p == Protocol::kDirectory ? "directory" : "snooping";
}

struct SystemConfig {
  std::size_t numNodes = 8;
  Protocol protocol = Protocol::kDirectory;
  ConsistencyModel model = ConsistencyModel::kTSO;

  CacheGeometry l1{64, 2};    // 8 KB latency filter
  CacheGeometry l2{256, 4};   // 64 KB coherence point
  CoherenceTimings timings;
  TorusConfig torus;
  BroadcastTreeConfig tree;
  CpuConfig cpu;

  // DVMC: the three checker enables live in `dvmc` (DvmcConfig is the
  // single source of truth — see dvmc/dvmc_config.hpp). An unprotected
  // system disables all three and BER.
  DvmcConfig dvmc;

  /// Which coherence-checking mechanism to plug in (the framework is
  /// modular — Section 8): the paper's epoch/CET/MET scheme, or the
  /// Cantin-style shadow-replay alternative.
  enum class CoherenceCheckerKind : std::uint8_t { kEpoch, kShadow };
  CoherenceCheckerKind coherenceChecker = CoherenceCheckerKind::kEpoch;

  bool berEnabled = false;
  BerConfig ber;
  /// When true (and BER is enabled), any checker detection automatically
  /// triggers rollback to the newest checkpoint predating the detection —
  /// the paper's availability story end to end.
  bool autoRecover = false;

  WorkloadKind workload = WorkloadKind::kMicroMix;
  std::optional<WorkloadParams> workloadOverride;
  std::uint64_t seed = 1;

  /// Worker threads for multi-seed experiment runs (runSeeds): each seed's
  /// simulation is independent, so they fan out across a thread pool. 0 =
  /// the process default (see setDefaultJobs / DVMC_JOBS; hardware
  /// concurrency out of the box), 1 = strictly sequential. Merged
  /// statistics are bit-identical regardless of the setting.
  int jobs = 0;

  /// Tests and examples may install custom per-node programs; when set,
  /// this wins over `workload`.
  std::function<std::unique_ptr<ThreadProgram>(NodeId)> programFactory;

  /// Event tracer for this run (non-owning; nullptr = tracing off, which
  /// costs one null check per instrumentation site). The System wires it
  /// into the simulator kernel, the error sink, and SafetyNet. A tracer is
  /// single-threaded: runSeeds hands it to the first seed's run only.
  EventTracer* tracer = nullptr;

  /// Forensics recorder (non-owning; nullptr = forensics off). When set,
  /// every ErrorSink detection captures a bundle: the last-K trace window
  /// around the detection, the firing checker's state dump, the violating
  /// address's cache-line state at every node, and the SafetyNet checkpoint
  /// epoch. If no tracer is configured, the System creates a private one
  /// sized to the recorder's window so the event context is still there.
  /// The recorder is mutex-guarded, so runSeeds shares it across all seeds.
  ForensicsRecorder* forensics = nullptr;

  /// Time-series sampling: every `sampleEvery` cycles (0 = off) a row of
  /// the default counter columns is appended to a bounded ring carried in
  /// RunResult::series (and serialized into the run report).
  Cycle sampleEvery = 0;
  std::size_t sampleCapacity = 4096;

  /// Commit-point trace capture for the consistency oracle (verify/).
  /// Every trace knob lives here and is validated in one place
  /// (validate(), checked by the System constructor). The capture rides
  /// RunResult::trace like the telemetry series. Incompatible with
  /// autoRecover: a rollback re-executes instructions under fresh
  /// sequence numbers, which would duplicate the recorded history.
  struct TraceOptions {
    /// Record every committed memory operation. Past `captureLimit`
    /// records the trace is marked truncated and the oracle refuses it.
    bool capture = false;
    std::size_t captureLimit = std::size_t{1} << 22;

    /// Streaming delivery (non-owning; nullptr = off): settled chunks of
    /// `chunkRecords` records stream to the sink *during* the run, so a
    /// capture no longer implies O(run-length) resident memory. Feed a
    /// verify::ChunkedTraceFileSink to spill to disk, or a
    /// verify::StreamingOracle to check the run as it executes. With
    /// keepInMemory off, RunResult::trace stays null and the sink gets
    /// the only copy.
    verify::TraceSink* sink = nullptr;
    std::size_t chunkRecords = 4096;
    bool keepInMemory = true;

    /// The single validation point: nullptr when consistent, else the
    /// human-readable reason.
    const char* validate() const {
      if (!capture) {
        return sink != nullptr ? "trace.sink requires trace.capture"
                               : nullptr;
      }
      if (captureLimit == 0) return "trace.captureLimit must be positive";
      if (sink != nullptr && chunkRecords == 0) {
        return "trace.chunkRecords must be positive";
      }
      if (sink == nullptr && !keepInMemory) {
        return "trace capture with neither a sink nor keepInMemory would "
               "discard every record";
      }
      return nullptr;
    }
  };
  TraceOptions trace;

  /// Deprecated aliases, kept one release: prefer trace.capture /
  /// trace.captureLimit. effectiveTrace() folds them in (an alias only
  /// wins where the new field was left at its default).
  [[deprecated("use trace.capture")]] bool captureTrace = false;
  [[deprecated("use trace.captureLimit")]] std::size_t traceCaptureLimit =
      std::size_t{1} << 22;

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  // The special members copy the deprecated alias fields; defaulting them
  // inside the suppression keeps the warning scoped to real alias uses.
  SystemConfig() = default;
  SystemConfig(const SystemConfig&) = default;
  SystemConfig& operator=(const SystemConfig&) = default;
  SystemConfig(SystemConfig&&) = default;
  SystemConfig& operator=(SystemConfig&&) = default;
  ~SystemConfig() = default;

  TraceOptions effectiveTrace() const {
    TraceOptions t = trace;
    if (captureTrace) t.capture = true;
    constexpr std::size_t kDefaultLimit = std::size_t{1} << 22;
    if (traceCaptureLimit != kDefaultLimit && t.captureLimit == kDefaultLimit) {
      t.captureLimit = traceCaptureLimit;
    }
    return t;
  }
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// Global stop target: total transactions across all processors (barnes:
  /// phases per processor, run to completion).
  std::uint64_t targetTransactions = 400;
  Cycle maxCycles = 200'000'000;

  /// Directory logical-time base: slow clock divisor; per-node skew stays
  /// below the minimum network latency so causality holds.
  Cycle dirClockDivisor = 16;

  // --- convenience constructors for the paper's configurations ---
  static SystemConfig unprotected(Protocol p, ConsistencyModel m) {
    SystemConfig c;
    c.protocol = p;
    c.model = m;
    return c;
  }
  static SystemConfig withDvmc(Protocol p, ConsistencyModel m) {
    SystemConfig c = unprotected(p, m);
    c.dvmc.enableAll();
    c.berEnabled = true;
    return c;
  }
  static SystemConfig snOnly(Protocol p, ConsistencyModel m) {
    SystemConfig c = unprotected(p, m);
    c.berEnabled = true;
    return c;
  }
};

/// One run's measurements.
struct RunResult {
  bool completed = false;         // reached the target before maxCycles
  Cycle cycles = 0;               // runtime in cycles
  std::uint64_t transactions = 0;
  std::uint64_t retiredInstructions = 0;
  std::uint64_t memOps = 0;
  std::uint64_t memOps32 = 0;
  double peakLinkBytesPerCycle = 0.0;  // Figure 7 metric
  std::uint64_t totalNetBytes = 0;
  std::uint64_t coherenceBytes = 0;  // traffic composition (Fig. 7)
  std::uint64_t informBytes = 0;
  std::uint64_t ckptBytes = 0;
  std::uint64_t regularL1Misses = 0;   // Figure 6 inputs
  std::uint64_t replayL1Misses = 0;
  std::uint64_t detections = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t unrecoverable = 0;  // detections past the recovery window
  std::uint64_t squashes = 0;
  std::uint64_t uoFlushes = 0;

  /// Aggregated (cross-node) component metrics at end of run — the typed
  /// registry's snapshot, merged deterministically by runSeeds.
  MetricSnapshot metrics;

  /// Interval samples (null unless SystemConfig::sampleEvery > 0). Shared
  /// so RunResult copies stay cheap; the series is immutable once the run
  /// finishes.
  std::shared_ptr<const TimeSeries> series;

  /// Commit trace (null unless SystemConfig::trace.capture with
  /// keepInMemory). Immutable once the run finishes; feed to
  /// verify::checkTrace.
  std::shared_ptr<const verify::CapturedTrace> trace;
};

}  // namespace dvmc
