// Full-system assembly: N nodes, each with a core, an L1+L2 hierarchy, a
// protocol controller (directory or snooping), a slice of memory, and —
// when enabled — the three DVMC checkers and SafetyNet BER. This is the
// simulated machine every experiment in the paper runs on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ber/safety_net.hpp"
#include "coherence/directory_cache.hpp"
#include "coherence/directory_home.hpp"
#include "coherence/hierarchy.hpp"
#include "coherence/snoop_cache.hpp"
#include "coherence/snoop_memory.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "cpu/core.hpp"
#include "dvmc/cache_epoch_checker.hpp"
#include "dvmc/memory_epoch_checker.hpp"
#include "dvmc/reorder_checker.hpp"
#include "dvmc/shadow_checker.hpp"
#include "dvmc/verification_cache.hpp"
#include "net/broadcast_tree.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"
#include "system/config.hpp"
#include "verify/trace.hpp"
#include "workload/synthetic.hpp"

namespace dvmc {

class System {
 public:
  explicit System(SystemConfig cfg);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Runs until the transaction target is reached (barnes: all cores
  /// finish) or maxCycles elapse; fills and returns the result.
  RunResult run();

  /// Runs until `extraPred` becomes true as well (fault experiments).
  RunResult runUntil(const std::function<bool()>& extraPred);

  /// Closes the commit-trace capture: flushes the unsettled chunk tail to
  /// any attached trace sink and ends the stream. run() calls this;
  /// callers driving runUntil/collectResult by hand call it once the run
  /// is really over. Idempotent; a no-op when capture is off.
  void finishTraceCapture();

  /// End-of-run checker sweep: flushes every open epoch out of the CETs,
  /// lets the informs propagate, then drains the MET queues so epochs
  /// still open when the program ended get their data-propagation checks.
  /// Terminal: the CET bookkeeping is gone afterwards, so the system must
  /// not keep running — call only once, right before the final
  /// collectResult().
  void drainCheckers();

  // --- measurement control ---
  void resetNetStats();
  std::uint64_t totalTransactions() const;
  bool allCoresDone() const;

  // --- component access (tests, fault injection, benches) ---
  Simulator& sim() { return sim_; }
  ErrorSink& sink() { return sink_; }
  const SystemConfig& config() const { return cfg_; }
  TorusNetwork& dataNet() { return *torus_; }
  BroadcastTree* addrNet() { return tree_.get(); }
  Core& core(NodeId n) { return *nodes_[n].core; }
  CacheHierarchy& hierarchy(NodeId n) { return *nodes_[n].hierarchy; }
  CoherentCache& l2(NodeId n) { return *nodes_[n].l2; }
  DirectoryHome* home(NodeId n) { return nodes_[n].home.get(); }
  SnoopMemoryController* snoopMem(NodeId n) { return nodes_[n].snoopMem.get(); }
  MemoryEpochChecker* met(NodeId n) { return nodes_[n].met.get(); }
  CacheEpochChecker* cet(NodeId n) { return nodes_[n].cet.get(); }
  ShadowCacheChecker* shadowCache(NodeId n) {
    return nodes_[n].shadowCache.get();
  }
  ShadowHomeChecker* shadowHome(NodeId n) {
    return nodes_[n].shadowHome.get();
  }
  SafetyNet* ber() { return ber_.get(); }
  std::size_t numNodes() const { return cfg_.numNodes; }

  /// Test/tooling hook observing every performed store (runs in addition
  /// to the internal architectural-shadow bookkeeping).
  using StoreAuditHook =
      std::function<void(NodeId, Addr, std::size_t, std::uint64_t)>;
  void setStoreAuditHook(StoreAuditHook h) { auditHook_ = std::move(h); }

  /// SafetyNet plumbing (public for tests). captureSnapshot() seals the
  /// live undo segment into the returned checkpoint (O(blocks dirtied
  /// since the previous capture)); restoreSnapshot() rolls the shadow
  /// image back by replaying the live segment plus every newer
  /// checkpoint's segment, newest first.
  SafetyNet::Snapshot captureSnapshot();
  void restoreSnapshot(
      const SafetyNet::Snapshot& target,
      const std::vector<const SafetyNet::Snapshot*>& newerNewestFirst = {});

  /// The architectural memory image (performed-store shadow). Tests
  /// compare recovered state against independently reconstructed images.
  const FlatMap<Addr, DataBlock>& memoryImage() const { return shadow_; }

  /// Triggers BER recovery to the newest checkpoint before `errorCycle`.
  bool recover(Cycle errorCycle);

  /// Collects a RunResult from the current counters (run() calls this).
  RunResult collectResult(bool completed, Cycle cycles) const;

  /// Snapshot of every component's metric registry. Aggregated across
  /// nodes by default; with `perNode` each node's metrics additionally
  /// appear under a "nodeN/" prefix.
  MetricSnapshot metricsSnapshot(bool perNode = false) const;

 private:
  struct Node {
    // Directory flavor.
    std::unique_ptr<DirectoryHome> home;
    DirectoryCacheController* dirCache = nullptr;
    // Snooping flavor.
    std::unique_ptr<SnoopMemoryController> snoopMem;
    SnoopCacheController* snpCache = nullptr;

    std::unique_ptr<CoherentCache> l2;
    std::unique_ptr<CacheHierarchy> hierarchy;
    std::unique_ptr<CacheEpochChecker> cet;
    std::unique_ptr<MemoryEpochChecker> met;
    std::unique_ptr<ShadowCacheChecker> shadowCache;
    std::unique_ptr<ShadowHomeChecker> shadowHome;
    std::unique_ptr<PhysicalLogicalClock> metClock;  // directory time base
    std::unique_ptr<VerificationCache> vc;
    std::unique_ptr<ReorderChecker> ar;
    std::unique_ptr<Core> core;
    std::unique_ptr<NetworkEndpoint> dataRouter;
    std::unique_ptr<NetworkEndpoint> addrRouter;
  };

  void buildNode(NodeId n);
  std::unique_ptr<ThreadProgram> makeProgram(NodeId n) const;
  void sendCheckpointTraffic();
  Json buildForensicsBundle(const Detection& d);

  // Interval sampler (--sample-every). Column names are resolved to raw
  // metric-slot pointers once at run start; each tick then sums a handful
  // of pointers instead of snapshotting every registry (net.* columns read
  // the torus accumulators directly).
  struct SampleColumn {
    enum class Net { kNone, kTotal, kCoherence, kInform, kCkpt };
    Net net = Net::kNone;
    std::vector<const std::uint64_t*> slots;
  };
  void buildSamplePlan();
  void scheduleSampleTick();

  SystemConfig cfg_;
  Simulator sim_;
  ErrorSink sink_;
  // Checkpoint messages are absorbed at the endpoint and only counted.
  // Per-system (not global): parallel runSeeds runs Systems concurrently.
  MetricSet ckptMsgStats_;
  Counter cCkptMsgsReceived_ = ckptMsgStats_.counter("ber.msgsReceived");
  MemoryMap map_;
  // Private tracer backing the forensics last-K window when the run has no
  // --trace tracer of its own (sized to the recorder's window).
  std::unique_ptr<EventTracer> ownedTracer_;
  // Interval sampler output (null unless cfg_.sampleEvery > 0).
  std::shared_ptr<TimeSeries> series_;
  // Commit-point recorder (null unless cfg_.trace.capture).
  std::unique_ptr<verify::TraceRecorder> traceRecorder_;
  std::vector<SampleColumn> samplePlan_;
  std::unique_ptr<TorusNetwork> torus_;
  std::unique_ptr<BroadcastTree> tree_;
  std::vector<Node> nodes_;
  std::unique_ptr<SafetyNet> ber_;

  // Architectural memory shadow: updated at every performed store; the
  // basis for SafetyNet checkpoints.
  void armAutoRecovery();

  FlatMap<Addr, DataBlock> shadow_;
  // Undo log for the open (live) checkpoint interval: the first store to a
  // block since the last checkpoint records the block's prior state here
  // (maintained only when BER is enabled).
  std::vector<SafetyNet::UndoRecord> liveUndo_;
  FlatMap<Addr, bool> dirtySinceCkpt_;
  StoreAuditHook auditHook_;
  std::uint64_t storesSinceCkpt_ = 0;
  std::size_t handledDetections_ = 0;
  std::uint64_t unrecoverable_ = 0;
  bool recoveryPending_ = false;  // a burst-consuming check is scheduled
  bool started_ = false;
};

}  // namespace dvmc
