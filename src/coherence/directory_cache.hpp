// L2 cache + cache-side controller for the MOSI directory protocol.
//
// The controller keeps one MSHR per block; CPU operations arriving while a
// transaction is outstanding queue inside the MSHR and re-dispatch on
// completion. Evicted dirty (M/O) blocks move to a writeback buffer that
// keeps answering forwarded requests until the home acknowledges or NACKs
// the PutM; a new request for a block whose writeback is still in flight
// stalls until that acknowledgment (avoiding owner-re-request races at the
// blocking home).
//
// The controller drives the DVMC Cache Coherence checker through the
// EpochObserver interface: Read-Only epochs span S/O permission, Read-Write
// epochs span M permission, and every perform-time access is submitted for
// the CET rule-1 check.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "coherence/cache_array.hpp"
#include "coherence/interfaces.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "obs/metrics.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class DirectoryCacheController final : public CoherentCache {
 public:
  DirectoryCacheController(Simulator& sim, TorusNetwork& net, NodeId node,
                           MemoryMap map, CacheGeometry l2Geom,
                           CoherenceTimings timings, ErrorSink* sink,
                           std::unique_ptr<LogicalClock> clock);

  // --- CoherentCache ---
  void request(const CacheOp& op, CacheOpCallback cb) override;
  void setCpuNotifier(CpuNotifier* n) override { cpu_ = n; }
  void setEpochObserver(EpochObserver* o) override { epochs_ = o; }
  EpochObserver* epochObserver() const override { return epochs_; }
  void setStorePerformHook(StorePerformHook h) override {
    storeHook_ = std::move(h);
  }
  LogicalClock& clock() override { return *clock_; }
  const DataBlock* peekReadable(Addr blk) override;
  bool peekWritable(Addr blk) override;

  /// Network entry point (router dispatches cache-bound messages here).
  void onMessage(const Message& msg);

  const MetricSet& stats() const { return stats_; }
  CacheArray& array() { return array_; }
  NodeId node() const { return node_; }

  /// BER support: invalidate everything (epochs are closed; no informs are
  /// sent because the checker is reset around a recovery).
  void invalidateAll();

  /// True when no transactions or writebacks are in flight (quiesced).
  bool idle() const { return mshrs_.empty() && wbBuffer_.empty(); }

 private:
  struct PendingOp {
    CacheOp op;
    CacheOpCallback cb;
  };

  struct Mshr {
    bool wantM = false;
    bool requestSent = false;  // false while stalled behind a writeback
    bool dataReceived = false;
    bool dataCarried = false;  // Data message carried a payload
    DataBlock data;
    bool invStashed = false;  // an Inv raced this transaction; stash below
    DataBlock invStash;       // our line's data at that Inv
    int acksExpected = -1;  // unknown until the Data message arrives
    int acksReceived = 0;
    std::deque<PendingOp> ops;
  };

  void processOp(const CacheOp& op, CacheOpCallback cb);
  void completeOp(const CacheOp& op, const CacheOpCallback& cb,
                  std::uint64_t value, bool performed);
  void startTransaction(Addr blk, bool wantM, PendingOp pending);
  void sendRequest(Addr blk, const Mshr& mshr);
  void maybeFinalize(Addr blk);
  void finalizeTransaction(Addr blk);
  void installWithEviction(Addr blk, MosiState st, const DataBlock& d);
  void evictLine(CacheLine& line);
  void handleFwdGetS(const Message& msg);
  void handleFwdGetM(const Message& msg);
  void handleInv(const Message& msg);
  void sendData(NodeId dest, Addr blk, const DataBlock& d, int ackCount);
  void send(Message m) { net_.send(std::move(m)); }
  void notifyCpuLost(Addr blk, bool remoteWrite);

  Simulator& sim_;
  TorusNetwork& net_;
  NodeId node_;
  MemoryMap map_;
  CoherenceTimings timings_;
  ErrorSink* sink_;
  std::unique_ptr<LogicalClock> clock_;
  CacheArray array_;
  CpuNotifier* cpu_ = nullptr;
  EpochObserver* epochs_ = nullptr;
  StorePerformHook storeHook_;
  FlatMap<Addr, Mshr> mshrs_;
  FlatMap<Addr, DataBlock> wbBuffer_;
  std::uint32_t gen_ = 0;  // bumped by invalidateAll (BER recovery)
  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cHit_ = stats_.counter("l2.hit");
  Counter cMiss_ = stats_.counter("l2.miss");
  Counter cGetS_ = stats_.counter("l2.getS");
  Counter cGetM_ = stats_.counter("l2.getM");
  Counter cWbStall_ = stats_.counter("l2.wbStall");
  Counter cFillStall_ = stats_.counter("l2.fillStall");
  Counter cEvictClean_ = stats_.counter("l2.evictClean");
  Counter cEvictDirty_ = stats_.counter("l2.evictDirty");
  Counter cDataSupplied_ = stats_.counter("l2.dataSupplied");
  Counter cStrayData_ = stats_.counter("l2.strayData");
  Counter cStrayInvAck_ = stats_.counter("l2.strayInvAck");
  Counter cUpgradeNoData_ = stats_.counter("protocol.upgradeNoData");
  Counter cUnexpectedFwdGetS_ = stats_.counter("protocol.unexpectedFwdGetS");
  Counter cUnexpectedFwdGetM_ = stats_.counter("protocol.unexpectedFwdGetM");
};

}  // namespace dvmc
