// Main-memory backing store for one home node.
//
// Blocks are materialized on demand with a deterministic address-derived
// fill pattern so that a load of never-written memory returns a defined,
// reproducible value. Memory is ECC protected like the caches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/data_block.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "common/types.hpp"

namespace dvmc {

class MemoryStorage {
 public:
  explicit MemoryStorage(bool eccProtected) : ecc_(eccProtected) {}

  /// Read access; materializes the block if needed and runs ECC checks.
  const DataBlock& read(Addr blk, ErrorSink* sink, NodeId node, Cycle now);

  /// Writes a full block (writeback from an owner).
  void write(Addr blk, const DataBlock& d);

  /// Fault injection: flip a bit of a materialized block.
  bool injectBitFlip(Addr blk, std::size_t bit);

  /// Full snapshot / restore support for BER.
  const FlatMap<Addr, DataBlock>& blocks() const { return blocks_; }
  void restore(const FlatMap<Addr, DataBlock>& snapshot) {
    blocks_ = snapshot;
    flips_.clear();
  }

  std::size_t materializedBlocks() const { return blocks_.size(); }
  std::uint64_t eccCorrections() const { return eccCorrections_; }

  /// The deterministic fill value for untouched memory.
  static DataBlock initialPattern(Addr blk);

 private:
  DataBlock& materialize(Addr blk);

  bool ecc_;
  FlatMap<Addr, DataBlock> blocks_;
  FlatMap<Addr, std::vector<std::size_t>> flips_;
  std::uint64_t eccCorrections_ = 0;
};

}  // namespace dvmc
