#include "coherence/cache_array.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/crc16.hpp"

namespace dvmc {

const char* mosiName(MosiState s) {
  switch (s) {
    case MosiState::kI: return "I";
    case MosiState::kS: return "S";
    case MosiState::kO: return "O";
    case MosiState::kM: return "M";
  }
  return "?";
}

CacheArray::CacheArray(CacheGeometry geom, bool eccProtected)
    : geom_(geom), ecc_(eccProtected) {
  DVMC_ASSERT(geom_.sets > 0 && geom_.ways > 0, "bad cache geometry");
  lines_.resize(geom_.sets * geom_.ways);
}

CacheLine* CacheArray::find(Addr blk) {
  DVMC_ASSERT(blockAddr(blk) == blk, "find expects a block address");
  const std::size_t base = setIndex(blk) * geom_.ways;
  for (std::size_t w = 0; w < geom_.ways; ++w) {
    CacheLine& line = lines_[base + w];
    if (line.valid && line.tag == blk) return &line;
  }
  return nullptr;
}

const CacheLine* CacheArray::find(Addr blk) const {
  return const_cast<CacheArray*>(this)->find(blk);
}

CacheLine* CacheArray::victim(
    Addr blk, const std::function<bool(const CacheLine&)>& evictable) {
  const std::size_t base = setIndex(blk) * geom_.ways;
  CacheLine* best = nullptr;
  for (std::size_t w = 0; w < geom_.ways; ++w) {
    CacheLine& line = lines_[base + w];
    if (!line.valid) return &line;
    if (!evictable(line)) continue;
    if (best == nullptr || line.lastUse < best->lastUse) best = &line;
  }
  return best;
}

void CacheArray::install(CacheLine& line, Addr blk, MosiState st,
                         const DataBlock& d) {
  DVMC_ASSERT(blockAddr(blk) == blk, "install expects a block address");
  line.valid = true;
  line.tag = blk;
  line.state = st;
  line.data = d;
  line.lastUse = ++useCounter_;
  line.pendingFlips.clear();
}

void CacheArray::touch(CacheLine& line, ErrorSink* sink, NodeId node,
                       Cycle now) {
  line.lastUse = ++useCounter_;
  if (!ecc_ || line.pendingFlips.empty()) return;
  if (line.pendingFlips.size() == 1) {
    // Single-bit error: SEC code corrects it in place.
    line.data.flipBit(line.pendingFlips.front());
    line.pendingFlips.clear();
    ++eccCorrections_;
  } else {
    // Multi-bit error: detected but uncorrectable.
    if (sink != nullptr) {
      sink->report({CheckerKind::kEcc, now, node, line.tag,
                    "uncorrectable multi-bit cache error"});
    }
    line.pendingFlips.clear();  // report once
  }
}

std::optional<Addr> CacheArray::injectBitFlip(std::uint64_t rand,
                                              ErrorSink* sink, NodeId node,
                                              Cycle now) {
  (void)sink;
  (void)node;
  (void)now;
  // Prefer recently used lines: a corrupted-but-never-touched line is a
  // latent fault that vanishes on eviction, which makes for a useless
  // injection experiment.
  CacheLine* target = nullptr;
  for (auto& line : lines_) {
    if (!line.valid) continue;
    if (target == nullptr || line.lastUse > target->lastUse) target = &line;
  }
  if (target == nullptr) return std::nullopt;
  CacheLine& line = *target;
  const std::size_t bit = rand % (kBlockSizeBytes * 8);
  line.data.flipBit(bit);
  if (ecc_) {
    line.pendingFlips.push_back(bit);  // the code can still repair this
  }
  return line.tag;
}

std::optional<std::pair<Addr, MosiState>> CacheArray::injectStateFlip(
    std::uint64_t rand) {
  std::vector<CacheLine*> candidates;
  for (auto& line : lines_) {
    if (line.valid && line.state != MosiState::kI) candidates.push_back(&line);
  }
  if (candidates.empty()) return std::nullopt;
  CacheLine& line = *candidates[rand % candidates.size()];
  // Promote read-only states to M (grants illegal write permission) or
  // demote M to S (write permission lost without protocol action).
  line.state =
      (line.state == MosiState::kM) ? MosiState::kS : MosiState::kM;
  return std::make_pair(line.tag, line.state);
}

void CacheArray::forEachValid(const std::function<void(CacheLine&)>& fn) {
  for (auto& line : lines_) {
    if (line.valid) fn(line);
  }
}

void CacheArray::dumpForensics(Json& out, Addr focus) const {
  std::size_t valid = 0;
  const CacheLine* hit = nullptr;
  for (const auto& line : lines_) {
    if (!line.valid) continue;
    ++valid;
    if (line.tag == blockAddr(focus)) hit = &line;
  }
  out.set("sets", Json::num(static_cast<std::uint64_t>(geom_.sets)))
      .set("ways", Json::num(static_cast<std::uint64_t>(geom_.ways)))
      .set("validLines", Json::num(static_cast<std::uint64_t>(valid)))
      .set("eccCorrections", Json::num(eccCorrections_))
      .set("focusResident", Json::boolean(hit != nullptr));
  if (hit != nullptr) {
    Json line = Json::object();
    line.set("state", Json::str(mosiName(hit->state)))
        .set("dataCrc16", Json::num(std::uint64_t{hashBlock(hit->data)}))
        .set("lastUse", Json::num(hit->lastUse))
        .set("pendingEccFlips",
             Json::num(static_cast<std::uint64_t>(hit->pendingFlips.size())));
    out.set("focusLine", std::move(line));
  }
}

}  // namespace dvmc
