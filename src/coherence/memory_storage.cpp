#include "coherence/memory_storage.hpp"

#include "common/assert.hpp"

namespace dvmc {

DataBlock MemoryStorage::initialPattern(Addr blk) {
  DataBlock d;
  if (blk < kZeroInitBoundary) return d;  // zeroed synchronization segment
  // SplitMix64-style mix of the block address per word: deterministic and
  // distinct across blocks, so stale-data bugs surface as value mismatches.
  for (std::size_t w = 0; w < kBlockSizeWords; ++w) {
    std::uint64_t z = blk + 0x9E3779B97F4A7C15ULL * (w + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    d.write(w * 8, 8, z ^ (z >> 31));
  }
  return d;
}

DataBlock& MemoryStorage::materialize(Addr blk) {
  DVMC_ASSERT(blockAddr(blk) == blk, "memory access must be block aligned");
  auto it = blocks_.find(blk);
  if (it == blocks_.end()) {
    it = blocks_.emplace(blk, initialPattern(blk)).first;
  }
  return it->second;
}

const DataBlock& MemoryStorage::read(Addr blk, ErrorSink* sink, NodeId node,
                                     Cycle now) {
  DataBlock& d = materialize(blk);
  auto fit = flips_.find(blk);
  if (ecc_ && fit != flips_.end() && !fit->second.empty()) {
    if (fit->second.size() == 1) {
      d.flipBit(fit->second.front());
      ++eccCorrections_;
    } else if (sink != nullptr) {
      sink->report({CheckerKind::kEcc, now, node, blk,
                    "uncorrectable multi-bit memory error"});
    }
    flips_.erase(fit);
  }
  return d;
}

void MemoryStorage::write(Addr blk, const DataBlock& d) {
  materialize(blk) = d;
  flips_.erase(blk);  // rewrite regenerates the ECC code
}

bool MemoryStorage::injectBitFlip(Addr blk, std::size_t bit) {
  auto it = blocks_.find(blk);
  if (it == blocks_.end()) return false;
  it->second.flipBit(bit % (kBlockSizeBytes * 8));
  if (ecc_) flips_[blk].push_back(bit % (kBlockSizeBytes * 8));
  return true;
}

}  // namespace dvmc
