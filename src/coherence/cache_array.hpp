// Set-associative cache data/tag array with MOSI state and an ECC model.
//
// One CacheArray backs each L1 and each L2. Lines carry real data; the ECC
// model tracks injected bit flips per line: a single pending flip is
// corrected on the next access (single-error-correcting code, as the paper
// requires on all cache lines for SafetyNet), while multi-bit flips are
// detected-but-uncorrectable and reported to the ErrorSink.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/data_block.hpp"
#include "common/error_sink.hpp"
#include "common/types.hpp"
#include "obs/json.hpp"

namespace dvmc {

enum class MosiState : std::uint8_t { kI, kS, kO, kM };
const char* mosiName(MosiState s);

inline bool mosiCanRead(MosiState s) { return s != MosiState::kI; }
inline bool mosiCanWrite(MosiState s) { return s == MosiState::kM; }
inline bool mosiIsOwner(MosiState s) {
  return s == MosiState::kM || s == MosiState::kO;
}

struct CacheLine {
  bool valid = false;
  Addr tag = 0;  // full block address for simplicity
  MosiState state = MosiState::kI;
  DataBlock data;
  std::uint64_t lastUse = 0;

  // ECC ledger: bit indices of injected-but-unrepaired flips.
  std::vector<std::size_t> pendingFlips;
};

struct CacheGeometry {
  std::size_t sets = 128;
  std::size_t ways = 4;
  std::size_t capacityBytes() const { return sets * ways * kBlockSizeBytes; }
};

class CacheArray {
 public:
  CacheArray(CacheGeometry geom, bool eccProtected);

  /// Finds the line holding `blk` (block-aligned address) or nullptr.
  CacheLine* find(Addr blk);
  const CacheLine* find(Addr blk) const;

  /// Chooses a victim way in blk's set: an invalid line if any, else the
  /// LRU line among those for which `evictable` returns true (lines with
  /// in-flight transactions must be skipped). Returns nullptr if every way
  /// is pinned. The returned line may hold a valid block that the caller
  /// must evict first.
  CacheLine* victim(Addr blk,
                    const std::function<bool(const CacheLine&)>& evictable);

  /// Installs `blk` into the given line (caller handled any eviction).
  void install(CacheLine& line, Addr blk, MosiState st, const DataBlock& d);

  /// Marks a line recently used and runs the ECC access check.
  /// Reports uncorrectable errors to `sink` (may be null).
  void touch(CacheLine& line, ErrorSink* sink, NodeId node, Cycle now);

  /// Fault-injection entry point: flip one bit of a random resident line.
  /// Returns the affected block address, or nullopt if the cache is empty.
  std::optional<Addr> injectBitFlip(std::uint64_t rand, ErrorSink* sink,
                                    NodeId node, Cycle now);

  /// Flips a MOSI state bit on a random resident line (escapes ECC, which
  /// covers data only). Returns affected block and new state.
  std::optional<std::pair<Addr, MosiState>> injectStateFlip(
      std::uint64_t rand);

  /// Iterates over all valid lines (checkpointing, invalidation sweeps).
  void forEachValid(const std::function<void(CacheLine&)>& fn);

  std::size_t numSets() const { return geom_.sets; }
  std::size_t numWays() const { return geom_.ways; }
  std::size_t capacityBytes() const { return geom_.capacityBytes(); }
  std::uint64_t eccCorrections() const { return eccCorrections_; }

  /// Forensics dump: valid-line occupancy and, when the focus block is
  /// resident, its MOSI state, data CRC-16, LRU stamp, and pending ECC
  /// flips — the cache-side evidence behind a coherence detection.
  void dumpForensics(Json& out, Addr focus) const;

 private:
  std::size_t setIndex(Addr blk) const {
    return static_cast<std::size_t>((blk / kBlockSizeBytes) % geom_.sets);
  }

  CacheGeometry geom_;
  bool ecc_;
  std::vector<CacheLine> lines_;  // sets * ways, row-major by set
  std::uint64_t useCounter_ = 0;
  std::uint64_t eccCorrections_ = 0;
};

}  // namespace dvmc
