#include "coherence/snoop_cache.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace dvmc {

SnoopCacheController::SnoopCacheController(Simulator& sim,
                                           BroadcastTree& addrNet,
                                           TorusNetwork& dataNet, NodeId node,
                                           MemoryMap map, CacheGeometry l2Geom,
                                           CoherenceTimings timings,
                                           ErrorSink* sink)
    : sim_(sim),
      addrNet_(addrNet),
      dataNet_(dataNet),
      node_(node),
      map_(map),
      timings_(timings),
      sink_(sink),
      array_(l2Geom, /*eccProtected=*/true) {}

const DataBlock* SnoopCacheController::peekReadable(Addr blk) {
  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiCanRead(line->state)) return &line->data;
  return nullptr;
}

bool SnoopCacheController::peekWritable(Addr blk) {
  CacheLine* line = array_.find(blk);
  return line != nullptr && mosiCanWrite(line->state);
}

void SnoopCacheController::request(const CacheOp& op, CacheOpCallback cb) {
  // Loads pay the full L2 array access; stores and atomics drain through
  // the dedicated write port (writes to an already-owned line are cheap —
  // they would hit an L1-class writeback structure in a real hierarchy).
  const bool writePath = op.kind == CacheOp::Kind::kStore ||
                         op.kind == CacheOp::Kind::kAtomicSwap ||
                         op.kind == CacheOp::Kind::kAtomicCas;
  const Cycle lat = writePath ? timings_.storeLatency : timings_.l2Latency;
  sim_.schedule(lat, [this, op, cb = std::move(cb), g = gen_] {
    if (g != gen_) return;  // squashed by BER recovery
    processOp(op, cb);
  });
}

void SnoopCacheController::processOp(const CacheOp& op, CacheOpCallback cb) {
  const Addr blk = blockAddr(op.addr);

  auto mit = mshrs_.find(blk);
  if (mit != mshrs_.end()) {
    mit->second.ops.push_back(PendingOp{op, std::move(cb)});
    return;
  }

  CacheLine* line = array_.find(blk);
  const bool needsWrite = op.kind == CacheOp::Kind::kStore ||
                          op.kind == CacheOp::Kind::kAtomicSwap ||
                          op.kind == CacheOp::Kind::kAtomicCas ||
                          op.kind == CacheOp::Kind::kPrefetchM;

  if (line != nullptr && mosiCanRead(line->state) &&
      (!needsWrite || mosiCanWrite(line->state))) {
    array_.touch(*line, sink_, node_, sim_.now());
    cHit_.inc();
    const std::size_t off = blockOffset(op.addr);
    switch (op.kind) {
      case CacheOp::Kind::kLoad:
      case CacheOp::Kind::kReplayLoad:
        completeOp(op, cb, line->data.read(off, op.size), op.countsAsPerform);
        return;
      case CacheOp::Kind::kStore:
        line->data.write(off, op.size, op.value);
        if (storeHook_) storeHook_(op.addr, op.size, op.value);
        completeOp(op, cb, 0, true);
        return;
      case CacheOp::Kind::kAtomicSwap: {
        const std::uint64_t old = line->data.read(off, op.size);
        line->data.write(off, op.size, op.value);
        if (storeHook_) storeHook_(op.addr, op.size, op.value);
        completeOp(op, cb, old, true);
        return;
      }
      case CacheOp::Kind::kAtomicCas: {
        const std::uint64_t old = line->data.read(off, op.size);
        if (old == op.compare) {
          line->data.write(off, op.size, op.value);
          if (storeHook_) storeHook_(op.addr, op.size, op.value);
        }
        completeOp(op, cb, old, true);
        return;
      }
      case CacheOp::Kind::kPrefetchS:
      case CacheOp::Kind::kPrefetchM:
        completeOp(op, cb, 0, false);
        return;
    }
  }

  cMiss_.inc();
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kCoherence,
               needsWrite ? "l2.missM" : "l2.missS", node_, blk, 0);
  }
  startTransaction(blk, needsWrite, PendingOp{op, std::move(cb)});
}

void SnoopCacheController::completeOp(const CacheOp& op,
                                      const CacheOpCallback& cb,
                                      std::uint64_t value, bool performed) {
  if (performed && epochs_ != nullptr) {
    const bool isWrite = op.kind == CacheOp::Kind::kStore ||
                         op.kind == CacheOp::Kind::kAtomicSwap ||
                         op.kind == CacheOp::Kind::kAtomicCas;
    epochs_->onPerformAccess(blockAddr(op.addr), isWrite);
  }
  CacheOpResult r;
  r.tag = op.tag;
  r.value = value;
  r.performLogical = clock_.now();
  r.completedAt = sim_.now();
  if (cb) cb(r);
}

void SnoopCacheController::startTransaction(Addr blk, bool wantM,
                                            PendingOp pending) {
  Mshr& m = mshrs_[blk];
  m.wantM = wantM;
  m.ops.push_back(std::move(pending));

  Message req;
  req.type = wantM ? MsgType::kSnpGetM : MsgType::kSnpGetS;
  req.src = node_;
  req.addr = blk;
  addrNet_.broadcast(req);
  (wantM ? cGetM_ : cGetS_).inc();
}

void SnoopCacheController::onSnoop(const Message& msg) {
  clock_.tick();
  const std::uint64_t ltime = clock_.now();
  const Addr blk = blockAddr(msg.addr);

  if (msg.src == node_) {
    // Our own request reached its order point.
    if (msg.type == MsgType::kSnpGetS || msg.type == MsgType::kSnpGetM) {
      auto it = mshrs_.find(blk);
      if (it == mshrs_.end()) {
        cStraySelfSnoop_.inc();  // duplicated broadcast fault
        return;
      }
      Mshr& m = it->second;
      m.ordered = true;
      m.orderTime = ltime;
      if (m.wantM) {
        CacheLine* line = array_.find(blk);
        if (line != nullptr && line->state == MosiState::kO) {
          // O -> M upgrade: we are the owner; nobody else supplies data.
          m.selfSupply = true;
        }
      }
      maybeComplete(blk);
    } else if (msg.type == MsgType::kSnpPutM) {
      auto wb = wbBuffer_.find(blk);
      if (wb != wbBuffer_.end()) {
        if (wb->second.stillOwner) {
          // Ownership returns to memory at this order point; ship the data.
          Message d;
          d.type = MsgType::kSnpWbData;
          d.src = node_;
          d.dest = map_.homeOf(blk);
          d.addr = blk;
          d.hasData = true;
          d.data = wb->second.data;
          dataNet_.send(d);
          cWbData_.inc();
        }
        wbBuffer_.erase(wb);
      }
    }
    return;
  }

  // Somebody else's request. If we have an ordered-but-incomplete
  // transaction on this block, the snoop logically follows our transaction
  // and must wait for our data.
  auto it = mshrs_.find(blk);
  if (it != mshrs_.end() && it->second.ordered) {
    it->second.deferredSnoops.push_back(msg);
    cDeferredSnoop_.inc();
    return;
  }
  applySnoop(msg, ltime);
}

void SnoopCacheController::applySnoop(const Message& msg,
                                      std::uint64_t ltime) {
  const Addr blk = blockAddr(msg.addr);
  CacheLine* line = array_.find(blk);

  switch (msg.type) {
    case MsgType::kSnpGetS:
      if (line != nullptr && mosiIsOwner(line->state)) {
        array_.touch(*line, sink_, node_, sim_.now());
        supplyData(msg.src, blk, line->data);
        if (line->state == MosiState::kM) {
          if (epochs_ != nullptr) {
            epochs_->onEpochEnd(blk, line->data, ltime);
            epochs_->onEpochBegin(blk, false, line->data, ltime);
          }
          line->state = MosiState::kO;
        }
      } else if (auto wb = wbBuffer_.find(blk);
                 wb != wbBuffer_.end() && wb->second.stillOwner) {
        supplyData(msg.src, blk, wb->second.data);
      }
      return;
    case MsgType::kSnpGetM:
      if (line != nullptr && mosiCanRead(line->state)) {
        if (mosiIsOwner(line->state)) {
          supplyData(msg.src, blk, line->data);
        }
        if (epochs_ != nullptr) epochs_->onEpochEnd(blk, line->data, ltime);
        line->valid = false;
        line->state = MosiState::kI;
      } else if (auto wb = wbBuffer_.find(blk);
                 wb != wbBuffer_.end() && wb->second.stillOwner) {
        supplyData(msg.src, blk, wb->second.data);
        wb->second.stillOwner = false;
      }
      // A remote writer is taking the block. Even with no line present
      // (silent eviction) the CPU may hold speculatively performed loads on
      // it, so the squash hint fires regardless of line presence.
      notifyCpuLost(blk, /*remoteWrite=*/true);
      return;
    case MsgType::kSnpPutM:
      return;  // memory handles writebacks
    default:
      return;
  }
}

void SnoopCacheController::onMessage(const Message& msg) {
  if (msg.type != MsgType::kSnpData) {
    cUnexpectedData_.inc();
    return;
  }
  const Addr blk = blockAddr(msg.addr);
  auto it = mshrs_.find(blk);
  if (it == mshrs_.end()) {
    cStrayData_.inc();
    return;
  }
  it->second.dataReceived = true;
  it->second.data = msg.data;
  maybeComplete(blk);
}

void SnoopCacheController::maybeComplete(Addr blk) {
  auto it = mshrs_.find(blk);
  DVMC_ASSERT(it != mshrs_.end(), "complete without MSHR");
  Mshr& m = it->second;
  if (!m.ordered) return;
  if (!m.dataReceived && !m.selfSupply) return;

  // A fill needs a way. When every line in the set is itself
  // mid-transaction (upgrade MSHR, writeback awaiting its data turn),
  // hardware holds the response in the MSHR until a way frees; model that
  // as a bounded-latency retry. Snoops for this block keep deferring
  // meanwhile, and the blocked transactions never depend on this fill.
  if (CacheLine* l = array_.find(blk); l == nullptr || !mosiCanRead(l->state)) {
    if (array_.victim(blk, [this](const CacheLine& c) {
          return mshrs_.count(c.tag) == 0 && wbBuffer_.count(c.tag) == 0;
        }) == nullptr) {
      cFillStall_.inc();
      sim_.schedule(kFillRetryCycles, [this, blk, g = gen_] {
        if (g != gen_) return;  // squashed by BER recovery
        if (mshrs_.count(blk) != 0) maybeComplete(blk);
      });
      return;
    }
  }

  // Move the MSHR out before installing: eviction and op re-dispatch below
  // may create new transactions for other blocks.
  Mshr done = std::move(m);
  mshrs_.erase(it);

  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiCanRead(line->state)) {
    DVMC_ASSERT(done.wantM, "GetS completion with a valid line");
    if (epochs_ != nullptr) {
      epochs_->onEpochEnd(blk, line->data, done.orderTime);
    }
    if (done.dataReceived) line->data = done.data;
    line->state = MosiState::kM;
    array_.touch(*line, sink_, node_, sim_.now());
    if (epochs_ != nullptr) {
      epochs_->onEpochBegin(blk, true, line->data, done.orderTime);
    }
  } else {
    DVMC_ASSERT(done.dataReceived, "install without data payload");
    installWithEviction(blk, done.wantM ? MosiState::kM : MosiState::kS,
                        done.data, done.orderTime);
  }

  // Perform the queued CPU operations inside our epoch, then honor the
  // snoops that were ordered after our request.
  for (auto& p : done.ops) {
    processOp(p.op, std::move(p.cb));
  }
  for (const Message& snoop : done.deferredSnoops) {
    applySnoop(snoop, snoop.snoopOrder + 1);
  }
}

void SnoopCacheController::installWithEviction(Addr blk, MosiState st,
                                               const DataBlock& d,
                                               std::uint64_t ltime) {
  CacheLine* victim = array_.victim(blk, [this](const CacheLine& l) {
    return mshrs_.count(l.tag) == 0 && wbBuffer_.count(l.tag) == 0;
  });
  DVMC_ASSERT(victim != nullptr, "no evictable way in set");
  if (victim->valid) evictLine(*victim);
  array_.install(*victim, blk, st, d);
  if (epochs_ != nullptr) {
    epochs_->onEpochBegin(blk, st == MosiState::kM, d, ltime);
  }
}

void SnoopCacheController::evictLine(CacheLine& line) {
  const Addr blk = line.tag;
  if (epochs_ != nullptr) epochs_->onEpochEnd(blk, line.data, clock_.now());
  if (mosiIsOwner(line.state)) {
    wbBuffer_[blk] = WbEntry{line.data, true};
    Message putm;
    putm.type = MsgType::kSnpPutM;
    putm.src = node_;
    putm.addr = blk;
    addrNet_.broadcast(putm);
    cEvictDirty_.inc();
  } else {
    cEvictClean_.inc();
  }
  line.valid = false;
  line.state = MosiState::kI;
  notifyCpuLost(blk, /*remoteWrite=*/false);  // local eviction
}

void SnoopCacheController::supplyData(NodeId dest, const Addr blk,
                                      const DataBlock& d) {
  Message m;
  m.type = MsgType::kSnpData;
  m.src = node_;
  m.dest = dest;
  m.addr = blk;
  m.hasData = true;
  m.data = d;
  dataNet_.send(m);
  cDataSupplied_.inc();
}

void SnoopCacheController::notifyCpuLost(Addr blk, bool remoteWrite) {
  if (cpu_ != nullptr) cpu_->onReadPermissionLost(blk, remoteWrite);
}

void SnoopCacheController::invalidateAll() {
  array_.forEachValid([](CacheLine& line) {
    line.valid = false;
    line.state = MosiState::kI;
  });
  mshrs_.clear();
  wbBuffer_.clear();
  ++gen_;  // squash scheduled controller events from the rolled-back past
}

}  // namespace dvmc
