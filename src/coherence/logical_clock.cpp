#include "coherence/logical_clock.hpp"

// Out-of-line anchor so the vtable is emitted exactly once.
namespace dvmc {
// (Intentionally empty: all members are defined inline in the header.)
}  // namespace dvmc
