// Interfaces between the processor, the coherent cache hierarchy, and the
// DVMC checkers.
//
// The processor issues asynchronous CacheOps and receives completion
// callbacks carrying the value, hit/miss information, and the logical time
// at which the operation performed. The DVMC Cache Coherence checker plugs
// in as an EpochObserver: the protocol controllers report epoch begin/end
// transitions and perform-time accesses; the checker maintains the CET and
// emits Inform-Epoch messages. Keeping the observer abstract means the
// protocols have no compile-time dependency on the checkers — mirroring the
// paper's claim that any SWMR-verifying scheme can be swapped in.
#pragma once

#include <cstdint>
#include <functional>

#include "common/data_block.hpp"
#include "common/types.hpp"
#include "coherence/logical_clock.hpp"

namespace dvmc {

struct CacheOp {
  enum class Kind : std::uint8_t {
    kLoad,        // demand load (execution)
    kStore,       // store perform (write-buffer drain)
    kAtomicSwap,  // atomic exchange; returns old value
    kAtomicCas,   // compare-and-swap: writes only if old == compare
    kPrefetchS,   // acquire read permission, no access
    kPrefetchM,   // acquire write permission, no access
    kReplayLoad,  // verification-stage replay load (bypasses write buffer)
  };

  Kind kind = Kind::kLoad;

  // True when this access is the operation's *perform* point, i.e. the CET
  // rule-1 check and the AR checker's perform event should fire. The CPU
  // sets this per the model: stores always; loads at replay for ordered-load
  // models, at execution for RMO. (Declared beside `kind` so the two flags
  // share one padding slot: CacheOp rides inside scheduled-event captures
  // that must fit Simulator::kActionCapacityBytes.)
  bool countsAsPerform = false;

  Addr addr = 0;
  std::size_t size = 8;
  std::uint64_t value = 0;    // store value / atomic new value
  std::uint64_t compare = 0;  // kAtomicCas: expected old value
  std::uint64_t tag = 0;      // caller-owned token, echoed in the result
};

struct CacheOpResult {
  std::uint64_t tag = 0;
  std::uint64_t value = 0;        // load result / atomic old value
  bool l1Hit = false;             // for replay-miss statistics (Fig. 6)
  std::uint64_t performLogical = 0;  // logical time at perform
  Cycle completedAt = 0;
};

using CacheOpCallback = std::function<void(const CacheOpResult&)>;

/// Hints from the cache to the processor for load-order speculation.
/// `remoteWrite` is true when the loss is another processor taking write
/// permission (its store may change speculatively loaded values — squash);
/// false for local evictions, where values cannot have changed and the
/// verification-stage replay covers any later remote write to the
/// no-longer-tracked block (squashing on evictions would livelock a
/// thrashing set).
class CpuNotifier {
 public:
  virtual ~CpuNotifier() = default;
  virtual void onReadPermissionLost(Addr blk, bool remoteWrite) = 0;
};

/// DVMC Cache Coherence checker hook implemented by CacheEpochChecker.
class EpochObserver {
 public:
  virtual ~EpochObserver() = default;

  /// An epoch begins: the cache gained read (RO) or write (RW) permission.
  /// `ltime` is the wide logical time of the grant — the controller's clock
  /// for the directory protocol, the request's position in the broadcast
  /// order for snooping (deferred snoop actions must be stamped with the
  /// order point of the snoop, not the wall-clock processing time).
  virtual void onEpochBegin(Addr blk, bool readWrite, const DataBlock& data,
                            std::uint64_t ltime) = 0;

  /// The current epoch for `blk` ends (downgrade, invalidation, eviction);
  /// `data` is the block's content at the end of the epoch.
  virtual void onEpochEnd(Addr blk, const DataBlock& data,
                          std::uint64_t ltime) = 0;

  /// Rule-1 check: an operation performs against `blk` at the cache.
  virtual void onPerformAccess(Addr blk, bool isWrite) = 0;
};

/// Hook implemented by the DVMC MemoryEpochChecker at each home node.
class HomeObserver {
 public:
  virtual ~HomeObserver() = default;

  /// A coherence request reached the home for `blk`; `memData` is the
  /// block's current memory image (used to seed a fresh MET entry).
  virtual void onHomeRequest(Addr blk, const DataBlock& memData) = 0;

  /// The home observed that no cache holds `blk` anymore (writeback
  /// accepted with no remaining sharers): the MET entry can be evicted —
  /// the paper's MET "only contains entries for blocks that are present in
  /// at least one of the processor caches".
  virtual void onBlockUncached(Addr blk) = 0;

  /// The home granted read (RO) or write (RW) permission to `to`. When the
  /// data came from memory, `memHash` is the CRC-16 of the served image.
  /// Serialized in home-processing order. Default no-op: the epoch checker
  /// derives everything from epochs instead.
  virtual void onHomeGrant(Addr blk, NodeId to, bool readWrite,
                           bool fromMemory, std::uint16_t memHash) {
    (void)blk;
    (void)to;
    (void)readWrite;
    (void)fromMemory;
    (void)memHash;
  }

  /// The home processed a writeback from `from` (accepted, or rejected as
  /// stale). `hash` is the CRC-16 of the written-back data.
  virtual void onHomeWriteback(Addr blk, NodeId from, std::uint16_t hash,
                               bool accepted) {
    (void)blk;
    (void)from;
    (void)hash;
    (void)accepted;
  }
};

/// Interleaves blocks across home nodes.
struct MemoryMap {
  std::size_t numNodes = 1;
  NodeId homeOf(Addr a) const {
    return static_cast<NodeId>((blockAddr(a) / kBlockSizeBytes) % numNodes);
  }
};

/// Fixed structural latencies (Table 6/7-inspired defaults at a 2 GHz core).
struct CoherenceTimings {
  Cycle l1Latency = 2;
  Cycle l2Latency = 12;
  Cycle storeLatency = 3;  // store/atomic write-port path (hit in M)
  Cycle memLatency = 160;
  Cycle ctrlLatency = 2;
};

/// Retry interval for a fill that found every way in its set
/// mid-transaction (the MSHR holds the response until a way frees).
inline constexpr Cycle kFillRetryCycles = 8;

/// Protocol-independent face of an L2 cache + coherence controller.
class CoherentCache {
 public:
  virtual ~CoherentCache() = default;

  virtual void request(const CacheOp& op, CacheOpCallback cb) = 0;

  virtual void setCpuNotifier(CpuNotifier* n) = 0;
  virtual void setEpochObserver(EpochObserver* o) = 0;
  virtual EpochObserver* epochObserver() const = 0;
  virtual LogicalClock& clock() = 0;

  /// Observes every performed store/atomic (address, size, value). The
  /// system layer uses this to maintain the architectural memory shadow
  /// that SafetyNet checkpoints.
  using StorePerformHook =
      std::function<void(Addr, std::size_t, std::uint64_t)>;
  virtual void setStorePerformHook(StorePerformHook h) = 0;

  /// Direct block lookup used by the L1 refill path and by tests; returns
  /// nullptr when the block has no read permission at L2.
  virtual const DataBlock* peekReadable(Addr blk) = 0;

  /// True when the block is held with write permission (M): a store to it
  /// drains without a coherence transaction. Drives the relaxed write
  /// buffer's owned-blocks-first issue policy (Table 5).
  virtual bool peekWritable(Addr blk) = 0;
};

}  // namespace dvmc
