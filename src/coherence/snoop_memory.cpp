#include "coherence/snoop_memory.hpp"

#include "common/assert.hpp"
#include "common/crc16.hpp"

namespace dvmc {

SnoopMemoryController::SnoopMemoryController(Simulator& sim,
                                             TorusNetwork& dataNet,
                                             NodeId node, MemoryMap map,
                                             CoherenceTimings timings,
                                             ErrorSink* sink)
    : sim_(sim),
      dataNet_(dataNet),
      node_(node),
      map_(map),
      timings_(timings),
      sink_(sink),
      memory_(/*eccProtected=*/true) {}

NodeId SnoopMemoryController::cacheOwnerOf(Addr blk) const {
  auto it = state_.find(blk);
  return it == state_.end() ? kInvalidNode : it->second.ownerCache;
}

void SnoopMemoryController::onSnoop(const Message& msg) {
  // Logical time: one tick per coherence request processed, for every
  // controller, so all controllers' counts agree at each order point.
  clock_.tick();

  const Addr blk = blockAddr(msg.addr);
  if (map_.homeOf(blk) != node_) return;  // not our slice

  HomeState& h = state_[blk];
  if (homeObserver_ != nullptr &&
      (msg.type == MsgType::kSnpGetS || msg.type == MsgType::kSnpGetM)) {
    homeObserver_->onHomeRequest(blk,
                                 memory_.read(blk, sink_, node_, sim_.now()));
  }

  switch (msg.type) {
    case MsgType::kSnpGetS: {
      const bool fromMemory =
          h.ownerCache == kInvalidNode && !h.awaitingWb;
      bool deferredGrant = false;
      if (h.ownerCache == kInvalidNode) {
        if (h.awaitingWb) {
          // Grant notification deferred to writeback-data arrival so the
          // shadow checker sees writeback-then-grant in logical order.
          h.waiting.push_back(msg);
          deferredGrant = true;
          cHeldForWb_.inc();
        } else {
          supplyData(blk, msg.src);
        }
      }
      // A cache owner (possibly mid-writeback) supplies otherwise.
      if (!deferredGrant && homeObserver_ != nullptr) {
        homeObserver_->onHomeGrant(
            blk, msg.src, /*readWrite=*/false, fromMemory,
            fromMemory
                ? hashBlock(memory_.read(blk, sink_, node_, sim_.now()))
                : static_cast<std::uint16_t>(0));
      }
      break;
    }
    case MsgType::kSnpGetM: {
      const bool fromMemory =
          h.ownerCache == kInvalidNode && !h.awaitingWb;
      bool deferredGrant = false;
      if (h.ownerCache == kInvalidNode) {
        if (h.awaitingWb) {
          h.waiting.push_back(msg);
          deferredGrant = true;
          cHeldForWb_.inc();
        } else if (msg.src != kInvalidNode) {
          supplyData(blk, msg.src);
        }
      }
      if (!deferredGrant && homeObserver_ != nullptr) {
        homeObserver_->onHomeGrant(
            blk, msg.src, /*readWrite=*/true, fromMemory,
            fromMemory
                ? hashBlock(memory_.read(blk, sink_, node_, sim_.now()))
                : static_cast<std::uint16_t>(0));
      }
      // Ownership transfers to the requester at this order point.
      h.ownerCache = msg.src;
      break;
    }
    case MsgType::kSnpPutM:
      if (h.ownerCache == msg.src) {
        h.ownerCache = kInvalidNode;
        h.awaitingWb = true;
        h.wbFrom = msg.src;
        cPutM_.inc();
      } else {
        cStalePutM_.inc();  // ownership raced away; data discarded
        if (homeObserver_ != nullptr) {
          homeObserver_->onHomeWriteback(blk, msg.src, 0,
                                         /*accepted=*/false);
        }
      }
      break;
    default:
      break;  // non-coherence broadcasts are ignored
  }
}

void SnoopMemoryController::onMessage(const Message& msg) {
  if (msg.type != MsgType::kSnpWbData) {
    cUnexpectedData_.inc();
    return;
  }
  const Addr blk = blockAddr(msg.addr);
  if (map_.homeOf(blk) != node_) {
    cMisrouted_.inc();
    return;
  }
  DVMC_ASSERT(msg.hasData, "WbData without payload");
  memory_.write(blk, msg.data);
  HomeState& h = state_[blk];
  if (homeObserver_ != nullptr) {
    homeObserver_->onHomeWriteback(blk, h.wbFrom, hashBlock(msg.data),
                                   /*accepted=*/true);
  }
  h.awaitingWb = false;
  std::deque<Message> waiting;
  waiting.swap(h.waiting);
  for (const Message& w : waiting) {
    supplyData(blk, w.src);
    if (homeObserver_ != nullptr) {
      homeObserver_->onHomeGrant(
          blk, w.src, /*readWrite=*/w.type == MsgType::kSnpGetM,
          /*fromMemory=*/true,
          hashBlock(memory_.read(blk, sink_, node_, sim_.now())));
    }
  }
  // Note: snooping homes do NOT raise onBlockUncached — they cannot see
  // read-only sharers, and evicting the MET entry while RO epochs are
  // still open poisons the re-seeded entry's last-RW time (a false
  // positive when the open epoch's inform finally arrives). MET entry
  // eviction is a directory-protocol feature here, matching the paper's
  // directory-centric MET sizing discussion.
}

void SnoopMemoryController::supplyData(Addr blk, NodeId dest) {
  // Built at the read point, parked in the pool for the memory latency:
  // the scheduled event carries a 16-byte handle, not a DataBlock capture.
  Message m;
  m.type = MsgType::kSnpData;
  m.src = node_;
  m.dest = dest;
  m.addr = blk;
  m.hasData = true;
  m.data = memory_.read(blk, sink_, node_, sim_.now());
  m.fromMemory = true;
  sim_.schedule(timings_.memLatency,
                [this, pm = pool_.acquire(std::move(m)), g = gen_]() mutable {
                  if (g != gen_) return;  // squashed by BER recovery
                  dataNet_.send(std::move(*pm));
                });
  cDataSupplied_.inc();
}

}  // namespace dvmc
