#include "coherence/hierarchy.hpp"

#include "common/assert.hpp"

namespace dvmc {

CacheHierarchy::CacheHierarchy(Simulator& sim, CoherentCache& l2,
                               CacheGeometry l1Geom, CoherenceTimings timings,
                               ErrorSink* sink, NodeId node)
    : sim_(sim),
      l2_(l2),
      timings_(timings),
      sink_(sink),
      node_(node),
      l1_(l1Geom, /*eccProtected=*/true) {
  l2_.setCpuNotifier(this);
}

void CacheHierarchy::onReadPermissionLost(Addr blk, bool remoteWrite) {
  // Inclusion: whatever leaves L2 leaves L1 — for any reason.
  CacheLine* line = l1_.find(blk);
  if (line != nullptr) {
    line->valid = false;
  }
  if (cpu_ != nullptr) cpu_->onReadPermissionLost(blk, remoteWrite);
}

void CacheHierarchy::access(const CacheOp& op, CacheOpCallback cb) {
  const bool isLoad = op.kind == CacheOp::Kind::kLoad ||
                      op.kind == CacheOp::Kind::kReplayLoad;

  if (isLoad) {
    // blk and isReplay are derived from `op` inside the event rather than
    // captured: [this, op, cb] is the exact inline-capacity budget of
    // Simulator::Action, and this fires for every load in the machine.
    sim_.schedule(timings_.l1Latency, [this, op, cb = std::move(cb)] {
      const bool isReplay = op.kind == CacheOp::Kind::kReplayLoad;
      CacheLine* line = l1_.find(blockAddr(op.addr));
      if (line != nullptr) {
        (isReplay ? cReplayHit_ : cHit_).inc();
        finishLoadFromL1(op, cb, *line);
        return;
      }
      (isReplay ? cReplayMiss_ : cMiss_).inc();
      if (isReplay) {
        ++replayMisses_;
      } else {
        ++regularMisses_;
      }
      forwardToL2(op, cb);
    });
    return;
  }

  // Stores / atomics / prefetches go straight to L2 (write-through, no
  // write-allocate at L1).
  CacheOpCallback wrapped = cb;
  if (op.kind == CacheOp::Kind::kStore ||
      op.kind == CacheOp::Kind::kAtomicSwap ||
      op.kind == CacheOp::Kind::kAtomicCas) {
    wrapped = [this, op, cb = std::move(cb)](const CacheOpResult& r) {
      const bool wrote = op.kind != CacheOp::Kind::kAtomicCas ||
                         r.value == op.compare;
      CacheLine* line = l1_.find(blockAddr(op.addr));
      if (wrote && line != nullptr) {
        line->data.write(blockOffset(op.addr), op.size, op.value);
      }
      if (cb) cb(r);
    };
  }
  l2_.request(op, std::move(wrapped));
}

void CacheHierarchy::finishLoadFromL1(const CacheOp& op,
                                      const CacheOpCallback& cb,
                                      CacheLine& line) {
  l1_.touch(line, sink_, node_, sim_.now());
  // The perform-time CET check fires even on an L1 hit: the CET tracks the
  // block's epoch regardless of which array satisfied the access.
  if (op.countsAsPerform && l2_.epochObserver() != nullptr) {
    l2_.epochObserver()->onPerformAccess(blockAddr(op.addr), false);
  }
  CacheOpResult r;
  r.tag = op.tag;
  r.value = line.data.read(blockOffset(op.addr), op.size);
  r.l1Hit = true;
  r.performLogical = l2_.clock().now();
  r.completedAt = sim_.now();
  if (cb) cb(r);
}

void CacheHierarchy::forwardToL2(const CacheOp& op, CacheOpCallback cb) {
  l2_.request(op, [this, op, cb = std::move(cb)](const CacheOpResult& r) {
    // Refill the L1 with the block if the L2 still has read permission.
    const Addr blk = blockAddr(op.addr);
    const DataBlock* data = l2_.peekReadable(blk);
    if (data != nullptr && l1_.find(blk) == nullptr) {
      CacheLine* victim =
          l1_.victim(blk, [](const CacheLine&) { return true; });
      DVMC_ASSERT(victim != nullptr, "L1 victim selection failed");
      l1_.install(*victim, blk, MosiState::kS, *data);
    }
    if (cb) cb(r);
  });
}

}  // namespace dvmc
