// Memory controller for the MOSI snooping protocol.
//
// Every controller observes the totally ordered broadcast stream; this one
// tracks, per home block, whether memory or a cache is the current owner
// (updated purely from the snoop order, so all controllers agree), supplies
// data when memory owns the block, and holds requests that are ordered
// between a PutM and the arrival of its writeback data.
//
// The controller's CountingClock (requests processed so far) is the
// snooping logical time base used to seed MET entries.
#pragma once

#include <cstdint>
#include <deque>

#include "coherence/interfaces.hpp"
#include "coherence/logical_clock.hpp"
#include "coherence/memory_storage.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "obs/metrics.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class SnoopMemoryController {
 public:
  SnoopMemoryController(Simulator& sim, TorusNetwork& dataNet, NodeId node,
                        MemoryMap map, CoherenceTimings timings,
                        ErrorSink* sink);

  /// Address-network entry: every broadcast request, in total order.
  void onSnoop(const Message& msg);

  /// Data-network entry: writeback data (kSnpWbData).
  void onMessage(const Message& msg);

  void setHomeObserver(HomeObserver* o) { homeObserver_ = o; }

  MemoryStorage& memory() { return memory_; }
  CountingClock& clock() { return clock_; }
  const MetricSet& stats() const { return stats_; }

  NodeId cacheOwnerOf(Addr blk) const;

  /// BER recovery: memory owns every block again.
  void resetState() {
    state_.clear();
    ++gen_;
  }

 private:
  struct HomeState {
    NodeId ownerCache = kInvalidNode;  // kInvalidNode => memory owns
    bool awaitingWb = false;
    NodeId wbFrom = kInvalidNode;  // evictor whose WbData is in flight
    std::deque<Message> waiting;  // requests memory must answer after WbData
  };

  void supplyData(Addr blk, NodeId dest);

  Simulator& sim_;
  TorusNetwork& dataNet_;
  MessagePool pool_;  // parks memory-latency data replies in flight
  NodeId node_;
  MemoryMap map_;
  CoherenceTimings timings_;
  ErrorSink* sink_;
  HomeObserver* homeObserver_ = nullptr;
  MemoryStorage memory_;
  CountingClock clock_;
  FlatMap<Addr, HomeState> state_;
  std::uint32_t gen_ = 0;
  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cDataSupplied_ = stats_.counter("mem.dataSupplied");
  Counter cPutM_ = stats_.counter("mem.putM");
  Counter cStalePutM_ = stats_.counter("mem.stalePutM");
  Counter cHeldForWb_ = stats_.counter("mem.heldForWb");
  Counter cUnexpectedData_ = stats_.counter("mem.unexpectedData");
  Counter cMisrouted_ = stats_.counter("mem.misrouted");
};

}  // namespace dvmc
