// Logical time bases for the Cache Coherence checker (Section 4.3).
//
// Any time base that respects causality works. The paper chooses:
//  * snooping  — each controller counts the coherence requests it has
//    processed so far; since every controller observes the same totally
//    ordered broadcast stream, these counts agree causally.
//  * directory — a slow, loosely synchronized physical clock distributed
//    to each controller. As long as the skew between any two controllers
//    is below the minimum communication latency, causality is preserved.
//
// Checkers operate on 16-bit truncations of these wide counts; scrub FIFOs
// keep live timestamps within half the 16-bit wheel.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/wrap16.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class LogicalClock {
 public:
  virtual ~LogicalClock() = default;

  /// Full-width logical time (simulator bookkeeping, scrub decisions).
  virtual std::uint64_t now() = 0;

  /// Truncated wire/storage format used by CET/MET and Inform messages.
  LTime16 now16() { return ltimeTruncate(now()); }
};

/// Directory time base: (cycle + skew) / divisor. The divisor makes the
/// clock "relatively slow"; skew models loose synchronization and must stay
/// below the minimum network latency divided by the divisor.
class PhysicalLogicalClock final : public LogicalClock {
 public:
  PhysicalLogicalClock(Simulator& sim, Cycle divisor, Cycle skew)
      : sim_(sim), divisor_(divisor), skew_(skew) {}

  std::uint64_t now() override { return (sim_.now() + skew_) / divisor_; }

  Cycle divisor() const { return divisor_; }

 private:
  Simulator& sim_;
  Cycle divisor_;
  Cycle skew_;
};

/// Snooping time base: number of coherence requests this controller has
/// processed. The controller calls tick() once per snooped request.
class CountingClock final : public LogicalClock {
 public:
  std::uint64_t now() override { return count_; }
  void tick() { ++count_; }
  void tickTo(std::uint64_t v) {
    if (v > count_) count_ = v;
  }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace dvmc
