#include "coherence/directory_home.hpp"

#include "common/assert.hpp"
#include "common/crc16.hpp"

namespace dvmc {

DirectoryHome::DirectoryHome(Simulator& sim, TorusNetwork& net, NodeId node,
                             MemoryMap map, CoherenceTimings timings,
                             ErrorSink* sink)
    : sim_(sim),
      net_(net),
      node_(node),
      map_(map),
      timings_(timings),
      sink_(sink),
      memory_(/*eccProtected=*/true) {}

NodeId DirectoryHome::ownerOf(Addr blk) const {
  auto it = dir_.find(blk);
  return it == dir_.end() ? kInvalidNode : it->second.owner;
}

std::set<NodeId> DirectoryHome::sharersOf(Addr blk) const {
  auto it = dir_.find(blk);
  return it == dir_.end() ? std::set<NodeId>{} : it->second.sharers;
}

bool DirectoryHome::isBusy(Addr blk) const {
  auto it = dir_.find(blk);
  return it != dir_.end() && it->second.busy;
}

void DirectoryHome::onMessage(const Message& msg) {
  if (map_.homeOf(msg.addr) != node_) {
    // Misrouted (injected fault): a real controller's address decoder would
    // reject this; drop and count. DVMC detects the downstream consequence.
    cMisrouted_.inc();
    return;
  }
  const Addr blk = blockAddr(msg.addr);
  DirEntry& e = dir_[blk];

  switch (msg.type) {
    case MsgType::kGetS:
    case MsgType::kGetM:
    case MsgType::kPutM:
      // All requests funnel through the per-block service queue; the busy
      // decision is made when the controller actually picks the request up
      // (deciding at arrival would let two near-simultaneous requests both
      // observe a non-busy block and race).
      e.pending.push_back(msg);
      sim_.schedule(timings_.ctrlLatency, [this, blk, g = gen_] {
        if (g != gen_) return;  // squashed by BER recovery
        serviceQueue(blk);
      });
      return;
    case MsgType::kUnblock:
      if (!e.busy) {
        cStrayUnblock_.inc();  // duplicated message fault
        return;
      }
      e.busy = false;
      serviceQueue(blk);
      return;
    default:
      DVMC_FATAL("unexpected message type at directory home");
  }
}

void DirectoryHome::serviceQueue(Addr blk) {
  DirEntry& e = dir_[blk];
  while (!e.busy && !e.pending.empty()) {
    const Message msg = e.pending.front();
    e.pending.pop_front();
    cServiced_.inc();
    process(msg, e);
    // GetS/GetM set busy (released by Unblock); PutM completes in place and
    // lets the loop keep draining.
  }
}

void DirectoryHome::process(const Message& msg, DirEntry& e) {
  switch (msg.type) {
    case MsgType::kGetS:
      handleGetS(msg, e);
      break;
    case MsgType::kGetM:
      handleGetM(msg, e);
      break;
    case MsgType::kPutM:
      handlePutM(msg, e);
      break;
    default:
      DVMC_FATAL("unexpected message in home process()");
  }
}

void DirectoryHome::handleGetS(const Message& msg, DirEntry& e) {
  const Addr blk = blockAddr(msg.addr);
  cGetS_.inc();
  if (homeObserver_ != nullptr) {
    homeObserver_->onHomeRequest(blk,
                                 memory_.read(blk, sink_, node_, sim_.now()));
  }
  if (e.owner == msg.src) {
    // The registered owner re-requesting means its copy vanished without a
    // writeback — only possible under injected faults. Serve stale memory
    // data; the coherence checker's data-propagation rule flags it.
    e.owner = kInvalidNode;
    cOwnerReRequest_.inc();
  }
  if (e.owner != kInvalidNode) {
    Message fwd;
    fwd.type = MsgType::kFwdGetS;
    fwd.src = node_;
    fwd.dest = e.owner;
    fwd.addr = blk;
    fwd.requester = msg.src;
    send(fwd);
    cFwdGetS_.inc();
    if (homeObserver_ != nullptr) {
      homeObserver_->onHomeGrant(blk, msg.src, /*readWrite=*/false,
                                 /*fromMemory=*/false, 0);
    }
  } else {
    sendDataFromMemory(blk, msg.src, 0);
    if (homeObserver_ != nullptr) {
      homeObserver_->onHomeGrant(
          blk, msg.src, /*readWrite=*/false, /*fromMemory=*/true,
          hashBlock(memory_.read(blk, sink_, node_, sim_.now())));
    }
  }
  e.sharers.insert(msg.src);
  e.busy = true;
}

void DirectoryHome::handleGetM(const Message& msg, DirEntry& e) {
  const Addr blk = blockAddr(msg.addr);
  cGetM_.inc();
  if (homeObserver_ != nullptr) {
    homeObserver_->onHomeRequest(blk,
                                 memory_.read(blk, sink_, node_, sim_.now()));
  }

  std::set<NodeId> invTargets = e.sharers;
  invTargets.erase(msg.src);
  if (e.owner != kInvalidNode) invTargets.erase(e.owner);
  const int ackCount = static_cast<int>(invTargets.size());

  if (e.owner != kInvalidNode && e.owner != msg.src) {
    Message fwd;
    fwd.type = MsgType::kFwdGetM;
    fwd.src = node_;
    fwd.dest = e.owner;
    fwd.addr = blk;
    fwd.requester = msg.src;
    fwd.ackCount = ackCount;
    send(fwd);
    cFwdGetM_.inc();
  } else if (e.owner == msg.src) {
    // O -> M upgrade: the requester already holds the latest data; send an
    // ack-count-only response.
    Message d;
    d.type = MsgType::kData;
    d.src = node_;
    d.dest = msg.src;
    d.addr = blk;
    d.ackCount = ackCount;
    d.hasData = false;
    send(d);
    cUpgradeAck_.inc();
  } else {
    sendDataFromMemory(blk, msg.src, ackCount);
  }

  for (NodeId t : invTargets) {
    Message inv;
    inv.type = MsgType::kInv;
    inv.src = node_;
    inv.dest = t;
    inv.addr = blk;
    inv.requester = msg.src;
    send(inv);
    cInv_.inc();
  }

  if (homeObserver_ != nullptr) {
    const bool fromMemory = e.owner == kInvalidNode;
    homeObserver_->onHomeGrant(
        blk, msg.src, /*readWrite=*/true, fromMemory,
        fromMemory ? hashBlock(memory_.read(blk, sink_, node_, sim_.now()))
                   : static_cast<std::uint16_t>(0));
  }
  e.owner = msg.src;
  e.sharers.clear();
  e.busy = true;
}

void DirectoryHome::handlePutM(const Message& msg, DirEntry& e) {
  const Addr blk = blockAddr(msg.addr);
  Message reply;
  reply.src = node_;
  reply.dest = msg.src;
  reply.addr = blk;
  if (e.owner == msg.src) {
    DVMC_ASSERT(msg.hasData, "PutM without data");
    memory_.write(blk, msg.data);
    e.owner = kInvalidNode;
    reply.type = MsgType::kPutAck;
    cPutM_.inc();
    if (homeObserver_ != nullptr) {
      homeObserver_->onHomeWriteback(blk, msg.src, hashBlock(msg.data),
                                     /*accepted=*/true);
    }
    if (e.sharers.empty() && homeObserver_ != nullptr) {
      // Note: silent S evictions make the sharer list conservative — the
      // home may believe sharers exist when they are gone, delaying MET
      // eviction, but never evicts an entry that is still live.
      homeObserver_->onBlockUncached(blk);
    }
  } else {
    // Ownership already transferred by a racing GetM; the writeback is
    // stale and the data must be discarded.
    reply.type = MsgType::kNackPutM;
    cNackPutM_.inc();
    if (homeObserver_ != nullptr) {
      homeObserver_->onHomeWriteback(blk, msg.src, hashBlock(msg.data),
                                     /*accepted=*/false);
    }
  }
  send(reply);
}

void DirectoryHome::sendDataFromMemory(Addr blk, NodeId dest, int ackCount) {
  // The reply (memory image included) is built at the *read* point and
  // parked in the pool for the memory latency; the scheduled event carries
  // a 16-byte handle instead of a DataBlock capture.
  Message m;
  m.type = MsgType::kData;
  m.src = node_;
  m.dest = dest;
  m.addr = blk;
  m.ackCount = ackCount;
  m.hasData = true;
  m.data = memory_.read(blk, sink_, node_, sim_.now());
  m.fromMemory = true;
  sim_.schedule(timings_.memLatency,
                [this, pm = pool_.acquire(std::move(m)), g = gen_]() mutable {
                  if (g != gen_) return;
                  send(std::move(*pm));
                });
  cMemData_.inc();
}

}  // namespace dvmc
