#include "coherence/directory_cache.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace dvmc {

DirectoryCacheController::DirectoryCacheController(
    Simulator& sim, TorusNetwork& net, NodeId node, MemoryMap map,
    CacheGeometry l2Geom, CoherenceTimings timings, ErrorSink* sink,
    std::unique_ptr<LogicalClock> clock)
    : sim_(sim),
      net_(net),
      node_(node),
      map_(map),
      timings_(timings),
      sink_(sink),
      clock_(std::move(clock)),
      array_(l2Geom, /*eccProtected=*/true) {}

const DataBlock* DirectoryCacheController::peekReadable(Addr blk) {
  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiCanRead(line->state)) return &line->data;
  return nullptr;
}

bool DirectoryCacheController::peekWritable(Addr blk) {
  CacheLine* line = array_.find(blk);
  return line != nullptr && mosiCanWrite(line->state);
}

void DirectoryCacheController::request(const CacheOp& op, CacheOpCallback cb) {
  // Loads pay the full L2 array access; stores and atomics drain through
  // the dedicated write port (writes to an already-owned line are cheap —
  // they would hit an L1-class writeback structure in a real hierarchy).
  const bool writePath = op.kind == CacheOp::Kind::kStore ||
                         op.kind == CacheOp::Kind::kAtomicSwap ||
                         op.kind == CacheOp::Kind::kAtomicCas;
  const Cycle lat = writePath ? timings_.storeLatency : timings_.l2Latency;
  sim_.schedule(lat, [this, op, cb = std::move(cb), g = gen_] {
    if (g != gen_) return;  // squashed by BER recovery
    processOp(op, cb);
  });
}

void DirectoryCacheController::processOp(const CacheOp& op,
                                         CacheOpCallback cb) {
  const Addr blk = blockAddr(op.addr);

  // A transaction is already in flight: queue behind it.
  auto mit = mshrs_.find(blk);
  if (mit != mshrs_.end()) {
    mit->second.ops.push_back(PendingOp{op, std::move(cb)});
    return;
  }

  CacheLine* line = array_.find(blk);
  const bool needsWrite = op.kind == CacheOp::Kind::kStore ||
                          op.kind == CacheOp::Kind::kAtomicSwap ||
                          op.kind == CacheOp::Kind::kAtomicCas ||
                          op.kind == CacheOp::Kind::kPrefetchM;

  if (line != nullptr && mosiCanRead(line->state) &&
      (!needsWrite || mosiCanWrite(line->state))) {
    array_.touch(*line, sink_, node_, sim_.now());
    cHit_.inc();
    const std::size_t off = blockOffset(op.addr);
    switch (op.kind) {
      case CacheOp::Kind::kLoad:
      case CacheOp::Kind::kReplayLoad:
        completeOp(op, cb, line->data.read(off, op.size), op.countsAsPerform);
        return;
      case CacheOp::Kind::kStore:
        line->data.write(off, op.size, op.value);
        if (storeHook_) storeHook_(op.addr, op.size, op.value);
        completeOp(op, cb, 0, true);
        return;
      case CacheOp::Kind::kAtomicSwap: {
        const std::uint64_t old = line->data.read(off, op.size);
        line->data.write(off, op.size, op.value);
        if (storeHook_) storeHook_(op.addr, op.size, op.value);
        completeOp(op, cb, old, true);
        return;
      }
      case CacheOp::Kind::kAtomicCas: {
        const std::uint64_t old = line->data.read(off, op.size);
        if (old == op.compare) {
          line->data.write(off, op.size, op.value);
          if (storeHook_) storeHook_(op.addr, op.size, op.value);
        }
        completeOp(op, cb, old, true);
        return;
      }
      case CacheOp::Kind::kPrefetchS:
      case CacheOp::Kind::kPrefetchM:
        completeOp(op, cb, 0, false);
        return;
    }
  }

  cMiss_.inc();
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kCoherence,
               needsWrite ? "l2.missM" : "l2.missS", node_, blk, 0);
  }
  startTransaction(blk, needsWrite, PendingOp{op, std::move(cb)});
}

void DirectoryCacheController::completeOp(const CacheOp& op,
                                          const CacheOpCallback& cb,
                                          std::uint64_t value,
                                          bool performed) {
  if (performed && epochs_ != nullptr) {
    const bool isWrite = op.kind == CacheOp::Kind::kStore ||
                         op.kind == CacheOp::Kind::kAtomicSwap ||
                         op.kind == CacheOp::Kind::kAtomicCas;
    epochs_->onPerformAccess(blockAddr(op.addr), isWrite);
  }
  CacheOpResult r;
  r.tag = op.tag;
  r.value = value;
  r.performLogical = clock_->now();
  r.completedAt = sim_.now();
  if (cb) cb(r);
}

void DirectoryCacheController::startTransaction(Addr blk, bool wantM,
                                                PendingOp pending) {
  Mshr& m = mshrs_[blk];
  m.wantM = wantM;
  m.ops.push_back(std::move(pending));
  if (wbBuffer_.count(blk) != 0) {
    // Our own writeback for this block is still in flight; wait for the
    // PutAck/Nack before re-requesting, so the home never sees the current
    // owner re-request its own block.
    m.requestSent = false;
    cWbStall_.inc();
    return;
  }
  sendRequest(blk, m);
  mshrs_[blk].requestSent = true;
}

void DirectoryCacheController::sendRequest(Addr blk, const Mshr& mshr) {
  Message req;
  req.type = mshr.wantM ? MsgType::kGetM : MsgType::kGetS;
  req.src = node_;
  req.dest = map_.homeOf(blk);
  req.addr = blk;
  send(req);
  (mshr.wantM ? cGetM_ : cGetS_).inc();
}

void DirectoryCacheController::onMessage(const Message& msg) {
  const Addr blk = blockAddr(msg.addr);
  switch (msg.type) {
    case MsgType::kData: {
      auto it = mshrs_.find(blk);
      if (it == mshrs_.end()) {
        // Possible only under injected faults (duplicated or misrouted
        // message); drop it and let the checkers flag any consequence.
        cStrayData_.inc();
        return;
      }
      Mshr& m = it->second;
      m.dataReceived = true;
      m.acksExpected = msg.ackCount;
      if (msg.hasData) {
        m.dataCarried = true;
        m.data = msg.data;
      }
      maybeFinalize(blk);
      return;
    }
    case MsgType::kInvAck: {
      auto it = mshrs_.find(blk);
      if (it == mshrs_.end()) {
        // Possible only under injected faults (e.g., duplicated message).
        cStrayInvAck_.inc();
        return;
      }
      ++it->second.acksReceived;
      maybeFinalize(blk);
      return;
    }
    case MsgType::kFwdGetS:
      handleFwdGetS(msg);
      return;
    case MsgType::kFwdGetM:
      handleFwdGetM(msg);
      return;
    case MsgType::kInv:
      handleInv(msg);
      return;
    case MsgType::kPutAck:
    case MsgType::kNackPutM: {
      wbBuffer_.erase(blk);
      auto it = mshrs_.find(blk);
      if (it != mshrs_.end() && !it->second.requestSent) {
        sendRequest(blk, it->second);
        it->second.requestSent = true;
      }
      return;
    }
    default:
      DVMC_FATAL("unexpected message type at cache controller");
  }
}

void DirectoryCacheController::maybeFinalize(Addr blk) {
  auto it = mshrs_.find(blk);
  DVMC_ASSERT(it != mshrs_.end(), "finalize without MSHR");
  Mshr& m = it->second;
  if (!m.dataReceived) return;
  if (m.acksExpected >= 0 && m.acksReceived < m.acksExpected) return;
  finalizeTransaction(blk);
}

void DirectoryCacheController::finalizeTransaction(Addr blk) {
  // A fill needs a way. When every line in the set is itself
  // mid-transaction (upgrade MSHR, writeback awaiting its PutAck), hardware
  // holds the response in the MSHR until a way frees; model that as a
  // bounded-latency retry. The blocked transactions never depend on this
  // block's unblock, so one of them always completes.
  if (CacheLine* l = array_.find(blk); l == nullptr || !mosiCanRead(l->state)) {
    if (array_.victim(blk, [this](const CacheLine& c) {
          return mshrs_.count(c.tag) == 0 && wbBuffer_.count(c.tag) == 0;
        }) == nullptr) {
      cFillStall_.inc();
      sim_.schedule(kFillRetryCycles, [this, blk, g = gen_] {
        if (g != gen_) return;  // squashed by BER recovery
        if (mshrs_.count(blk) != 0) finalizeTransaction(blk);
      });
      return;
    }
  }

  Mshr m = std::move(mshrs_.at(blk));
  mshrs_.erase(blk);

  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiCanRead(line->state)) {
    // Upgrade path (S -> M or O -> M): close the Read-Only epoch, adopt the
    // freshest data, open the Read-Write epoch.
    DVMC_ASSERT(m.wantM, "GetS completion with a valid line");
    if (epochs_ != nullptr) epochs_->onEpochEnd(blk, line->data, clock_->now());
    if (m.dataCarried) line->data = m.data;
    line->state = MosiState::kM;
    array_.touch(*line, sink_, node_, sim_.now());
    if (epochs_ != nullptr) epochs_->onEpochBegin(blk, true, line->data, clock_->now());
  } else if (m.dataCarried) {
    installWithEviction(blk, m.wantM ? MosiState::kM : MosiState::kS, m.data);
  } else if (m.invStashed) {
    // Ack-count-only upgrade whose line vanished mid-flight to a stale Inv
    // (ordered before the grant that produced our copy — the home still
    // listing us proves no writer intervened since), so the stashed copy
    // is the current data.
    installWithEviction(blk, m.wantM ? MosiState::kM : MosiState::kS,
                        m.invStash);
  } else {
    // Ack-count-only upgrade with no local copy at all: the home believes
    // we are the owner, but our line left without a writeback — possible
    // only under injected faults (a state flip demoting M so the eviction
    // went out silently as clean, or a duplicated writeback resurrecting
    // stale ownership). An ownership grant without data for a block we do
    // not hold is a protocol invariant violation the controller can see
    // locally, so report it — a permission-only coherence checker has no
    // data hashes to catch the consequence otherwise. Install a zeroed
    // block to keep the machine running until recovery reacts.
    cUpgradeNoData_.inc();
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                     "ownership grant without data for an absent block"});
    }
    installWithEviction(blk, m.wantM ? MosiState::kM : MosiState::kS,
                        DataBlock{});
  }

  Message unblock;
  unblock.type = MsgType::kUnblock;
  unblock.src = node_;
  unblock.dest = map_.homeOf(blk);
  unblock.addr = blk;
  send(unblock);

  // Re-dispatch queued operations; each either hits now or (e.g., a store
  // queued behind a GetS) starts its own follow-up transaction.
  for (auto& p : m.ops) {
    processOp(p.op, std::move(p.cb));
  }
}

void DirectoryCacheController::installWithEviction(Addr blk, MosiState st,
                                                   const DataBlock& d) {
  CacheLine* victim = array_.victim(blk, [this](const CacheLine& l) {
    return mshrs_.count(l.tag) == 0 && wbBuffer_.count(l.tag) == 0;
  });
  DVMC_ASSERT(victim != nullptr, "no evictable way in set");
  if (victim->valid) evictLine(*victim);
  array_.install(*victim, blk, st, d);
  if (epochs_ != nullptr) {
    epochs_->onEpochBegin(blk, st == MosiState::kM, d, clock_->now());
  }
}

void DirectoryCacheController::evictLine(CacheLine& line) {
  const Addr blk = line.tag;
  if (epochs_ != nullptr) epochs_->onEpochEnd(blk, line.data, clock_->now());
  if (mosiIsOwner(line.state)) {
    wbBuffer_[blk] = line.data;
    Message putm;
    putm.type = MsgType::kPutM;
    putm.src = node_;
    putm.dest = map_.homeOf(blk);
    putm.addr = blk;
    putm.hasData = true;
    putm.data = line.data;
    send(putm);
    cEvictDirty_.inc();
  } else {
    cEvictClean_.inc();
  }
  line.valid = false;
  line.state = MosiState::kI;
  notifyCpuLost(blk, /*remoteWrite=*/false);  // local eviction
}

void DirectoryCacheController::handleFwdGetS(const Message& msg) {
  const Addr blk = blockAddr(msg.addr);
  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiIsOwner(line->state)) {
    array_.touch(*line, sink_, node_, sim_.now());
    sendData(msg.requester, blk, line->data, 0);
    if (line->state == MosiState::kM) {
      // M -> O: the Read-Write epoch ends, a Read-Only epoch begins.
      if (epochs_ != nullptr) {
        epochs_->onEpochEnd(blk, line->data, clock_->now());
        epochs_->onEpochBegin(blk, false, line->data, clock_->now());
      }
      line->state = MosiState::kO;
    }
    return;
  }
  auto wb = wbBuffer_.find(blk);
  if (wb != wbBuffer_.end()) {
    sendData(msg.requester, blk, wb->second, 0);
    return;
  }
  // Unreachable in a fault-free run: the home forwarded to us but we are
  // not the owner — a locally visible protocol invariant violation. Report
  // it (a permission-only coherence checker has no data hashes to catch
  // the fabricated payload downstream) and keep the system limping.
  cUnexpectedFwdGetS_.inc();
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                   "FwdGetS received for a block this node does not own"});
  }
  sendData(msg.requester, blk, line != nullptr ? line->data : DataBlock{}, 0);
}

void DirectoryCacheController::handleFwdGetM(const Message& msg) {
  const Addr blk = blockAddr(msg.addr);
  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiCanRead(line->state)) {
    array_.touch(*line, sink_, node_, sim_.now());
    sendData(msg.requester, blk, line->data, msg.ackCount);
    if (epochs_ != nullptr) epochs_->onEpochEnd(blk, line->data, clock_->now());
    line->valid = false;
    line->state = MosiState::kI;
    notifyCpuLost(blk, /*remoteWrite=*/true);  // a remote GetM took it
    return;
  }
  auto wb = wbBuffer_.find(blk);
  if (wb != wbBuffer_.end()) {
    sendData(msg.requester, blk, wb->second, msg.ackCount);
    return;
  }
  // Same invariant violation as the FwdGetS case above, but for an
  // ownership transfer: the requester would install and dirty a fabricated
  // block, which only a data-hashing checker could catch later.
  cUnexpectedFwdGetM_.inc();
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                   "FwdGetM received for a block this node does not own"});
  }
  sendData(msg.requester, blk, DataBlock{}, msg.ackCount);
}

void DirectoryCacheController::handleInv(const Message& msg) {
  const Addr blk = blockAddr(msg.addr);
  CacheLine* line = array_.find(blk);
  if (line != nullptr && mosiCanRead(line->state)) {
    if (auto it = mshrs_.find(blk); it != mshrs_.end()) {
      // The Inv raced our own outstanding transaction. If it was ordered
      // before the grant that gave us this copy (stale Inv from a slow
      // network), an ack-count-only upgrade response still expects us to
      // hold the data — keep a copy so finalize can install it.
      it->second.invStash = line->data;
      it->second.invStashed = true;
    }
    if (epochs_ != nullptr) epochs_->onEpochEnd(blk, line->data, clock_->now());
    line->valid = false;
    line->state = MosiState::kI;
  }
  // An Inv after a silent S-eviction finds no line, but the CPU may still
  // hold speculatively performed loads on the block — the squash hint must
  // fire regardless of line presence.
  notifyCpuLost(blk, /*remoteWrite=*/true);
  Message ack;
  ack.type = MsgType::kInvAck;
  ack.src = node_;
  ack.dest = msg.requester;
  ack.addr = blk;
  send(ack);
}

void DirectoryCacheController::sendData(NodeId dest, Addr blk,
                                        const DataBlock& d, int ackCount) {
  Message m;
  m.type = MsgType::kData;
  m.src = node_;
  m.dest = dest;
  m.addr = blk;
  m.hasData = true;
  m.data = d;
  m.ackCount = ackCount;
  send(m);
  cDataSupplied_.inc();
}

void DirectoryCacheController::notifyCpuLost(Addr blk, bool remoteWrite) {
  if (cpu_ != nullptr) cpu_->onReadPermissionLost(blk, remoteWrite);
}

void DirectoryCacheController::invalidateAll() {
  array_.forEachValid([](CacheLine& line) {
    line.valid = false;
    line.state = MosiState::kI;
  });
  mshrs_.clear();
  wbBuffer_.clear();
  ++gen_;  // squash scheduled controller events from the rolled-back past
}

}  // namespace dvmc
