// L2 cache + cache-side controller for the MOSI snooping protocol.
//
// Requests broadcast on the ordered address network; the position of a
// request in that total order is the point at which it logically happens.
// Snoops that target a block we have an ordered-but-incomplete transaction
// for are deferred and applied after our data arrives, stamped with the
// logical time of their own order point (not of their delayed processing),
// which keeps the epoch timestamps causal.
#pragma once

#include <cstdint>
#include <deque>

#include "coherence/cache_array.hpp"
#include "coherence/interfaces.hpp"
#include "coherence/logical_clock.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "obs/metrics.hpp"
#include "net/broadcast_tree.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class SnoopCacheController final : public CoherentCache {
 public:
  SnoopCacheController(Simulator& sim, BroadcastTree& addrNet,
                       TorusNetwork& dataNet, NodeId node, MemoryMap map,
                       CacheGeometry l2Geom, CoherenceTimings timings,
                       ErrorSink* sink);

  // --- CoherentCache ---
  void request(const CacheOp& op, CacheOpCallback cb) override;
  void setCpuNotifier(CpuNotifier* n) override { cpu_ = n; }
  void setEpochObserver(EpochObserver* o) override { epochs_ = o; }
  EpochObserver* epochObserver() const override { return epochs_; }
  void setStorePerformHook(StorePerformHook h) override {
    storeHook_ = std::move(h);
  }
  LogicalClock& clock() override { return clock_; }
  const DataBlock* peekReadable(Addr blk) override;
  bool peekWritable(Addr blk) override;

  /// Address-network entry: every broadcast, in total order.
  void onSnoop(const Message& msg);

  /// Data-network entry: kSnpData responses.
  void onMessage(const Message& msg);

  const MetricSet& stats() const { return stats_; }
  CacheArray& array() { return array_; }
  NodeId node() const { return node_; }
  void invalidateAll();
  bool idle() const { return mshrs_.empty() && wbBuffer_.empty(); }

 private:
  struct PendingOp {
    CacheOp op;
    CacheOpCallback cb;
  };

  struct WbEntry {
    DataBlock data;
    bool stillOwner = true;
  };

  struct Mshr {
    bool wantM = false;
    bool ordered = false;
    std::uint64_t orderTime = 0;  // clock value at our request's snoop
    bool dataReceived = false;
    DataBlock data;
    bool selfSupply = false;  // O -> M upgrade: our line has the data
    std::deque<Message> deferredSnoops;
    std::deque<PendingOp> ops;
  };

  void processOp(const CacheOp& op, CacheOpCallback cb);
  void completeOp(const CacheOp& op, const CacheOpCallback& cb,
                  std::uint64_t value, bool performed);
  void startTransaction(Addr blk, bool wantM, PendingOp pending);
  void maybeComplete(Addr blk);
  void applySnoop(const Message& msg, std::uint64_t ltime);
  void installWithEviction(Addr blk, MosiState st, const DataBlock& d,
                           std::uint64_t ltime);
  void evictLine(CacheLine& line);
  void supplyData(NodeId dest, const Addr blk, const DataBlock& d);
  void notifyCpuLost(Addr blk, bool remoteWrite);

  Simulator& sim_;
  BroadcastTree& addrNet_;
  TorusNetwork& dataNet_;
  NodeId node_;
  MemoryMap map_;
  CoherenceTimings timings_;
  ErrorSink* sink_;
  CountingClock clock_;
  CacheArray array_;
  CpuNotifier* cpu_ = nullptr;
  EpochObserver* epochs_ = nullptr;
  StorePerformHook storeHook_;
  FlatMap<Addr, Mshr> mshrs_;
  FlatMap<Addr, WbEntry> wbBuffer_;
  std::uint32_t gen_ = 0;  // bumped by invalidateAll (BER recovery)
  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cHit_ = stats_.counter("l2.hit");
  Counter cMiss_ = stats_.counter("l2.miss");
  Counter cGetS_ = stats_.counter("l2.getS");
  Counter cGetM_ = stats_.counter("l2.getM");
  Counter cFillStall_ = stats_.counter("l2.fillStall");
  Counter cEvictClean_ = stats_.counter("l2.evictClean");
  Counter cEvictDirty_ = stats_.counter("l2.evictDirty");
  Counter cDataSupplied_ = stats_.counter("l2.dataSupplied");
  Counter cWbData_ = stats_.counter("l2.wbData");
  Counter cDeferredSnoop_ = stats_.counter("l2.deferredSnoop");
  Counter cStraySelfSnoop_ = stats_.counter("l2.straySelfSnoop");
  Counter cUnexpectedData_ = stats_.counter("l2.unexpectedData");
  Counter cStrayData_ = stats_.counter("l2.strayData");
};

}  // namespace dvmc
