// L1 + L2 cache hierarchy.
//
// The L1 is a write-through, inclusive latency filter in front of the
// coherent L2: it never holds data the L2 lacks read permission for, so
// coherence permissions are enforced entirely at L2 (the coherence point)
// while L1 hits model the common fast path. The hierarchy separately counts
// L1 misses for regular execution loads and for verification-stage replay
// loads — the ratio is the paper's Figure 6 metric.
#pragma once

#include <cstdint>

#include "coherence/cache_array.hpp"
#include "coherence/interfaces.hpp"
#include "common/error_sink.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class CacheHierarchy final : public CpuNotifier {
 public:
  CacheHierarchy(Simulator& sim, CoherentCache& l2, CacheGeometry l1Geom,
                 CoherenceTimings timings, ErrorSink* sink, NodeId node);

  /// Issues an operation; the callback fires when it completes.
  void access(const CacheOp& op, CacheOpCallback cb);

  /// The CPU registers here (the hierarchy filters L2 notifications through
  /// the L1 before forwarding them).
  void setCpuNotifier(CpuNotifier* n) { cpu_ = n; }

  // --- CpuNotifier (wired to the L2 controller) ---
  void onReadPermissionLost(Addr blk, bool remoteWrite) override;

  CacheArray& l1() { return l1_; }
  CoherentCache& l2() { return l2_; }
  const MetricSet& stats() const { return stats_; }

  std::uint64_t regularLoadL1Misses() const { return regularMisses_; }
  std::uint64_t replayLoadL1Misses() const { return replayMisses_; }

  /// BER recovery: drop every L1 line (the L2 was invalidated).
  void invalidateL1() {
    l1_.forEachValid([](CacheLine& line) { line.valid = false; });
  }

 private:
  void finishLoadFromL1(const CacheOp& op, const CacheOpCallback& cb,
                        CacheLine& line);
  void forwardToL2(const CacheOp& op, CacheOpCallback cb);

  Simulator& sim_;
  CoherentCache& l2_;
  CoherenceTimings timings_;
  ErrorSink* sink_;
  NodeId node_;
  CacheArray l1_;
  CpuNotifier* cpu_ = nullptr;
  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cHit_ = stats_.counter("l1.hit");
  Counter cMiss_ = stats_.counter("l1.miss");
  Counter cReplayHit_ = stats_.counter("l1.replayHit");
  Counter cReplayMiss_ = stats_.counter("l1.replayMiss");
  std::uint64_t regularMisses_ = 0;
  std::uint64_t replayMisses_ = 0;
};

}  // namespace dvmc
