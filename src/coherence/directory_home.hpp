// Home memory controller for the MOSI directory protocol.
//
// A blocking directory: while a GetS/GetM transaction is in flight for a
// block, later requests for that block queue at the home and are released
// by the requester's Unblock message. The home forwards requests to the
// current owner (FwdGetS / FwdGetM), sends invalidations to sharers, and
// supplies data from memory when it is the owner. PutM writebacks are
// accepted from the registered owner and NACKed when they race with an
// ownership transfer (the evictor serves forwards from its writeback
// buffer in the meantime).
#pragma once

#include <cstdint>
#include <deque>
#include <set>

#include "coherence/interfaces.hpp"
#include "coherence/memory_storage.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "obs/metrics.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class DirectoryHome {
 public:
  DirectoryHome(Simulator& sim, TorusNetwork& net, NodeId node,
                MemoryMap map, CoherenceTimings timings, ErrorSink* sink);

  /// Network entry point (router dispatches home-bound messages here).
  void onMessage(const Message& msg);

  void setHomeObserver(HomeObserver* o) { homeObserver_ = o; }

  MemoryStorage& memory() { return memory_; }
  const MetricSet& stats() const { return stats_; }

  /// Directory introspection for tests.
  NodeId ownerOf(Addr blk) const;
  std::set<NodeId> sharersOf(Addr blk) const;
  bool isBusy(Addr blk) const;

  /// Number of blocks with a directory entry (MET sizing, Section 6.3).
  std::size_t directoryEntries() const { return dir_.size(); }

  /// BER recovery: caches were invalidated and memory restored; memory owns
  /// every block again and pending transactions are squashed.
  void resetDirectory() {
    dir_.clear();
    ++gen_;  // squash scheduled home events from the rolled-back past
  }

 private:
  struct DirEntry {
    NodeId owner = kInvalidNode;
    std::set<NodeId> sharers;
    bool busy = false;
    std::deque<Message> pending;
  };

  void process(const Message& msg, DirEntry& e);
  void handleGetS(const Message& msg, DirEntry& e);
  void handleGetM(const Message& msg, DirEntry& e);
  void handlePutM(const Message& msg, DirEntry& e);
  void serviceQueue(Addr blk);
  void sendDataFromMemory(Addr blk, NodeId dest, int ackCount);
  void send(Message m) { net_.send(std::move(m)); }

  Simulator& sim_;
  TorusNetwork& net_;
  MessagePool pool_;  // parks memory-latency data replies in flight
  NodeId node_;
  MemoryMap map_;
  CoherenceTimings timings_;
  ErrorSink* sink_;
  HomeObserver* homeObserver_ = nullptr;
  MemoryStorage memory_;
  FlatMap<Addr, DirEntry> dir_;
  std::uint32_t gen_ = 0;
  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cServiced_ = stats_.counter("home.serviced");
  Counter cGetS_ = stats_.counter("home.getS");
  Counter cGetM_ = stats_.counter("home.getM");
  Counter cFwdGetS_ = stats_.counter("home.fwdGetS");
  Counter cFwdGetM_ = stats_.counter("home.fwdGetM");
  Counter cUpgradeAck_ = stats_.counter("home.upgradeAck");
  Counter cInv_ = stats_.counter("home.inv");
  Counter cPutM_ = stats_.counter("home.putM");
  Counter cNackPutM_ = stats_.counter("home.nackPutM");
  Counter cMemData_ = stats_.counter("home.memData");
  Counter cOwnerReRequest_ = stats_.counter("home.ownerReRequest");
  Counter cStrayUnblock_ = stats_.counter("home.strayUnblock");
  Counter cMisrouted_ = stats_.counter("home.misrouted");
};

}  // namespace dvmc
