#include "verify/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/assert.hpp"
#include "verify/trace_sink.hpp"

namespace dvmc::verify {
namespace {

void putU32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(std::uint8_t(v >> (8 * i)));
}
void putU64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(std::uint8_t(v >> (8 * i)));
}
std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}
std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}
void putU64At(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = std::uint8_t(v >> (8 * i));
}

}  // namespace

const char* traceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kLoad: return "load";
    case TraceOp::kStore: return "store";
    case TraceOp::kSwap: return "swap";
    case TraceOp::kCas: return "cas";
    case TraceOp::kMembar: return "membar";
  }
  return "?";
}

void encodeTraceRecord(const TraceRecord& r, std::uint8_t* out) {
  out[0] = std::uint8_t(r.op);
  out[1] = r.node;
  out[2] = r.model;
  out[3] = r.flags;
  out[4] = r.membarMask;
  out[5] = 0;
  out[6] = 0;
  out[7] = 0;
  putU64At(out + 8, r.seq);
  putU64At(out + 16, r.addr);
  putU64At(out + 24, r.value);
  putU64At(out + 32, r.readValue);
  putU64At(out + 40, r.performCycle);
}

bool decodeTraceRecord(const std::uint8_t* p, TraceRecord* r) {
  if (p[0] > std::uint8_t(TraceOp::kMembar)) return false;
  r->op = TraceOp(p[0]);
  r->node = p[1];
  r->model = p[2];
  r->flags = p[3];
  r->membarMask = p[4];
  r->seq = getU64(p + 8);
  r->addr = getU64(p + 16);
  r->value = getU64(p + 24);
  r->readValue = getU64(p + 32);
  r->performCycle = getU64(p + 40);
  return true;
}

std::vector<std::uint8_t> CapturedTrace::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + records.size() * kRecordBytes);
  for (char c : kTraceMagic) out.push_back(std::uint8_t(c));
  putU32(out, std::uint32_t(kTraceSchemaVersion));
  putU32(out, numCores);
  out.push_back(declaredModel);
  out.push_back(protocol);
  out.push_back(truncated ? 1 : 0);
  out.push_back(0);
  putU32(out, 0);
  putU64(out, seed);
  putU64(out, records.size());
  putU64(out, 0);  // reserved
  DVMC_ASSERT(out.size() == kHeaderBytes, "trace header layout");
  out.resize(kHeaderBytes + records.size() * kRecordBytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    encodeTraceRecord(records[i], out.data() + byteOffset(i));
  }
  return out;
}

bool CapturedTrace::parse(const std::uint8_t* data, std::size_t size,
                          CapturedTrace* out, std::string* err) {
  auto fail = [&](std::size_t off, const char* what) {
    if (err) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "byte %zu: %s", off, what);
      *err = buf;
    }
    return false;
  };
  if (size < kHeaderBytes) return fail(size, "short header");
  if (std::memcmp(data, kTraceMagic, 8) != 0) {
    return fail(0, "bad magic (not a dvmc-trace file)");
  }
  const std::uint32_t version = getU32(data + 8);
  if (version != std::uint32_t(kTraceSchemaVersion)) {
    return fail(8, "unsupported dvmc-trace version");
  }
  out->numCores = getU32(data + 12);
  out->declaredModel = data[16];
  out->protocol = data[17];
  out->truncated = data[18] != 0;
  out->seed = getU64(data + 24);
  const std::uint64_t count = getU64(data + 32);
  if (out->numCores == 0 || out->numCores > 256) {
    return fail(12, "implausible core count");
  }
  if (out->declaredModel > std::uint8_t(ConsistencyModel::kRMO)) {
    return fail(16, "bad declared model");
  }
  if (size != kHeaderBytes + count * kRecordBytes) {
    return fail(32, "record count disagrees with file size");
  }
  out->records.clear();
  out->records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* p = data + byteOffset(i);
    TraceRecord r;
    if (!decodeTraceRecord(p, &r)) {
      return fail(byteOffset(i), "bad op code");
    }
    out->records.push_back(r);
  }
  return true;
}

bool writeTraceFile(const std::string& path, const CapturedTrace& t,
                    std::string* err) {
  const std::vector<std::uint8_t> bytes = t.serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  std::fclose(f);
  if (!ok && err) *err = "short write to " + path;
  return ok;
}

bool readTraceFile(const std::string& path, CapturedTrace* t,
                   std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  // Sniff the version: v1 parses from one flat buffer, v2 streams chunk
  // by chunk through a memory sink (same result, different container).
  std::uint8_t hdr[CapturedTrace::kHeaderBytes];
  const std::size_t got = std::fread(hdr, 1, sizeof hdr, f);
  if (got == sizeof hdr && std::memcmp(hdr, kTraceMagic, 8) == 0 &&
      getU32(hdr + 8) == std::uint32_t(kTraceChunkedVersion)) {
    std::fclose(f);
    MemoryTraceSink sink;
    if (!streamTraceFile(path, sink, err)) return false;
    *t = *sink.trace();
    return true;
  }
  std::vector<std::uint8_t> bytes(hdr, hdr + got);
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return CapturedTrace::parse(bytes.data(), bytes.size(), t, err);
}

// --- TraceRecorder ---------------------------------------------------------

struct TraceRecorder::OpenChunk {
  TraceChunk chunk;
  std::size_t unsettled = 0;  // buffered stores awaiting their fate
};

TraceRecorder::TraceRecorder(std::uint32_t numCores,
                             ConsistencyModel declared, std::uint8_t protocol,
                             std::uint64_t seed, std::size_t limit,
                             TraceSink* sink, std::size_t chunkRecords,
                             bool keepInMemory)
    : pending_(numCores),
      limit_(limit),
      sink_(sink),
      chunkRecords_(chunkRecords == 0 ? 4096 : chunkRecords) {
  DVMC_ASSERT(keepInMemory || sink != nullptr,
              "a recorder needs at least one delivery mode");
  if (keepInMemory) {
    trace_ = std::make_shared<CapturedTrace>();
    trace_->numCores = numCores;
    trace_->declaredModel = std::uint8_t(declared);
    trace_->protocol = protocol;
    trace_->seed = seed;
  }
  if (sink_ != nullptr) {
    TraceHeader h;
    h.numCores = numCores;
    h.declaredModel = std::uint8_t(declared);
    h.protocol = protocol;
    h.seed = seed;
    sink_->begin(h);
  }
}

TraceRecorder::~TraceRecorder() = default;

std::size_t TraceRecorder::openChunkRecords() const {
  std::size_t n = 0;
  for (const OpenChunk& oc : open_) n += oc.chunk.records.size();
  return n;
}

void TraceRecorder::onCommit(const TraceRecord& r) {
  if (committed_ >= limit_) {
    truncated_ = true;
    if (trace_) trace_->truncated = true;
    return;
  }
  const std::size_t index = std::size_t(committed_++);
  const bool pendingStore = r.writes() && !r.performed();
  if (pendingStore) pending_[r.node].emplace(r.seq, index);
  if (trace_) trace_->records.push_back(r);
  if (sink_ != nullptr) {
    if (open_.empty() ||
        open_.back().chunk.records.size() >= chunkRecords_) {
      OpenChunk oc;
      oc.chunk.firstIndex = index;
      oc.chunk.records.reserve(chunkRecords_);
      open_.push_back(std::move(oc));
    }
    OpenChunk& oc = open_.back();
    oc.chunk.records.push_back(r);
    if (pendingStore) ++oc.unsettled;
    if (r.performed() && r.performCycle > oc.chunk.closeCycle) {
      oc.chunk.closeCycle = r.performCycle;
    }
    emitClosedChunks();
  }
}

void TraceRecorder::patchPending(NodeId node, SeqNum seq, Cycle now,
                                 std::uint8_t flag) {
  auto it = pending_[node].find(seq);
  if (it == pending_[node].end()) return;  // record was dropped at the limit
  const std::size_t index = it->second;
  pending_[node].erase(seq);
  if (trace_) {
    TraceRecord& r = trace_->records[index];
    r.performCycle = now;
    r.flags |= flag;
  }
  if (sink_ != nullptr) {
    // The record is in an open chunk: chunks with unsettled stores are
    // never emitted, and pending entries are removed before emission.
    for (OpenChunk& oc : open_) {
      const std::uint64_t first = oc.chunk.firstIndex;
      if (index < first || index >= first + oc.chunk.records.size()) {
        continue;
      }
      TraceRecord& r = oc.chunk.records[index - first];
      r.performCycle = now;
      r.flags |= flag;
      DVMC_ASSERT(oc.unsettled > 0, "chunk settle accounting");
      --oc.unsettled;
      if (flag == kFlagPerformed && now > oc.chunk.closeCycle) {
        oc.chunk.closeCycle = now;
      }
      break;
    }
    emitClosedChunks();
  }
}

void TraceRecorder::storePerformed(NodeId node, SeqNum seq, Cycle now) {
  patchPending(node, seq, now, kFlagPerformed);
}

void TraceRecorder::storeSuperseded(NodeId node, SeqNum seq, Cycle now) {
  patchPending(node, seq, now, kFlagSuperseded);
}

void TraceRecorder::emitClosedChunks() {
  // Only full AND settled chunks close, oldest first: a chunk whose
  // stores are still buffered blocks everything behind it so the sink
  // sees records in global order with final flags.
  std::size_t emitted = 0;
  for (OpenChunk& oc : open_) {
    if (oc.chunk.records.size() < chunkRecords_ || oc.unsettled != 0) break;
    sink_->chunk(std::move(oc.chunk));
    ++emitted;
  }
  if (emitted > 0) {
    open_.erase(open_.begin(), open_.begin() + std::ptrdiff_t(emitted));
  }
}

void TraceRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  if (trace_) trace_->truncated = truncated_;
  if (sink_ == nullptr) return;
  // Flush the tail: stores still in a write buffer at end of run keep
  // kNotPerformed, exactly like the batch capture.
  for (OpenChunk& oc : open_) {
    if (!oc.chunk.records.empty()) sink_->chunk(std::move(oc.chunk));
  }
  open_.clear();
  sink_->end(truncated_);
}

}  // namespace dvmc::verify
