#include "verify/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/assert.hpp"

namespace dvmc::verify {
namespace {

void putU32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(std::uint8_t(v >> (8 * i)));
}
void putU64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(std::uint8_t(v >> (8 * i)));
}
std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}
std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* traceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kLoad: return "load";
    case TraceOp::kStore: return "store";
    case TraceOp::kSwap: return "swap";
    case TraceOp::kCas: return "cas";
    case TraceOp::kMembar: return "membar";
  }
  return "?";
}

std::vector<std::uint8_t> CapturedTrace::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + records.size() * kRecordBytes);
  for (char c : kTraceMagic) out.push_back(std::uint8_t(c));
  putU32(out, std::uint32_t(kTraceSchemaVersion));
  putU32(out, numCores);
  out.push_back(declaredModel);
  out.push_back(protocol);
  out.push_back(truncated ? 1 : 0);
  out.push_back(0);
  putU32(out, 0);
  putU64(out, seed);
  putU64(out, records.size());
  putU64(out, 0);  // reserved
  DVMC_ASSERT(out.size() == kHeaderBytes, "trace header layout");
  for (const TraceRecord& r : records) {
    out.push_back(std::uint8_t(r.op));
    out.push_back(r.node);
    out.push_back(r.model);
    out.push_back(r.flags);
    out.push_back(r.membarMask);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    putU64(out, r.seq);
    putU64(out, r.addr);
    putU64(out, r.value);
    putU64(out, r.readValue);
    putU64(out, r.performCycle);
  }
  return out;
}

bool CapturedTrace::parse(const std::uint8_t* data, std::size_t size,
                          CapturedTrace* out, std::string* err) {
  auto fail = [&](std::size_t off, const char* what) {
    if (err) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "byte %zu: %s", off, what);
      *err = buf;
    }
    return false;
  };
  if (size < kHeaderBytes) return fail(size, "short header");
  if (std::memcmp(data, kTraceMagic, 8) != 0) {
    return fail(0, "bad magic (not a dvmc-trace file)");
  }
  const std::uint32_t version = getU32(data + 8);
  if (version != std::uint32_t(kTraceSchemaVersion)) {
    return fail(8, "unsupported dvmc-trace version");
  }
  out->numCores = getU32(data + 12);
  out->declaredModel = data[16];
  out->protocol = data[17];
  out->truncated = data[18] != 0;
  out->seed = getU64(data + 24);
  const std::uint64_t count = getU64(data + 32);
  if (out->numCores == 0 || out->numCores > 256) {
    return fail(12, "implausible core count");
  }
  if (out->declaredModel > std::uint8_t(ConsistencyModel::kRMO)) {
    return fail(16, "bad declared model");
  }
  if (size != kHeaderBytes + count * kRecordBytes) {
    return fail(32, "record count disagrees with file size");
  }
  out->records.clear();
  out->records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* p = data + byteOffset(i);
    TraceRecord r;
    if (p[0] > std::uint8_t(TraceOp::kMembar)) {
      return fail(byteOffset(i), "bad op code");
    }
    r.op = TraceOp(p[0]);
    r.node = p[1];
    r.model = p[2];
    r.flags = p[3];
    r.membarMask = p[4];
    r.seq = getU64(p + 8);
    r.addr = getU64(p + 16);
    r.value = getU64(p + 24);
    r.readValue = getU64(p + 32);
    r.performCycle = getU64(p + 40);
    out->records.push_back(r);
  }
  return true;
}

bool writeTraceFile(const std::string& path, const CapturedTrace& t,
                    std::string* err) {
  const std::vector<std::uint8_t> bytes = t.serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  std::fclose(f);
  if (!ok && err) *err = "short write to " + path;
  return ok;
}

bool readTraceFile(const std::string& path, CapturedTrace* t,
                   std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return CapturedTrace::parse(bytes.data(), bytes.size(), t, err);
}

TraceRecorder::TraceRecorder(std::uint32_t numCores, ConsistencyModel declared,
                             std::uint8_t protocol, std::uint64_t seed,
                             std::size_t limit)
    : trace_(std::make_shared<CapturedTrace>()),
      pending_(numCores),
      limit_(limit) {
  trace_->numCores = numCores;
  trace_->declaredModel = std::uint8_t(declared);
  trace_->protocol = protocol;
  trace_->seed = seed;
}

void TraceRecorder::onCommit(const TraceRecord& r) {
  if (trace_->records.size() >= limit_) {
    trace_->truncated = true;
    return;
  }
  trace_->records.push_back(r);
  if (r.writes() && !r.performed()) {
    pending_[r.node].emplace(r.seq, trace_->records.size() - 1);
  }
}

void TraceRecorder::storePerformed(NodeId node, SeqNum seq, Cycle now) {
  auto it = pending_[node].find(seq);
  if (it == pending_[node].end()) return;  // record was dropped at the limit
  TraceRecord& r = trace_->records[it->second];
  r.performCycle = now;
  r.flags |= kFlagPerformed;
  pending_[node].erase(seq);
}

void TraceRecorder::storeSuperseded(NodeId node, SeqNum seq, Cycle now) {
  auto it = pending_[node].find(seq);
  if (it == pending_[node].end()) return;
  TraceRecord& r = trace_->records[it->second];
  r.performCycle = now;
  r.flags |= kFlagSuperseded;
  pending_[node].erase(seq);
}

}  // namespace dvmc::verify
