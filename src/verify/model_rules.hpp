// Shared per-record ordering-rule helpers for the two oracle
// implementations (batch oracle.cpp, streaming streaming_oracle.cpp).
//
// Both checkers build the same constraint graph — these helpers are the
// single source of truth for how a trace record maps onto it: which
// membar bits an op pends on / waits for (paper Table 4), which op
// classes it belongs to, and the edge-kind vocabulary used in violation
// messages. Keeping them here is what makes the streaming-vs-batch
// differential test meaningful: the two implementations share the rule
// tables but not the traversal.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "consistency/op.hpp"
#include "verify/trace.hpp"

namespace dvmc::verify {

enum class EdgeKind : std::uint8_t {
  kPo,      // program order mandated by the op's effective model
  kAddr,    // same-core same-word coherence (CoWW / CoRW / CoRR)
  kMembar,  // through a membar's per-bit virtual barrier
  kDrain,   // pipeline drain on an effective-model switch
  kRf,      // reads-from a globally performed writer
  kWs,      // per-word write serialization
  kFr,      // from-read into the writer's ws successor
};

inline const char* edgeKindName(EdgeKind k) {
  switch (k) {
    case EdgeKind::kPo: return "po";
    case EdgeKind::kAddr: return "addr";
    case EdgeKind::kMembar: return "membar";
    case EdgeKind::kDrain: return "drain";
    case EdgeKind::kRf: return "rf";
    case EdgeKind::kWs: return "ws";
    case EdgeKind::kFr: return "fr";
  }
  return "?";
}

// The bits under which an earlier op of this type waits for a barrier, and
// the bits whose barrier a later op of this type waits on (paper Table 4).
inline std::uint8_t pendBits(const TraceRecord& r) {
  std::uint8_t m = 0;
  if (r.op == TraceOp::kLoad || r.op == TraceOp::kSwap ||
      r.op == TraceOp::kCas) {
    m |= membar::kLoadLoad | membar::kLoadStore;
  }
  if (r.op == TraceOp::kStore || r.op == TraceOp::kSwap ||
      r.op == TraceOp::kCas) {
    m |= membar::kStoreLoad | membar::kStoreStore;
  }
  return m;
}
inline std::uint8_t waitBits(const TraceRecord& r) {
  std::uint8_t m = 0;
  if (r.op == TraceOp::kLoad || r.op == TraceOp::kSwap ||
      r.op == TraceOp::kCas) {
    m |= membar::kLoadLoad | membar::kStoreLoad;
  }
  if (r.op == TraceOp::kStore || r.op == TraceOp::kSwap ||
      r.op == TraceOp::kCas) {
    m |= membar::kLoadStore | membar::kStoreStore;
  }
  return m;
}

inline bool isLoadClass(TraceOp op) {
  return op == TraceOp::kLoad || op == TraceOp::kSwap || op == TraceOp::kCas;
}
inline bool isStoreClass(TraceOp op) {
  return op == TraceOp::kStore || op == TraceOp::kSwap ||
         op == TraceOp::kCas;
}

inline std::uint64_t observedValue(const TraceRecord& r) {
  return r.op == TraceOp::kLoad ? r.value : r.readValue;
}

inline std::string oracleHex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", (unsigned long long)v);
  return buf;
}

/// Formats one trace record the way violation messages expect, without
/// needing the whole CapturedTrace (the streaming oracle retires records
/// it is done with). Mirrors describeRecord(t, i).
std::string describeRecordLine(const TraceRecord& r, std::size_t i);

}  // namespace dvmc::verify
