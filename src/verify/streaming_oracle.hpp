// Incremental, bounded-memory consistency oracle (the streaming half of
// the verification pipeline — see docs/verification_oracle.md).
//
// The batch oracle (oracle.hpp) materializes the whole trace and the
// whole constraint graph before checking. The StreamingOracle is a
// TraceSink: it consumes settled chunks as the recorder closes them and
// maintains only the *unsettled window* of the constraint graph —
// records whose ordering constraints can still change. Everything older
// is topologically retired and freed.
//
// The window is governed by one assumption, the settle horizon H
// (`settleHorizon`): commit order and perform order never diverge by
// more than H cycles. Under it:
//   * a read is resolved once the frontier (max perform cycle ingested)
//     passes its perform cycle by H — every candidate writer with an
//     earlier-or-equal perform cycle has arrived;
//   * a write stops receiving constraint edges once the frontier passes
//     its perform cycle by 2H, after which it can be processed by the
//     incremental topological sort and discarded;
//   * ws / fr edges are emitted only once their endpoint's position in
//     the per-word serialization is final (frontier past its cycle + H).
//
// The assumption is *checked*, not trusted: a record arriving more than
// H behind the frontier, an edge landing on an already-retired node, or
// a write of a value that an earlier zero/unique-match read resolved
// against (which would have changed the batch oracle's candidate count)
// sets windowExceeded() — as does breaching maxResidentEvents. The
// contract is one-sided and makes the equivalence testable: if the
// stream finishes with windowExceeded() == false, the verdict, the
// violations, and the statistics equal batch checkTrace() exactly;
// otherwise callers fall back to the batch path (dvmc_oracle and
// dvmc_campaign do this automatically).
//
// Read justification is sharded across the thread pool per resolution
// batch (`jobs`): candidate scans are pure lookups into the per-location
// write histories, so they run in parallel and their outcomes are
// applied serially in record order — violations, edges, and stats are
// bit-identical for every jobs value, like runSeeds' merge.
#pragma once

#include <cstdint>
#include <memory>

#include "verify/oracle.hpp"
#include "verify/trace_sink.hpp"

namespace dvmc::verify {

struct StreamingOracleOptions {
  /// Stop after this many violations (same contract as OracleOptions).
  std::size_t maxViolations = 1;
  /// Settle horizon H in cycles: the assumed bound on commit-vs-perform
  /// skew. Must exceed the protocol's visibility latency by a wide
  /// margin; violations of the assumption are detected, not missed.
  Cycle settleHorizon = Cycle{1} << 16;
  /// Hard ceiling on live (unretired) records; 0 = unbounded. Breaching
  /// it sets windowExceeded instead of growing further.
  std::size_t maxResidentEvents = 0;
  /// Worker threads for sharded read justification (1 = serial). The
  /// verdict is identical for every value.
  int jobs = 1;
  /// Resolution batches smaller than this stay serial (fan-out overhead).
  std::size_t shardMinBatch = 512;
};

class StreamingOracle final : public TraceSink {
 public:
  explicit StreamingOracle(const StreamingOracleOptions& o = {});
  ~StreamingOracle() override;

  // TraceSink: feed chunks as they close (TraceRecorder does this live;
  // streamTraceFile replays a file).
  void begin(const TraceHeader& h) override;
  void chunk(TraceChunk&& c) override;
  void end(bool truncated) override;

  /// Completes all pending work and returns the verdict. Only valid
  /// after end(); idempotent.
  const OracleResult& finish();

  /// True when the stream left the settle window (or breached
  /// maxResidentEvents): the verdict is not guaranteed to equal batch
  /// checkTrace() and the caller should fall back.
  bool windowExceeded() const;
  /// Human-readable reason for the first window excess (empty if none).
  const std::string& windowExceededReason() const;

  /// High-water mark of live records held at once — what
  /// maxResidentEvents bounds.
  std::size_t peakResidentRecords() const;
  std::size_t residentRecords() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Replays an in-memory trace through a StreamingOracle in
/// `chunkRecords` pieces and returns the verdict (differential tests and
/// small-trace convenience). `windowExceeded` / `peakResident` report
/// the stream's state when non-null.
OracleResult checkTraceStreaming(const CapturedTrace& t,
                                 const StreamingOracleOptions& o = {},
                                 std::size_t chunkRecords = 4096,
                                 bool* windowExceeded = nullptr,
                                 std::size_t* peakResident = nullptr);

}  // namespace dvmc::verify
