#include "verify/trace_sink.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace dvmc::verify {

namespace {

void putU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = std::uint8_t(v >> (8 * i));
}
void putU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = std::uint8_t(v >> (8 * i));
}
std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}
std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

void encodeFileHeader(std::uint8_t out[CapturedTrace::kHeaderBytes],
                      const TraceHeader& h, std::uint32_t version,
                      bool truncated, std::uint64_t count) {
  std::memcpy(out, kTraceMagic, 8);
  putU32(out + 8, version);
  putU32(out + 12, h.numCores);
  out[16] = h.declaredModel;
  out[17] = h.protocol;
  out[18] = truncated ? 1 : 0;
  out[19] = 0;
  putU32(out + 20, 0);
  putU64(out + 24, h.seed);
  putU64(out + 32, count);
  putU64(out + 40, 0);  // reserved
}

}  // namespace

// --- MemoryTraceSink -------------------------------------------------------

MemoryTraceSink::MemoryTraceSink()
    : trace_(std::make_shared<CapturedTrace>()) {}

void MemoryTraceSink::begin(const TraceHeader& h) {
  trace_->declaredModel = h.declaredModel;
  trace_->protocol = h.protocol;
  trace_->numCores = h.numCores;
  trace_->seed = h.seed;
}

void MemoryTraceSink::chunk(TraceChunk&& c) {
  DVMC_ASSERT(c.firstIndex == trace_->records.size(),
              "trace chunks must arrive in order");
  trace_->records.insert(trace_->records.end(), c.records.begin(),
                         c.records.end());
}

void MemoryTraceSink::end(bool truncated) { trace_->truncated = truncated; }

// --- ChunkedTraceFileSink --------------------------------------------------

ChunkedTraceFileSink::ChunkedTraceFileSink(std::string path)
    : path_(std::move(path)) {}

ChunkedTraceFileSink::~ChunkedTraceFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void ChunkedTraceFileSink::setError(const std::string& msg) {
  if (error_.empty()) error_ = msg;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void ChunkedTraceFileSink::begin(const TraceHeader& h) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    setError("cannot open " + path_ + " for writing");
    return;
  }
  std::uint8_t hdr[CapturedTrace::kHeaderBytes];
  // Record count and truncated flag are patched in end(); a reader of an
  // unfinished file sees count 0 and fails the size check cleanly.
  encodeFileHeader(hdr, h, std::uint32_t(kTraceChunkedVersion),
                   /*truncated=*/false, /*count=*/0);
  if (std::fwrite(hdr, 1, sizeof hdr, file_) != sizeof hdr) {
    setError("short write to " + path_);
  }
}

void ChunkedTraceFileSink::chunk(TraceChunk&& c) {
  if (file_ == nullptr || c.records.empty()) return;
  std::uint8_t hdr[kChunkHeaderBytes];
  std::memcpy(hdr, kChunkMagic, 4);
  putU32(hdr + 4, std::uint32_t(c.records.size()));
  putU64(hdr + 8, c.firstIndex);
  putU64(hdr + 16, c.closeCycle);
  if (std::fwrite(hdr, 1, sizeof hdr, file_) != sizeof hdr) {
    setError("short write to " + path_);
    return;
  }
  std::vector<std::uint8_t> buf(c.records.size() *
                                CapturedTrace::kRecordBytes);
  for (std::size_t i = 0; i < c.records.size(); ++i) {
    encodeTraceRecord(c.records[i], buf.data() + i * CapturedTrace::kRecordBytes);
  }
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    setError("short write to " + path_);
    return;
  }
  count_ += c.records.size();
}

void ChunkedTraceFileSink::end(bool truncated) {
  if (ended_) return;
  ended_ = true;
  if (file_ == nullptr) return;
  // Patch the record count and truncated flag into the header.
  std::uint8_t cnt[8];
  putU64(cnt, count_);
  const std::uint8_t trunc = truncated ? 1 : 0;
  if (std::fseek(file_, 18, SEEK_SET) != 0 ||
      std::fwrite(&trunc, 1, 1, file_) != 1 ||
      std::fseek(file_, 32, SEEK_SET) != 0 ||
      std::fwrite(cnt, 1, sizeof cnt, file_) != sizeof cnt) {
    setError("cannot patch header of " + path_);
    return;
  }
  if (std::fclose(file_) != 0) setError("cannot close " + path_);
  file_ = nullptr;
}

// --- TeeTraceSink ----------------------------------------------------------

void TeeTraceSink::begin(const TraceHeader& h) {
  a_->begin(h);
  b_->begin(h);
}

void TeeTraceSink::chunk(TraceChunk&& c) {
  TraceChunk copy = c;  // b_ gets the original buffer
  a_->chunk(std::move(copy));
  b_->chunk(std::move(c));
}

void TeeTraceSink::end(bool truncated) {
  a_->end(truncated);
  b_->end(truncated);
}

// --- file streaming --------------------------------------------------------

namespace {

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

bool failAt(std::string* err, std::size_t off, const char* what) {
  if (err != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "byte %zu: %s", off, what);
    *err = buf;
  }
  return false;
}

/// Reads `n` records into `out` (appending), decoding and validating each.
bool readRecords(std::FILE* f, std::uint64_t firstIndex, std::uint32_t n,
                 std::vector<TraceRecord>* out, std::size_t byteBase,
                 std::string* err) {
  std::vector<std::uint8_t> buf(std::size_t{n} * CapturedTrace::kRecordBytes);
  if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
    return failAt(err, byteBase, "short read (file smaller than declared)");
  }
  out->reserve(out->size() + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TraceRecord r;
    if (!decodeTraceRecord(buf.data() + std::size_t{i} *
                                            CapturedTrace::kRecordBytes,
                           &r)) {
      return failAt(err, byteBase + i * CapturedTrace::kRecordBytes,
                    "bad op code");
    }
    out->push_back(r);
  }
  (void)firstIndex;
  return true;
}

}  // namespace

bool streamTraceFile(const std::string& path, TraceSink& sink,
                     std::string* err, std::size_t chunkRecords) {
  if (chunkRecords == 0) chunkRecords = 4096;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  FileCloser closer{f};

  std::uint8_t hdr[CapturedTrace::kHeaderBytes];
  if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr) {
    return failAt(err, 0, "short header");
  }
  if (std::memcmp(hdr, kTraceMagic, 8) != 0) {
    return failAt(err, 0, "bad magic (not a dvmc-trace file)");
  }
  const std::uint32_t version = getU32(hdr + 8);
  if (version != std::uint32_t(kTraceSchemaVersion) &&
      version != std::uint32_t(kTraceChunkedVersion)) {
    return failAt(err, 8, "unsupported dvmc-trace version");
  }
  TraceHeader h;
  h.numCores = getU32(hdr + 12);
  h.declaredModel = hdr[16];
  h.protocol = hdr[17];
  const bool truncated = hdr[18] != 0;
  h.seed = getU64(hdr + 24);
  const std::uint64_t count = getU64(hdr + 32);
  if (h.numCores == 0 || h.numCores > 256) {
    return failAt(err, 12, "implausible core count");
  }
  if (h.declaredModel > std::uint8_t(ConsistencyModel::kRMO)) {
    return failAt(err, 16, "bad declared model");
  }

  sink.begin(h);
  std::uint64_t seen = 0;
  if (version == std::uint32_t(kTraceSchemaVersion)) {
    // v1: one flat record array; re-chunk it.
    while (seen < count) {
      const std::uint32_t n = std::uint32_t(
          std::min<std::uint64_t>(chunkRecords, count - seen));
      TraceChunk c;
      c.firstIndex = seen;
      if (!readRecords(f, seen, n, &c.records,
                       CapturedTrace::byteOffset(std::size_t(seen)), err)) {
        return false;
      }
      for (const TraceRecord& r : c.records) {
        if (r.performed() && r.performCycle > c.closeCycle) {
          c.closeCycle = r.performCycle;
        }
      }
      seen += n;
      sink.chunk(std::move(c));
    }
    if (std::fgetc(f) != EOF) {
      return failAt(err, std::size_t(CapturedTrace::byteOffset(
                        std::size_t(count))),
                    "record count disagrees with file size");
    }
  } else {
    // v2: chunk headers carry their own geometry.
    std::size_t off = CapturedTrace::kHeaderBytes;
    while (seen < count) {
      std::uint8_t ch[kChunkHeaderBytes];
      if (std::fread(ch, 1, sizeof ch, f) != sizeof ch) {
        return failAt(err, off, "short chunk header");
      }
      if (std::memcmp(ch, kChunkMagic, 4) != 0) {
        return failAt(err, off, "bad chunk magic");
      }
      const std::uint32_t n = getU32(ch + 4);
      TraceChunk c;
      c.firstIndex = getU64(ch + 8);
      c.closeCycle = getU64(ch + 16);
      if (n == 0 || c.firstIndex != seen || std::uint64_t(n) > count - seen) {
        return failAt(err, off, "chunk geometry disagrees with header");
      }
      if (!readRecords(f, seen, n, &c.records, off + kChunkHeaderBytes,
                       err)) {
        return false;
      }
      off += kChunkHeaderBytes + std::size_t{n} * CapturedTrace::kRecordBytes;
      seen += n;
      sink.chunk(std::move(c));
    }
    if (std::fgetc(f) != EOF) {
      return failAt(err, off, "trailing bytes after the last chunk");
    }
  }
  sink.end(truncated);
  return true;
}

void streamCapturedTrace(const CapturedTrace& t, TraceSink& sink,
                         std::size_t chunkRecords) {
  if (chunkRecords == 0) chunkRecords = 4096;
  TraceHeader h;
  h.declaredModel = t.declaredModel;
  h.protocol = t.protocol;
  h.numCores = t.numCores;
  h.seed = t.seed;
  sink.begin(h);
  for (std::size_t i = 0; i < t.records.size(); i += chunkRecords) {
    TraceChunk c;
    c.firstIndex = i;
    const std::size_t n = std::min(chunkRecords, t.records.size() - i);
    c.records.assign(t.records.begin() + std::ptrdiff_t(i),
                     t.records.begin() + std::ptrdiff_t(i + n));
    for (const TraceRecord& r : c.records) {
      if (r.performed() && r.performCycle > c.closeCycle) {
        c.closeCycle = r.performCycle;
      }
    }
    sink.chunk(std::move(c));
  }
  sink.end(t.truncated);
}

}  // namespace dvmc::verify
