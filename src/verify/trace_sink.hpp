// Streaming trace pipeline: chunked delivery of commit-point records.
//
// PR-5's recorder buffered the whole run in one CapturedTrace, so
// captureTrace implied O(run-length) resident memory and the oracle ran
// as a serial tail. A TraceSink instead receives the capture as a stream
// of *settled* chunks while the run executes:
//
//   begin(header)   once, before any record
//   chunk(c)        zero or more closed chunks, in global commit order
//   end(truncated)  once, after the last chunk
//
// A chunk is only emitted when every buffered store inside it has been
// patched with its final fate (performed or superseded), so downstream
// consumers never see a record whose flags can still change — except at
// end-of-run, where stores still sitting in a write buffer are flushed
// out with kNotPerformed, exactly like the batch capture.
//
// Sinks provided here:
//   MemoryTraceSink       reassembles a CapturedTrace (today's behavior)
//   ChunkedTraceFileSink  spills chunks to disk as "dvmc-trace" version 2
//   TeeTraceSink          fans one stream out to two sinks
// verify::StreamingOracle (streaming_oracle.hpp) is itself a TraceSink.
//
// dvmc-trace version 2 ("chunked"): the same 48-byte header as v1 (with
// version = 2), followed by chunks, each a 24-byte chunk header
// [magic "CHNK" | u32 record count | u64 first global index | u64 close
// cycle] and count 48-byte v1-layout records. The header's record count
// and truncated flag are patched when the stream ends. streamTraceFile
// reads both v1 and v2 files without materializing the whole trace.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "verify/trace.hpp"

namespace dvmc::verify {

/// dvmc-trace version written by ChunkedTraceFileSink.
inline constexpr int kTraceChunkedVersion = 2;
inline constexpr char kChunkMagic[4] = {'C', 'H', 'N', 'K'};
inline constexpr std::size_t kChunkHeaderBytes = 24;

/// Header fields shared by every trace container (CapturedTrace carries
/// the same data plus the records).
struct TraceHeader {
  std::uint8_t declaredModel = 0;
  std::uint8_t protocol = 0;
  std::uint32_t numCores = 0;
  std::uint64_t seed = 0;
};

/// One closed, settled run of consecutive records.
struct TraceChunk {
  std::uint64_t firstIndex = 0;  // global index of records[0]
  Cycle closeCycle = 0;          // latest perform cycle inside the chunk
  std::vector<TraceRecord> records;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin(const TraceHeader& h) = 0;
  virtual void chunk(TraceChunk&& c) = 0;
  virtual void end(bool truncated) = 0;
};

/// Reassembles the stream into a CapturedTrace (the non-streaming
/// consumers' format). The result is bit-identical to a direct batch
/// capture of the same run.
class MemoryTraceSink final : public TraceSink {
 public:
  MemoryTraceSink();
  void begin(const TraceHeader& h) override;
  void chunk(TraceChunk&& c) override;
  void end(bool truncated) override;

  /// The reassembled capture (valid once end() was called; shared like
  /// RunResult::trace).
  std::shared_ptr<const CapturedTrace> trace() const { return trace_; }

 private:
  std::shared_ptr<CapturedTrace> trace_;
};

/// Spill-to-disk writer: each chunk goes to the file as it closes, so a
/// long capture costs one chunk of resident memory. Writes dvmc-trace
/// version 2. I/O errors are sticky: check ok() after end().
class ChunkedTraceFileSink final : public TraceSink {
 public:
  explicit ChunkedTraceFileSink(std::string path);
  ~ChunkedTraceFileSink() override;
  void begin(const TraceHeader& h) override;
  void chunk(TraceChunk&& c) override;
  void end(bool truncated) override;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  std::uint64_t recordsWritten() const { return count_; }

 private:
  void setError(const std::string& msg);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  std::string error_;
  bool ended_ = false;
};

/// Duplicates one stream into two sinks (e.g. a spill file plus the
/// streaming oracle). Non-owning.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink(TraceSink* a, TraceSink* b) : a_(a), b_(b) {}
  void begin(const TraceHeader& h) override;
  void chunk(TraceChunk&& c) override;
  void end(bool truncated) override;

 private:
  TraceSink* a_;
  TraceSink* b_;
};

/// Streams a dvmc-trace file (version 1 or 2) through `sink` chunk by
/// chunk without materializing the whole trace; v1 files are re-chunked
/// every `chunkRecords` records. Returns false and fills `err` on I/O or
/// parse failure (byte-offset messages, like CapturedTrace::parse).
bool streamTraceFile(const std::string& path, TraceSink& sink,
                     std::string* err,
                     std::size_t chunkRecords = 4096);

/// Replays an in-memory trace through `sink` in `chunkRecords` pieces
/// (tests and the batch-capture compatibility path).
void streamCapturedTrace(const CapturedTrace& t, TraceSink& sink,
                         std::size_t chunkRecords = 4096);

}  // namespace dvmc::verify
