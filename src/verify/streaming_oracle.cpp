// Incremental bounded-memory consistency checker. The algorithm is the
// batch oracle's (oracle.cpp) restated as a dataflow over settled chunks:
//
//   * ingest builds exactly the edges the batch record loop builds, in
//     the same per-record order (drain barriers, po, membar waits,
//     coherence), because chunk records arrive in global commit order
//     with final flags;
//   * read justification is deferred until the frontier (max perform
//     cycle seen) passes the read's cycle by the settle horizon H — by
//     then every candidate writer with an earlier-or-equal cycle has
//     been ingested, and any *later* same-value writer that would have
//     changed the batch candidate count trips the watched-value
//     detector;
//   * ws / fr edges are deferred until their endpoint's position in the
//     per-word serialization is final (frontier past its cycle + H; the
//     in-link of a write is emitted when the write ages at 2H);
//   * an incremental Kahn peel retires nodes whose constraint set is
//     complete: virtual barriers at creation, never-serialized stores at
//     ingest, reads at resolution, serialized writes at age 2H (a stale
//     reader of the predecessor can legally perform up to ~2H behind,
//     so its fr edge can arrive that late).
//
// Soundness of early retirement: an edge whose target was already
// retired sets windowExceeded (addEdge checks), and an edge *from* a
// retired node is a satisfied constraint — the source was ordered before
// everything still live. So any cycle present in the final batch graph
// either survives into the residual graph at finish() or trips a
// detector first; either way the one-sided contract in the header holds.
//
// Cycle reporting matches the batch text because (a) the residual node
// scan iterates keys in ascending order (real indices then virtual
// creation order — the batch node-id order) and (b) each node's out
// edges are sorted by a recorded batch insertion key before the
// back-walk, so parallel-edge kind selection agrees.
#include "verify/streaming_oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "coherence/memory_storage.hpp"
#include "common/assert.hpp"
#include "common/flat_map.hpp"
#include "common/thread_pool.hpp"
#include "consistency/op.hpp"
#include "consistency/ordering_table.hpp"
#include "verify/model_rules.hpp"

namespace dvmc::verify {
namespace {

constexpr std::uint64_t kNone64 = ~std::uint64_t{0};
// Virtual barrier nodes sort after every real record index, in creation
// order — the batch oracle's node-id order.
constexpr std::uint64_t kVirtBase = std::uint64_t{1} << 62;
constexpr std::uint16_t kMultiNode = 0xFFFF;

// Batch insertion-order key for an edge, so the residual cycle back-walk
// picks the same kind among parallel (u,v) edges the batch oracle would.
// ws chains are inserted before the record loop (key 0); loop edges sort
// by the record being processed, then by call order within it; rf/fr for
// a read sort after that read's ingest-time edges.
constexpr std::uint64_t kWsOrder = 0;
inline std::uint64_t ingestOrder(std::uint64_t rec, std::uint32_t sub) {
  return ((rec + 1) << 32) | sub;
}
inline std::uint64_t resolveOrder(std::uint64_t rec, std::uint32_t sub) {
  return ((rec + 1) << 32) | (0x80000000u + sub);
}

struct OutEdge {
  std::uint64_t to;
  EdgeKind kind;
  std::uint64_t order;
};

struct LiveNode {
  TraceRecord rec;  // real record; for virtuals, the barrier's source
  std::uint64_t srcIndex = 0;
  std::uint32_t indeg = 0;
  bool isVirtual = false;
  bool needResolve = false;
  bool needAge = false;
  bool resolved = false;
  bool aged = false;
  bool queued = false;
  std::vector<OutEdge> out;
};

inline bool nodeComplete(const LiveNode& n) {
  if (n.needResolve && !n.resolved) return false;
  if (n.needAge && !n.aged) return false;
  return true;
}

// One globally performed write in a word's serialization.
struct WsEntry {
  std::uint64_t idx = 0;
  Cycle cycle = 0;
  std::uint64_t value = 0;
  SeqNum seq = 0;
  std::uint8_t node = 0;
  bool linkEmitted = false;  // in-edge from the ws predecessor emitted
};

inline bool wsBefore(Cycle ca, std::uint8_t na, SeqNum sa, Cycle cb,
                     std::uint8_t nb, SeqNum sb) {
  if (ca != cb) return ca < cb;
  if (na != nb) return na < nb;
  return sa < sb;
}

// A from-read edge whose target (the writer's ws successor) is not yet
// final. beforeAll marks an init read: its target is the word's first
// write, whichever that turns out to be.
struct PendingFr {
  std::uint64_t readIdx = 0;
  Addr addr = 0;
  Cycle wCycle = 0;
  SeqNum wSeq = 0;
  std::uint8_t wNode = 0;
  bool beforeAll = false;
};

struct AddrHistory {
  std::vector<WsEntry> entries;  // (cycle, node, seq) order, like batch ws_
  // Pending fr edges whose writer is currently the last entry (or whose
  // word has no write yet): only a new tail insert can give them a
  // target, so they wait here instead of being rescanned every round.
  std::vector<PendingFr> awaitSucc;
  // Values that a resolved zero/unique-match read observed, keyed to the
  // reader's node (kMultiNode once readers on distinct nodes share one).
  // A later write of such a value from another node would have changed
  // the batch candidate count — window detector, not an error.
  FlatMap<std::uint64_t, std::uint16_t> watched;
};

// Per-core program-order write history (the batch AddrState.writes):
// every store-class op, including pending / superseded / failed-CAS
// entries, because local forwarding can expose any of them.
struct OwnWrite {
  std::uint64_t idx = 0;
  Cycle cycle = 0;
  SeqNum seq = 0;
  std::uint64_t value = 0;
  bool inWs = false;
};

struct CoreAddr {
  std::uint64_t lastWrite = kNone64;
  std::uint64_t lastOrderedRead = kNone64;
  std::vector<OwnWrite> writes;
};

struct CoreState {
  std::uint64_t lastLoadLike = kNone64;
  std::uint64_t lastStoreLike = kNone64;
  std::uint8_t prevModel = 0xFF;
  std::vector<std::uint64_t> pend[4];
  std::uint64_t lastV[4] = {kNone64, kNone64, kNone64, kNone64};
  FlatMap<Addr, CoreAddr> byAddr;
  SeqNum lastSeq = 0;
  bool seen = false;
};

// Pure candidate-scan result for one read; computed (possibly in
// parallel) against frozen histories, applied serially in record order.
struct ResolveOutcome {
  std::uint64_t readIdx = 0;
  std::size_t matches = 0;
  std::uint64_t own = kNone64;
  Cycle ownCycle = 0;
  SeqNum ownSeq = 0;
  bool ownInWs = false;
  std::uint64_t remote = kNone64;
  Cycle remoteCycle = 0;
  SeqNum remoteSeq = 0;
  std::uint8_t remoteNode = 0;
  std::uint64_t blame = 0;
  std::uint64_t blameValue = 0;
  Cycle blameCycle = 0;
};

}  // namespace

struct StreamingOracle::Impl {
  explicit Impl(const StreamingOracleOptions& o)
      : opt(o),
        tables{OrderingTable::forModel(ConsistencyModel::kSC),
               OrderingTable::forModel(ConsistencyModel::kTSO),
               OrderingTable::forModel(ConsistencyModel::kPSO),
               OrderingTable::forModel(ConsistencyModel::kRMO)} {}

  StreamingOracleOptions opt;
  OrderingTable tables[4];

  std::uint32_t numCores = 0;
  std::uint8_t declaredModel = 0;
  bool begun = false;
  bool ended = false;
  bool truncatedStream = false;
  bool finished = false;
  bool malformed = false;
  OracleViolation malformedViolation;

  bool exceeded = false;
  std::string exceededReason;

  std::uint64_t recordsSeen = 0;  // includes post-malformed records
  Cycle frontier = 0;
  std::uint64_t virtualCount = 0;

  FlatMap<std::uint64_t, LiveNode> liveNodes;
  FlatMap<Addr, AddrHistory> addrs;
  std::vector<CoreState> cores;
  std::deque<std::uint64_t> unresolved;  // performed reads, index order
  std::deque<std::uint64_t> agingWrites;  // serialized writes, index order
  std::vector<PendingFr> stabilizing;    // succ exists, not yet final
  std::vector<std::uint64_t> ready;
  std::vector<OracleViolation> valueViolations;  // capped at maxViolations
  OracleStats stats;
  OracleResult res;
  std::size_t peak = 0;

  // --- small helpers -------------------------------------------------------

  void flagWindow(std::string reason) {
    if (exceeded) return;
    exceeded = true;
    exceededReason = std::move(reason);
  }

  void clearState() {
    liveNodes.clear();
    addrs.clear();
    cores.clear();
    unresolved.clear();
    agingWrites.clear();
    stabilizing.clear();
    ready.clear();
  }

  static OracleViolation makeViolation(OracleViolation::Kind kind,
                                       std::size_t a, std::size_t b,
                                       std::string msg) {
    OracleViolation v;
    v.kind = kind;
    v.recordA = a;
    v.recordB = b;
    v.byteA = CapturedTrace::byteOffset(a);
    v.byteB = CapturedTrace::byteOffset(b);
    v.message = std::move(msg);
    return v;
  }

  void addValueViolation(std::size_t a, std::size_t b, std::string msg) {
    if (valueViolations.size() >= opt.maxViolations) return;
    valueViolations.push_back(makeViolation(
        OracleViolation::Kind::kBadReadValue, a, b, std::move(msg)));
  }

  void maybeReady(std::uint64_t key) {
    auto it = liveNodes.find(key);
    if (it == liveNodes.end()) return;
    LiveNode& n = it->second;
    if (!n.queued && n.indeg == 0 && nodeComplete(n)) {
      n.queued = true;
      ready.push_back(key);
    }
  }

  void addEdge(std::uint64_t from, std::uint64_t to, EdgeKind kind,
               std::uint64_t order) {
    if (from == kNone64 || from == to) return;
    ++stats.edges;
    if (kind == EdgeKind::kRf) ++stats.rfEdges;
    if (kind == EdgeKind::kWs) ++stats.wsEdges;
    if (kind == EdgeKind::kFr) ++stats.frEdges;
    auto fit = liveNodes.find(from);
    if (fit == liveNodes.end()) return;  // satisfied: source already retired
    auto tit = liveNodes.find(to);
    if (tit == liveNodes.end()) {
      flagWindow("constraint edge arrived after its target was retired "
                 "(settle horizon too small for this trace)");
      return;
    }
    fit->second.out.push_back({to, kind, order});
    ++tit->second.indeg;
  }

  std::size_t findWsEntry(const AddrHistory& ah, Cycle c, std::uint8_t node,
                          SeqNum seq) const {
    auto it = std::lower_bound(
        ah.entries.begin(), ah.entries.end(), std::make_tuple(c, node, seq),
        [](const WsEntry& e, const std::tuple<Cycle, std::uint8_t, SeqNum>& k) {
          return wsBefore(e.cycle, e.node, e.seq, std::get<0>(k),
                          std::get<1>(k), std::get<2>(k));
        });
    return std::size_t(it - ah.entries.begin());
  }

  // --- ingest --------------------------------------------------------------

  // Mirrors the batch wellFormed() per-record checks; returns false and
  // records the (single) malformed verdict on failure.
  bool checkWellFormed(const TraceRecord& r, std::uint64_t i) {
    auto bad = [&](const char* msg) {
      malformed = true;
      malformedViolation =
          makeViolation(OracleViolation::Kind::kMalformed, i, i, msg);
      return false;
    };
    if (r.node >= numCores) return bad("record node out of range");
    if (r.model > std::uint8_t(ConsistencyModel::kRMO) ||
        r.op > TraceOp::kMembar) {
      return bad("record model/op out of range");
    }
    CoreState& cs = cores[r.node];
    if (cs.seen && r.seq <= cs.lastSeq) {
      return bad("per-core sequence numbers must be strictly "
                 "increasing (commit order is program order)");
    }
    cs.seen = true;
    cs.lastSeq = r.seq;
    const bool mustPerform = r.op != TraceOp::kStore;
    if (mustPerform && (!r.performed() || r.performCycle == kNotPerformed)) {
      return bad("non-store record without a perform cycle");
    }
    if (r.superseded() && r.op != TraceOp::kStore) {
      return bad("only buffered stores can be superseded");
    }
    if ((r.flags & kFlagCasFailed) != 0 && r.op != TraceOp::kCas) {
      return bad("cas-failed flag on a non-cas record");
    }
    if (r.op == TraceOp::kMembar) {
      ++stats.membars;
    } else {
      if (r.writes()) ++stats.writes;
      if (r.reads()) ++stats.reads;
    }
    return true;
  }

  void barrier(std::uint64_t src, const TraceRecord& srcRec,
               std::uint8_t mask, EdgeKind kind, CoreState& cs,
               std::uint32_t& sub) {
    for (int b = 0; b < 4; ++b) {
      if ((mask & (1u << b)) == 0) continue;
      const std::uint64_t vkey = kVirtBase + virtualCount++;
      ++stats.virtualNodes;
      LiveNode vn;
      vn.rec = srcRec;
      vn.srcIndex = src;
      vn.isVirtual = true;
      liveNodes.try_emplace(vkey, std::move(vn));
      for (std::uint64_t p : cs.pend[b]) {
        addEdge(p, vkey, kind, ingestOrder(src, sub++));
      }
      cs.pend[b].clear();
      if (cs.lastV[b] != kNone64) {
        addEdge(cs.lastV[b], vkey, kind, ingestOrder(src, sub++));
      }
      cs.lastV[b] = vkey;
      maybeReady(vkey);
    }
  }

  void ingest(const TraceRecord& r, std::uint64_t i) {
    if (!checkWellFormed(r, i)) return;

    // Settle-horizon lag detector: frontier excludes this record, so a
    // performed record more than H behind it breaks the skew assumption
    // every deferral gate relies on.
    if (r.performed()) {
      if (frontier > opt.settleHorizon &&
          r.performCycle < frontier - opt.settleHorizon) {
        flagWindow("record performed more than the settle horizon behind "
                   "the frontier");
      }
      if (r.performCycle > frontier) frontier = r.performCycle;
    }

    CoreState& cs = cores[r.node];
    std::uint32_t sub = 0;

    if (cs.prevModel != 0xFF && cs.prevModel != r.model) {
      barrier(i, r, membar::kAll, EdgeKind::kDrain, cs, sub);
    }
    cs.prevModel = r.model;

    if (r.op == TraceOp::kMembar) {
      if (r.membarMask != 0) {
        barrier(i, r, r.membarMask, EdgeKind::kMembar, cs, sub);
      }
      return;  // membars are not graph nodes
    }

    const bool inWs = r.writes() && r.performed() && !r.superseded();
    {
      LiveNode n;
      n.rec = r;
      n.srcIndex = i;
      n.needResolve = r.reads() && r.performed();
      n.needAge = inWs;
      liveNodes.try_emplace(i, std::move(n));
      if (liveNodes.size() > peak) peak = liveNodes.size();
    }

    const OrderingTable& tab = tables[r.model];
    const bool ld = isLoadClass(r.op);
    const bool st = isStoreClass(r.op);
    std::uint8_t fromLoad = 0;
    std::uint8_t fromStore = 0;
    if (ld) {
      fromLoad |= tab.entry(OpClass::kLoad, OpClass::kLoad);
      fromStore |= tab.entry(OpClass::kStore, OpClass::kLoad);
    }
    if (st) {
      fromLoad |= tab.entry(OpClass::kLoad, OpClass::kStore);
      fromStore |= tab.entry(OpClass::kStore, OpClass::kStore);
    }
    if (fromLoad != 0) {
      addEdge(cs.lastLoadLike, i, EdgeKind::kPo, ingestOrder(i, sub++));
    }
    if (fromStore != 0) {
      addEdge(cs.lastStoreLike, i, EdgeKind::kPo, ingestOrder(i, sub++));
    }

    const std::uint8_t wait = waitBits(r);
    for (int b = 0; b < 4; ++b) {
      if ((wait & (1u << b)) != 0 && cs.lastV[b] != kNone64) {
        addEdge(cs.lastV[b], i, EdgeKind::kMembar, ingestOrder(i, sub++));
      }
    }
    const std::uint8_t pend = pendBits(r);
    for (int b = 0; b < 4; ++b) {
      if ((pend & (1u << b)) != 0) cs.pend[b].push_back(i);
    }

    CoreAddr& ca = cs.byAddr[r.addr];
    if (st) {
      addEdge(ca.lastWrite, i, EdgeKind::kAddr, ingestOrder(i, sub++));
      addEdge(ca.lastOrderedRead, i, EdgeKind::kAddr, ingestOrder(i, sub++));
    }
    if (ld && modelOrdersLoads(ConsistencyModel(r.model))) {
      addEdge(ca.lastOrderedRead, i, EdgeKind::kAddr, ingestOrder(i, sub++));
      ca.lastOrderedRead = i;
    }

    if (r.reads() && r.performed()) unresolved.push_back(i);

    if (st) {
      ca.lastWrite = i;
      ca.writes.push_back({i, r.performCycle, r.seq, r.value, inWs});
      cs.lastStoreLike = i;
    }
    if (ld) cs.lastLoadLike = i;

    if (inWs) {
      AddrHistory& ah = addrs[r.addr];
      // Watched-value detector: this write would have been a candidate
      // for an already-resolved read of the same value (batch scans the
      // whole final serialization). Same-node writes are exempt — the
      // batch remote scan skips them and the own scan is po-bounded.
      if (auto wit = ah.watched.find(r.value); wit != ah.watched.end()) {
        if (wit->second == kMultiNode || wit->second != r.node) {
          flagWindow("a write arrived after a read of the same value and "
                     "word was already resolved");
        }
      }
      const std::size_t pos = findWsEntry(ah, r.performCycle, r.node, r.seq);
      const bool atEnd = pos == ah.entries.size();
      WsEntry e;
      e.idx = i;
      e.cycle = r.performCycle;
      e.value = r.value;
      e.seq = r.seq;
      e.node = r.node;
      ah.entries.insert(ah.entries.begin() + std::ptrdiff_t(pos), e);
      if (atEnd && !ah.awaitSucc.empty()) {
        // The previous tail (and any first-write waiters) now have a
        // successor candidate; move them to the stabilizing scan.
        stabilizing.insert(stabilizing.end(), ah.awaitSucc.begin(),
                           ah.awaitSucc.end());
        ah.awaitSucc.clear();
      }
      agingWrites.push_back(i);
    }

    maybeReady(i);  // e.g. a pending store with no in-edges
  }

  // --- deferred resolution / emission -------------------------------------

  ResolveOutcome computeResolve(std::uint64_t i, const TraceRecord& r) const {
    ResolveOutcome o;
    o.readIdx = i;
    o.blame = i;
    const std::uint64_t v = observedValue(r);
    if (auto cit = cores[r.node].byAddr.find(r.addr);
        cit != cores[r.node].byAddr.end()) {
      for (const OwnWrite& w : cit->second.writes) {
        if (w.idx >= i) break;  // history holds po-later writes too
        if (w.value == v) {
          o.own = w.idx;
          o.ownCycle = w.cycle;
          o.ownSeq = w.seq;
          o.ownInWs = w.inWs;
          ++o.matches;
        }
      }
    }
    auto ait = addrs.find(r.addr);
    if (ait != addrs.end()) {
      for (const WsEntry& w : ait->second.entries) {
        if (w.node == r.node) continue;
        if (w.value == v) {
          o.remote = w.idx;
          o.remoteCycle = w.cycle;
          o.remoteSeq = w.seq;
          o.remoteNode = w.node;
          ++o.matches;
        }
      }
    }
    if (v == initialWordValue(r.addr)) ++o.matches;
    if (o.matches == 0) {
      Cycle best = 0;
      if (ait != addrs.end()) {
        for (const WsEntry& w : ait->second.entries) {
          if (w.cycle <= r.performCycle && w.cycle >= best) {
            best = w.cycle;
            o.blame = w.idx;
            o.blameValue = w.value;
            o.blameCycle = w.cycle;
          }
        }
      }
    }
    return o;
  }

  void pendFr(std::uint64_t readIdx, Addr addr, Cycle wCycle,
              std::uint8_t wNode, SeqNum wSeq, bool beforeAll) {
    AddrHistory& ah = addrs[addr];
    PendingFr p;
    p.readIdx = readIdx;
    p.addr = addr;
    p.wCycle = wCycle;
    p.wSeq = wSeq;
    p.wNode = wNode;
    p.beforeAll = beforeAll;
    bool await;
    if (beforeAll) {
      await = ah.entries.empty();
    } else {
      const std::size_t pos = findWsEntry(ah, wCycle, wNode, wSeq);
      await = pos + 1 >= ah.entries.size();
    }
    if (await) {
      ah.awaitSucc.push_back(p);
    } else {
      stabilizing.push_back(p);
    }
  }

  void applyResolve(const ResolveOutcome& o, const TraceRecord& r) {
    const std::uint64_t v = observedValue(r);
    if (o.matches == 0) {
      std::string msg = "read of " + oracleHex(r.addr) + " observed " +
                        oracleHex(v) + " at cycle " +
                        std::to_string(r.performCycle) +
                        "; no write (or the initial value " +
                        oracleHex(initialWordValue(r.addr)) +
                        ") ever produced it";
      if (o.blame != o.readIdx) {
        msg += "; latest settled write is " + oracleHex(o.blameValue) +
               " (cycle " + std::to_string(o.blameCycle) + ")";
      }
      addValueViolation(o.readIdx, o.blame, std::move(msg));
    } else if (o.matches > 1) {
      ++stats.ambiguousReads;
    } else if (o.own != kNone64) {
      ++stats.forwardedReads;
      if (o.ownInWs) {
        pendFr(o.readIdx, r.addr, o.ownCycle, r.node, o.ownSeq, false);
      }
    } else if (o.remote != kNone64) {
      addEdge(o.remote, o.readIdx, EdgeKind::kRf, resolveOrder(o.readIdx, 0));
      pendFr(o.readIdx, r.addr, o.remoteCycle, o.remoteNode, o.remoteSeq,
             false);
    } else {
      ++stats.initReads;
      pendFr(o.readIdx, r.addr, 0, 0, 0, true);
    }
    if (o.matches <= 1) {
      AddrHistory& ah = addrs[r.addr];
      auto [wit, fresh] = ah.watched.try_emplace(v, std::uint16_t(r.node));
      if (!fresh && wit->second != r.node) wit->second = kMultiNode;
    }
    auto nit = liveNodes.find(o.readIdx);
    DVMC_ASSERT(nit != liveNodes.end(), "resolving a retired read");
    nit->second.resolved = true;
    maybeReady(o.readIdx);
  }

  void resolveDueReads(bool final) {
    std::vector<std::pair<std::uint64_t, TraceRecord>> due;
    while (!unresolved.empty()) {
      const std::uint64_t i = unresolved.front();
      const TraceRecord& r = liveNodes.at(i).rec;
      if (!final && frontier <= r.performCycle + opt.settleHorizon) break;
      due.emplace_back(i, r);
      unresolved.pop_front();
    }
    if (due.empty()) return;
    std::vector<ResolveOutcome> outcomes(due.size());
    if (due.size() >= opt.shardMinBatch && opt.jobs > 1) {
      // Candidate scans only read frozen histories; the serial apply
      // below keeps violations / edges / stats in record order, so the
      // verdict is bit-identical for every jobs value.
      parallelFor(due.size(), unsigned(opt.jobs), [&](std::size_t k) {
        outcomes[k] = computeResolve(due[k].first, due[k].second);
      });
    } else {
      for (std::size_t k = 0; k < due.size(); ++k) {
        outcomes[k] = computeResolve(due[k].first, due[k].second);
      }
    }
    for (std::size_t k = 0; k < due.size(); ++k) {
      applyResolve(outcomes[k], due[k].second);
    }
  }

  void scanStabilizing(bool final) {
    std::size_t w = 0;
    for (std::size_t k = 0; k < stabilizing.size(); ++k) {
      const PendingFr e = stabilizing[k];
      AddrHistory& ah = addrs.at(e.addr);
      const WsEntry* succ = nullptr;
      if (e.beforeAll) {
        if (!ah.entries.empty()) succ = &ah.entries.front();
      } else {
        const std::size_t pos = findWsEntry(ah, e.wCycle, e.wNode, e.wSeq);
        if (pos + 1 < ah.entries.size()) succ = &ah.entries[pos + 1];
      }
      if (succ == nullptr) {
        // Lost its successor candidate shape (defensive; the list never
        // shrinks, so this cannot normally happen mid-run).
        if (!final) ah.awaitSucc.push_back(e);
        continue;
      }
      if (final || frontier > succ->cycle + opt.settleHorizon) {
        addEdge(e.readIdx, succ->idx, EdgeKind::kFr,
                resolveOrder(e.readIdx, 1));
      } else {
        stabilizing[w++] = e;
      }
    }
    stabilizing.resize(w);
  }

  void ageWrites(bool final) {
    while (!agingWrites.empty()) {
      const std::uint64_t i = agingWrites.front();
      auto it = liveNodes.find(i);
      DVMC_ASSERT(it != liveNodes.end(), "aging a retired write");
      const TraceRecord& r = it->second.rec;
      if (!final &&
          frontier <= r.performCycle + 2 * opt.settleHorizon) {
        break;
      }
      agingWrites.pop_front();
      AddrHistory& ah = addrs.at(r.addr);
      const std::size_t pos = findWsEntry(ah, r.performCycle, r.node, r.seq);
      DVMC_ASSERT(pos < ah.entries.size() && ah.entries[pos].idx == i,
                  "serialized write missing from its word history");
      if (!ah.entries[pos].linkEmitted) {
        ah.entries[pos].linkEmitted = true;
        if (pos > 0) {
          addEdge(ah.entries[pos - 1].idx, i, EdgeKind::kWs, kWsOrder);
        }
      }
      // Re-find: addEdge does not insert, but stay rehash-safe.
      liveNodes.at(i).aged = true;
      maybeReady(i);
    }
  }

  void cascade() {
    while (!ready.empty()) {
      const std::uint64_t key = ready.back();
      ready.pop_back();
      auto it = liveNodes.find(key);
      if (it == liveNodes.end()) continue;
      if (it->second.indeg != 0) {
        // An in-edge landed after the node was queued (only possible
        // when the skew assumption broke); put it back to sleep.
        it->second.queued = false;
        continue;
      }
      std::vector<OutEdge> out = std::move(it->second.out);
      liveNodes.erase(key);
      for (const OutEdge& e : out) {
        auto tit = liveNodes.find(e.to);
        if (tit == liveNodes.end()) continue;
        if (--tit->second.indeg == 0) maybeReady(e.to);
      }
    }
  }

  void settle(bool final) {
    resolveDueReads(final);
    scanStabilizing(final);
    ageWrites(final);
    cascade();
    if (liveNodes.size() > peak) peak = liveNodes.size();
    if (!final && opt.maxResidentEvents != 0 &&
        liveNodes.size() > opt.maxResidentEvents) {
      flagWindow("live records exceed --max-resident-events (likely an "
                 "ordering cycle, which can never settle)");
    }
  }

  // --- residual cycle check (batch checkAcyclic, restated) -----------------

  void checkResidualCycle() {
    if (liveNodes.empty()) return;
    std::vector<std::uint64_t> keys;
    keys.reserve(liveNodes.size());
    for (const auto& [k, n] : liveNodes) keys.push_back(k);
    std::sort(keys.begin(), keys.end());  // batch node-id order

    // Restore batch adjacency order so parallel-edge kind selection in
    // the back-walk matches.
    for (std::uint64_t k : keys) {
      std::vector<OutEdge>& out = liveNodes.at(k).out;
      std::sort(out.begin(), out.end(),
                [](const OutEdge& a, const OutEdge& b) {
                  return a.order < b.order;
                });
    }

    FlatMap<std::uint64_t, std::pair<std::uint64_t, EdgeKind>> predOf;
    for (std::uint64_t u : keys) {
      for (const OutEdge& e : liveNodes.at(u).out) {
        if (!liveNodes.contains(e.to)) continue;
        predOf.try_emplace(e.to, std::make_pair(u, e.kind));
      }
    }

    const std::uint64_t start = keys.front();
    std::vector<std::uint64_t> back;
    FlatMap<std::uint64_t, std::uint32_t> posInPath;
    std::uint64_t u = start;
    while (!posInPath.contains(u)) {
      posInPath[u] = std::uint32_t(back.size());
      back.push_back(u);
      u = predOf.at(u).first;
    }
    const std::uint32_t first = posInPath.at(u);
    std::vector<std::uint64_t> path(back.begin() + first, back.end());
    std::reverse(path.begin(), path.end());
    std::vector<EdgeKind> viaKind;
    viaKind.reserve(path.size());
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      viaKind.push_back(predOf.at(path[k + 1]).second);
    }
    viaKind.push_back(predOf.at(path.front()).second);

    auto realOf = [&](std::uint64_t node) {
      const LiveNode& n = liveNodes.at(node);
      return std::make_pair(n.srcIndex, &n.rec);
    };
    std::uint64_t bestA = kNone64, bestB = kNone64;
    const TraceRecord* bestARec = nullptr;
    const TraceRecord* bestBRec = nullptr;
    EdgeKind bestKind = EdgeKind::kPo;
    for (std::size_t k = 0; k < path.size(); ++k) {
      const auto [a, arec] = realOf(path[k]);
      const auto [b, brec] = realOf(path[(k + 1) % path.size()]);
      if (a == b) continue;
      if (bestA == kNone64 || a > bestA) {
        bestA = a;
        bestB = b;
        bestARec = arec;
        bestBRec = brec;
        bestKind = viaKind[k];
      }
    }
    if (std::getenv("DVMC_ORACLE_DEBUG") != nullptr) {
      std::fprintf(stderr, "cycle of %zu:\n", path.size());
      for (std::size_t k = 0; k < path.size(); ++k) {
        const auto [a, arec] = realOf(path[k]);
        std::fprintf(stderr, "  %s %s  --%s-->\n",
                     path[k] >= kVirtBase ? "(virt)" : "      ",
                     describeRecordLine(*arec, a).c_str(),
                     edgeKindName(viaKind[k]));
      }
    }
    std::string msg =
        "ordering cycle of " + std::to_string(path.size()) +
        " node(s) under " + modelName(ConsistencyModel(declaredModel)) +
        "; " + edgeKindName(bestKind) + " edge " +
        describeRecordLine(*bestARec, bestA) + " -> " +
        describeRecordLine(*bestBRec, bestB) + " closes it";
    res.violations.push_back(makeViolation(OracleViolation::Kind::kCycle,
                                           bestA, bestB, std::move(msg)));
  }

  // --- TraceSink surface ---------------------------------------------------

  void begin(const TraceHeader& h) {
    DVMC_ASSERT(!begun, "StreamingOracle::begin called twice");
    begun = true;
    numCores = h.numCores;
    declaredModel = h.declaredModel;
    cores.assign(numCores, CoreState{});
    if (numCores == 0 ||
        declaredModel > std::uint8_t(ConsistencyModel::kRMO)) {
      malformed = true;
      malformedViolation =
          makeViolation(OracleViolation::Kind::kMalformed, 0, 0,
                        "bad header (core count or declared model)");
    }
  }

  void chunk(TraceChunk&& c) {
    DVMC_ASSERT(begun && !ended, "chunk outside begin/end");
    DVMC_ASSERT(c.firstIndex == recordsSeen, "chunks must be contiguous");
    if (exceeded) {
      recordsSeen += c.records.size();
      return;
    }
    for (const TraceRecord& r : c.records) {
      const std::uint64_t i = recordsSeen++;
      if (malformed) continue;  // keep counting records, like batch
      ingest(r, i);
    }
    if (malformed) {
      clearState();
      return;
    }
    settle(false);
    if (exceeded) clearState();
  }

  void end(bool truncated) {
    DVMC_ASSERT(begun && !ended, "end outside begin");
    ended = true;
    truncatedStream = truncated;
  }

  const OracleResult& finish() {
    if (finished) return res;
    DVMC_ASSERT(ended, "finish before the stream ended");
    finished = true;
    res = OracleResult{};
    if (truncatedStream) {
      // Batch refuses a truncated capture before anything else.
      res.stats.records = recordsSeen;
      res.violations.push_back(makeViolation(
          OracleViolation::Kind::kMalformed, 0, 0,
          "trace hit the capture limit; a partial trace cannot be "
          "checked (dropped stores would read as never-written "
          "values) — raise --capture-trace-limit"));
      res.clean = false;
      clearState();
      return res;
    }
    if (malformed) {
      // Batch runs well-formedness as a pre-pass: op counts up to the
      // failing record survive, graph work never starts.
      res.stats = stats;
      res.stats.records = recordsSeen;
      res.stats.edges = res.stats.rfEdges = res.stats.wsEdges =
          res.stats.frEdges = 0;
      res.stats.virtualNodes = 0;
      res.stats.forwardedReads = res.stats.initReads =
          res.stats.ambiguousReads = 0;
      res.violations.push_back(malformedViolation);
      res.clean = false;
      clearState();
      return res;
    }
    if (!exceeded) settle(true);
    res.stats = stats;
    res.stats.records = recordsSeen;
    if (exceeded) {
      // The verdict is not trustworthy; callers consult windowExceeded()
      // and fall back to the batch oracle.
      res.clean = res.violations.empty();
      clearState();
      return res;
    }
    res.violations = std::move(valueViolations);
    if (res.violations.size() < opt.maxViolations) checkResidualCycle();
    res.clean = res.violations.empty();
    clearState();
    return res;
  }
};

StreamingOracle::StreamingOracle(const StreamingOracleOptions& o)
    : impl_(std::make_unique<Impl>(o)) {}

StreamingOracle::~StreamingOracle() = default;

void StreamingOracle::begin(const TraceHeader& h) { impl_->begin(h); }
void StreamingOracle::chunk(TraceChunk&& c) { impl_->chunk(std::move(c)); }
void StreamingOracle::end(bool truncated) { impl_->end(truncated); }

const OracleResult& StreamingOracle::finish() { return impl_->finish(); }

bool StreamingOracle::windowExceeded() const { return impl_->exceeded; }

const std::string& StreamingOracle::windowExceededReason() const {
  return impl_->exceededReason;
}

std::size_t StreamingOracle::peakResidentRecords() const {
  return impl_->peak;
}

std::size_t StreamingOracle::residentRecords() const {
  return impl_->liveNodes.size();
}

OracleResult checkTraceStreaming(const CapturedTrace& t,
                                 const StreamingOracleOptions& o,
                                 std::size_t chunkRecords,
                                 bool* windowExceeded,
                                 std::size_t* peakResident) {
  StreamingOracle so(o);
  streamCapturedTrace(t, so, chunkRecords);
  OracleResult r = so.finish();
  if (windowExceeded != nullptr) *windowExceeded = so.windowExceeded();
  if (peakResident != nullptr) *peakResident = so.peakResidentRecords();
  return r;
}

}  // namespace dvmc::verify
