// Offline polynomial-time memory-consistency oracle.
//
// Checks a captured commit trace (verify/trace.hpp) against the declared
// consistency model, independently of the runtime DVMC checkers. The
// algorithm follows the TSOtool / Roy-et-al. recipe: build a constraint
// graph over the committed operations —
//
//   po      program-order edges the per-op effective model mandates
//   addr    same-core same-word coherence edges (CoWW / CoRW / CoRR)
//   membar  per-bit virtual barrier nodes for SPARC membar masks
//   drain   a full virtual barrier where the effective model switches
//   rf      reads-from edges to globally performed writers
//   ws      per-word write serialization (perform-cycle order)
//   fr      from-read edges into the writer's ws successor
//
// — then run a Kahn topological sort (equivalent to vector-clock closure);
// any residual cycle is an ordering violation, reported as the first
// violating edge with byte offsets into the serialized trace. Read values
// are separately checked against the set of values a read performing at
// cycle t may legally observe (globally settled writers, same-cycle
// writers, local store-buffer forwarding, or the initial fill pattern).
//
// The oracle is sound but incomplete in the usual sense: it never flags a
// legal execution (no false positives — required by the differential
// harness), but value aliasing can hide a genuinely wrong reads-from
// choice. Traces that hit the capture limit are refused (kMalformed)
// rather than checked partially: dropped store records would make later
// reads look like they observed never-written values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/trace.hpp"

namespace dvmc::verify {

struct OracleViolation {
  enum class Kind : std::uint8_t {
    kMalformed,     // trace fails well-formedness (or was truncated)
    kBadReadValue,  // read observed a value no legal execution yields
    kCycle,         // constraint graph has a cycle
  };
  Kind kind = Kind::kMalformed;
  // Offending records (indices into CapturedTrace::records) and their byte
  // offsets in the serialized stream; recordB is unused for kMalformed
  // verdicts that concern the whole trace.
  std::size_t recordA = 0;
  std::size_t recordB = 0;
  std::size_t byteA = 0;
  std::size_t byteB = 0;
  std::string message;
};

const char* violationKindName(OracleViolation::Kind k);

struct OracleStats {
  std::size_t records = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t membars = 0;
  std::size_t virtualNodes = 0;   // membar/drain barrier bits
  std::size_t edges = 0;          // total constraint edges
  std::size_t rfEdges = 0;
  std::size_t wsEdges = 0;
  std::size_t frEdges = 0;
  std::size_t forwardedReads = 0;  // satisfied by local store forwarding
  std::size_t initReads = 0;       // observed the initial fill pattern
  std::size_t ambiguousReads = 0;  // several same-value writers: no edges
};

struct OracleOptions {
  // Stop at the first violation (the CLI's `check`); `explain` keeps going
  // only insofar as value errors are independent, so this mostly bounds
  // output size.
  std::size_t maxViolations = 1;
};

struct OracleResult {
  bool clean = false;
  std::vector<OracleViolation> violations;
  OracleStats stats;
};

OracleResult checkTrace(const CapturedTrace& t, const OracleOptions& o = {});

/// One-line human description of record i ("[3] n2 store @0x1040 ...").
std::string describeRecord(const CapturedTrace& t, std::size_t i);

/// The deterministic value an 8-byte word holds before any store to it.
std::uint64_t initialWordValue(Addr wordAddr);

}  // namespace dvmc::verify
