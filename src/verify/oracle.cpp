#include "verify/oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "coherence/memory_storage.hpp"
#include "common/flat_map.hpp"
#include "consistency/op.hpp"
#include "consistency/ordering_table.hpp"
#include "verify/model_rules.hpp"

namespace dvmc::verify {
namespace {

constexpr std::uint32_t kNone = ~std::uint32_t{0};

struct Edge {
  std::uint32_t to;
  EdgeKind kind;
};

// Per-core per-word history used for the coherence edges and the store
// forwarding walk.
struct AddrState {
  std::uint32_t lastWrite = kNone;
  std::uint32_t lastOrderedRead = kNone;  // last read whose model orders loads
  std::vector<std::uint32_t> writes;      // all writes, program order
};

// Per-core graph-building state.
struct CoreState {
  std::uint32_t lastLoadLike = kNone;
  std::uint32_t lastStoreLike = kNone;
  std::uint8_t prevModel = 0xFF;
  std::vector<std::uint32_t> pend[4];  // ops awaiting a barrier, per bit
  std::uint32_t lastV[4] = {kNone, kNone, kNone, kNone};
  FlatMap<Addr, AddrState> byAddr;
};

struct GraphBuilder {
  const CapturedTrace& t;
  OracleStats& stats;
  std::vector<std::vector<Edge>> adj;
  std::vector<std::uint32_t> indeg;
  // Virtual nodes live past the record range; each maps back to the membar
  // (or model-switching op) it came from, for reporting.
  std::vector<std::uint32_t> virtualSource;

  explicit GraphBuilder(const CapturedTrace& trace, OracleStats& s)
      : t(trace), stats(s) {
    adj.resize(t.records.size());
    indeg.resize(t.records.size(), 0);
  }

  std::size_t numNodes() const { return adj.size(); }

  std::uint32_t recordOf(std::uint32_t node) const {
    return node < t.records.size()
               ? node
               : virtualSource[node - t.records.size()];
  }

  void addEdge(std::uint32_t from, std::uint32_t to, EdgeKind kind) {
    if (from == kNone || from == to) return;
    adj[from].push_back({to, kind});
    ++indeg[to];
    ++stats.edges;
    if (kind == EdgeKind::kRf) ++stats.rfEdges;
    if (kind == EdgeKind::kWs) ++stats.wsEdges;
    if (kind == EdgeKind::kFr) ++stats.frEdges;
  }

  std::uint32_t addVirtual(std::uint32_t sourceRecord) {
    adj.emplace_back();
    indeg.push_back(0);
    virtualSource.push_back(sourceRecord);
    ++stats.virtualNodes;
    return std::uint32_t(adj.size() - 1);
  }
};

std::string hex(std::uint64_t v) { return oracleHex(v); }

class Oracle {
 public:
  Oracle(const CapturedTrace& t, const OracleOptions& o) : t_(t), o_(o) {}

  OracleResult run() {
    res_.stats.records = t_.records.size();
    if (!wellFormed()) {
      res_.clean = res_.violations.empty();
      return res_;
    }
    buildWriteSerialization();
    buildGraphAndCheckValues();
    if (res_.violations.size() < o_.maxViolations) checkAcyclic();
    res_.clean = res_.violations.empty();
    return res_;
  }

 private:
  void addViolation(OracleViolation::Kind kind, std::size_t a, std::size_t b,
                    std::string msg) {
    if (res_.violations.size() >= o_.maxViolations) return;
    OracleViolation v;
    v.kind = kind;
    v.recordA = a;
    v.recordB = b;
    v.byteA = CapturedTrace::byteOffset(a);
    v.byteB = CapturedTrace::byteOffset(b);
    v.message = std::move(msg);
    res_.violations.push_back(std::move(v));
  }

  bool wellFormed() {
    if (t_.truncated) {
      addViolation(OracleViolation::Kind::kMalformed, 0, 0,
                   "trace hit the capture limit; a partial trace cannot be "
                   "checked (dropped stores would read as never-written "
                   "values) — raise --capture-trace-limit");
      return false;
    }
    if (t_.numCores == 0 ||
        t_.declaredModel > std::uint8_t(ConsistencyModel::kRMO)) {
      addViolation(OracleViolation::Kind::kMalformed, 0, 0,
                   "bad header (core count or declared model)");
      return false;
    }
    std::vector<SeqNum> lastSeq(t_.numCores, 0);
    std::vector<bool> seen(t_.numCores, false);
    for (std::size_t i = 0; i < t_.records.size(); ++i) {
      const TraceRecord& r = t_.records[i];
      if (r.node >= t_.numCores) {
        addViolation(OracleViolation::Kind::kMalformed, i, i,
                     "record node out of range");
        return false;
      }
      if (r.model > std::uint8_t(ConsistencyModel::kRMO) ||
          r.op > TraceOp::kMembar) {
        addViolation(OracleViolation::Kind::kMalformed, i, i,
                     "record model/op out of range");
        return false;
      }
      if (seen[r.node] && r.seq <= lastSeq[r.node]) {
        addViolation(OracleViolation::Kind::kMalformed, i, i,
                     "per-core sequence numbers must be strictly "
                     "increasing (commit order is program order)");
        return false;
      }
      seen[r.node] = true;
      lastSeq[r.node] = r.seq;
      const bool mustPerform = r.op != TraceOp::kStore;
      if (mustPerform &&
          (!r.performed() || r.performCycle == kNotPerformed)) {
        addViolation(OracleViolation::Kind::kMalformed, i, i,
                     "non-store record without a perform cycle");
        return false;
      }
      if (r.superseded() && r.op != TraceOp::kStore) {
        addViolation(OracleViolation::Kind::kMalformed, i, i,
                     "only buffered stores can be superseded");
        return false;
      }
      if ((r.flags & kFlagCasFailed) != 0 && r.op != TraceOp::kCas) {
        addViolation(OracleViolation::Kind::kMalformed, i, i,
                     "cas-failed flag on a non-cas record");
        return false;
      }
      if (r.op == TraceOp::kMembar) {
        ++res_.stats.membars;
      } else {
        if (r.writes()) ++res_.stats.writes;
        if (r.reads()) ++res_.stats.reads;
      }
    }
    return true;
  }

  // Per-word serialization of globally performed writes, ordered by perform
  // cycle (exclusive ownership makes cross-node same-cycle ties physically
  // impossible; same-node ties resolve by program order).
  void buildWriteSerialization() {
    wsPos_.assign(t_.records.size(), kNone);
    for (std::size_t i = 0; i < t_.records.size(); ++i) {
      const TraceRecord& r = t_.records[i];
      if (r.writes() && r.performed() && !r.superseded()) {
        ws_[r.addr].push_back(std::uint32_t(i));
      }
    }
    for (auto& [addr, list] : ws_) {
      std::sort(list.begin(), list.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const TraceRecord& x = t_.records[a];
                  const TraceRecord& y = t_.records[b];
                  if (x.performCycle != y.performCycle) {
                    return x.performCycle < y.performCycle;
                  }
                  if (x.node != y.node) return x.node < y.node;
                  return x.seq < y.seq;
                });
      for (std::size_t k = 0; k < list.size(); ++k) wsPos_[list[k]] = k;
    }
  }

  // Resolves where read `i` got its value from (TSOtool-style: by VALUE,
  // not by timestamp). Perform cycles are recorded at completion callbacks
  // and lag true visibility by the protocol's propagation latency, so a
  // read may legally observe a write whose recorded cycle is later than
  // its own, or an old write whose invalidation had not yet arrived —
  // timestamp windows would flag both. Candidate writers are every write
  // of the observed value the read could physically have seen:
  //   (a) this core's program-order-earlier writes (store forwarding
  //       covers even never-performed / superseded buffer entries),
  //   (b) performed remote writes (from the word's serialization),
  //   (c) the initial fill pattern.
  // No candidate at all means the value came from nowhere — the
  // wrong-data verdict that mirrors a DVUO/DVCC detection. A unique
  // candidate yields ordering edges (rf from a remote writer; from-read
  // into the writer's ws successor). Multiple same-value candidates make
  // the true writer unobservable, so the value is accepted with no edges
  // — soundness over completeness.
  void resolveRead(std::uint32_t i, CoreState& cs, GraphBuilder& g) {
    const TraceRecord& r = t_.records[i];
    const std::uint64_t v = observedValue(r);
    const std::vector<std::uint32_t>* wlist = nullptr;
    if (auto it = ws_.find(r.addr); it != ws_.end()) wlist = &it->second;

    std::uint32_t own = kNone;     // po-earlier same-core match
    std::uint32_t remote = kNone;  // performed other-core match
    std::size_t matches = 0;
    if (auto it = cs.byAddr.find(r.addr); it != cs.byAddr.end()) {
      for (std::uint32_t wi : it->second.writes) {
        if (t_.records[wi].value == v) {
          own = wi;
          ++matches;
        }
      }
    }
    if (wlist != nullptr) {
      for (std::uint32_t wi : *wlist) {
        const TraceRecord& w = t_.records[wi];
        // Same-core entries were counted above; po-later ones are not
        // observable and pending/superseded remote ones only ever forward
        // locally on their own core.
        if (w.node == r.node) continue;
        if (w.value == v) {
          remote = wi;
          ++matches;
        }
      }
    }
    const bool initMatch = v == initialWordValue(r.addr);
    if (initMatch) ++matches;

    if (matches == 0) {
      std::uint32_t blame = i;
      Cycle best = 0;
      if (wlist != nullptr) {
        for (std::uint32_t wi : *wlist) {
          const TraceRecord& w = t_.records[wi];
          if (w.performCycle <= r.performCycle && w.performCycle >= best) {
            best = w.performCycle;
            blame = wi;
          }
        }
      }
      std::string msg = "read of " + hex(r.addr) + " observed " + hex(v) +
                        " at cycle " + std::to_string(r.performCycle) +
                        "; no write (or the initial value " +
                        hex(initialWordValue(r.addr)) +
                        ") ever produced it";
      if (blame != i) {
        msg += "; latest settled write is " + hex(t_.records[blame].value) +
               " (cycle " + std::to_string(t_.records[blame].performCycle) +
               ")";
      }
      addViolation(OracleViolation::Kind::kBadReadValue, i, blame,
                   std::move(msg));
      return;
    }
    if (matches > 1) {
      ++res_.stats.ambiguousReads;
      return;
    }
    if (own != kNone) {
      ++res_.stats.forwardedReads;
      // No rf edge: program order already relates the writer and the
      // read. The from-read constraint still holds once the writer is in
      // the serialization (a superseded / still-buffered writer is not).
      if (wsPos_[own] != kNone) addFrEdge(i, own, *wlist, g);
      return;
    }
    if (remote != kNone) {
      g.addEdge(remote, i, EdgeKind::kRf);
      addFrEdge(i, remote, *wlist, g);
      return;
    }
    ++res_.stats.initReads;  // read the initial pattern: before every write
    if (wlist != nullptr && !wlist->empty()) {
      g.addEdge(i, wlist->front(), EdgeKind::kFr);
    }
  }

  // from-read: the read saw writer `w`, so it precedes w's ws successor in
  // the word's coherence order (recorded cycles do not matter: a stale
  // read legally observes w after the successor's completion callback).
  void addFrEdge(std::uint32_t read, std::uint32_t w,
                 const std::vector<std::uint32_t>& wlist, GraphBuilder& g) {
    const std::uint32_t pos = wsPos_[w];
    if (pos == kNone || pos + 1 >= wlist.size()) return;
    g.addEdge(read, wlist[pos + 1], EdgeKind::kFr);
  }

  void buildGraphAndCheckValues() {
    GraphBuilder g(t_, res_.stats);
    std::vector<CoreState> cores(t_.numCores);
    const OrderingTable tables[4] = {
        OrderingTable::forModel(ConsistencyModel::kSC),
        OrderingTable::forModel(ConsistencyModel::kTSO),
        OrderingTable::forModel(ConsistencyModel::kPSO),
        OrderingTable::forModel(ConsistencyModel::kRMO),
    };

    // ws chains first: independent of program order.
    for (const auto& [addr, list] : ws_) {
      for (std::size_t k = 1; k < list.size(); ++k) {
        g.addEdge(list[k - 1], list[k], EdgeKind::kWs);
      }
    }

    for (std::size_t idx = 0; idx < t_.records.size(); ++idx) {
      const std::uint32_t i = std::uint32_t(idx);
      const TraceRecord& r = t_.records[i];
      CoreState& cs = cores[r.node];
      const OrderingTable& tab = tables[r.model];

      // An effective-model switch drains the pipeline: a full virtual
      // barrier orders everything earlier before everything later.
      if (cs.prevModel != 0xFF && cs.prevModel != r.model) {
        barrier(i, membar::kAll, EdgeKind::kDrain, cs, g);
      }
      cs.prevModel = r.model;

      if (r.op == TraceOp::kMembar) {
        if (r.membarMask != 0) {
          barrier(i, r.membarMask, EdgeKind::kMembar, cs, g);
        }
        continue;
      }

      // Program-order edges the op's effective model mandates, from the
      // closest earlier load-like / store-like op (transitivity covers the
      // rest: the tables are monotone in each class).
      const bool ld = isLoadClass(r.op);
      const bool st = isStoreClass(r.op);
      std::uint8_t fromLoad = 0;
      std::uint8_t fromStore = 0;
      if (ld) {
        fromLoad |= tab.entry(OpClass::kLoad, OpClass::kLoad);
        fromStore |= tab.entry(OpClass::kStore, OpClass::kLoad);
      }
      if (st) {
        fromLoad |= tab.entry(OpClass::kLoad, OpClass::kStore);
        fromStore |= tab.entry(OpClass::kStore, OpClass::kStore);
      }
      if (fromLoad != 0) g.addEdge(cs.lastLoadLike, i, EdgeKind::kPo);
      if (fromStore != 0) g.addEdge(cs.lastStoreLike, i, EdgeKind::kPo);

      // Barrier waits and pend registration.
      const std::uint8_t wait = waitBits(r);
      for (int b = 0; b < 4; ++b) {
        if ((wait & (1u << b)) != 0 && cs.lastV[b] != kNone) {
          g.addEdge(cs.lastV[b], i, EdgeKind::kMembar);
        }
      }
      const std::uint8_t pend = pendBits(r);
      for (int b = 0; b < 4; ++b) {
        if ((pend & (1u << b)) != 0) cs.pend[b].push_back(i);
      }

      // Same-core same-word coherence. No write->read edge: store
      // forwarding legally lets a read perform before its po-earlier
      // writer settles.
      AddrState& as = cs.byAddr[r.addr];
      if (st) {
        g.addEdge(as.lastWrite, i, EdgeKind::kAddr);        // CoWW
        g.addEdge(as.lastOrderedRead, i, EdgeKind::kAddr);  // CoRW
      }
      if (ld && modelOrdersLoads(ConsistencyModel(r.model))) {
        g.addEdge(as.lastOrderedRead, i, EdgeKind::kAddr);  // CoRR
        as.lastOrderedRead = i;
      }

      // Value check + rf/fr, before this op's own write becomes part of
      // the core's history.
      if (r.reads() && r.performed()) resolveRead(i, cs, g);

      if (st) {
        as.lastWrite = i;
        as.writes.push_back(i);
      }
      if (ld) cs.lastLoadLike = i;
      if (st) cs.lastStoreLike = i;
    }

    graph_ = std::move(g.adj);
    indeg_ = std::move(g.indeg);
    virtualSource_ = std::move(g.virtualSource);
  }

  // Creates the per-bit virtual barrier nodes for a membar mask (or a
  // drain) at record `src`: every op pending on bit b happens before V_b,
  // and V_b before every later op waiting on b. Same-bit barriers chain,
  // which transitively orders across consecutive barriers.
  void barrier(std::uint32_t src, std::uint8_t mask, EdgeKind kind,
               CoreState& cs, GraphBuilder& g) {
    for (int b = 0; b < 4; ++b) {
      if ((mask & (1u << b)) == 0) continue;
      const std::uint32_t v = g.addVirtual(src);
      for (std::uint32_t p : cs.pend[b]) g.addEdge(p, v, kind);
      cs.pend[b].clear();
      if (cs.lastV[b] != kNone) g.addEdge(cs.lastV[b], v, kind);
      cs.lastV[b] = v;
    }
  }

  void checkAcyclic() {
    const std::size_t n = graph_.size();
    std::vector<std::uint32_t> indeg = indeg_;
    std::vector<std::uint32_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) ready.push_back(std::uint32_t(i));
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
      const std::uint32_t u = ready.back();
      ready.pop_back();
      ++processed;
      for (const Edge& e : graph_[u]) {
        if (--indeg[e.to] == 0) ready.push_back(e.to);
      }
    }
    if (processed == n) return;

    // Every node Kahn left unprocessed has residual indegree > 0, i.e. at
    // least one unprocessed predecessor — so a backwards walk through the
    // unprocessed subgraph cannot get stuck and must revisit a node; the
    // revisited suffix is a cycle (in reverse).
    std::vector<std::uint32_t> predOf(n, kNone);
    std::vector<EdgeKind> predKind(n, EdgeKind::kPo);
    for (std::size_t uu = 0; uu < n; ++uu) {
      if (indeg[uu] == 0) continue;
      for (const Edge& e : graph_[uu]) {
        if (indeg[e.to] != 0 && predOf[e.to] == kNone) {
          predOf[e.to] = std::uint32_t(uu);
          predKind[e.to] = e.kind;
        }
      }
    }
    std::uint32_t start = kNone;
    for (std::size_t i = 0; i < n; ++i) {
      if (indeg[i] != 0) {
        start = std::uint32_t(i);
        break;
      }
    }
    std::vector<std::uint32_t> back;
    std::vector<std::uint32_t> posInPath(n, kNone);
    std::uint32_t u = start;
    while (posInPath[u] == kNone) {
      posInPath[u] = std::uint32_t(back.size());
      back.push_back(u);
      u = predOf[u];
    }
    // back[first..] walked predecessors from u; reversed, it is a forward
    // cycle starting and ending at u.
    const std::uint32_t first = posInPath[u];
    std::vector<std::uint32_t> path(back.begin() + first, back.end());
    std::reverse(path.begin(), path.end());
    std::vector<EdgeKind> viaKind;
    viaKind.reserve(path.size());
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      viaKind.push_back(predKind[path[k + 1]]);
    }
    viaKind.push_back(predKind[path.front()]);

    // Report the edge of the cycle whose endpoints map to distinct real
    // records and whose source appears latest in the trace: the newest
    // constraint that closed the cycle.
    auto realOf = [&](std::uint32_t node) {
      return node < t_.records.size()
                 ? node
                 : virtualSource_[node - t_.records.size()];
    };
    std::uint32_t bestA = kNone, bestB = kNone;
    EdgeKind bestKind = EdgeKind::kPo;
    for (std::uint32_t k = 0; k < path.size(); ++k) {
      const std::uint32_t a = realOf(path[k]);
      const std::uint32_t b = realOf(path[(k + 1) % path.size()]);
      if (a == b) continue;
      if (bestA == kNone || a > bestA) {
        bestA = a;
        bestB = b;
        bestKind = viaKind[k];
      }
    }
    if (std::getenv("DVMC_ORACLE_DEBUG") != nullptr) {
      std::fprintf(stderr, "cycle of %zu:\n", path.size());
      for (std::uint32_t k = 0; k < path.size(); ++k) {
        const std::uint32_t a = realOf(path[k]);
        std::fprintf(stderr, "  %s %s  --%s-->\n",
                     path[k] >= t_.records.size() ? "(virt)" : "      ",
                     describeRecord(t_, a).c_str(),
                     edgeKindName(viaKind[k]));
      }
    }
    const std::size_t len = path.size();
    std::string msg =
        "ordering cycle of " + std::to_string(len) + " node(s) under " +
        modelName(ConsistencyModel(t_.declaredModel)) + "; " +
        edgeKindName(bestKind) + " edge " + describeRecord(t_, bestA) +
        " -> " + describeRecord(t_, bestB) + " closes it";
    addViolation(OracleViolation::Kind::kCycle, bestA, bestB,
                 std::move(msg));
  }

  const CapturedTrace& t_;
  const OracleOptions& o_;
  OracleResult res_;
  FlatMap<Addr, std::vector<std::uint32_t>> ws_;
  std::vector<std::uint32_t> wsPos_;
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::uint32_t> indeg_;
  std::vector<std::uint32_t> virtualSource_;
};

}  // namespace

const char* violationKindName(OracleViolation::Kind k) {
  switch (k) {
    case OracleViolation::Kind::kMalformed: return "malformed";
    case OracleViolation::Kind::kBadReadValue: return "bad-read-value";
    case OracleViolation::Kind::kCycle: return "cycle";
  }
  return "?";
}

std::uint64_t initialWordValue(Addr wordAddr) {
  return MemoryStorage::initialPattern(blockAddr(wordAddr))
      .read(blockOffset(wordAddr), 8);
}

std::string describeRecord(const CapturedTrace& t, std::size_t i) {
  if (i >= t.records.size()) return "[out-of-range]";
  return describeRecordLine(t.records[i], i);
}

std::string describeRecordLine(const TraceRecord& r, std::size_t i) {
  char buf[192];
  if (r.op == TraceOp::kMembar) {
    std::snprintf(buf, sizeof buf, "[%zu] n%u membar #%x seq=%llu cycle=%llu",
                  i, unsigned(r.node), unsigned(r.membarMask),
                  (unsigned long long)r.seq,
                  (unsigned long long)r.performCycle);
    return buf;
  }
  const char* cyc = r.performed() ? "" : (r.superseded() ? " (superseded)"
                                                         : " (pending)");
  std::snprintf(buf, sizeof buf,
                "[%zu] n%u %s%s @0x%llx val=0x%llx seq=%llu %s=%llu%s", i,
                unsigned(r.node), traceOpName(r.op),
                (r.flags & kFlagCasFailed) ? "(miss)" : "",
                (unsigned long long)r.addr, (unsigned long long)r.value,
                (unsigned long long)r.seq, "cycle",
                (unsigned long long)(r.performed() ? r.performCycle : 0),
                cyc);
  return buf;
}

OracleResult checkTrace(const CapturedTrace& t, const OracleOptions& o) {
  Oracle oracle(t, o);
  return oracle.run();
}

}  // namespace dvmc::verify
