// Commit-point memory-operation traces (the "dvmc-trace" schema) and the
// per-core recorder that captures them.
//
// The offline consistency oracle (verify/oracle.hpp) needs an independent
// record of what the program actually observed: every committed load,
// store, atomic, and membar, in per-core program order, with the global
// perform instant of each operation. The Core appends a record when an
// operation passes the in-order verification gate — the commit point — so
// squash/replay-repaired mis-speculation never reaches the trace; a
// buffered store's perform cycle is patched in later, when it drains out
// of the write buffer (storePerformed), or it is marked superseded when
// write-buffer coalescing merges it into a younger same-word store.
//
// The serialized form ("dvmc-trace", version 1) is a fixed-layout
// little-endian binary: a 48-byte header followed by 48-byte records, so
// record i lives at byte offset 48 + 48*i — the oracle reports violations
// with byte offsets into this layout. The byte stream is deterministic:
// the same seed produces a bit-identical trace regardless of --jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "consistency/model.hpp"

namespace dvmc::verify {

/// Current trace schema version. Bump on any layout change.
inline constexpr int kTraceSchemaVersion = 1;
inline constexpr const char* kTraceSchemaName = "dvmc-trace";
inline constexpr char kTraceMagic[8] = {'D', 'V', 'M', 'C',
                                        'T', 'R', 'C', '\0'};

/// Perform cycle of an operation that never performed (a store still in
/// the write buffer when the run ended). Excluded from write serialization.
inline constexpr Cycle kNotPerformed = ~Cycle{0};

enum class TraceOp : std::uint8_t {
  kLoad = 0,
  kStore = 1,
  kSwap = 2,
  kCas = 3,
  kMembar = 4,
};

const char* traceOpName(TraceOp op);

// TraceRecord::flags bits.
inline constexpr std::uint8_t kFlagPerformed = 0x1;   // performCycle valid
inline constexpr std::uint8_t kFlagSuperseded = 0x2;  // coalesced away in WB
inline constexpr std::uint8_t kFlagCasFailed = 0x4;   // CAS compare missed
inline constexpr std::uint8_t kFlag32Bit = 0x8;       // v8 op (ran as TSO)

/// One committed memory operation. 48 serialized bytes.
struct TraceRecord {
  TraceOp op = TraceOp::kLoad;
  std::uint8_t node = 0;
  std::uint8_t model = 0;       // effective ConsistencyModel for this op
  std::uint8_t flags = 0;
  std::uint8_t membarMask = 0;  // kMembar only
  SeqNum seq = 0;               // per-core, strictly increasing
  Addr addr = 0;                // word-aligned (all accesses are 8 bytes)
  std::uint64_t value = 0;      // store/atomic: value written; load: observed
  std::uint64_t readValue = 0;  // load: == value; atomic: old value read
  Cycle performCycle = kNotPerformed;

  bool performed() const { return (flags & kFlagPerformed) != 0; }
  bool superseded() const { return (flags & kFlagSuperseded) != 0; }
  /// The record wrote memory (store, swap, or successful CAS).
  bool writes() const {
    return op == TraceOp::kStore || op == TraceOp::kSwap ||
           (op == TraceOp::kCas && (flags & kFlagCasFailed) == 0);
  }
  /// The record observed a memory value (load or atomic read part).
  bool reads() const {
    return op == TraceOp::kLoad || op == TraceOp::kSwap ||
           op == TraceOp::kCas;
  }
};

/// A whole run's capture, carried on RunResult::trace.
struct CapturedTrace {
  std::uint8_t declaredModel = 0;  // ConsistencyModel the system declared
  std::uint8_t protocol = 0;       // Protocol enum value
  std::uint32_t numCores = 0;
  std::uint64_t seed = 0;
  bool truncated = false;  // hit the capture limit; the tail is missing
  std::vector<TraceRecord> records;  // global commit order; per-core subsequences are program order

  static constexpr std::size_t kHeaderBytes = 48;
  static constexpr std::size_t kRecordBytes = 48;

  /// Byte offset of record `i` in the serialized stream.
  static std::size_t byteOffset(std::size_t i) {
    return kHeaderBytes + i * kRecordBytes;
  }

  std::vector<std::uint8_t> serialize() const;

  /// Parses a serialized trace; on failure returns false and fills `err`
  /// with a message carrying the offending byte offset.
  static bool parse(const std::uint8_t* data, std::size_t size,
                    CapturedTrace* out, std::string* err);
};

/// Fixed 48-byte little-endian record codec shared by the v1 flat layout
/// and the v2 chunked container (trace_sink.hpp).
void encodeTraceRecord(const TraceRecord& r, std::uint8_t* out);
/// Returns false on an invalid op code (the only per-record corruption a
/// fixed layout can detect).
bool decodeTraceRecord(const std::uint8_t* p, TraceRecord* r);

/// Writes a v1 trace file. readTraceFile accepts both v1 and the chunked
/// v2 container (it streams v2 through a memory sink). Returns false and
/// fills `err` on I/O or parse failure.
bool writeTraceFile(const std::string& path, const CapturedTrace& t,
                    std::string* err);
bool readTraceFile(const std::string& path, CapturedTrace* t,
                   std::string* err);

class TraceSink;  // trace_sink.hpp

/// Per-system commit-point recorder. Single-threaded like the simulator
/// that feeds it; runSeeds gives each seed's System its own recorder.
///
/// Two delivery modes, combinable:
///   * in-memory (keepInMemory, the default): the whole capture
///     accumulates in one CapturedTrace, available via trace().
///   * streaming (sink != nullptr): records accumulate in bounded open
///     chunks; a chunk is emitted to the sink once it is full AND every
///     buffered store in it has settled (performed/superseded), so the
///     sink only ever sees final record flags. finish() flushes the tail
///     (end-of-run pending stores keep kNotPerformed) and closes the
///     stream.
class TraceRecorder {
 public:
  TraceRecorder(std::uint32_t numCores, ConsistencyModel declared,
                std::uint8_t protocol, std::uint64_t seed, std::size_t limit,
                TraceSink* sink = nullptr, std::size_t chunkRecords = 4096,
                bool keepInMemory = true);
  ~TraceRecorder();

  /// Appends a record as the operation passes the in-order gate. A store
  /// committed into the write buffer arrives without kFlagPerformed and is
  /// patched by storePerformed/storeSuperseded below.
  void onCommit(const TraceRecord& r);

  /// A buffered store drained and performed at the cache.
  void storePerformed(NodeId node, SeqNum seq, Cycle now);

  /// A buffered store was coalesced into a younger same-word store before
  /// it could perform; only local forwarding may have observed its value.
  void storeSuperseded(NodeId node, SeqNum seq, Cycle now);

  /// Flushes any open chunks to the sink and closes the stream. Must be
  /// called once at end of run when a sink is attached; idempotent.
  void finish();

  /// The capture so far (immutable once the run finishes, like
  /// RunResult::series). Null when keepInMemory was disabled.
  std::shared_ptr<const CapturedTrace> trace() const { return trace_; }

  bool truncated() const { return truncated_; }

  /// Records currently buffered in open (unsettled) chunks — the
  /// recorder's contribution to resident trace memory in streaming mode.
  std::size_t openChunkRecords() const;

 private:
  struct OpenChunk;

  void patchPending(NodeId node, SeqNum seq, Cycle now, std::uint8_t flag);
  void emitClosedChunks();

  std::shared_ptr<CapturedTrace> trace_;  // null when !keepInMemory
  // Per-core map from a pending store's seq to its global record index.
  std::vector<FlatMap<SeqNum, std::size_t>> pending_;
  std::size_t limit_;

  // Streaming state (unused when sink_ == nullptr).
  TraceSink* sink_;
  std::size_t chunkRecords_;
  std::vector<OpenChunk> open_;  // oldest first
  std::uint64_t committed_ = 0;  // global records accepted so far
  bool truncated_ = false;
  bool finished_ = false;
};

}  // namespace dvmc::verify
