#include "workload/synthetic.hpp"

#include "common/assert.hpp"

namespace dvmc {

namespace {
// Acquire ordering: the lock-acquiring swap acts as a load; later accesses
// must not float above it. Release ordering: earlier accesses must be
// visible before the lock-freeing store.
constexpr std::uint8_t kAcquireMask = membar::kLoadLoad | membar::kLoadStore;
constexpr std::uint8_t kReleaseMask = membar::kLoadStore | membar::kStoreStore;
}  // namespace

SyntheticWorkload::SyntheticWorkload(WorkloadParams params,
                                     ConsistencyModel systemModel,
                                     NodeId self, std::size_t numThreads,
                                     std::uint64_t seed)
    : p_(params),
      model_(systemModel),
      self_(self),
      numThreads_(numThreads),
      rng_(seed ^ (0x9E3779B97F4A7C15ULL * (self + 1))) {}

bool SyntheticWorkload::finished() const {
  return txDone_ >= p_.maxTransactions && pending_.empty() && !waiting_;
}

void SyntheticWorkload::emit(Instr i) {
  i.is32Bit = tx32_;
  if (i.isMemOp()) {
    ++memOps_;
    if (i.is32Bit) ++memOps32_;
  }
  pending_.push_back(i);
}

void SyntheticWorkload::emitCompute() {
  emit(Instr::compute(static_cast<std::uint16_t>(
      rng_.range(p_.computeMin, p_.computeMax))));
}

Addr SyntheticWorkload::pickDataAddr(bool hot) {
  const std::size_t word = rng_.below(kBlockSizeWords);
  if (hot) {
    return AddressMap::sharedAddr(rng_.below(p_.hotBlocks), word);
  }
  if (rng_.chance(p_.sharedFraction)) {
    const bool inHotSet = rng_.chance(p_.hotFraction);
    const std::size_t blk =
        inHotSet ? rng_.below(p_.hotBlocks) : rng_.below(p_.sharedBlocks);
    return AddressMap::sharedAddr(blk, word);
  }
  return AddressMap::privateAddr(self_, rng_.below(p_.privateBlocks), word);
}

std::optional<Instr> SyntheticWorkload::next() {
  if (pending_.empty() && !waiting_ && txDone_ < p_.maxTransactions) {
    planTransaction();
  }
  if (pending_.empty()) return std::nullopt;  // finished or awaiting result
  Instr i = pending_.front();
  pending_.pop_front();
  if (i.token != 0) waiting_ = true;
  return i;
}

void SyntheticWorkload::planTransaction() {
  tx32_ = rng_.chance(p_.frac32Bit);
  if (rng_.chance(p_.lockFraction)) {
    inBarrier_ = false;
    // Slash-style skew: with few locks, contention concentrates naturally;
    // with many locks, bias a little toward lock 0 to create a warm lock.
    const std::size_t idx =
        rng_.chance(0.25) ? 0 : rng_.below(p_.numLocks);
    curLock_ = AddressMap::lockAddr(idx);
    planAcquire();
    return;  // continuation planned from onResult
  }
  planBody();
  finishTransaction();
}

void SyntheticWorkload::planAcquire() {
  // Test-and-CAS attempt; the result steers the continuation. The lock
  // value is owner-id + 1 (not just 1), and compare-and-swap (rather than
  // an unconditional exchange) keeps failed attempts from clobbering the
  // holder's value — which both preserves mutual exclusion and lets a
  // post-recovery re-executed acquire recognize a lock this thread
  // already holds.
  emit(Instr::cas(curLock_, 0, std::uint64_t{self_} + 1,
                  static_cast<std::uint64_t>(Token::kAcquire)));
}

void SyntheticWorkload::planAcquiredPath() {
  // Critical section over the hot set, then release.
  if (!tx32_ && model_ == ConsistencyModel::kRMO) {
    emit(Instr::membar(kAcquireMask));
  }
  if (inBarrier_) {
    // Barrier critical section: read the phase counter (feedback), then
    // increment + release are planned by onResult.
    emit(Instr::load(AddressMap::barrierAddr(),
                     static_cast<std::uint64_t>(Token::kBarrierRead)));
    return;
  }
  for (std::size_t i = 0; i < p_.csOps; ++i) {
    emitCompute();
    const Addr a = pickDataAddr(/*hot=*/true);
    if (rng_.chance(0.5)) {
      emit(Instr::store(a, nextValue()));
    } else {
      emit(Instr::load(a));
    }
  }
  if (!tx32_) {
    if (model_ == ConsistencyModel::kRMO) {
      emit(Instr::membar(kReleaseMask));
    } else if (model_ == ConsistencyModel::kPSO) {
      emit(Instr::stbar());
    }
  }
  emit(Instr::store(curLock_, 0));  // release
  planBody();
  finishTransaction();
}

void SyntheticWorkload::planBody() {
  for (std::size_t i = 0; i < p_.txOps; ++i) {
    emitCompute();
    const Addr a = pickDataAddr(/*hot=*/false);
    if (rng_.chance(p_.writeFraction)) {
      emit(Instr::store(a, nextValue()));
    } else {
      emit(Instr::load(a));
    }
  }
}

void SyntheticWorkload::finishTransaction() {
  ++txDone_;
  if (p_.barrierEveryTx != 0 && txDone_ % p_.barrierEveryTx == 0 &&
      txDone_ < p_.maxTransactions) {
    planBarrier();
  }
}

void SyntheticWorkload::planBarrier() {
  // Global sense-free barrier: lock-protected increment of a monotonic
  // counter, then spin until the counter reaches barriers-so-far *
  // numThreads (each thread increments once per barrier, not per
  // transaction).
  inBarrier_ = true;
  barrierTarget_ = (txDone_ / p_.barrierEveryTx) * numThreads_;
  curLock_ = AddressMap::lockAddr(p_.numLocks);  // dedicated barrier lock
  planAcquire();
}

void SyntheticWorkload::onResult(std::uint64_t token, std::uint64_t value) {
  waiting_ = false;
  switch (static_cast<Token>(token)) {
    case Token::kAcquire:
      if (value == 0 || value == std::uint64_t{self_} + 1) {
        planAcquiredPath();
      } else {
        // Lock held: spin with plain loads (test-and-test-and-set).
        emitCompute();
        emit(Instr::load(curLock_, static_cast<std::uint64_t>(Token::kSpin)));
      }
      return;
    case Token::kSpin:
      if (value == 0) {
        planAcquire();  // observed free: retry the swap
      } else {
        emitCompute();
        emit(Instr::load(curLock_, static_cast<std::uint64_t>(Token::kSpin)));
      }
      return;
    case Token::kBarrierRead: {
      // Inside the barrier critical section: increment and release.
      emit(Instr::store(AddressMap::barrierAddr(), value + 1));
      if (!tx32_) {
        if (model_ == ConsistencyModel::kRMO) {
          emit(Instr::membar(kReleaseMask));
        } else if (model_ == ConsistencyModel::kPSO) {
          emit(Instr::stbar());
        }
      }
      emit(Instr::store(curLock_, 0));
      emit(Instr::load(AddressMap::barrierAddr(),
                       static_cast<std::uint64_t>(Token::kBarrierSpin)));
      return;
    }
    case Token::kBarrierSpin:
      if (value >= barrierTarget_) {
        inBarrier_ = false;
        if (!tx32_ && model_ == ConsistencyModel::kRMO) {
          emit(Instr::membar(kAcquireMask));
        }
        // Phase complete; the next transaction starts from next().
      } else {
        emitCompute();
        emit(Instr::load(AddressMap::barrierAddr(),
                         static_cast<std::uint64_t>(Token::kBarrierSpin)));
      }
      return;
    case Token::kNone:
      DVMC_FATAL("onResult with token 0");
  }
}

}  // namespace dvmc
