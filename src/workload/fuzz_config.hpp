// Shared fuzz-sweep configuration generator.
//
// The fuzz sweep (tests/fuzz_test.cpp), the repro tool
// (tools/fuzz_repro.cpp), and the campaign driver (tools/dvmc_campaign.cpp)
// must all derive the *same* randomized configuration from a parameter
// index — a repro that regenerates the RNG sequence by hand drifts the
// moment anyone edits the sweep. This is the single source of truth: one
// param index maps to one deterministic (workload, system) configuration.
//
// Header-only so callers only need their existing dvmc_system link.
#pragma once

#include "common/rng.hpp"
#include "system/config.hpp"
#include "workload/params.hpp"

namespace dvmc {

/// Deterministically maps a fuzz parameter index to a full randomized
/// system configuration (DVMC checkers + BER on, random protocol, model,
/// cache geometry, CPU shape, and kMicroMix workload parameterization).
/// cfg.maxCycles is a generous completion bound; callers diagnosing hangs
/// may tighten it after the call (the RNG sequence is already consumed).
inline SystemConfig makeFuzzConfig(int param) {
  Rng rng(0xF022 + param);

  WorkloadParams p;
  p.kind = WorkloadKind::kMicroMix;
  p.privateBlocks = 16 + rng.below(512);
  p.sharedBlocks = 8 + rng.below(256);
  p.hotBlocks = 1 + rng.below(16);
  p.hotFraction = rng.uniform();
  p.numLocks = 1 + rng.below(32);
  p.txOps = 4 + rng.below(64);
  p.sharedFraction = rng.uniform();
  p.writeFraction = rng.uniform() * 0.6;
  p.lockFraction = rng.uniform();
  p.csOps = 1 + rng.below(12);
  p.computeMin = 1;
  p.computeMax = static_cast<std::uint16_t>(1 + rng.below(12));
  p.frac32Bit = rng.uniform() * 0.4;
  p.barrierEveryTx = rng.chance(0.25) ? 1 + rng.below(3) : 0;

  SystemConfig cfg = SystemConfig::withDvmc(
      rng.chance(0.5) ? Protocol::kDirectory : Protocol::kSnooping,
      static_cast<ConsistencyModel>(rng.below(4)));
  cfg.numNodes = 2 + rng.below(7);  // 2..8
  cfg.workloadOverride = p;
  cfg.targetTransactions = p.barrierEveryTx != 0 ? 2 + rng.below(3)
                                                 : 40 + rng.below(80);
  cfg.l1 = {std::size_t(1) << rng.below(6), 1 + rng.below(3)};
  cfg.l2 = {std::size_t(4) << rng.below(6), 2 + rng.below(6)};
  cfg.cpu.robSize = 8 << rng.below(4);
  cfg.cpu.wbCapacity = 4 << rng.below(5);
  cfg.cpu.wbConcurrency = 1 + rng.below(7);
  cfg.cpu.storePrefetch = rng.chance(0.8);
  cfg.cpu.wbCoalescing = rng.chance(0.8);
  cfg.coherenceChecker =
      rng.chance(0.3) ? SystemConfig::CoherenceCheckerKind::kShadow
                      : SystemConfig::CoherenceCheckerKind::kEpoch;
  cfg.seed = 1000 + static_cast<std::uint64_t>(param);
  cfg.maxCycles = 80'000'000;
  return cfg;
}

}  // namespace dvmc
