#include "workload/params.hpp"

#include "common/assert.hpp"

namespace dvmc {

const char* workloadName(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kApache: return "apache";
    case WorkloadKind::kOltp: return "oltp";
    case WorkloadKind::kJbb: return "jbb";
    case WorkloadKind::kSlash: return "slash";
    case WorkloadKind::kBarnes: return "barnes";
    case WorkloadKind::kMicroMix: return "micromix";
  }
  return "?";
}

WorkloadKind workloadFromName(const std::string& name) {
  if (name == "apache") return WorkloadKind::kApache;
  if (name == "oltp") return WorkloadKind::kOltp;
  if (name == "jbb") return WorkloadKind::kJbb;
  if (name == "slash") return WorkloadKind::kSlash;
  if (name == "barnes") return WorkloadKind::kBarnes;
  if (name == "micromix") return WorkloadKind::kMicroMix;
  DVMC_FATAL("unknown workload name");
}

WorkloadParams workloadPreset(WorkloadKind kind) {
  WorkloadParams p;
  p.kind = kind;
  switch (kind) {
    case WorkloadKind::kApache:
      // Static web serving: many worker threads, mostly private request
      // buffers, moderate sharing, light locking, 27% v8 code (Table 8).
      p.privateBlocks = 768;
      p.sharedBlocks = 384;
      p.hotBlocks = 24;
      p.hotFraction = 0.15;
      p.numLocks = 64;
      p.txOps = 40;
      p.sharedFraction = 0.22;
      p.writeFraction = 0.16;
      p.lockFraction = 0.35;
      p.csOps = 6;
      p.frac32Bit = 0.27;
      break;
    case WorkloadKind::kOltp:
      // TPC-C-like: larger transactions, heavier sharing and writes,
      // moderate lock contention, 26% v8 code.
      p.privateBlocks = 512;
      p.sharedBlocks = 512;
      p.hotBlocks = 32;
      p.hotFraction = 0.3;
      p.numLocks = 32;
      p.txOps = 64;
      p.sharedFraction = 0.35;
      p.writeFraction = 0.24;
      p.lockFraction = 0.7;
      p.csOps = 10;
      p.frac32Bit = 0.26;
      break;
    case WorkloadKind::kJbb:
      // SPECjbb: Java middleware, warehouse-local data dominates, lots of
      // allocation-style stores, little true sharing, 15% v8 code.
      p.privateBlocks = 640;
      p.sharedBlocks = 192;
      p.hotBlocks = 8;
      p.hotFraction = 0.1;
      p.numLocks = 96;
      p.txOps = 48;
      p.sharedFraction = 0.1;
      p.writeFraction = 0.3;
      p.lockFraction = 0.25;
      p.csOps = 5;
      p.frac32Bit = 0.15;
      break;
    case WorkloadKind::kSlash:
      // Slashcode: dynamic web + database with a handful of highly
      // contended locks — the paper's high-variance outlier.
      p.privateBlocks = 384;
      p.sharedBlocks = 256;
      p.hotBlocks = 8;
      p.hotFraction = 0.4;
      p.numLocks = 2;
      p.txOps = 36;
      p.sharedFraction = 0.3;
      p.writeFraction = 0.22;
      p.lockFraction = 0.9;
      p.csOps = 10;
      p.frac32Bit = 0.27;
      break;
    case WorkloadKind::kBarnes:
      // SPLASH-2 Barnes-Hut: read-mostly shared tree within a phase,
      // global barriers between phases, 64-bit scientific code.
      p.privateBlocks = 384;
      p.sharedBlocks = 512;
      p.hotBlocks = 16;
      p.hotFraction = 0.1;
      p.numLocks = 32;
      p.txOps = 96;
      p.sharedFraction = 0.45;
      p.writeFraction = 0.12;
      p.lockFraction = 0.15;
      p.csOps = 4;
      p.frac32Bit = 0.02;
      p.barrierEveryTx = 1;  // one barrier per phase-transaction
      break;
    case WorkloadKind::kMicroMix:
      p.privateBlocks = 64;
      p.sharedBlocks = 32;
      p.numLocks = 4;
      p.txOps = 16;
      p.sharedFraction = 0.3;
      p.writeFraction = 0.3;
      p.lockFraction = 0.3;
      p.csOps = 4;
      break;
  }
  return p;
}

}  // namespace dvmc
