// Workload parameterization.
//
// The paper evaluates DVMC on the Wisconsin Commercial Workload suite
// (apache, oltp/DB2, SPECjbb, slashcode) plus barnes. Those runs need a
// full OS and commercial binaries; per the substitution rule we model each
// workload as a parameterized synthetic program that reproduces the traits
// the paper's analysis leans on: sharing degree, store fraction, lock count
// and contention (slash: few, highly contended locks -> high variance),
// barrier phases (barnes), transaction size, and the fraction of 32-bit
// SPARC v8 instructions that force TSO under PSO/RMO (Table 8).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dvmc {

enum class WorkloadKind : std::uint8_t {
  kApache,
  kOltp,
  kJbb,
  kSlash,
  kBarnes,
  kMicroMix,  // uniform random mix used by unit tests
};

const char* workloadName(WorkloadKind k);
WorkloadKind workloadFromName(const std::string& name);

struct WorkloadParams {
  WorkloadKind kind = WorkloadKind::kMicroMix;

  // Address-space shape (block counts).
  std::size_t privateBlocks = 512;  // per-thread working set
  std::size_t sharedBlocks = 256;   // shared heap
  std::size_t hotBlocks = 16;       // contended subset of the shared heap
  double hotFraction = 0.2;         // shared accesses hitting the hot set
  std::size_t numLocks = 64;

  // Transaction composition.
  std::size_t txOps = 40;           // memory operations per transaction
  double sharedFraction = 0.25;     // accesses to the shared heap
  double writeFraction = 0.2;       // stores among data accesses
  double lockFraction = 0.5;        // transactions that run a critical section
  std::size_t csOps = 8;            // ops inside the critical section
  std::uint16_t computeMin = 1;     // compute burst between memory ops
  std::uint16_t computeMax = 6;

  // 32-bit (v8) compatibility code (Table 8): emitted in contiguous runs.
  double frac32Bit = 0.0;
  std::size_t run32Len = 24;

  // Barrier phases (barnes): 0 = none; otherwise ops per phase with a
  // global barrier between phases, and `transactions` counts phases.
  std::size_t barrierEveryTx = 0;

  // Stop condition: transactions this thread contributes before finishing
  // (the system-level runner usually stops on the global total first).
  std::uint64_t maxTransactions = 1'000'000;
};

/// The per-workload presets (Table 8 analogues).
WorkloadParams workloadPreset(WorkloadKind kind);

/// Address-map helpers shared by the generator and the tests.
struct AddressMap {
  static constexpr Addr kLockBase = 1u << 16;
  static constexpr Addr kBarrierBase = 1u << 19;
  static constexpr Addr kSharedBase = 1u << 21;
  static constexpr Addr kPrivateBase = Addr{1} << 30;

  static Addr lockAddr(std::size_t i) { return kLockBase + i * kBlockSizeBytes; }
  static Addr barrierAddr() { return kBarrierBase; }
  static Addr sharedAddr(std::size_t block, std::size_t word) {
    return kSharedBase + block * kBlockSizeBytes + word * 8;
  }
  static Addr privateAddr(NodeId node, std::size_t block, std::size_t word) {
    return kPrivateBase + (Addr{node} << 26) + block * kBlockSizeBytes +
           word * 8;
  }
};

}  // namespace dvmc
