// A fixed, scripted instruction sequence — the unit-test / example analogue
// of a hand-written assembly kernel. Optionally loops the sequence a given
// number of times.
#pragma once

#include <vector>

#include "cpu/instr.hpp"

namespace dvmc {

class ScriptedProgram final : public ThreadProgram {
 public:
  explicit ScriptedProgram(std::vector<Instr> instrs,
                           std::uint64_t iterations = 1)
      : instrs_(std::move(instrs)), iterations_(iterations) {}

  std::optional<Instr> next() override {
    if (finished()) return std::nullopt;
    Instr i = instrs_[pos_++];
    if (pos_ == instrs_.size() && ++iter_ < iterations_) pos_ = 0;
    return i;
  }

  void onResult(std::uint64_t token, std::uint64_t value) override {
    results_.emplace_back(token, value);
  }

  bool finished() const override {
    return iter_ >= iterations_ ||
           (iter_ + 1 == iterations_ && pos_ >= instrs_.size());
  }

  std::uint64_t transactionsCompleted() const override { return iter_; }

  std::unique_ptr<ThreadProgram> clone() const override {
    return std::make_unique<ScriptedProgram>(*this);
  }

  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& results()
      const {
    return results_;
  }

 private:
  std::vector<Instr> instrs_;
  std::uint64_t iterations_;
  std::size_t pos_ = 0;
  std::uint64_t iter_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> results_;
};

}  // namespace dvmc
