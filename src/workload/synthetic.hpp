// Synthetic multithreaded workload generator.
//
// Emits a transaction-structured instruction stream: optional lock-guarded
// critical sections over a contended hot set (test-and-test-and-set with
// atomic swap), a body of loads/stores over shared and private regions with
// compute bursts in between, model-appropriate synchronization membars
// (none for SC/TSO, Stbar for PSO releases, acquire/release membars for
// RMO), contiguous 32-bit v8 regions (Table 8), and optional global
// barriers between phases (barnes).
//
// The generator is a value type: clone() (used by SafetyNet checkpointing)
// is a plain copy, and all randomness comes from an owned Rng, so replay
// from a snapshot is exact.
#pragma once

#include <cstdint>

#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "consistency/model.hpp"
#include "cpu/instr.hpp"
#include "workload/params.hpp"

namespace dvmc {

class SyntheticWorkload final : public ThreadProgram {
 public:
  SyntheticWorkload(WorkloadParams params, ConsistencyModel systemModel,
                    NodeId self, std::size_t numThreads, std::uint64_t seed);

  // --- ThreadProgram ---
  std::optional<Instr> next() override;
  void onResult(std::uint64_t token, std::uint64_t value) override;
  bool finished() const override;
  std::uint64_t transactionsCompleted() const override { return txDone_; }
  std::unique_ptr<ThreadProgram> clone() const override {
    return std::make_unique<SyntheticWorkload>(*this);
  }

  // --- measurement (Table 8 reproduction) ---
  std::uint64_t memOpsEmitted() const { return memOps_; }
  std::uint64_t memOps32Emitted() const { return memOps32_; }
  double fraction32Bit() const {
    return memOps_ ? static_cast<double>(memOps32_) /
                         static_cast<double>(memOps_)
                   : 0.0;
  }

 private:
  enum class Token : std::uint64_t {
    kNone = 0,
    kAcquire,      // swap on a lock word
    kSpin,         // test load while spinning
    kBarrierRead,  // counter read inside the barrier critical section
    kBarrierSpin,  // waiting for the phase counter to reach the target
  };

  void emit(Instr i);
  void emitCompute();
  void planTransaction();
  void planAcquire();
  void planAcquiredPath();
  void planBody();
  void planBarrier();
  void finishTransaction();
  Addr pickDataAddr(bool hot);
  std::uint64_t nextValue() { return (std::uint64_t{self_} << 48) | ++valCounter_; }

  WorkloadParams p_;
  ConsistencyModel model_;
  NodeId self_;
  std::size_t numThreads_;
  Rng rng_;

  RingQueue<Instr> pending_;
  bool waiting_ = false;
  bool tx32_ = false;          // current transaction is v8 (TSO) code
  bool inBarrier_ = false;     // acquire machinery serves the barrier
  Addr curLock_ = 0;
  std::uint64_t txDone_ = 0;
  std::uint64_t valCounter_ = 0;
  std::uint64_t memOps_ = 0;
  std::uint64_t memOps32_ = 0;
  std::uint64_t barrierTarget_ = 0;
};

}  // namespace dvmc
