#include "cpu/core.hpp"

#include <optional>

#include "common/assert.hpp"
#include "verify/trace.hpp"

#include <cstdio>
#include <cstdlib>

namespace {
dvmc::Addr traceWord() {
  static const dvmc::Addr a = [] {
    const char* env = std::getenv("DVMC_TRACE_WORD");
    return env ? std::strtoull(env, nullptr, 0) : 0ULL;
  }();
  return a;
}
#define TRACEW(addr, fmt, ...)                                            \
  do {                                                                    \
    if (traceWord() != 0 && ((addr) & ~dvmc::Addr{7}) == traceWord()) {   \
      std::fprintf(stderr, fmt "\n", __VA_ARGS__);                       \
    }                                                                     \
  } while (0)
}  // namespace

namespace dvmc {

namespace {
constexpr std::uint8_t kLoadFirstBits = membar::kLoadLoad | membar::kLoadStore;
constexpr std::uint8_t kStoreFirstBits =
    membar::kStoreLoad | membar::kStoreStore;
constexpr std::uint8_t kLoadAfterBits = membar::kLoadLoad | membar::kStoreLoad;
}  // namespace

Core::Core(Simulator& sim, NodeId node, ConsistencyModel model, CpuConfig cfg,
           CacheHierarchy& mem, std::unique_ptr<ThreadProgram> program,
           ErrorSink* sink, VerificationCache* vc, ReorderChecker* ar,
           const DvmcConfig& dvmc)
    : sim_(sim),
      node_(node),
      model_(model),
      cfg_(cfg),
      mem_(mem),
      program_(std::move(program)),
      sink_(sink),
      vc_(vc),
      ar_(ar),
      dvmc_(dvmc),
      lastDispatchModel_(model) {
  // Steady-state ring capacity: the window depths are configuration
  // bounds, so neither queue reallocates on the per-cycle path.
  rob_.reserve(cfg_.robSize);
  wb_.reserve(cfg_.wbCapacity);
  for (int m = 0; m < 4; ++m) {
    tables_[m] = OrderingTable::forModel(static_cast<ConsistencyModel>(m));
  }
  mem_.setCpuNotifier(this);
}

const OrderingTable& Core::tableFor(ConsistencyModel m) const {
  return tables_[static_cast<int>(m)];
}

void Core::start() {
  if (started_) return;
  started_ = true;
  wakeIn(1);
  if (ar_ != nullptr) {
    // Artificial membar injection for lost-operation detection (§4.2).
    sim_.schedule(dvmc_.membarInjectionPeriod, [this] { injectTick(); });
  }
}

void Core::injectTick() {
  if (ar_ == nullptr) return;
  ar_->injectCheckpointMembar();
  // Pipeline-hang watchdog: a core that retires nothing across a whole
  // injection period while holding instructions has lost an operation
  // pre-commit (e.g., a dropped data response stranded a load).
  if (retiredCount_ == lastRetiredAtInject_ && !rob_.empty()) {
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kLostOperation, sim_.now(), node_,
                     rob_.front().seq, "pipeline made no progress"});
    }
    cHangDetections_.inc();
  }
  lastRetiredAtInject_ = retiredCount_;
  if (!done()) {
    sim_.schedule(dvmc_.membarInjectionPeriod, [this] { injectTick(); });
  }
}

bool Core::injectWbValueFault(std::uint64_t rand) {
  std::vector<WbEntry*> candidates;
  for (WbEntry& w : wb_) {
    if (!w.inFlight) candidates.push_back(&w);
  }
  if (candidates.empty()) return false;
  WbEntry& w = *candidates[rand % candidates.size()];
  w.value ^= (1ull << ((rand / candidates.size()) % 64));
  return true;
}

bool Core::done() const {
  return program_->finished() && rob_.empty() && wb_.empty() &&
         replayQueue_.empty() && outstandingStores_ == 0;
}

void Core::wake() {
  if (tickArmed_) return;
  tickArmed_ = true;
  sim_.schedule(1, [this, gen = restartGen_] {
    tickArmed_ = false;
    if (gen != restartGen_) return;
    tick();
  });
}

void Core::wakeIn(Cycle d) {
  sim_.schedule(d == 0 ? 1 : d, [this, gen = restartGen_] {
    if (gen != restartGen_) return;
    wake();
  });
}

Core::RobEntry* Core::entryBySeq(SeqNum seq) {
  if (rob_.empty()) return nullptr;
  const SeqNum head = rob_.front().seq;
  if (seq < head || seq >= head + rob_.size()) return nullptr;
  return &rob_[static_cast<std::size_t>(seq - head)];
}

void Core::tick() {
  phaseRetire();
  phaseGate();
  drainWriteBuffer();
  phaseExecute();
  phaseDispatch();

  // Re-arm when there is cycle-driven work left; callback-driven work
  // (cache ops in flight) wakes the core itself.
  bool pollable = false;
  for (const RobEntry& e : rob_) {
    if (e.st == St::kDispatched || e.st == St::kExecuted ||
        e.st == St::kGateDone || e.st == St::kVerified) {
      pollable = true;
      break;
    }
  }
  if (!pollable && !wb_.empty()) {
    for (const WbEntry& w : wb_) {
      if (!w.inFlight) {
        pollable = true;
        break;
      }
    }
  }
  if (!pollable && rob_.size() < cfg_.robSize &&
      (!replayQueue_.empty() ||
       (!program_->finished() && !dispatchBlocked_))) {
    pollable = true;
  }
  if (pollable) wake();
}

// --------------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------------

void Core::phaseDispatch() {
  for (std::size_t n = 0; n < cfg_.width; ++n) {
    if (rob_.size() >= cfg_.robSize) {
      cRobFullStalls_.inc();
      return;
    }
    std::optional<Instr> inst;
    if (!replayQueue_.empty()) {
      // Post-recovery: re-execute the work that was in flight at the
      // checkpoint before pulling new instructions from the program.
      inst = replayQueue_.front();
      replayQueue_.pop_front();
    } else {
      inst = program_->next();
    }
    if (!inst) {
      dispatchBlocked_ = pendingTokens_ > 0;
      return;
    }
    RobEntry e;
    e.inst = *inst;
    e.seq = nextSeq_++;
    e.model = effectiveModel(model_, inst->is32Bit);
    e.modeSwitch = (e.model != lastDispatchModel_);
    lastDispatchModel_ = e.model;
    if (inst->token != 0) ++pendingTokens_;
    rob_.push_back(e);
    cDispatched_.inc();
  }
}

// --------------------------------------------------------------------------
// Execute
// --------------------------------------------------------------------------

bool Core::allOlderVerified(const RobEntry& e) const {
  for (const RobEntry& o : rob_) {
    if (o.seq >= e.seq) break;
    if (o.st != St::kVerified) return false;
  }
  return true;
}

bool Core::atomicMayExecute(const RobEntry& e) const {
  return allOlderVerified(e) && outstandingStores_ == 0 && wb_.empty();
}

std::optional<std::uint64_t> Core::forwardFromPipeline(
    const RobEntry& e) const {
  const Addr word = e.inst.addr & ~Addr{7};
  // Youngest older store in the ROB wins over anything in the write buffer.
  for (auto it = rob_.rbegin(); it != rob_.rend(); ++it) {
    if (it->seq >= e.seq) continue;
    if ((it->inst.kind == Instr::Kind::kStore ||
         it->inst.kind == Instr::Kind::kSwap) &&
        (it->inst.addr & ~Addr{7}) == word) {
      return it->inst.value;
    }
    if (it->inst.kind == Instr::Kind::kCas &&
        (it->inst.addr & ~Addr{7}) == word && !it->performedAtExec) {
      // An unresolved CAS to the same word: its effect is unknowable, so
      // the load cannot execute yet (handled by the caller as a stall).
      // A performed CAS's effect is already in the cache.
      return std::nullopt;
    }
  }
  for (auto it = wb_.rbegin(); it != wb_.rend(); ++it) {
    if ((it->addr & ~Addr{7}) == word) return it->value;
  }
  return std::nullopt;
}

void Core::phaseExecute() {
  // Promote finished latency-based executions first.
  for (RobEntry& e : rob_) {
    if (e.st == St::kIssued && e.readyAt != 0 && sim_.now() >= e.readyAt) {
      e.readyAt = 0;
      if (e.squashPending) {
        // A remote write invalidated the block this (forwarded) load read
        // from while its execute latency elapsed: re-execute.
        e.squashPending = false;
        ++e.gen;
        e.st = St::kDispatched;
        cLoadSquashRestart_.inc();
        continue;
      }
      e.st = St::kExecuted;
      if (e.performedAtExec) {
        // Forwarded RMO load: it performs now.
        e.performedAt = sim_.now();
        if (vc_ != nullptr) vc_->parkLoadValue(e.inst.addr, 8, e.execValue);
        performEvent(e);
      }
    }
  }

  std::size_t issued = 0;
  for (std::size_t i = 0; i < rob_.size() && issued < cfg_.width; ++i) {
    RobEntry& e = rob_[i];
    // A pending consistency-model switch drains the pipeline: nothing
    // younger executes until the switch instruction itself may run.
    if (e.modeSwitch && e.st == St::kDispatched &&
        !(allOlderVerified(e) && outstandingStores_ == 0 && wb_.empty())) {
      return;
    }
    if (e.st != St::kDispatched) continue;
    issueExecute(e);
    if (e.st != St::kDispatched) ++issued;
  }
}

void Core::issueExecute(RobEntry& e) {
  switch (e.inst.kind) {
    case Instr::Kind::kCompute:
      e.st = St::kIssued;
      e.readyAt = sim_.now() + e.inst.latency;
      wakeIn(e.inst.latency);
      return;
    case Instr::Kind::kMembar:
      e.st = St::kExecuted;
      return;
    case Instr::Kind::kStore:
      e.st = St::kIssued;
      e.readyAt = sim_.now() + 1;
      wakeIn(1);
      if (cfg_.storePrefetch && !e.prefetched) {
        e.prefetched = true;
        CacheOp pf;
        pf.kind = CacheOp::Kind::kPrefetchM;
        pf.addr = e.inst.addr;
        mem_.access(pf, nullptr);
        cStorePrefetch_.inc();
      }
      return;
    case Instr::Kind::kLoad:
      executeLoad(e);
      return;
    case Instr::Kind::kSwap:
    case Instr::Kind::kCas:
      if (atomicMayExecute(e)) executeAtomic(e);
      return;
  }
}

void Core::executeLoad(RobEntry& e) {
  const bool rmoLoad = (e.model == ConsistencyModel::kRMO);
  if (rmoLoad) {
    // RMO loads perform at execute: they must wait for older unverified
    // membars that order loads after themselves (#LL / #SL).
    for (const RobEntry& o : rob_) {
      if (o.seq >= e.seq) break;
      if (o.st == St::kVerified) continue;
      if (o.inst.kind == Instr::Kind::kMembar &&
          (o.inst.membarMask & kLoadAfterBits) != 0) {
        return;  // stall; retried next tick
      }
    }
  }

  // Stall behind an unresolved older CAS on the same word: neither
  // forwarding nor the cache can supply the post-CAS value yet. (Atomics
  // execute only when all older work is verified, so this resolves fast.)
  for (const RobEntry& o : rob_) {
    if (o.seq >= e.seq) break;
    if (o.inst.kind == Instr::Kind::kCas && !o.performedAtExec &&
        (o.inst.addr & ~Addr{7}) == (e.inst.addr & ~Addr{7})) {
      return;
    }
  }
  if (auto fwd = forwardFromPipeline(e)) {
    e.st = St::kIssued;
    e.execValue = *fwd;
    TRACEW(e.inst.addr, "[%llu] n%u load fwd seq=%llu val=%llx",
           (unsigned long long)sim_.now(), node_,
           (unsigned long long)e.seq, (unsigned long long)*fwd);
    if (loadFaultArmed_) {
      loadFaultArmed_ = false;
      e.execValue ^= 0x80;  // injected LSQ forwarding corruption
      cInjectedLoadFaults_.inc();
    }
    e.readyAt = sim_.now() + 1;
    e.performedAtExec = rmoLoad;
    cLoadForwarded_.inc();
    wakeIn(1);
    return;
  }

  e.st = St::kIssued;
  e.readyAt = 0;
  CacheOp op;
  op.kind = CacheOp::Kind::kLoad;
  op.addr = e.inst.addr;
  // Ordered-load models perform loads at the verification stage; RMO loads
  // perform here. Without DVUO there is no replay, so the CET rule-1 check
  // fires on the execution access.
  op.countsAsPerform = rmoLoad || vc_ == nullptr;
  cLoadIssued_.inc();
  mem_.access(op, [this, seq = e.seq, gen = e.gen, rgen = restartGen_,
                   rmoLoad](const CacheOpResult& r) {
    if (rgen != restartGen_) return;
    RobEntry* e2 = entryBySeq(seq);
    if (e2 == nullptr || e2->gen != gen) return;
    if (e2->squashPending) {
      e2->squashPending = false;
      ++e2->gen;
      e2->st = St::kDispatched;  // re-execute
      cLoadSquashRestart_.inc();
      wake();
      return;
    }
    e2->execValue = r.value;
    TRACEW(e2->inst.addr, "[%llu] n%u load exec seq=%llu val=%llx",
           (unsigned long long)sim_.now(), node_,
           (unsigned long long)e2->seq, (unsigned long long)r.value);
    if (loadFaultArmed_) {
      loadFaultArmed_ = false;
      e2->execValue ^= 0x80;  // injected LSQ/forwarding corruption
      cInjectedLoadFaults_.inc();
    }
    e2->st = St::kExecuted;
    if (rmoLoad || vc_ == nullptr) {
      // The cache access just performed this load (countsAsPerform above);
      // ordered-load models with DVUO perform at the verification replay.
      e2->performedAt = sim_.now();
    }
    if (rmoLoad) {
      e2->performedAtExec = true;
      if (vc_ != nullptr) vc_->parkLoadValue(e2->inst.addr, 8, r.value);
      performEvent(*e2);
    }
    wake();
  });
}

void Core::executeAtomic(RobEntry& e) {
  e.st = St::kIssued;
  CacheOp op;
  op.kind = e.inst.kind == Instr::Kind::kCas ? CacheOp::Kind::kAtomicCas
                                             : CacheOp::Kind::kAtomicSwap;
  op.addr = e.inst.addr;
  op.value = e.inst.value;
  op.compare = e.inst.compare;
  op.countsAsPerform = true;
  cAtomics_.inc();
  mem_.access(op, [this, seq = e.seq, gen = e.gen,
                   rgen = restartGen_](const CacheOpResult& r) {
    if (rgen != restartGen_) return;
    RobEntry* e2 = entryBySeq(seq);
    if (e2 == nullptr || e2->gen != gen) return;
    e2->execValue = r.value;
    e2->st = St::kExecuted;
    e2->performedAtExec = true;
    e2->performedAt = sim_.now();
    if (vc_ != nullptr) vc_->parkLoadValue(e2->inst.addr, 8, r.value);
    performEvent(*e2);
    wake();
  });
}

// --------------------------------------------------------------------------
// In-order gate (commit + verification stage)
// --------------------------------------------------------------------------

void Core::phaseGate() {
  // Pass 1: promote in program order everything whose gate work finished.
  while (!rob_.empty()) {
    bool promoted = false;
    for (RobEntry& e : rob_) {
      if (e.st == St::kVerified) continue;
      if (e.st == St::kGateDone) {
        finishGate(e);
        promoted = true;
        continue;
      }
      break;  // first entry still working: stop promoting
    }
    if (!promoted) break;
  }

  // Pass 2: admit executed entries into the gate, in order, allowing
  // parallel replays (different instructions verify concurrently as long
  // as serializing operations wait for all older work).
  std::size_t inGate = 0;
  for (RobEntry& e : rob_) {
    if (inGate >= cfg_.width) break;
    switch (e.st) {
      case St::kVerified:
      case St::kGateDone:
        continue;
      case St::kGateIssued:
        if (e.inst.kind == Instr::Kind::kStore) {
          // An SC store performing at the gate: nothing younger may enter
          // (Store -> Load ordering — a younger replay reading the cache
          // before the store performs would observe the pre-store value).
          return;
        }
        ++inGate;
        continue;
      case St::kExecuted:
        gateEntry(e);
        if (e.st == St::kGateIssued) {
          if (e.inst.kind == Instr::Kind::kStore) return;  // SC store
          ++inGate;
        }
        if (e.st == St::kExecuted) return;  // stalled: keep order
        continue;
      default:
        return;  // not yet executed: in-order gate stops here
    }
  }
}

void Core::gateEntry(RobEntry& e) {
  switch (e.inst.kind) {
    case Instr::Kind::kCompute:
      e.st = St::kGateDone;
      return;

    case Instr::Kind::kMembar: {
      // A membar ordering stores before itself cannot pass until all older
      // stores performed (this is what makes Membar #StoreLoad / Stbar
      // expensive); it is also a serializing AR perform event.
      if ((e.inst.membarMask & kStoreFirstBits) != 0 &&
          outstandingStores_ != 0) {
        cMembarStalls_.inc();
        return;  // stall
      }
      if (!allOlderVerified(e)) return;
      e.st = St::kGateDone;
      return;
    }

    case Instr::Kind::kStore: {
      if (e.model == ConsistencyModel::kSC) {
        // SC: no write buffer — the store performs right here, stalling
        // the gate until the write is globally visible.
        if (!allOlderVerified(e)) return;
        e.st = St::kGateIssued;
        ++outstandingStores_;
        CacheOp op;
        op.kind = CacheOp::Kind::kStore;
        op.addr = e.inst.addr;
        op.value = e.inst.value;
        op.countsAsPerform = true;
        cScStores_.inc();
        TRACEW(e.inst.addr, "[%llu] n%u SC store issued seq=%llu val=%llx",
               (unsigned long long)sim_.now(), node_,
               (unsigned long long)e.seq, (unsigned long long)e.inst.value);
        mem_.access(op, [this, seq = e.seq, gen = e.gen, rgen = restartGen_](
                            const CacheOpResult&) {
          if (rgen != restartGen_) return;
          --outstandingStores_;
          RobEntry* e2 = entryBySeq(seq);
          if (e2 == nullptr || e2->gen != gen) return;
          if (ar_ != nullptr) {
            ar_->onPerform(OpType::kStore, 0, e2->seq, tableFor(e2->model));
          }
          TRACEW(e2->inst.addr, "[%llu] n%u SC store performed seq=%llu",
                 (unsigned long long)sim_.now(), node_,
                 (unsigned long long)e2->seq);
          e2->performedAt = sim_.now();
          e2->st = St::kGateDone;
          wake();
        });
        return;
      }
      // Buffered store: replay writes the Verification Cache; the entry
      // lives until the store performs out of the write buffer.
      if (vc_ != nullptr) {
        if (!vc_->canAllocate(e.inst.addr, 8)) {
          cVcFullStalls_.inc();
          return;  // stall until a VC entry frees up
        }
        vc_->storeCommit(e.inst.addr, 8, e.inst.value, e.seq);
      }
      if (ar_ != nullptr) ar_->onCommit(OpType::kStore, e.seq);
      ++outstandingStores_;
      TRACEW(e.inst.addr, "[%llu] n%u store committed seq=%llu val=%llx",
             (unsigned long long)sim_.now(), node_,
             (unsigned long long)e.seq, (unsigned long long)e.inst.value);
      e.st = St::kGateDone;
      return;
    }

    case Instr::Kind::kLoad: {
      if (e.model == ConsistencyModel::kRMO) {
        // RMO replay happens right here, at the load's in-order admission:
        // every older store has committed into the VC, and no younger store
        // has — so a store-backed VC entry for this word is the value the
        // sequential replay would produce (genuine LSQ-forwarding
        // coverage); otherwise the parked execute-time value is consumed.
        if (vc_ != nullptr) {
          auto pending = vc_->lookupStoreOlderThan(e.inst.addr, 8, e.seq);
          auto parked = vc_->consumeParked(e.inst.addr, 8);
          if (pending) {
            if (*pending != e.execValue) {
              cUoFlushes_.inc();
              ++e.gen;
              e.st = St::kDispatched;
              return;
            }
          } else if (parked && *parked != e.execValue) {
            // Same-word value churn between two unordered loads — legal
            // under RMO; resolved by a silent flush, not an error.
            ++e.gen;
            e.st = St::kDispatched;
            cRmoReplayFlushes_.inc();
            return;
          } else if (!parked) {
            cRmoReplayNoPark_.inc();
          }
        }
        e.st = St::kGateDone;
        return;
      }
      if (vc_ == nullptr) {
        e.st = St::kGateDone;  // no replay; load performs at promotion
        return;
      }
      if (ar_ != nullptr) ar_->onCommit(OpType::kLoad, e.seq);
      replayLoad(e);
      return;
    }

    case Instr::Kind::kSwap:
    case Instr::Kind::kCas:
      e.st = St::kGateDone;  // performed (serialized) at execute
      return;
  }
}

void Core::replayLoad(RobEntry& e) {
  // Verification-stage replay: VC first, then the cache hierarchy,
  // bypassing the write buffer (§4.1).
  if (auto vcHit = vc_->lookupStoreOlderThan(e.inst.addr, 8, e.seq)) {
    cReplayVcHit_.inc();
    TRACEW(e.inst.addr, "[%llu] n%u replay vc-hit seq=%llu val=%llx",
           (unsigned long long)sim_.now(), node_,
           (unsigned long long)e.seq, (unsigned long long)*vcHit);
    e.st = St::kGateIssued;
    onReplayDone(e, *vcHit, /*l1Hit=*/true);
    return;
  }
  e.st = St::kGateIssued;
  CacheOp op;
  op.kind = CacheOp::Kind::kReplayLoad;
  op.addr = e.inst.addr;
  op.countsAsPerform = true;  // ordered loads perform at verification
  cReplayIssued_.inc();
  TRACEW(e.inst.addr, "[%llu] n%u replay issued seq=%llu",
         (unsigned long long)sim_.now(), node_,
         (unsigned long long)e.seq);
  mem_.access(op, [this, seq = e.seq, gen = e.gen,
                   rgen = restartGen_](const CacheOpResult& r) {
    if (rgen != restartGen_) return;
    RobEntry* e2 = entryBySeq(seq);
    if (e2 == nullptr || e2->gen != gen) return;
    onReplayDone(*e2, r.value, r.l1Hit);
    wake();
  });
}

void Core::onReplayDone(RobEntry& e, std::uint64_t replayValue, bool l1Hit) {
  (void)l1Hit;
  if (e.squashPending) {
    // A remote write raced with this load between execution and
    // verification: load-order mis-speculation, not an error.
    e.squashPending = false;
    ++e.gen;
    e.st = St::kDispatched;
    cLoadSquashRestart_.inc();
    return;
  }
  if (replayValue != e.execValue) {
    // A Uniprocessor Ordering violation signal: the speculative execution
    // value is stale relative to the (performing) replay. All operations
    // are still speculative prior to verification, so the violation is
    // resolved by a pipeline flush and re-execution (§4.1) — it is a
    // mis-speculation repair, not an error detection. Injected errors in
    // the load path surface here as a flush; the §6.1 experiments count
    // the uoFlushes delta as the detection signal for those faults.
    ++e.gen;
    e.st = St::kDispatched;
    cUoFlushes_.inc();
    return;
  }
  // The verification replay performed this ordered load at its own access
  // instant. A remote write landing between here and in-order promotion
  // squashes the entry (onReadPermissionLost treats kGateDone as still
  // speculative), so the observed value is stable through promotion.
  e.performedAt = sim_.now();
  e.st = St::kGateDone;
}

void Core::finishGate(RobEntry& e) {
  switch (e.inst.kind) {
    case Instr::Kind::kLoad:
      if (e.model != ConsistencyModel::kRMO && ar_ != nullptr) {
        // Ordered loads perform here, in program order.
        ar_->onPerform(OpType::kLoad, 0, e.seq, tableFor(e.model));
      }
      if (e.inst.token != 0) deliverToken(e);
      break;

    case Instr::Kind::kSwap:
    case Instr::Kind::kCas:
      if (vc_ != nullptr) {
        auto parked = vc_->consumeParked(e.inst.addr, 8);
        if (parked && *parked != e.execValue) {
          reportUoViolation(e, "atomic replay mismatch");
        }
      }
      if (e.inst.token != 0) deliverToken(e);
      break;

    case Instr::Kind::kMembar:
      if (ar_ != nullptr) {
        ar_->onPerform(OpType::kMembar, e.inst.membarMask, e.seq,
                       tableFor(e.model));
      }
      break;

    case Instr::Kind::kStore:
    case Instr::Kind::kCompute:
      break;
  }
  recordCommit(e);
  e.st = St::kVerified;
}

void Core::recordCommit(const RobEntry& e) {
  if (rec_ == nullptr) return;
  verify::TraceRecord r;
  switch (e.inst.kind) {
    case Instr::Kind::kCompute:
      return;
    case Instr::Kind::kLoad:
      r.op = verify::TraceOp::kLoad;
      r.value = r.readValue = e.execValue;
      break;
    case Instr::Kind::kStore:
      r.op = verify::TraceOp::kStore;
      r.value = e.inst.value;
      break;
    case Instr::Kind::kSwap:
      r.op = verify::TraceOp::kSwap;
      r.value = e.inst.value;
      r.readValue = e.execValue;
      break;
    case Instr::Kind::kCas:
      r.op = verify::TraceOp::kCas;
      r.value = e.inst.value;
      r.readValue = e.execValue;
      if (e.execValue != e.inst.compare) r.flags |= verify::kFlagCasFailed;
      break;
    case Instr::Kind::kMembar:
      r.op = verify::TraceOp::kMembar;
      r.membarMask = e.inst.membarMask;
      break;
  }
  r.node = static_cast<std::uint8_t>(node_);
  r.model = static_cast<std::uint8_t>(e.model);
  r.seq = e.seq;
  r.addr = e.inst.addr & ~Addr{7};
  if (e.inst.is32Bit) r.flags |= verify::kFlag32Bit;
  // Everything except a buffered store has performed by the time it passes
  // the gate; a buffered store's cycle is patched at write-buffer drain.
  const bool buffered = e.inst.kind == Instr::Kind::kStore &&
                        e.model != ConsistencyModel::kSC;
  if (!buffered) {
    r.flags |= verify::kFlagPerformed;
    r.performCycle = e.performedAt != 0 ? e.performedAt : sim_.now();
  }
  rec_->onCommit(r);
}

void Core::deliverToken(RobEntry& e) {
  DVMC_ASSERT(pendingTokens_ > 0, "token bookkeeping underflow");
  --pendingTokens_;
  dispatchBlocked_ = false;
  program_->onResult(e.inst.token, e.execValue);
  e.inst.token = 0;
}

void Core::reportUoViolation(const RobEntry& e, const char* what) {
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kUniprocessorOrdering, sim_.now(), node_,
                   e.inst.addr, what});
  }
}

// --------------------------------------------------------------------------
// Retire + write buffer
// --------------------------------------------------------------------------

void Core::phaseRetire() {
  for (std::size_t n = 0; n < cfg_.width && !rob_.empty(); ++n) {
    RobEntry& e = rob_.front();
    if (e.st != St::kVerified) return;
    if (e.inst.kind == Instr::Kind::kStore &&
        e.model != ConsistencyModel::kSC) {
      const bool ordered = (e.model == ConsistencyModel::kTSO ||
                            e.model == ConsistencyModel::kSC);
      bool coalesced = false;
      if (cfg_.wbCoalescing && !ordered) {
        // Relaxed-mode same-word coalescing: overwrite a not-yet-issued
        // relaxed entry in place. The superseded store is reported to the
        // VC as performing with its own committed value (it logically
        // performs at the same instant the coalesced write does; the
        // merged entry keeps the youngest seq so replay rank filtering
        // stays exact).
        for (auto it = wb_.rbegin(); it != wb_.rend(); ++it) {
          if (it->inFlight || it->ordered) continue;
          if ((it->addr & ~Addr{7}) != (e.inst.addr & ~Addr{7})) continue;
          if (vc_ != nullptr) {
            vc_->storeSuperseded(it->addr, 8, it->seq, it->value,
                                 sim_.now());
          }
          if (rec_ != nullptr) {
            rec_->storeSuperseded(node_, it->seq, sim_.now());
          }
          if (ar_ != nullptr) {
            ar_->onPerform(OpType::kStore, 0, it->seq, tableFor(model_));
          }
          DVMC_ASSERT(outstandingStores_ > 0, "coalesce underflow");
          --outstandingStores_;
          it->addr = e.inst.addr;
          it->value = e.inst.value;
          it->seq = e.seq;
          coalesced = true;
          cWbCoalesced_.inc();
          break;
        }
      }
      if (!coalesced) {
        if (wb_.size() >= cfg_.wbCapacity) {
          cWbFullStalls_.inc();
          return;
        }
        WbEntry w;
        w.addr = e.inst.addr;
        w.value = e.inst.value;
        w.seq = e.seq;
        w.ordered = ordered;
        wb_.push_back(w);
      }
    }
    ++retiredCount_;
    cRetired_.inc();
    rob_.pop_front();
  }
}

void Core::drainWriteBuffer() {
  std::size_t inFlight = 0;
  for (const WbEntry& w : wb_) {
    if (w.inFlight) ++inFlight;
  }
  std::size_t startIdx = 0;
  if (wbReorderArmed_ && wb_.size() >= 2 && !wb_[0].inFlight &&
      !wb_[1].inFlight) {
    // Injected drain-arbiter fault: the second entry issues while the head
    // is skipped this round, so the younger store performs first.
    wbReorderArmed_ = false;
    startIdx = 1;
    cInjectedWbReorders_.inc();
  }
  // Relaxed "optimized store issue policy" (Table 5): among drainable
  // relaxed-mode entries, ones whose block is already owned (M) issue
  // first — they complete without a coherence transaction. Two passes:
  // owned blocks, then the rest; ordered (TSO/SC-mode) entries always obey
  // strict order and act as barriers in both passes.
  for (int pass = 0; pass < 2; ++pass) {
  bool olderOrderedPending = false;
  std::size_t ownedIssued = 0;
  for (std::size_t i = startIdx; i < wb_.size(); ++i) {
    // Owned-block stores use the dedicated write port and need no miss
    // resources: they are not subject to the outstanding-miss limit
    // (bounded per round by the pipeline width instead).
    if (pass == 0) {
      if (ownedIssued >= cfg_.width) break;
    } else if (inFlight >= cfg_.wbConcurrency) {
      break;
    }
    WbEntry& w = wb_[i];
    if (w.inFlight) {
      if (w.ordered) olderOrderedPending = true;
      continue;
    }
    // TSO/SC-mode entries drain strictly in order and act as barriers for
    // everything younger; relaxed-mode entries drain concurrently.
    if (startIdx == 0) {
      if (w.ordered && i != 0) break;
      if (olderOrderedPending) break;
    }
    if (pass == 0) {
      if (w.ordered || !mem_.l2().peekWritable(blockAddr(w.addr))) {
        continue;  // not an owned relaxed store: second pass
      }
      ++ownedIssued;
    }
    w.inFlight = true;
    ++inFlight;
    if (w.ordered) olderOrderedPending = true;

    CacheOp op;
    op.kind = CacheOp::Kind::kStore;
    op.addr = w.addr;
    op.value = w.value;
    op.countsAsPerform = true;
    cWbDrains_.inc();
    const bool faulted = (startIdx == 1 && i == 1);
    mem_.access(op, [this, seq = w.seq,
                     rgen = restartGen_](const CacheOpResult&) {
      if (rgen != restartGen_) return;
      for (auto it = wb_.begin(); it != wb_.end(); ++it) {
        if (it->seq == seq) {
          TRACEW(it->addr, "[%llu] n%u store performed seq=%llu val=%llx",
                 (unsigned long long)sim_.now(), node_,
                 (unsigned long long)it->seq,
                 (unsigned long long)it->value);
          if (vc_ != nullptr) {
            vc_->storePerformed(it->addr, 8, it->value, sim_.now());
          }
          if (rec_ != nullptr) {
            rec_->storePerformed(node_, it->seq, sim_.now());
          }
          if (ar_ != nullptr) {
            // Mixed-mode note: the drain rules guarantee per-model order;
            // the perform event uses the store's own model table.
            ar_->onPerform(OpType::kStore, 0, it->seq,
                           tableFor(it->ordered ? ConsistencyModel::kTSO
                                                : model_));
          }
          wb_.erase(it);
          DVMC_ASSERT(outstandingStores_ > 0, "store bookkeeping underflow");
          --outstandingStores_;
          break;
        }
      }
      wake();
    });
    if (faulted) return;  // only the reordered entry issues this round
  }
  }  // pass
}

// --------------------------------------------------------------------------
// Speculation tracking + recovery
// --------------------------------------------------------------------------

void Core::onReadPermissionLost(Addr blk, bool remoteWrite) {
  // Ordered-load models: a remote writer may change speculatively loaded
  // values before the load performs at verification; squash those loads.
  // Local evictions leave values intact — the verification replay catches
  // any later remote write to the untracked block with a flush (squashing
  // here would livelock a thrashing cache set).
  if (!remoteWrite) return;
  // Tracks, walking in program order, whether some older operation's
  // perform point is still pending. Only then is a replayed (kGateDone)
  // load's perform not yet anchored in program order; squashing exactly
  // those keeps the oldest pending load always able to drain, which is
  // what prevents a hot contended block from livelocking the gate.
  bool olderUnperformed = false;
  for (RobEntry& e : rob_) {
    if (e.inst.kind == Instr::Kind::kLoad &&
        e.model != ConsistencyModel::kRMO && blockAddr(e.inst.addr) == blk) {
      switch (e.st) {
        case St::kIssued:
        case St::kGateIssued:
          e.squashPending = true;  // discard on callback
          cSquashes_.inc();
          break;
        case St::kExecuted:
          ++e.gen;
          e.st = St::kDispatched;
          cSquashes_.inc();
          TRACEW(e.inst.addr, "[%llu] n%u squash-exec seq=%llu",
                 (unsigned long long)sim_.now(), node_,
                 (unsigned long long)e.seq);
          break;
        case St::kGateDone:
          // Replayed but not yet promoted. If an older load is still
          // replaying, this entry's perform point is not yet in program
          // order: keeping the pre-write value while the older load later
          // observes a post-write one would be a load-load reordering the
          // ordered models forbid. With no older pending perform the
          // replay-time value is already correctly ordered — leave it.
          if (olderUnperformed) {
            ++e.gen;
            e.st = St::kDispatched;
            cSquashes_.inc();
            TRACEW(e.inst.addr, "[%llu] n%u squash-gatedone seq=%llu",
                   (unsigned long long)sim_.now(), node_,
                   (unsigned long long)e.seq);
          }
          break;
        default:
          break;
      }
    }
    const bool ordersPerforms = e.inst.kind == Instr::Kind::kLoad ||
                                e.inst.kind == Instr::Kind::kSwap ||
                                e.inst.kind == Instr::Kind::kCas ||
                                e.inst.kind == Instr::Kind::kMembar;
    if (ordersPerforms && e.st != St::kGateDone && e.st != St::kVerified) {
      olderUnperformed = true;
    }
  }
  wake();
}

Core::ArchSnapshot Core::snapshotState() const {
  ArchSnapshot s;
  s.program = program_->clone();
  // Oldest work first: write-buffer stores predate everything in the ROB.
  for (const WbEntry& w : wb_) {
    s.replay.push_back(Instr::store(w.addr, w.value));
    // Mixed-mode fidelity: keep the entry's model via the 32-bit flag.
    s.replay.back().is32Bit =
        w.ordered && model_ != ConsistencyModel::kTSO &&
        model_ != ConsistencyModel::kSC;
  }
  for (const RobEntry& e : rob_) {
    s.replay.push_back(e.inst);
  }
  return s;
}

void Core::restoreState(const ArchSnapshot& snap) {
  ++restartGen_;
  rob_.clear();
  wb_.clear();
  outstandingStores_ = 0;
  pendingTokens_ = 0;
  dispatchBlocked_ = false;
  if (vc_ != nullptr) vc_->clear();
  if (ar_ != nullptr) ar_->reset();
  program_ = snap.program->clone();
  // Tokens inside the replay list re-deliver when the replayed instruction
  // verifies, matching the cloned program's waiting state.
  replayQueue_.assign(snap.replay.begin(), snap.replay.end());
  lastDispatchModel_ = model_;
  tickArmed_ = false;
  cRestarts_.inc();
  wake();
}

void Core::debugDump() const {
  std::fprintf(stderr, "Core n%u: rob=%zu wb=%zu outStores=%llu pendTok=%llu"
               " blocked=%d retired=%llu\n",
               node_, rob_.size(), wb_.size(),
               (unsigned long long)outstandingStores_,
               (unsigned long long)pendingTokens_, (int)dispatchBlocked_,
               (unsigned long long)retiredCount_);
  std::size_t shown = 0;
  for (const RobEntry& e : rob_) {
    if (shown++ >= 6) break;
    std::fprintf(stderr,
                 "  rob seq=%llu kind=%d st=%d addr=%llx model=%d mask=%x\n",
                 (unsigned long long)e.seq, (int)e.inst.kind, (int)e.st,
                 (unsigned long long)e.inst.addr, (int)e.model,
                 e.inst.membarMask);
  }
  for (const WbEntry& w : wb_) {
    std::fprintf(stderr, "  wb seq=%llu addr=%llx inFlight=%d ordered=%d\n",
                 (unsigned long long)w.seq, (unsigned long long)w.addr,
                 (int)w.inFlight, (int)w.ordered);
  }
}

void Core::performEvent(const RobEntry& e) {
  if (ar_ == nullptr) return;
  ar_->onPerform(e.inst.opType(), e.inst.membarMask, e.seq,
                 tableFor(e.model));
}

}  // namespace dvmc
