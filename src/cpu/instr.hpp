// Abstract instruction stream.
//
// The simulated ISA carries exactly the information the memory system and
// the DVMC checkers observe: loads, stores, atomic swaps, membars with a
// SPARC-style 4-bit mask, and COMPUTE bundles that model non-memory work as
// a latency. Every memory operation is a naturally aligned 8-byte word
// access. Instructions may be tagged 32-bit (SPARC v8 compatibility code),
// which forces TSO semantics under PSO/RMO (Table 8).
//
// Programs are pull-based: the core requests the next instruction at
// dispatch. Value-dependent control flow (spin locks, barriers) is modeled
// with feedback tokens: an instruction with token != 0 reports its final
// value back via onResult(), and the program may return std::nullopt from
// next() until that feedback arrives (a fetch stall, as a mispredictable
// branch would cause).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "consistency/op.hpp"

namespace dvmc {

struct Instr {
  enum class Kind : std::uint8_t {
    kLoad,
    kStore,
    kSwap,     // atomic exchange: returns old value, writes `value`
    kCas,      // compare-and-swap: writes `value` iff old == `compare`
    kMembar,   // mask in membarMask; Stbar == mask kStoreStore
    kCompute,  // non-memory work: occupies the pipeline for `latency` cycles
  };

  Kind kind = Kind::kCompute;
  Addr addr = 0;
  std::uint64_t value = 0;
  std::uint64_t compare = 0;  // kCas expected value
  std::uint8_t membarMask = 0;
  std::uint16_t latency = 1;   // kCompute execution latency
  bool is32Bit = false;        // v8 code: runs TSO under PSO/RMO
  std::uint64_t token = 0;     // != 0: report the final value to the program

  static Instr load(Addr a, std::uint64_t token = 0) {
    Instr i;
    i.kind = Kind::kLoad;
    i.addr = a;
    i.token = token;
    return i;
  }
  static Instr store(Addr a, std::uint64_t v) {
    Instr i;
    i.kind = Kind::kStore;
    i.addr = a;
    i.value = v;
    return i;
  }
  static Instr swap(Addr a, std::uint64_t v, std::uint64_t token = 0) {
    Instr i;
    i.kind = Kind::kSwap;
    i.addr = a;
    i.value = v;
    i.token = token;
    return i;
  }
  static Instr cas(Addr a, std::uint64_t expect, std::uint64_t v,
                   std::uint64_t token = 0) {
    Instr i;
    i.kind = Kind::kCas;
    i.addr = a;
    i.compare = expect;
    i.value = v;
    i.token = token;
    return i;
  }
  static Instr membar(std::uint8_t mask) {
    Instr i;
    i.kind = Kind::kMembar;
    i.membarMask = mask;
    return i;
  }
  static Instr stbar() { return membar(membar::kStbar); }
  static Instr compute(std::uint16_t cycles) {
    Instr i;
    i.kind = Kind::kCompute;
    i.latency = cycles;
    return i;
  }

  OpType opType() const {
    switch (kind) {
      case Kind::kLoad: return OpType::kLoad;
      case Kind::kStore: return OpType::kStore;
      case Kind::kSwap: return OpType::kAtomic;
      case Kind::kCas: return OpType::kAtomic;
      case Kind::kMembar: return OpType::kMembar;
      case Kind::kCompute: return OpType::kLoad;  // unused
    }
    return OpType::kLoad;
  }

  bool isMemOp() const {
    return kind == Kind::kLoad || kind == Kind::kStore ||
           kind == Kind::kSwap || kind == Kind::kCas;
  }
};

/// A deterministic, cloneable instruction source for one hardware thread.
class ThreadProgram {
 public:
  virtual ~ThreadProgram() = default;

  /// Next instruction, or nullopt when finished or awaiting feedback.
  virtual std::optional<Instr> next() = 0;

  /// Final (verified) value of an instruction that carried a token.
  virtual void onResult(std::uint64_t token, std::uint64_t value) = 0;

  /// No more instructions will ever be produced.
  virtual bool finished() const = 0;

  /// Completed work units (the paper runs benchmarks for a fixed number of
  /// transactions).
  virtual std::uint64_t transactionsCompleted() const = 0;

  /// Deep copy of the full program state (SafetyNet checkpointing).
  virtual std::unique_ptr<ThreadProgram> clone() const = 0;
};

}  // namespace dvmc
