// Out-of-order processor core with a DVMC verification stage.
//
// Pipeline (Figure 2): dispatch (in order, assigns sequence numbers) ->
// execute (out of order: loads access the memory system speculatively,
// computes burn latency) -> verify (in order; with DVUO enabled all memory
// operations are replayed: loads against VC-then-cache, stores into the VC)
// -> retire (stores enter the write buffer) -> write-buffer drain (stores
// perform at the cache).
//
// Consistency enforcement per model:
//  * SC  — no write buffer: a store stalls the in-order gate until it has
//    performed. Loads execute speculatively and perform in order at the
//    gate; remote writes to speculatively loaded blocks squash.
//  * TSO — FIFO write buffer, one store outstanding at a time; loads as SC.
//  * PSO — write buffer drains up to wbConcurrency stores concurrently;
//    Stbar (Membar #SS) stalls the gate until older stores performed.
//  * RMO — loads perform at execute (no speculation tracking needed); they
//    only stall behind older unverified membars carrying #LL/#SL.
// 32-bit (v8) instructions run under TSO even on PSO/RMO systems; a model
// switch drains the pipeline, as writing PSTATE.MM does on real SPARC.
#pragma once

#include <cstdint>
#include <memory>

#include "coherence/hierarchy.hpp"
#include "common/error_sink.hpp"
#include "common/ring_queue.hpp"
#include "obs/metrics.hpp"
#include "consistency/model.hpp"
#include "consistency/ordering_table.hpp"
#include "cpu/instr.hpp"
#include "dvmc/dvmc_config.hpp"
#include "dvmc/reorder_checker.hpp"
#include "dvmc/verification_cache.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

namespace verify {
class TraceRecorder;
}

struct CpuConfig {
  std::size_t robSize = 64;
  std::size_t width = 4;          // dispatch / gate / retire width per cycle
  std::size_t wbCapacity = 64;
  std::size_t wbConcurrency = 4;  // PSO/RMO concurrent store drains
  bool storePrefetch = true;      // prefetch write permission at execute
  // PSO/RMO "optimized store issue policy" (Table 5): a store entering the
  // write buffer coalesces with a resident same-word relaxed-mode entry,
  // reducing write-buffer pressure and coherence traffic. Never applied to
  // ordered (TSO/SC-mode) entries — it would merge across the store order.
  bool wbCoalescing = true;
};

class Core final : public CpuNotifier {
 public:
  Core(Simulator& sim, NodeId node, ConsistencyModel model, CpuConfig cfg,
       CacheHierarchy& mem, std::unique_ptr<ThreadProgram> program,
       ErrorSink* sink, VerificationCache* vc, ReorderChecker* ar,
       const DvmcConfig& dvmc);

  /// Arms the pipeline tick. Idempotent.
  void start();

  /// All instructions retired and all stores performed.
  bool done() const;

  // --- CpuNotifier (invalidation hints for load-order speculation) ---
  void onReadPermissionLost(Addr blk, bool remoteWrite) override;

  const MetricSet& stats() const { return stats_; }
  void debugDump() const;
  std::uint64_t retired() const { return retiredCount_; }
  std::uint64_t transactions() const {
    return program_ ? program_->transactionsCompleted() : 0;
  }
  ThreadProgram& program() { return *program_; }
  NodeId node() const { return node_; }

  /// Arms commit-point trace capture for the offline consistency oracle
  /// (verify/oracle.hpp). Not owned; null disables capture.
  void setTraceRecorder(verify::TraceRecorder* rec) { rec_ = rec; }

  // --- fault injection hooks (error-detection experiments, §6.1) ---
  /// Corrupts the value of the next executed load (models an LSQ
  /// forwarding/transmission error). Detected by replay (DVUO).
  void armLoadValueFault() { loadFaultArmed_ = true; }
  /// Flips a bit in a resident write-buffer entry's value (models
  /// write-buffer datapath corruption). Detected at VC deallocation.
  bool injectWbValueFault(std::uint64_t rand);
  /// Forces the next write-buffer drain round to issue the second entry
  /// ahead of the head (models a drain-arbiter error). Detected by the AR
  /// checker under SC/TSO; legal (undetected) under PSO/RMO. Returns false
  /// when the write buffer has too few resident entries to reorder.
  bool armWbReorderFault() {
    if (wb_.size() < 2) return false;
    wbReorderArmed_ = true;  // consumed at the next eligible drain round
    return true;
  }

  // --- BER support ---
  /// Architectural snapshot: the program state plus the instructions that
  /// were in flight (ROB + write buffer) when the snapshot was taken. A
  /// rolled-back memory image is consistent with re-executing exactly this
  /// replay list before pulling from the program again; all memory-mutating
  /// instructions in the stream are idempotent re-executed (stores rewrite
  /// the same value; lock swaps write owner-id values, so re-acquiring a
  /// lock we already hold is recognized by the workload).
  struct ArchSnapshot {
    std::unique_ptr<ThreadProgram> program;
    std::vector<Instr> replay;  // oldest first: write buffer, then ROB

    ArchSnapshot() = default;
    ArchSnapshot(const ArchSnapshot& o)
        : program(o.program ? o.program->clone() : nullptr),
          replay(o.replay) {}
    ArchSnapshot& operator=(const ArchSnapshot& o) {
      program = o.program ? o.program->clone() : nullptr;
      replay = o.replay;
      return *this;
    }
    ArchSnapshot(ArchSnapshot&&) = default;
    ArchSnapshot& operator=(ArchSnapshot&&) = default;
  };

  ArchSnapshot snapshotState() const;

  /// Recovery: discard all in-flight work and resume from a snapshot. The
  /// caller has already restored memory/cache/checker state.
  void restoreState(const ArchSnapshot& snap);

 private:
  enum class St : std::uint8_t {
    kDispatched,   // in ROB, not yet issued
    kIssued,       // executing (cache op in flight or latency running)
    kExecuted,     // execution complete, waiting for the in-order gate
    kGateIssued,   // replay / store-perform in flight at the gate
    kGateDone,     // gate work finished, awaiting in-order promotion
    kVerified,     // passed the gate, ready to retire
  };

  struct RobEntry {
    Instr inst;
    SeqNum seq = 0;
    ConsistencyModel model = ConsistencyModel::kTSO;
    St st = St::kDispatched;
    Cycle readyAt = 0;
    Cycle performedAt = 0;  // true perform instant (0: performs at promotion)
    std::uint64_t execValue = 0;
    bool prefetched = false;
    bool performedAtExec = false;  // RMO loads / atomics
    bool squashPending = false;
    bool modeSwitch = false;  // drains the pipeline before executing
    std::uint32_t gen = 0;    // invalidates in-flight callbacks on squash
  };

  struct WbEntry {
    Addr addr = 0;
    std::uint64_t value = 0;
    SeqNum seq = 0;
    bool ordered = false;  // TSO/SC-mode store: drains strictly in order
    bool inFlight = false;
  };

  void tick();
  void wake();
  void wakeIn(Cycle d);
  void injectTick();
  void phaseRetire();
  void phaseGate();
  void phaseExecute();
  void phaseDispatch();
  void drainWriteBuffer();
  void deliverToken(RobEntry& e);

  void issueExecute(RobEntry& e);
  void executeLoad(RobEntry& e);
  void executeAtomic(RobEntry& e);
  bool atomicMayExecute(const RobEntry& e) const;
  bool allOlderVerified(const RobEntry& e) const;
  void gateEntry(RobEntry& e);
  void finishGate(RobEntry& e);
  void replayLoad(RobEntry& e);
  void onReplayDone(RobEntry& e, std::uint64_t replayValue, bool l1Hit);
  std::optional<std::uint64_t> forwardFromPipeline(const RobEntry& e) const;
  RobEntry* entryBySeq(SeqNum seq);
  const OrderingTable& tableFor(ConsistencyModel m) const;
  void performEvent(const RobEntry& e);
  void reportUoViolation(const RobEntry& e, const char* what);
  void recordCommit(const RobEntry& e);

  Simulator& sim_;
  NodeId node_;
  ConsistencyModel model_;
  CpuConfig cfg_;
  CacheHierarchy& mem_;
  std::unique_ptr<ThreadProgram> program_;
  ErrorSink* sink_;
  VerificationCache* vc_;   // null when DVUO disabled
  ReorderChecker* ar_;      // null when DVAR disabled
  verify::TraceRecorder* rec_ = nullptr;  // null when capture disabled
  DvmcConfig dvmc_;

  OrderingTable tables_[4];  // indexed by ConsistencyModel

  RingQueue<RobEntry> rob_;
  RingQueue<WbEntry> wb_;
  RingQueue<Instr> replayQueue_;  // re-injected in-flight work (recovery)
  SeqNum nextSeq_ = 1;
  ConsistencyModel lastDispatchModel_;
  std::uint64_t outstandingStores_ = 0;  // in WB or performing (SC)
  std::uint64_t retiredCount_ = 0;
  std::uint64_t pendingTokens_ = 0;
  bool dispatchBlocked_ = false;  // program awaits feedback
  bool tickArmed_ = false;
  bool started_ = false;
  std::uint32_t restartGen_ = 0;  // bumped on BER restart
  bool loadFaultArmed_ = false;
  bool wbReorderArmed_ = false;
  std::uint64_t lastRetiredAtInject_ = 0;  // pipeline-hang watchdog

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cDispatched_ = stats_.counter("cpu.dispatched");
  Counter cRetired_ = stats_.counter("cpu.retired");
  Counter cLoadIssued_ = stats_.counter("cpu.loadIssued");
  Counter cLoadForwarded_ = stats_.counter("cpu.loadForwarded");
  Counter cAtomics_ = stats_.counter("cpu.atomics");
  Counter cScStores_ = stats_.counter("cpu.scStores");
  Counter cReplayIssued_ = stats_.counter("cpu.replayIssued");
  Counter cReplayVcHit_ = stats_.counter("cpu.replayVcHit");
  Counter cSquashes_ = stats_.counter("cpu.squashes");
  Counter cRestarts_ = stats_.counter("cpu.restarts");
  Counter cUoFlushes_ = stats_.counter("cpu.uoFlushes");
  Counter cRmoReplayFlushes_ = stats_.counter("cpu.rmoReplayFlushes");
  Counter cRmoReplayNoPark_ = stats_.counter("cpu.rmoReplayNoPark");
  Counter cLoadSquashRestart_ = stats_.counter("cpu.loadSquashRestart");
  Counter cStorePrefetch_ = stats_.counter("cpu.storePrefetch");
  Counter cWbCoalesced_ = stats_.counter("cpu.wbCoalesced");
  Counter cWbDrains_ = stats_.counter("cpu.wbDrains");
  Counter cWbFullStalls_ = stats_.counter("cpu.wbFullStalls");
  Counter cRobFullStalls_ = stats_.counter("cpu.robFullStalls");
  Counter cMembarStalls_ = stats_.counter("cpu.membarStalls");
  Counter cVcFullStalls_ = stats_.counter("cpu.vcFullStalls");
  Counter cHangDetections_ = stats_.counter("cpu.hangDetections");
  Counter cInjectedLoadFaults_ = stats_.counter("cpu.injectedLoadFaults");
  Counter cInjectedWbReorders_ = stats_.counter("cpu.injectedWbReorders");
};

}  // namespace dvmc
