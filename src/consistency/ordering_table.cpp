#include "consistency/ordering_table.hpp"

#include <sstream>

namespace dvmc {

namespace {
using membar::kAll;
using membar::kLoadLoad;
using membar::kLoadStore;
using membar::kStoreLoad;
using membar::kStoreStore;

// Membar rows/columns are identical in every model: a membar orders
// against earlier loads when it carries #LL or #LS, against earlier stores
// when it carries #SL or #SS, against later loads when it carries #LL or
// #SL, and against later stores when it carries #LS or #SS (paper Table 4).
constexpr std::uint8_t kLoadBeforeMembar = kLoadLoad | kLoadStore;
constexpr std::uint8_t kStoreBeforeMembar = kStoreLoad | kStoreStore;
constexpr std::uint8_t kMembarBeforeLoad = kLoadLoad | kStoreLoad;
constexpr std::uint8_t kMembarBeforeStore = kLoadStore | kStoreStore;
}  // namespace

OrderingTable OrderingTable::forModel(ConsistencyModel m) {
  OrderingTable t;
  t.model_ = m;
  auto& e = t.entries_;
  const auto L = idx(OpClass::kLoad);
  const auto S = idx(OpClass::kStore);
  const auto M = idx(OpClass::kMembar);

  // Membar rows/columns are model-independent.
  e[L][M] = kLoadBeforeMembar;
  e[S][M] = kStoreBeforeMembar;
  e[M][L] = kMembarBeforeLoad;
  e[M][S] = kMembarBeforeStore;
  e[M][M] = 0;

  switch (m) {
    case ConsistencyModel::kSC:
      e[L][L] = kAll;
      e[L][S] = kAll;
      e[S][L] = kAll;
      e[S][S] = kAll;
      break;
    case ConsistencyModel::kTSO:  // Table 2
      e[L][L] = kAll;
      e[L][S] = kAll;
      e[S][L] = 0;
      e[S][S] = kAll;
      break;
    case ConsistencyModel::kPSO:  // Table 3 (Stbar == Membar #SS)
      e[L][L] = kAll;
      e[L][S] = kAll;
      e[S][L] = 0;
      e[S][S] = 0;
      break;
    case ConsistencyModel::kRMO:  // Table 4
      e[L][L] = 0;
      e[L][S] = 0;
      e[S][L] = 0;
      e[S][S] = 0;
      break;
  }
  return t;
}

bool OrderingTable::requiresOrder(OpType x, std::uint8_t maskX, OpType y,
                                  std::uint8_t maskY) const {
  const std::uint8_t mx = (x == OpType::kMembar) ? maskX : kAll;
  const std::uint8_t my = (y == OpType::kMembar) ? maskY : kAll;

  auto classesOf = [](OpType t) -> std::array<OpClass, 2> {
    switch (t) {
      case OpType::kLoad: return {OpClass::kLoad, OpClass::kLoad};
      case OpType::kStore: return {OpClass::kStore, OpClass::kStore};
      case OpType::kAtomic: return {OpClass::kLoad, OpClass::kStore};
      case OpType::kMembar: return {OpClass::kMembar, OpClass::kMembar};
    }
    return {OpClass::kLoad, OpClass::kLoad};
  };

  for (OpClass cx : classesOf(x)) {
    for (OpClass cy : classesOf(y)) {
      if (classOrder(cx, mx, cy, my)) return true;
    }
  }
  return false;
}

std::string OrderingTable::toString() const {
  static const char* names[] = {"Load", "Store", "Membar"};
  std::ostringstream os;
  os << modelName(model_) << " ordering table\n";
  os << "            Load   Store  Membar\n";
  for (std::size_t r = 0; r < kNumOpClasses; ++r) {
    os << "  " << names[r];
    for (std::size_t pad = 0; pad < 8 - std::string(names[r]).size(); ++pad)
      os << ' ';
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      const std::uint8_t v = entries_[r][c];
      if (v == 0) {
        os << "  false ";
      } else if (v == membar::kAll) {
        os << "  true  ";
      } else {
        os << "  0x" << std::hex << static_cast<int>(v) << std::dec << "   ";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dvmc
