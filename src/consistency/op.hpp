// Memory operation types and SPARC v9 membar masks.
//
// The ordering tables (and hence the Allowable Reordering checker) only
// distinguish loads, stores, atomics (which carry both load and store
// ordering obligations), and memory barriers. SPARC's Membar instruction
// carries a 4-bit mask selecting which orderings it enforces; Stbar is
// encoded as Membar #StoreStore, exactly as the paper notes under Table 3.
#pragma once

#include <cstdint>

namespace dvmc {

enum class OpType : std::uint8_t {
  kLoad,
  kStore,
  kAtomic,  // read-modify-write (swap / cas): load + store semantics
  kMembar,  // memory barrier with a 4-bit ordering mask
};

const char* opTypeName(OpType t);

/// SPARC v9 mmask bits (in instruction-encoding order).
namespace membar {
inline constexpr std::uint8_t kLoadLoad = 0x1;    // #LoadLoad
inline constexpr std::uint8_t kStoreLoad = 0x2;   // #StoreLoad
inline constexpr std::uint8_t kLoadStore = 0x4;   // #LoadStore
inline constexpr std::uint8_t kStoreStore = 0x8;  // #StoreStore
inline constexpr std::uint8_t kAll = 0xF;
inline constexpr std::uint8_t kStbar = kStoreStore;  // Stbar == Membar #SS
}  // namespace membar

inline const char* opTypeName(OpType t) {
  switch (t) {
    case OpType::kLoad: return "Load";
    case OpType::kStore: return "Store";
    case OpType::kAtomic: return "Atomic";
    case OpType::kMembar: return "Membar";
  }
  return "?";
}

inline bool isLoadLike(OpType t) {
  return t == OpType::kLoad || t == OpType::kAtomic;
}
inline bool isStoreLike(OpType t) {
  return t == OpType::kStore || t == OpType::kAtomic;
}

}  // namespace dvmc
