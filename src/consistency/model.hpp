// Supported memory consistency models.
//
// SPARC v9 permits runtime switching between TSO, PSO, and RMO; the
// simulated systems additionally support SC as the most restrictive
// baseline. Code compiled for 32-bit SPARC v8 assumes TSO, so under PSO or
// RMO any 32-bit memory operation is executed (and checked) under TSO —
// the effectiveModel() helper implements that rule (Section 5, Table 8).
#pragma once

#include <cstdint>

namespace dvmc {

enum class ConsistencyModel : std::uint8_t { kSC, kTSO, kPSO, kRMO };

inline const char* modelName(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::kSC: return "SC";
    case ConsistencyModel::kTSO: return "TSO";
    case ConsistencyModel::kPSO: return "PSO";
    case ConsistencyModel::kRMO: return "RMO";
  }
  return "?";
}

/// The model a given instruction executes under: 32-bit (v8) code always
/// runs TSO; 64-bit code runs the system's configured model.
inline ConsistencyModel effectiveModel(ConsistencyModel system,
                                       bool is32Bit) {
  if (is32Bit &&
      (system == ConsistencyModel::kPSO || system == ConsistencyModel::kRMO)) {
    return ConsistencyModel::kTSO;
  }
  return system;
}

/// True if the model requires loads to appear to perform in program order
/// (loads perform at the verification stage and load-order speculation must
/// be tracked — Section 4.1).
inline bool modelOrdersLoads(ConsistencyModel m) {
  return m != ConsistencyModel::kRMO;
}

/// True if the model lets the write buffer retire stores out of order.
inline bool modelAllowsStoreReorder(ConsistencyModel m) {
  return m == ConsistencyModel::kPSO || m == ConsistencyModel::kRMO;
}

/// True if the model allows a store->load bypass (store buffer at all).
inline bool modelAllowsWriteBuffer(ConsistencyModel m) {
  return m != ConsistencyModel::kSC;
}

}  // namespace dvmc
