// Ordering tables (paper Tables 1-4).
//
// A consistency model is specified as a table indexed by (first operation
// class, second operation class). Every entry is a 4-bit membar mask; plain
// boolean entries are encoded as 0xF (true) / 0x0 (false), and non-membar
// operations carry an implicit instruction mask of 0xF. An ordering
// constraint exists between X (earlier in program order) and Y iff
//
//     entry[class(X)][class(Y)] & mask(X) & mask(Y) != 0
//
// which reproduces the paper's rule "compute the logical AND between the
// mask in the instruction and the mask in the table; if the result is
// non-zero, ordering is required". Atomics are checked as both load and
// store (the OR over their constituent classes).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "consistency/model.hpp"
#include "consistency/op.hpp"

namespace dvmc {

/// Row/column index of the ordering table.
enum class OpClass : std::uint8_t { kLoad = 0, kStore = 1, kMembar = 2 };
inline constexpr std::size_t kNumOpClasses = 3;

class OrderingTable {
 public:
  /// Builds the table for a given model (paper Tables 1-4; SC = all true).
  static OrderingTable forModel(ConsistencyModel m);

  /// Raw entry (a 4-bit mask; 0xF for plain "true", 0 for "false").
  std::uint8_t entry(OpClass first, OpClass second) const {
    return entries_[idx(first)][idx(second)];
  }

  /// Does an ordering constraint exist between an earlier operation of
  /// type `x` (with membar mask `maskX`, ignored unless x is a membar) and
  /// a later operation of type `y`? Atomics expand to load|store.
  bool requiresOrder(OpType x, std::uint8_t maskX, OpType y,
                     std::uint8_t maskY) const;

  /// Class-level query used by the Allowable Reordering checker: constraint
  /// between class `first` (instruction mask maskFirst) and class `second`
  /// (instruction mask maskSecond).
  bool classOrder(OpClass first, std::uint8_t maskFirst, OpClass second,
                  std::uint8_t maskSecond) const {
    return (entry(first, second) & maskFirst & maskSecond) != 0;
  }

  ConsistencyModel model() const { return model_; }
  std::string toString() const;

 private:
  static std::size_t idx(OpClass c) { return static_cast<std::size_t>(c); }

  ConsistencyModel model_ = ConsistencyModel::kSC;
  std::array<std::array<std::uint8_t, kNumOpClasses>, kNumOpClasses>
      entries_{};
};

}  // namespace dvmc
