#include "faults/injector.hpp"

#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace dvmc {

const char* faultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kCacheDataMultiBit: return "cache-data-multibit";
    case FaultType::kCacheStateFlip: return "cache-state-flip";
    case FaultType::kMemoryDataMultiBit: return "memory-data-multibit";
    case FaultType::kMsgDrop: return "msg-drop";
    case FaultType::kMsgDuplicate: return "msg-duplicate";
    case FaultType::kMsgMisroute: return "msg-misroute";
    case FaultType::kMsgReorder: return "msg-reorder";
    case FaultType::kMsgDataCorrupt: return "msg-data-corrupt";
    case FaultType::kLsqWrongForward: return "lsq-wrong-forward";
    case FaultType::kWbValueCorrupt: return "wb-value-corrupt";
    case FaultType::kWbReorder: return "wb-reorder";
    case FaultType::kCheckerCetCorrupt: return "checker-cet-corrupt";
  }
  return "?";
}

const std::vector<FaultType>& allFaultTypes() {
  static const std::vector<FaultType> kAll = {
      FaultType::kCacheDataMultiBit, FaultType::kCacheStateFlip,
      FaultType::kMemoryDataMultiBit, FaultType::kMsgDrop,
      FaultType::kMsgDuplicate,       FaultType::kMsgMisroute,
      FaultType::kMsgReorder,         FaultType::kMsgDataCorrupt,
      FaultType::kLsqWrongForward,    FaultType::kWbValueCorrupt,
      FaultType::kWbReorder,          FaultType::kCheckerCetCorrupt,
  };
  return kAll;
}

bool faultApplicable(FaultType t, ConsistencyModel m, Protocol p) {
  switch (t) {
    case FaultType::kMsgReorder:
      return p == Protocol::kSnooping;  // only an ordered network can reorder
    case FaultType::kWbReorder:
      // Store-store reordering is legal under PSO/RMO, and SC has no write
      // buffer at all: the fault only exists under TSO.
      return m == ConsistencyModel::kTSO;
    case FaultType::kWbValueCorrupt:
      // SC systems have no write buffer to corrupt.
      return m != ConsistencyModel::kSC;
    default:
      return true;
  }
}

bool faultCoveredBy(FaultType t, SystemConfig::CoherenceCheckerKind checker) {
  if (checker == SystemConfig::CoherenceCheckerKind::kShadow &&
      t == FaultType::kMsgDataCorrupt) {
    // Cache-to-cache transfers are not hash-checked by the shadow checker
    // (see shadow_checker.hpp): transfer corruption is only caught when the
    // block later flows through memory, which a bounded run cannot rely on.
    return false;
  }
  return true;
}

FaultInjector::FaultInjector(System& sys, std::uint64_t seed)
    : sys_(sys), rng_(seed) {}

bool FaultInjector::inject(FaultType t) {
  const bool ok = injectNow(t);
  if (ok) ++injections_;
  return ok;
}

bool FaultInjector::injectNow(FaultType t) {
  const NodeId node =
      static_cast<NodeId>(rng_.below(sys_.numNodes()));
  switch (t) {
    case FaultType::kCacheDataMultiBit: {
      // Two flips in the same line defeat the single-error-correcting code.
      CacheArray& array = sys_.config().protocol == Protocol::kDirectory
                              ? static_cast<DirectoryCacheController&>(
                                    sys_.l2(node))
                                    .array()
                              : static_cast<SnoopCacheController&>(
                                    sys_.l2(node))
                                    .array();
      const std::uint64_t r = rng_.next();
      auto first = array.injectBitFlip(r, &sys_.sink(), node,
                                       sys_.sim().now());
      if (!first) return false;
      // Second flip in the same line: re-find it and flip an adjacent bit.
      CacheLine* line = array.find(*first);
      if (line == nullptr) return false;
      const std::size_t bit = (r % (kBlockSizeBytes * 8 - 1)) + 1;
      line->data.flipBit(bit);
      line->pendingFlips.push_back(bit);
      return true;
    }
    case FaultType::kCacheStateFlip: {
      CacheArray& array = sys_.config().protocol == Protocol::kDirectory
                              ? static_cast<DirectoryCacheController&>(
                                    sys_.l2(node))
                                    .array()
                              : static_cast<SnoopCacheController&>(
                                    sys_.l2(node))
                                    .array();
      // Only the permission-granting direction constitutes a detectable
      // coherence violation; retry until a non-M line gets promoted.
      for (int attempt = 0; attempt < 8; ++attempt) {
        auto res = array.injectStateFlip(rng_.next());
        if (res && res->second == MosiState::kM) return true;
      }
      return false;
    }
    case FaultType::kMemoryDataMultiBit: {
      // Modeled as a DRAM chip/row failure: every materialized block at
      // this home takes an uncorrectable double flip, so the next memory
      // read (any refill that reaches DRAM) trips the ECC detector.
      MemoryStorage& mem = sys_.config().protocol == Protocol::kDirectory
                               ? sys_.home(node)->memory()
                               : sys_.snoopMem(node)->memory();
      if (mem.materializedBlocks() == 0) return false;
      std::vector<Addr> targets;
      targets.reserve(mem.materializedBlocks());
      for (const auto& [blk, data] : mem.blocks()) targets.push_back(blk);
      const std::size_t bit = rng_.below(kBlockSizeBytes * 8 - 1);
      for (Addr t : targets) {
        mem.injectBitFlip(t, bit);
        mem.injectBitFlip(t, bit + 1);
      }
      return true;
    }
    case FaultType::kMsgDrop:
    case FaultType::kMsgDuplicate:
    case FaultType::kMsgMisroute:
    case FaultType::kMsgReorder:
    case FaultType::kMsgDataCorrupt:
      armNetworkFault(t);
      return true;
    case FaultType::kLsqWrongForward:
      sys_.core(node).armLoadValueFault();
      return true;
    case FaultType::kWbValueCorrupt:
      // Resident (not yet issued) write-buffer entries are fleeting with
      // concurrent drains; try every node before giving up on this instant.
      for (std::size_t i = 0; i < sys_.numNodes(); ++i) {
        const NodeId n = static_cast<NodeId>((node + i) % sys_.numNodes());
        if (sys_.core(n).injectWbValueFault(rng_.next())) return true;
      }
      return false;
    case FaultType::kWbReorder:
      for (std::size_t i = 0; i < sys_.numNodes(); ++i) {
        const NodeId n = static_cast<NodeId>((node + i) % sys_.numNodes());
        if (sys_.core(n).armWbReorderFault()) return true;
      }
      return false;
    case FaultType::kCheckerCetCorrupt:
      if (sys_.cet(node) == nullptr) return false;
      return sys_.cet(node)->injectEntryCorruption(rng_.next());
  }
  return false;
}

void FaultInjector::armNetworkFault(FaultType t) {
  netFaultArmed_ = true;
  armedType_ = t;

  auto eligible = [](const Message& m) {
    // DVMC's own inform traffic and BER coordination are excluded: errors
    // there cause (at worst) false positives, never missed detections, and
    // the detection-latency experiment needs a real error to chase.
    switch (m.type) {
      case MsgType::kInformEpoch:
      case MsgType::kInformOpenEpoch:
      case MsgType::kInformClosedEpoch:
      case MsgType::kCkptSync:
      case MsgType::kCkptLog:
        return false;
      default:
        return true;
    }
  };

  auto filter = [this, eligible](Message& m) -> NetFaultAction {
    if (!netFaultArmed_ || !eligible(m)) return NetFaultAction::kDeliver;
    netFaultArmed_ = false;
    switch (armedType_) {
      case FaultType::kMsgDrop:
        return NetFaultAction::kDrop;
      case FaultType::kMsgDuplicate:
        return NetFaultAction::kDuplicate;
      case FaultType::kMsgMisroute:
        m.dest = static_cast<NodeId>((m.dest + 1) % sys_.numNodes());
        return NetFaultAction::kDeliver;
      case FaultType::kMsgReorder:
        return NetFaultAction::kDelay;
      case FaultType::kMsgDataCorrupt:
        if (std::getenv("DVMC_FAULT_DEBUG") != nullptr) {
          std::fprintf(stderr, "FAULT corrupt msg type=%d src=%u dest=%u addr=%llx hasData=%d\n",
                       (int)m.type, m.src, m.dest, (unsigned long long)m.addr, (int)m.hasData);
        }
        if (m.hasData) {
          m.data.flipBit(rng_.below(kBlockSizeBytes * 8));
        } else {
          m.addr ^= kBlockSizeBytes;  // control message: corrupt the address
        }
        return NetFaultAction::kDeliver;
      default:
        return NetFaultAction::kDeliver;
    }
  };

  if (armedType_ == FaultType::kMsgReorder && sys_.addrNet() != nullptr) {
    sys_.addrNet()->setFaultFilter(filter);
  } else {
    sys_.dataNet().setFaultFilter(filter);
  }
}

}  // namespace dvmc
