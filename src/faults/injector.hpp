// Error injection framework (Section 6.1).
//
// Reproduces the paper's fault campaign: "data and address bit flips;
// dropped, reordered, mis-routed, and duplicated messages; and reorderings
// and incorrect forwarding in the LSQ and write buffer", injected into the
// LSQ, write buffer, caches, interconnect, and memory/cache controllers at
// a random time, type, and location.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "system/system.hpp"

namespace dvmc {

enum class FaultType : std::uint8_t {
  kCacheDataMultiBit,  // uncorrectable cache corruption (ECC detects)
  kCacheStateFlip,     // MOSI state bit flip (coherence checker detects)
  kMemoryDataMultiBit, // uncorrectable memory corruption (ECC detects)
  kMsgDrop,            // lost coherence message (lost-op / hang watchdog)
  kMsgDuplicate,       // duplicated message
  kMsgMisroute,        // delivered to the wrong node
  kMsgReorder,         // ordered-network reordering (snooping only)
  kMsgDataCorrupt,     // payload bit flip in flight (DVCC hash mismatch)
  kLsqWrongForward,    // wrong load value out of the LSQ (DVUO replay)
  kWbValueCorrupt,     // write-buffer datapath corruption (VC dealloc check)
  kWbReorder,          // drain order violation (AR checker; SC/TSO only)
  kCheckerCetCorrupt,  // fault in DVMC's own hardware: false positive only
};

const char* faultTypeName(FaultType t);
const std::vector<FaultType>& allFaultTypes();

/// True when `t` constitutes an actual error under consistency model `m`
/// and protocol `p` (a write-buffer reorder is legal under PSO/RMO; an
/// ordered-network reorder only exists in snooping systems).
bool faultApplicable(FaultType t, ConsistencyModel m, Protocol p);

/// True when the configured coherence checker claims coverage for `t`.
/// The shadow (TCSC-style) checker documentedly does not hash-check
/// cache-to-cache data transfers, so in-flight payload corruption is
/// outside its coverage — a differential campaign must not count such a
/// miss as a checker escape.
bool faultCoveredBy(FaultType t, SystemConfig::CoherenceCheckerKind checker);

class FaultInjector {
 public:
  FaultInjector(System& sys, std::uint64_t seed);

  /// Attempts to inject the fault right now at a random location; returns
  /// false if no suitable target exists yet (caller retries later).
  bool inject(FaultType t);

  /// Arms a one-shot network fault (drop/dup/misroute/reorder/corrupt):
  /// the next eligible coherence message triggers it.
  void armNetworkFault(FaultType t);

  std::uint64_t injections() const { return injections_; }

 private:
  bool injectNow(FaultType t);

  System& sys_;
  Rng rng_;
  std::uint64_t injections_ = 0;
  bool netFaultArmed_ = false;
  FaultType armedType_ = FaultType::kMsgDrop;
};

}  // namespace dvmc
