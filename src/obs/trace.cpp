#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

namespace dvmc {

const char* traceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kCoherence: return "coherence";
    case TraceKind::kEpoch: return "epoch";
    case TraceKind::kInform: return "inform";
    case TraceKind::kDetection: return "detection";
    case TraceKind::kCheckpoint: return "checkpoint";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kCpu: return "cpu";
    case TraceKind::kPhase: return "phase";
  }
  return "?";
}

EventTracer::EventTracer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void EventTracer::push(const TraceEvent& e) {
  if (count_ < ring_.size()) {
    ring_[(head_ + count_) % ring_.size()] = e;
    ++count_;
  } else {
    ring_[head_] = e;  // overwrite the oldest record
    head_ = (head_ + 1) % ring_.size();
  }
  ++recorded_;
}

void EventTracer::clear() {
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

namespace {

void writeEscaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

void EventTracer::writeChromeJson(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < count_; ++i) {
    const TraceEvent& e = at(i);
    if (i != 0) os << ",";
    os << "\n{\"name\":\"";
    writeEscaped(os, e.name);
    os << "\",\"cat\":\"" << traceKindName(e.kind) << "\"";
    if (e.dur > 0) {
      os << ",\"ph\":\"X\",\"dur\":" << e.dur;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"ts\":" << e.ts << ",\"pid\":0,\"tid\":" << e.node
       << ",\"args\":{\"addr\":" << e.addr << ",\"arg\":" << e.arg << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
     << "\"generator\":\"dvmc\",\"timeUnit\":\"cycles\",\"dropped\":"
     << dropped() << "}}\n";
}

}  // namespace dvmc
