// Minimal ordered JSON value builder and parser (observability subsystem).
//
// Just enough JSON to serialize run reports and config summaries without
// an external dependency: objects preserve insertion order (reports stay
// diffable), numbers are emitted losslessly for uint64 and with enough
// digits to round-trip for doubles, and strings are escaped. The parser
// (Json::parse) reads everything the writer emits — and plain standard
// JSON generally — so dvmc_inspect and the forensics tests can consume
// trace/report/forensics files without python.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dvmc {

class Json {
 public:
  Json() : type_(Type::kNull) {}

  static Json object() { return Json(Type::kObject); }
  static Json array() { return Json(Type::kArray); }
  static Json str(std::string s) {
    Json j(Type::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json num(std::uint64_t v) {
    Json j(Type::kUint);
    j.uint_ = v;
    return j;
  }
  static Json num(std::int64_t v) {
    Json j(Type::kInt);
    j.int_ = v;
    return j;
  }
  static Json num(int v) { return num(static_cast<std::int64_t>(v)); }
  static Json num(double v) {
    Json j(Type::kDouble);
    j.dbl_ = v;
    return j;
  }
  static Json boolean(bool v) {
    Json j(Type::kBool);
    j.bool_ = v;
    return j;
  }

  /// Object member (insertion-ordered). Returns *this for chaining.
  Json& set(std::string key, Json v);
  /// Array element. Returns *this for chaining.
  Json& push(Json v);

  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

  // --- read side (parser output / introspection) ---

  /// Parses a complete JSON document. On error returns nullopt and, when
  /// `err` is non-null, stores a message with the byte offset.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* err = nullptr);

  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const {
    return type_ == Type::kUint || type_ == Type::kInt ||
           type_ == Type::kDouble;
  }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  /// Object lookup by key (first match); nullptr when absent or not an
  /// object.
  const Json* find(std::string_view key) const;
  /// Array element accessor; a shared null value for out-of-range indices
  /// (and non-arrays) keeps lookup chains abort-free.
  const Json& at(std::size_t i) const;
  /// Array length (0 for non-arrays).
  std::size_t size() const {
    return type_ == Type::kArray ? elements_.size() : 0;
  }
  const std::vector<Json>& items() const { return elements_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Numeric/string/bool readers with defaults (no throwing, no aborts):
  /// wrong-typed reads return the fallback.
  std::uint64_t asUint(std::uint64_t fallback = 0) const;
  std::int64_t asInt(std::int64_t fallback = 0) const;
  double asDouble(double fallback = 0.0) const;
  bool asBool(bool fallback = false) const;
  const std::string& asString() const { return str_; }

 private:
  enum class Type : std::uint8_t {
    kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject
  };
  explicit Json(Type t) : type_(t) {}

  Type type_;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> elements_;                         // array
};

}  // namespace dvmc
