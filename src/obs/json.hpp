// Minimal ordered JSON value builder (observability subsystem).
//
// Just enough JSON to serialize run reports and config summaries without
// an external dependency: objects preserve insertion order (reports stay
// diffable), numbers are emitted losslessly for uint64 and with enough
// digits to round-trip for doubles, and strings are escaped. This is a
// writer only — parsing/validation lives in the CI check (python).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dvmc {

class Json {
 public:
  Json() : type_(Type::kNull) {}

  static Json object() { return Json(Type::kObject); }
  static Json array() { return Json(Type::kArray); }
  static Json str(std::string s) {
    Json j(Type::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json num(std::uint64_t v) {
    Json j(Type::kUint);
    j.uint_ = v;
    return j;
  }
  static Json num(std::int64_t v) {
    Json j(Type::kInt);
    j.int_ = v;
    return j;
  }
  static Json num(int v) { return num(static_cast<std::int64_t>(v)); }
  static Json num(double v) {
    Json j(Type::kDouble);
    j.dbl_ = v;
    return j;
  }
  static Json boolean(bool v) {
    Json j(Type::kBool);
    j.bool_ = v;
    return j;
  }

  /// Object member (insertion-ordered). Returns *this for chaining.
  Json& set(std::string key, Json v);
  /// Array element. Returns *this for chaining.
  Json& push(Json v);

  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

 private:
  enum class Type : std::uint8_t {
    kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject
  };
  explicit Json(Type t) : type_(t) {}

  Type type_;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> elements_;                         // array
};

}  // namespace dvmc
