#include "obs/run_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace dvmc::obs {

namespace {

struct Collector {
  std::mutex mu;
  std::vector<Json> runs;
  std::unique_ptr<EventTracer> tracer;
  std::unique_ptr<ForensicsRecorder> forensics;
};

Collector& collector() {
  static Collector c;
  return c;
}

}  // namespace

ObsOptions& options() {
  static ObsOptions opts;
  return opts;
}

bool parsePositiveCount(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;  // 19 digits < 2^63
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;
  *out = v;
  return true;
}

std::string validateWritablePath(const std::string& path) {
  if (path.empty()) return "empty output path";
  // Append mode: verifies writability (creating the file if absent)
  // without clobbering existing content before finalizeObs truncates it.
  std::ofstream probe(path, std::ios::app);
  if (!probe) return "cannot open '" + path + "' for writing";
  return {};
}

namespace {

[[noreturn]] void obsUsageError(const char* flag, const std::string& detail) {
  std::fprintf(stderr, "obs: invalid %s: %s\n", flag, detail.c_str());
  std::exit(2);
}

/// Parses `--flag=V` / `--flag V` forms; returns the value or nullptr.
const char* flagValue(const char* flag, int argc, char** argv, int* i) {
  const std::size_t len = std::strlen(flag);
  const char* arg = argv[*i];
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') return arg + len + 1;
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

}  // namespace

int parseObsFlags(int argc, char** argv) {
  ObsOptions& opts = options();
  struct PathFlag {
    const char* flag;
    std::string* target;
  };
  struct CountFlag {
    const char* flag;
    std::uint64_t* target;
  };
  std::uint64_t traceCapacity = opts.traceCapacity;
  std::uint64_t forensicsWindow = opts.forensicsWindow;
  std::uint64_t sampleEvery = 0;
  std::uint64_t sampleCapacity = opts.sampleCapacity;
  std::uint64_t captureTraceLimit = opts.captureTraceLimit;
  const PathFlag pathFlags[] = {
      {"--trace", &opts.traceFile},
      {"--report-json", &opts.reportJsonFile},
      {"--forensics", &opts.forensicsFile},
      {"--capture-trace", &opts.captureTraceFile},
  };
  const CountFlag countFlags[] = {
      {"--trace-capacity", &traceCapacity},
      {"--forensics-window", &forensicsWindow},
      {"--sample-every", &sampleEvery},
      {"--sample-capacity", &sampleCapacity},
      {"--capture-trace-limit", &captureTraceLimit},
  };

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    bool matched = false;
    for (const PathFlag& f : pathFlags) {
      if (const char* value = flagValue(f.flag, argc, argv, &i)) {
        const std::string err = validateWritablePath(value);
        if (!err.empty()) obsUsageError(f.flag, err);
        *f.target = value;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const CountFlag& f : countFlags) {
      if (const char* value = flagValue(f.flag, argc, argv, &i)) {
        if (!parsePositiveCount(value, f.target)) {
          obsUsageError(f.flag, "'" + std::string(value) +
                                    "' is not a positive integer");
        }
        matched = true;
        break;
      }
    }
    if (!matched) argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  opts.traceCapacity = static_cast<std::size_t>(traceCapacity);
  opts.forensicsWindow = static_cast<std::size_t>(forensicsWindow);
  opts.sampleEvery = sampleEvery;
  opts.sampleCapacity = static_cast<std::size_t>(sampleCapacity);
  opts.captureTraceLimit = static_cast<std::size_t>(captureTraceLimit);
  return out;
}

EventTracer* activeTracer() {
  Collector& c = collector();
  if (options().traceFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.tracer) {
    c.tracer = std::make_unique<EventTracer>(options().traceCapacity);
  }
  return c.tracer.get();
}

ForensicsRecorder* activeForensics() {
  Collector& c = collector();
  if (options().forensicsFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.forensics) {
    ForensicsConfig cfg;
    cfg.windowEvents = options().forensicsWindow;
    c.forensics = std::make_unique<ForensicsRecorder>(cfg);
  }
  return c.forensics.get();
}

bool reportingActive() { return !options().reportJsonFile.empty(); }

void addReportRun(Json run) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.push_back(std::move(run));
}

std::size_t reportRunCount() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.runs.size();
}

void resetObs() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.clear();
  c.tracer.reset();
  c.forensics.reset();
  options() = ObsOptions{};
}

Json reportEnvelope(Json runs) {
  Json root = Json::object();
  root.set("schema", Json::str(kReportSchemaName));
  root.set("version", Json::num(std::uint64_t{kReportSchemaVersion}));
  root.set("generator",
           Json::str("dvmc (Dynamic Verification of Memory Consistency)"));
  root.set("runs", std::move(runs));
  return root;
}

int finalizeObs() {
  int rc = 0;
  const ObsOptions& opts = options();
  Collector& c = collector();

  if (!opts.traceFile.empty()) {
    std::ofstream os(opts.traceFile);
    EventTracer* t = activeTracer();
    if (!os || t == nullptr) {
      std::fprintf(stderr, "obs: cannot write trace file %s\n",
                   opts.traceFile.c_str());
      rc = 1;
    } else {
      t->writeChromeJson(os);
      std::fprintf(stderr, "obs: wrote %zu trace events to %s (%llu dropped)\n",
                   t->size(), opts.traceFile.c_str(),
                   static_cast<unsigned long long>(t->dropped()));
    }
  }

  if (!opts.reportJsonFile.empty()) {
    std::ofstream os(opts.reportJsonFile);
    if (!os) {
      std::fprintf(stderr, "obs: cannot write report file %s\n",
                   opts.reportJsonFile.c_str());
      rc = 1;
    } else {
      Json runs = Json::array();
      {
        std::lock_guard<std::mutex> lock(c.mu);
        for (Json& r : c.runs) runs.push(std::move(r));
        c.runs.clear();
      }
      reportEnvelope(std::move(runs)).write(os, 2);
      os << "\n";
      std::fprintf(stderr, "obs: wrote run report to %s\n",
                   opts.reportJsonFile.c_str());
    }
  }

  if (!opts.forensicsFile.empty()) {
    std::ofstream os(opts.forensicsFile);
    ForensicsRecorder* f = activeForensics();
    if (!os || f == nullptr) {
      std::fprintf(stderr, "obs: cannot write forensics file %s\n",
                   opts.forensicsFile.c_str());
      rc = 1;
    } else {
      f->writeTo(os);
      std::fprintf(stderr,
                   "obs: wrote %zu forensics bundle(s) to %s (%llu dropped)\n",
                   f->bundleCount(), opts.forensicsFile.c_str(),
                   static_cast<unsigned long long>(f->droppedBundles()));
    }
  }
  return rc;
}

}  // namespace dvmc::obs
