#include "obs/run_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/version.hpp"
#include "obs/crash_handler.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "obs/spans.hpp"

namespace dvmc::obs {

namespace {

struct Collector {
  std::mutex mu;
  std::vector<Json> runs;
  std::unique_ptr<EventTracer> tracer;
  std::unique_ptr<ForensicsRecorder> forensics;
};

Collector& collector() {
  static Collector c;
  return c;
}

}  // namespace

ObsOptions& options() {
  static ObsOptions opts;
  return opts;
}

bool parsePositiveCount(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;  // 19 digits < 2^63
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;
  *out = v;
  return true;
}

std::string validateWritablePath(const std::string& path) {
  if (path.empty()) return "empty output path";
  // Append mode: verifies writability (creating the file if absent)
  // without clobbering existing content before finalizeObs truncates it.
  std::ofstream probe(path, std::ios::app);
  if (!probe) return "cannot open '" + path + "' for writing";
  return {};
}

void addObsFlags(CliParser& cli) {
  // Every binary on the shared flag surface gets crash-surviving
  // artifacts: the handler chains to the previous disposition, so it is
  // invisible unless --log-json / --status-file are armed and the process
  // takes a fatal signal.
  installCrashHandler();
  ObsOptions& opts = options();
  cli.path("--trace", &opts.traceFile, "FILE",
           "record a Chrome trace_event JSON event trace of the run");
  cli.count("--trace-capacity", &opts.traceCapacity, "N",
            "event-trace ring size in events");
  cli.path("--report-json", &opts.reportJsonFile, "FILE",
           "write every experiment result as a dvmc-run-report document");
  cli.path("--forensics", &opts.forensicsFile, "FILE",
           "capture a forensics bundle on every checker detection");
  cli.count("--forensics-window", &opts.forensicsWindow, "K",
            "trace events kept around each detection");
  cli.count("--sample-every", &opts.sampleEvery, "N",
            "snapshot telemetry counters every N cycles into the report");
  cli.count("--sample-capacity", &opts.sampleCapacity, "M",
            "telemetry ring size in rows");
  cli.path("--capture-trace", &opts.captureTraceFile, "FILE",
           "record the first run's commit-point memory-op trace (dvmc-trace)");
  cli.count("--capture-trace-limit", &opts.captureTraceLimit, "N",
            "max records before the capture is marked truncated");
  cli.flag("--capture-trace-spill", &opts.captureTraceSpill,
           "stream the capture to the --capture-trace file as settled v2 "
           "chunks during the run (bounded resident memory)");
  cli.optionFn("--log-level", "LEVEL",
               "minimum structured-log level: debug, info, warn, error, or off "
               "(default: info)",
               [&opts](const std::string& v) -> std::string {
                 LogLevel level;
                 if (!parseLogLevel(v, &level)) {
                   return "'" + v +
                          "' is not a log level "
                          "(debug|info|warn|error|off)";
                 }
                 opts.logLevel = v;
                 Logger::instance().setLevel(level);
                 return {};
               });
  cli.optionFn("--log-json", "FILE",
               "stream structured log records to FILE as dvmc-log JSONL",
               [&opts](const std::string& v) -> std::string {
                 if (v.empty()) return "empty output path";
                 if (!Logger::instance().openJsonl(v)) {
                   return "cannot open '" + v + "' for writing";
                 }
                 opts.logJsonFile = v;
                 return {};
               });
  cli.path("--profile-out", &opts.profileOutFile, "FILE",
           "write span-profiler collapsed stacks (speedscope-compatible)");
  cli.path("--status-file", &opts.statusFile, "FILE",
           "atomically rewrite a live dvmc-status snapshot during the run");
}

int parseObsFlags(int argc, char** argv) {
  CliParser cli("obs", "observability flags");
  cli.lenient();
  addObsFlags(cli);
  return cli.parse(argc, argv);
}

EventTracer* activeTracer() {
  Collector& c = collector();
  if (options().traceFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.tracer) {
    c.tracer = std::make_unique<EventTracer>(options().traceCapacity);
  }
  return c.tracer.get();
}

ForensicsRecorder* activeForensics() {
  Collector& c = collector();
  if (options().forensicsFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.forensics) {
    ForensicsConfig cfg;
    cfg.windowEvents = options().forensicsWindow;
    c.forensics = std::make_unique<ForensicsRecorder>(cfg);
  }
  return c.forensics.get();
}

bool reportingActive() { return !options().reportJsonFile.empty(); }

void addReportRun(Json run) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.push_back(std::move(run));
}

std::size_t reportRunCount() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.runs.size();
}

void resetObs() {
  Collector& c = collector();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    c.runs.clear();
    c.tracer.reset();
    c.forensics.reset();
    options() = ObsOptions{};
  }
  resetStatusWriterForTests();
  Logger::instance().closeJsonl();
}

Json reportEnvelope(Json runs) {
  Json root = Json::object();
  root.set("schema", Json::str(kReportSchemaName));
  root.set("version", Json::num(std::uint64_t{kReportSchemaVersion}));
  root.set("generator", Json::str(versionString()));
  root.set("runs", std::move(runs));
  // v2 sections: host footprint always; the phase-profile tree when any
  // ScopedSpan closed during this process.
  root.set("resource", sampleResourceUsage().toJson());
  SpanProfiler& prof = SpanProfiler::instance();
  if (!prof.empty()) root.set("profile", prof.toJson());
  return root;
}

int finalizeObs() {
  int rc = 0;
  const ObsOptions& opts = options();
  Collector& c = collector();

  if (!opts.traceFile.empty()) {
    std::ofstream os(opts.traceFile);
    EventTracer* t = activeTracer();
    if (!os || t == nullptr) {
      logError("obs", "cannot write trace file",
               Json::object().set("file", Json::str(opts.traceFile)));
      rc = 1;
    } else {
      // Harness phase spans ride along on their own µs track; replayed
      // here, single-threaded, because the tracer is not thread-safe.
      if (!SpanProfiler::instance().empty()) flushPhaseSpans(*t);
      t->writeChromeJson(os);
      logInfo("obs", "wrote event trace",
              Json::object()
                  .set("file", Json::str(opts.traceFile))
                  .set("events", Json::num(std::uint64_t{t->size()}))
                  .set("dropped", Json::num(t->dropped())));
    }
  }

  if (!opts.reportJsonFile.empty()) {
    std::ofstream os(opts.reportJsonFile);
    if (!os) {
      logError("obs", "cannot write report file",
               Json::object().set("file", Json::str(opts.reportJsonFile)));
      rc = 1;
    } else {
      Json runs = Json::array();
      std::size_t count = 0;
      {
        std::lock_guard<std::mutex> lock(c.mu);
        count = c.runs.size();
        for (Json& r : c.runs) runs.push(std::move(r));
        c.runs.clear();
      }
      reportEnvelope(std::move(runs)).write(os, 2);
      os << "\n";
      logInfo("obs", "wrote run report",
              Json::object()
                  .set("file", Json::str(opts.reportJsonFile))
                  .set("runs", Json::num(std::uint64_t{count})));
    }
  }

  if (!opts.forensicsFile.empty()) {
    std::ofstream os(opts.forensicsFile);
    ForensicsRecorder* f = activeForensics();
    if (!os || f == nullptr) {
      logError("obs", "cannot write forensics file",
               Json::object().set("file", Json::str(opts.forensicsFile)));
      rc = 1;
    } else {
      f->writeTo(os);
      logInfo("obs", "wrote forensics bundles",
              Json::object()
                  .set("file", Json::str(opts.forensicsFile))
                  .set("bundles", Json::num(std::uint64_t{f->bundleCount()}))
                  .set("dropped", Json::num(f->droppedBundles())));
    }
  }

  if (!opts.profileOutFile.empty()) {
    std::ofstream os(opts.profileOutFile);
    if (!os) {
      logError("obs", "cannot write profile file",
               Json::object().set("file", Json::str(opts.profileOutFile)));
      rc = 1;
    } else {
      SpanProfiler::instance().writeCollapsed(os);
      logInfo("obs", "wrote collapsed-stack profile",
              Json::object().set("file", Json::str(opts.profileOutFile)));
    }
  }

  // Last: further records go to stderr/ring only once the JSONL sink is
  // closed, so the "wrote ..." lines above still land in the log file.
  Logger::instance().closeJsonl();
  return rc;
}

}  // namespace dvmc::obs
