#include "obs/run_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace dvmc::obs {

namespace {

struct Collector {
  std::mutex mu;
  std::vector<Json> runs;
  std::unique_ptr<EventTracer> tracer;
};

Collector& collector() {
  static Collector c;
  return c;
}

}  // namespace

ObsOptions& options() {
  static ObsOptions opts;
  return opts;
}

int parseObsFlags(int argc, char** argv) {
  ObsOptions& opts = options();
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    std::string* target = nullptr;
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      value = arg + 8;
      target = &opts.traceFile;
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      value = argv[++i];
      target = &opts.traceFile;
    } else if (std::strncmp(arg, "--report-json=", 14) == 0) {
      value = arg + 14;
      target = &opts.reportJsonFile;
    } else if (std::strcmp(arg, "--report-json") == 0 && i + 1 < argc) {
      value = argv[++i];
      target = &opts.reportJsonFile;
    } else if (std::strncmp(arg, "--trace-capacity=", 17) == 0) {
      const long long cap = std::atoll(arg + 17);
      if (cap > 0) opts.traceCapacity = static_cast<std::size_t>(cap);
      continue;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    *target = value;
  }
  argv[out] = nullptr;
  return out;
}

EventTracer* activeTracer() {
  Collector& c = collector();
  if (options().traceFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.tracer) {
    c.tracer = std::make_unique<EventTracer>(options().traceCapacity);
  }
  return c.tracer.get();
}

bool reportingActive() { return !options().reportJsonFile.empty(); }

void addReportRun(Json run) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.push_back(std::move(run));
}

std::size_t reportRunCount() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.runs.size();
}

void resetObs() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.clear();
  c.tracer.reset();
  options() = ObsOptions{};
}

Json reportEnvelope(Json runs) {
  Json root = Json::object();
  root.set("schema", Json::str(kReportSchemaName));
  root.set("version", Json::num(std::uint64_t{kReportSchemaVersion}));
  root.set("generator",
           Json::str("dvmc (Dynamic Verification of Memory Consistency)"));
  root.set("runs", std::move(runs));
  return root;
}

int finalizeObs() {
  int rc = 0;
  const ObsOptions& opts = options();
  Collector& c = collector();

  if (!opts.traceFile.empty()) {
    std::ofstream os(opts.traceFile);
    EventTracer* t = activeTracer();
    if (!os || t == nullptr) {
      std::fprintf(stderr, "obs: cannot write trace file %s\n",
                   opts.traceFile.c_str());
      rc = 1;
    } else {
      t->writeChromeJson(os);
      std::fprintf(stderr, "obs: wrote %zu trace events to %s (%llu dropped)\n",
                   t->size(), opts.traceFile.c_str(),
                   static_cast<unsigned long long>(t->dropped()));
    }
  }

  if (!opts.reportJsonFile.empty()) {
    std::ofstream os(opts.reportJsonFile);
    if (!os) {
      std::fprintf(stderr, "obs: cannot write report file %s\n",
                   opts.reportJsonFile.c_str());
      rc = 1;
    } else {
      Json runs = Json::array();
      {
        std::lock_guard<std::mutex> lock(c.mu);
        for (Json& r : c.runs) runs.push(std::move(r));
        c.runs.clear();
      }
      reportEnvelope(std::move(runs)).write(os, 2);
      os << "\n";
      std::fprintf(stderr, "obs: wrote run report to %s\n",
                   opts.reportJsonFile.c_str());
    }
  }
  return rc;
}

}  // namespace dvmc::obs
