#include "obs/run_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace dvmc::obs {

namespace {

struct Collector {
  std::mutex mu;
  std::vector<Json> runs;
  std::unique_ptr<EventTracer> tracer;
  std::unique_ptr<ForensicsRecorder> forensics;
};

Collector& collector() {
  static Collector c;
  return c;
}

}  // namespace

ObsOptions& options() {
  static ObsOptions opts;
  return opts;
}

bool parsePositiveCount(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;  // 19 digits < 2^63
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;
  *out = v;
  return true;
}

std::string validateWritablePath(const std::string& path) {
  if (path.empty()) return "empty output path";
  // Append mode: verifies writability (creating the file if absent)
  // without clobbering existing content before finalizeObs truncates it.
  std::ofstream probe(path, std::ios::app);
  if (!probe) return "cannot open '" + path + "' for writing";
  return {};
}

void addObsFlags(CliParser& cli) {
  ObsOptions& opts = options();
  cli.path("--trace", &opts.traceFile, "FILE",
           "record a Chrome trace_event JSON event trace of the run");
  cli.count("--trace-capacity", &opts.traceCapacity, "N",
            "event-trace ring size in events");
  cli.path("--report-json", &opts.reportJsonFile, "FILE",
           "write every experiment result as a dvmc-run-report document");
  cli.path("--forensics", &opts.forensicsFile, "FILE",
           "capture a forensics bundle on every checker detection");
  cli.count("--forensics-window", &opts.forensicsWindow, "K",
            "trace events kept around each detection");
  cli.count("--sample-every", &opts.sampleEvery, "N",
            "snapshot telemetry counters every N cycles into the report");
  cli.count("--sample-capacity", &opts.sampleCapacity, "M",
            "telemetry ring size in rows");
  cli.path("--capture-trace", &opts.captureTraceFile, "FILE",
           "record the first run's commit-point memory-op trace (dvmc-trace)");
  cli.count("--capture-trace-limit", &opts.captureTraceLimit, "N",
            "max records before the capture is marked truncated");
  cli.flag("--capture-trace-spill", &opts.captureTraceSpill,
           "stream the capture to the --capture-trace file as settled v2 "
           "chunks during the run (bounded resident memory)");
}

int parseObsFlags(int argc, char** argv) {
  CliParser cli("obs", "observability flags");
  cli.lenient();
  addObsFlags(cli);
  return cli.parse(argc, argv);
}

EventTracer* activeTracer() {
  Collector& c = collector();
  if (options().traceFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.tracer) {
    c.tracer = std::make_unique<EventTracer>(options().traceCapacity);
  }
  return c.tracer.get();
}

ForensicsRecorder* activeForensics() {
  Collector& c = collector();
  if (options().forensicsFile.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(c.mu);
  if (!c.forensics) {
    ForensicsConfig cfg;
    cfg.windowEvents = options().forensicsWindow;
    c.forensics = std::make_unique<ForensicsRecorder>(cfg);
  }
  return c.forensics.get();
}

bool reportingActive() { return !options().reportJsonFile.empty(); }

void addReportRun(Json run) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.push_back(std::move(run));
}

std::size_t reportRunCount() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.runs.size();
}

void resetObs() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.runs.clear();
  c.tracer.reset();
  c.forensics.reset();
  options() = ObsOptions{};
}

Json reportEnvelope(Json runs) {
  Json root = Json::object();
  root.set("schema", Json::str(kReportSchemaName));
  root.set("version", Json::num(std::uint64_t{kReportSchemaVersion}));
  root.set("generator",
           Json::str("dvmc (Dynamic Verification of Memory Consistency)"));
  root.set("runs", std::move(runs));
  return root;
}

int finalizeObs() {
  int rc = 0;
  const ObsOptions& opts = options();
  Collector& c = collector();

  if (!opts.traceFile.empty()) {
    std::ofstream os(opts.traceFile);
    EventTracer* t = activeTracer();
    if (!os || t == nullptr) {
      std::fprintf(stderr, "obs: cannot write trace file %s\n",
                   opts.traceFile.c_str());
      rc = 1;
    } else {
      t->writeChromeJson(os);
      std::fprintf(stderr, "obs: wrote %zu trace events to %s (%llu dropped)\n",
                   t->size(), opts.traceFile.c_str(),
                   static_cast<unsigned long long>(t->dropped()));
    }
  }

  if (!opts.reportJsonFile.empty()) {
    std::ofstream os(opts.reportJsonFile);
    if (!os) {
      std::fprintf(stderr, "obs: cannot write report file %s\n",
                   opts.reportJsonFile.c_str());
      rc = 1;
    } else {
      Json runs = Json::array();
      {
        std::lock_guard<std::mutex> lock(c.mu);
        for (Json& r : c.runs) runs.push(std::move(r));
        c.runs.clear();
      }
      reportEnvelope(std::move(runs)).write(os, 2);
      os << "\n";
      std::fprintf(stderr, "obs: wrote run report to %s\n",
                   opts.reportJsonFile.c_str());
    }
  }

  if (!opts.forensicsFile.empty()) {
    std::ofstream os(opts.forensicsFile);
    ForensicsRecorder* f = activeForensics();
    if (!os || f == nullptr) {
      std::fprintf(stderr, "obs: cannot write forensics file %s\n",
                   opts.forensicsFile.c_str());
      rc = 1;
    } else {
      f->writeTo(os);
      std::fprintf(stderr,
                   "obs: wrote %zu forensics bundle(s) to %s (%llu dropped)\n",
                   f->bundleCount(), opts.forensicsFile.c_str(),
                   static_cast<unsigned long long>(f->droppedBundles()));
    }
  }
  return rc;
}

}  // namespace dvmc::obs
