// Fatal-signal crash handler (observability subsystem).
//
// A campaign shard that dies of SIGSEGV/SIGABRT/SIGBUS used to vanish
// without a trace: the --status-file kept saying "running" forever (so
// `dvmc_inspect watch` polled a corpse) and the JSONL log just stopped.
// This handler makes fatal death observable, best-effort and
// async-signal-cautiously:
//
//   * appends one final pre-rendered crash record to the --log-json
//     stream via raw write(2) on the sink's fd (every earlier line was
//     already per-line flushed, so the stream stays parseable) and
//     fdatasyncs it;
//   * overwrites the --status-file with a minimal dvmc-status snapshot
//     whose state is "crashed" (plus the signal number/name), built from
//     a prefix pre-rendered at arm time so the handler itself only runs
//     snprintf on integers, open(2), and write(2);
//   * then restores the previously-installed disposition and re-raises,
//     so sanitizer reports, core dumps, and the process's exit status are
//     exactly what they would have been without us.
//
// installCrashHandler() is idempotent and installed by obs::addObsFlags,
// so every binary on the shared CLI surface gets crash-surviving
// artifacts for free; the status path arms itself when --status-file
// creates the process StatusWriter.
#pragma once

namespace dvmc::obs {

/// Installs the fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
/// SIGILL), chaining to whatever was installed before. Idempotent.
void installCrashHandler();

/// Arms the status-snapshot side: on a fatal signal the handler writes a
/// dvmc-status snapshot with state "crashed" to `path`. Empty disarms.
/// Called automatically when --status-file creates the StatusWriter.
void setCrashStatusPath(const char* path);

/// Tests: true once installCrashHandler() ran.
bool crashHandlerInstalled();

}  // namespace dvmc::obs
