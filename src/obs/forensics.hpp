// Detection forensics flight recorder (observability subsystem).
//
// A checker detection used to be a single trace instant plus an aggregate
// counter; diagnosing *why* the Uniprocessor Ordering, Allowable
// Reordering, or epoch checkers tripped meant re-running under a debugger.
// The flight recorder captures a versioned JSON forensics bundle at the
// moment each ErrorSink detection fires:
//
//   * the detection itself (checker kind, cycle, node, address, message);
//   * the last-K TraceEvent window around the detection cycle (from the
//     run's tracer — forensics arms an internal tracer when --trace is
//     not given, so the window is always populated);
//   * a structured dump of every checker's state on the detecting node —
//     VC pending-store chains, per-optype max{OP} sequence registers,
//     the violating address's CET/MET epoch rows with their CRC hashes —
//     via dumpForensics(Json&, Addr) hooks on each checker;
//   * the violating address's recent operation history (the trace window
//     filtered to the address) and its cache-line state at every node;
//   * the active SafetyNet checkpoint epoch (oldest/newest checkpoint,
//     recovery window).
//
// The recorder itself only stores finished bundles: the System layer
// builds them (it owns the components), appends under a mutex (bench
// harnesses run perturbation seeds from a thread pool), and finalizeObs()
// writes the bundle file at the end of main. Bundle capture is bounded —
// the first `maxBundles` detections are kept, later ones only counted —
// because one fault typically raises a burst of downstream detections and
// the first bundle is the diagnostic one.
//
// Bundle schema ("dvmc-forensics", version 1):
//   { "schema": "dvmc-forensics", "version": 1, "generator": "...",
//     "droppedBundles": N, "bundles": [ {...}, ... ] }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace dvmc {

inline constexpr int kForensicsSchemaVersion = 1;
inline constexpr const char* kForensicsSchemaName = "dvmc-forensics";

struct ForensicsConfig {
  /// Trace events kept around each detection (the last-K window).
  std::size_t windowEvents = 256;
  /// Bundles kept per recorder; later detections are counted, not dumped.
  std::size_t maxBundles = 16;
};

class ForensicsRecorder {
 public:
  explicit ForensicsRecorder(ForensicsConfig cfg = {}) : cfg_(cfg) {}

  const ForensicsConfig& config() const { return cfg_; }

  /// Appends one finished bundle (thread-safe). Beyond maxBundles the
  /// bundle is dropped and only counted, keeping capture cost bounded
  /// under detection bursts.
  void addBundle(Json bundle);

  std::size_t bundleCount() const;
  std::uint64_t droppedBundles() const;
  void clear();

  /// The versioned envelope around every collected bundle.
  Json toJson() const;
  void writeTo(std::ostream& os) const;

 private:
  ForensicsConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Json> bundles_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dvmc
