#include "obs/timeseries.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dvmc {

const std::vector<std::string>& defaultSampleColumns() {
  static const std::vector<std::string> kColumns = {
      "net.totalBytes",        // interconnect load (Fig. 7 family)
      "net.informBytes",       // DVCC Inform-Epoch traffic
      "net.ckptBytes",         // SafetyNet logging/coordination traffic
      "cpu.retired",           // forward progress
      "l1.hit",                // locality proxy
      "cet.accessChecks",      // rule-1 checker work
      "cet.openEpochs",        // cache-side epoch occupancy (gauge)
      "met.informsProcessed",  // memory-side checker throughput
      "met.entries",           // MET occupancy (gauge)
      "ber.checkpoints",       // SafetyNet progress
  };
  return kColumns;
}

TimeSeries::TimeSeries(std::vector<std::string> columns, std::size_t capacity)
    : columns_(std::move(columns)),
      capacity_(std::max<std::size_t>(capacity, 1)),
      cycles_(capacity_, 0),
      rows_(capacity_ * columns_.size(), 0) {}

void TimeSeries::sample(Cycle now, const std::vector<std::uint64_t>& row) {
  DVMC_ASSERT(row.size() == columns_.size(), "sample row width mismatch");
  std::size_t slot;
  if (count_ < capacity_) {
    slot = (head_ + count_) % capacity_;
    ++count_;
  } else {
    slot = head_;  // overwrite the oldest row
    head_ = (head_ + 1) % capacity_;
  }
  cycles_[slot] = now;
  std::copy(row.begin(), row.end(), rows_.begin() + slot * columns_.size());
  ++recorded_;
}

void TimeSeries::clear() {
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

Json TimeSeries::toJson() const {
  Json columns = Json::array();
  for (const std::string& c : columns_) columns.push(Json::str(c));
  Json samples = Json::array();
  for (std::size_t i = 0; i < count_; ++i) {
    Json row = Json::array();
    row.push(Json::num(cycleAt(i)));
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      row.push(Json::num(valueAt(i, c)));
    }
    samples.push(std::move(row));
  }
  return Json::object()
      .set("columns", std::move(columns))
      .set("samples", std::move(samples))
      .set("dropped", Json::num(dropped()));
}

}  // namespace dvmc
