// Time-series telemetry (observability subsystem).
//
// End-of-run aggregates hide everything transient: a bandwidth spike, an
// epoch-rate collapse, a checker queue filling up right before a
// detection. The interval sampler snapshots a fixed set of counters and
// gauges every N cycles into a bounded ring of rows; the ring rides along
// in the RunResult and is exported inside the --report-json run report
// (and queried with `dvmc-inspect series --metric=NAME`).
//
// Rows are plain uint64 vectors over a column list fixed at start — no
// maps or string hashing per sample — and when the ring fills the oldest
// rows are overwritten (like the event tracer, the tail of a run is what
// detection analyses need); the dropped count keeps truncation visible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/json.hpp"

namespace dvmc {

/// Default sampled metrics: interconnect load, epoch/checker activity, and
/// SafetyNet progress — the signals the paper's Figures 3-9 aggregate.
/// Names must match the MetricSnapshot keys System::metricsSnapshot emits.
const std::vector<std::string>& defaultSampleColumns();

class TimeSeries {
 public:
  TimeSeries(std::vector<std::string> columns, std::size_t capacity);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - count_; }

  /// Appends one row; `row` must have columns().size() entries.
  void sample(Cycle now, const std::vector<std::uint64_t>& row);

  /// Oldest-first access.
  Cycle cycleAt(std::size_t i) const { return cycles_[index(i)]; }
  std::uint64_t valueAt(std::size_t i, std::size_t col) const {
    return rows_[index(i) * columns_.size() + col];
  }

  void clear();

  /// {"columns": [...], "samples": [[cycle, v0, v1, ...], ...],
  ///  "dropped": N} — samples oldest-first, each row led by its cycle.
  Json toJson() const;

 private:
  std::size_t index(std::size_t i) const {
    return (head_ + i) % capacity_;
  }

  std::vector<std::string> columns_;
  std::size_t capacity_;
  std::vector<Cycle> cycles_;          // ring, capacity_ entries
  std::vector<std::uint64_t> rows_;    // ring, capacity_ * columns rows
  std::size_t head_ = 0;               // oldest live row
  std::size_t count_ = 0;              // live rows
  std::uint64_t recorded_ = 0;         // total ever recorded
};

}  // namespace dvmc
