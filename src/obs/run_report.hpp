// Machine-readable run reports + shared observability CLI (obs subsystem).
//
// Every bench/example binary exposes the same two flags:
//
//   --trace=FILE        record an event trace of the run (Chrome
//                       trace_event JSON; open in chrome://tracing)
//   --report-json=FILE  write every experiment result as a versioned JSON
//                       run report (schema "dvmc-run-report", version 1)
//
// parseObsFlags strips them from argv (like parseJobsFlag). While a report
// file is armed, the system layer records each runSeeds/runOnce result
// into the process-global collector here; finalizeObs() writes both files
// at the end of main. The collector is mutex-guarded because bench
// harnesses launch perturbation runs from a thread pool.
//
// Report schema (validated by the CI json check):
//   { "schema": "dvmc-run-report", "version": 1,
//     "generator": "...", "runs": [ {...}, ... ] }
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dvmc::obs {

/// Current run-report schema version. Bump on any breaking layout change.
inline constexpr int kReportSchemaVersion = 1;
inline constexpr const char* kReportSchemaName = "dvmc-run-report";

struct ObsOptions {
  std::string traceFile;       // empty = tracing off
  std::string reportJsonFile;  // empty = no report
  std::size_t traceCapacity = 1u << 16;
};

ObsOptions& options();

/// Strips --trace[=FILE], --report-json[=FILE] and --trace-capacity=N from
/// argv and stores them in options(). Returns the new argc.
int parseObsFlags(int argc, char** argv);

/// The process-global tracer when --trace was given, else nullptr. Feed
/// this into SystemConfig::tracer (benchConfig does it automatically).
EventTracer* activeTracer();

/// True while a --report-json file is armed; the system layer uses this to
/// skip report serialization entirely on untracked runs.
bool reportingActive();

/// Appends one run entry (an arbitrary JSON object, typically built by
/// runner.cpp's serializers) to the global report. Thread-safe.
void addReportRun(Json run);

/// Number of collected report entries (tests).
std::size_t reportRunCount();

/// Drops all collected entries and disarms both files (tests).
void resetObs();

/// Writes the armed trace and report files. Returns 0 on success, 1 if a
/// file could not be written. Call once at the end of main.
int finalizeObs();

/// Builds the versioned report envelope around `runs` (exposed for tests).
Json reportEnvelope(Json runs);

}  // namespace dvmc::obs
