// Machine-readable run reports + shared observability CLI (obs subsystem).
//
// Every bench/example binary exposes the same observability flags:
//
//   --trace=FILE          record an event trace of the run (Chrome
//                         trace_event JSON; open in chrome://tracing)
//   --trace-capacity=N    trace ring size in events (default 65536)
//   --report-json=FILE    write every experiment result as a versioned
//                         JSON run report ("dvmc-run-report", version 2)
//   --forensics=FILE      capture a forensics bundle on every checker
//                         detection ("dvmc-forensics", version 1)
//   --forensics-window=K  trace events kept around each detection
//   --sample-every=N      snapshot telemetry counters every N cycles into
//                         the run report's "series" section
//   --sample-capacity=M   telemetry ring size in rows (default 4096)
//   --capture-trace=FILE  record the commit-point memory-op trace of the
//                         first run/seed ("dvmc-trace" binary, version 1)
//                         for the offline consistency oracle (dvmc_oracle)
//   --capture-trace-limit=N  max records before the capture is marked
//                         truncated (default 4194304)
//   --capture-trace-spill stream the capture to the --capture-trace file
//                         as settled v2 chunks during the run instead of
//                         holding the whole capture resident
//   --log-level=LEVEL     minimum level for structured log records
//                         (debug|info|warn|error|off; default info)
//   --log-json=FILE       stream structured log records as JSONL
//                         ("dvmc-log", one flushed object per line)
//   --profile-out=FILE    write the span profiler's collapsed stacks
//                         (speedscope / flamegraph.pl compatible)
//   --status-file=FILE    atomically rewrite a live dvmc-status JSON
//                         snapshot during runSeeds / campaign runs
//
// The group is registered on the shared CliParser via addObsFlags (see
// common/cli.hpp); every binary's --help renders the same table, and
// docs/observability.md embeds it via --help-markdown. Values are
// validated eagerly: a zero or non-numeric count, or an unwritable output
// path, is a clear error on stderr and exit(2) — not a silent no-op
// discovered after an hour-long run. While a report file is armed, the
// system layer records each runSeeds/runOnce result into the
// process-global collector here; finalizeObs() writes every armed file at
// the end of main. The collector is mutex-guarded because bench harnesses
// launch perturbation runs from a thread pool.
//
// Report schema (validated by the CI json check):
//   { "schema": "dvmc-run-report", "version": 2,
//     "generator": "...", "runs": [ {...}, ... ],
//     "resource": {...}, "profile": {...} }
// Version 2 adds the "resource" section (peak RSS + CPU time from the
// in-process sampler) and, when the span profiler recorded any frames,
// the "profile" aggregation tree; "generator" names the exact build
// (git describe + build type + sanitizer config).
#pragma once

#include <string>
#include <string_view>

#include "common/cli.hpp"
#include "common/types.hpp"
#include "obs/forensics.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dvmc::obs {

/// Current run-report schema version. Bump on any breaking layout change.
/// v2: "resource" + "profile" sections, build-identity "generator".
inline constexpr int kReportSchemaVersion = 2;
inline constexpr const char* kReportSchemaName = "dvmc-run-report";

struct ObsOptions {
  std::string traceFile;       // empty = tracing off
  std::string reportJsonFile;  // empty = no report
  std::string forensicsFile;   // empty = no forensics capture
  std::string captureTraceFile;  // empty = commit-trace capture off
  std::size_t traceCapacity = 1u << 16;
  std::size_t forensicsWindow = 256;   // last-K events per bundle
  Cycle sampleEvery = 0;               // 0 = time-series sampling off
  std::size_t sampleCapacity = 4096;   // telemetry ring rows
  std::size_t captureTraceLimit = std::size_t{1} << 22;  // records
  /// With --capture-trace FILE: stream settled chunks to FILE during the
  /// run as a chunked v2 container (keepInMemory off) instead of holding
  /// the whole capture resident and writing a v1 file at the end.
  bool captureTraceSpill = false;
  std::string logLevel = "info";  // minimum structured-log level
  std::string logJsonFile;        // empty = JSONL log sink off
  std::string profileOutFile;     // empty = collapsed-stack export off
  std::string statusFile;         // empty = live status surface off
};

ObsOptions& options();

/// Registers the observability flag group on a CliParser, targeting
/// options(). Every binary that builds its own parser calls this (plus
/// addRunnerFlags / bench::addBenchFlags) so the flag set and the --help
/// table stay identical across the fleet.
void addObsFlags(CliParser& cli);

/// Legacy strip-what-you-know entry point: parses ONLY the observability
/// flags leniently (unknown arguments pass through for a later stage),
/// validates them (exit(2) on a zero/non-numeric count or an unwritable
/// path), and stores them in options(). Returns the new argc. New code
/// should build a strict CliParser and call addObsFlags instead.
int parseObsFlags(int argc, char** argv);

/// Strict positive-count parser for flag values: accepts decimal digits
/// only, rejects empty, non-numeric, zero, and overflowing input.
/// (Exposed for tests; parseObsFlags uses it for every numeric flag.)
bool parsePositiveCount(std::string_view s, std::uint64_t* out);

/// Returns an empty string when `path` can be opened for writing (the
/// probe opens in append mode, so an existing file's content is kept
/// until finalizeObs truncates it), else a human-readable error.
std::string validateWritablePath(const std::string& path);

/// The process-global tracer when --trace was given, else nullptr. Feed
/// this into SystemConfig::tracer (benchConfig does it automatically).
EventTracer* activeTracer();

/// The process-global forensics recorder when --forensics was given, else
/// nullptr. Feed this into SystemConfig::forensics (benchConfig does it
/// automatically). Thread-safe: unlike the tracer, every perturbation
/// seed may share it.
ForensicsRecorder* activeForensics();

/// True while a --report-json file is armed; the system layer uses this to
/// skip report serialization entirely on untracked runs.
bool reportingActive();

/// Appends one run entry (an arbitrary JSON object, typically built by
/// runner.cpp's serializers) to the global report. Thread-safe.
void addReportRun(Json run);

/// Number of collected report entries (tests).
std::size_t reportRunCount();

/// Drops all collected entries and disarms every file (tests).
void resetObs();

/// Writes the armed trace, report, and forensics files. Returns 0 on
/// success, 1 if a file could not be written. Call once at the end of
/// main.
int finalizeObs();

/// Builds the versioned report envelope around `runs` (exposed for tests).
Json reportEnvelope(Json runs);

}  // namespace dvmc::obs
