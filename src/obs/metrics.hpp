// Typed metric registry (observability subsystem).
//
// Components register every metric exactly once at construction and keep
// the returned handle; the hot path is then a plain `++*slot` with no map
// lookup or string hashing (the string-keyed StatSet it replaces paid an
// rb-tree walk per event). Three metric types:
//
//   * Counter   — monotonically increasing event count.
//   * Gauge     — instantaneous level with a tracked peak (high-water mark).
//   * Histogram — power-of-two-bucket latency/size distribution.
//
// Each component owns one MetricSet (its slice of the registry). The
// system layer collects per-component sets into a MetricSnapshot — a
// name-sorted value map with optional per-node scoping ("node3/" prefixes)
// — and snapshots merge deterministically: runSeeds sums per-seed
// snapshots in seed order, so parallel experiment fan-out stays
// bit-identical to a sequential run.
//
// Handle lifetime: handles borrow slots owned by the MetricSet; a handle
// must not outlive its set. Slots live in deques, so registering more
// metrics never invalidates existing handles.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace dvmc {

class MetricSet;

/// Cheap counter handle: one 64-bit add on the hot path.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) { *v_ += by; }
  std::uint64_t value() const { return *v_; }

 private:
  friend class MetricSet;
  explicit Counter(std::uint64_t* v) : v_(v) {}
  std::uint64_t* v_ = nullptr;
};

/// Level handle; tracks the peak seen so far alongside the current value.
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t v) {
    *v_ = v;
    if (v > *peak_) *peak_ = v;
  }
  std::uint64_t value() const { return *v_; }
  std::uint64_t peak() const { return *peak_; }

 private:
  friend class MetricSet;
  Gauge(std::uint64_t* v, std::uint64_t* peak) : v_(v), peak_(peak) {}
  std::uint64_t* v_ = nullptr;
  std::uint64_t* peak_ = nullptr;
};

/// Distribution handle over power-of-two buckets (LatencyHistogram slot).
class Histogram {
 public:
  Histogram() = default;
  void add(std::uint64_t v) { h_->add(v); }
  const LatencyHistogram& dist() const { return *h_; }

 private:
  friend class MetricSet;
  explicit Histogram(LatencyHistogram* h) : h_(h) {}
  LatencyHistogram* h_ = nullptr;
};

/// A name-sorted, mergeable snapshot of metric values. Gauges contribute
/// their current value under their name and the peak under "<name>.peak";
/// histograms are carried whole so merged distributions stay exact.
struct MetricSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, LatencyHistogram> histograms;

  /// Element-wise sum / distribution merge. Associative and (for the
  /// uint64 sums) order-independent, so any merge order over the same run
  /// set yields bit-identical results.
  void merge(const MetricSnapshot& o);

  std::uint64_t value(std::string_view name) const {
    auto it = counters.find(std::string(name));
    return it == counters.end() ? 0 : it->second;
  }

  bool operator==(const MetricSnapshot& o) const;
};

/// One component's slice of the metric registry: registration at
/// construction, cheap handles afterwards, slow-path introspection for
/// tests and reports. Register each name once; re-registering the same
/// name returns a handle to the existing slot.
class MetricSet {
 public:
  MetricSet() = default;
  MetricSet(const MetricSet&) = delete;
  MetricSet& operator=(const MetricSet&) = delete;

  Counter counter(std::string name);
  Gauge gauge(std::string name);
  Histogram histogram(std::string name);

  /// Slow-path lookup by full metric name (tests). Gauges resolve to the
  /// current value, "<name>.peak" to the peak; histograms to their count.
  /// Unknown names read as 0, mirroring StatSet::get.
  std::uint64_t get(std::string_view name) const;

  /// All scalar values, name-sorted. Built as one flat vector (a single
  /// allocation plus a sort) rather than a per-call rb-tree; the
  /// stats-report aggregator consumes this once per report.
  std::vector<std::pair<std::string, std::uint64_t>> all() const;

  /// Pointer to the scalar slot backing `name` (counter value, gauge
  /// value, or "<name>.peak"); nullptr when unknown. Slot addresses are
  /// stable for the life of the set, so samplers can resolve names once
  /// and read raw pointers every tick instead of snapshotting the world.
  const std::uint64_t* findScalar(std::string_view name) const;

  const LatencyHistogram* findHistogram(std::string_view name) const;

  /// Adds this set's values into `out`, prefixing names with `prefix`
  /// (e.g. "node3/" for per-node scoping; empty for aggregate).
  void snapshotInto(MetricSnapshot& out, const std::string& prefix = {}) const;

 private:
  struct CounterSlot {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSlot {
    std::string name;
    std::uint64_t value = 0;
    std::uint64_t peak = 0;
  };
  struct HistoSlot {
    std::string name;
    LatencyHistogram hist;
  };

  // Deques: stable slot addresses under growth (handles point into these).
  std::deque<CounterSlot> counters_;
  std::deque<GaugeSlot> gauges_;
  std::deque<HistoSlot> histos_;
};

}  // namespace dvmc
