#include "obs/metrics.hpp"

#include <algorithm>

namespace dvmc {

Counter MetricSet::counter(std::string name) {
  for (CounterSlot& s : counters_) {
    if (s.name == name) return Counter(&s.value);
  }
  counters_.push_back(CounterSlot{std::move(name), 0});
  return Counter(&counters_.back().value);
}

Gauge MetricSet::gauge(std::string name) {
  for (GaugeSlot& s : gauges_) {
    if (s.name == name) return Gauge(&s.value, &s.peak);
  }
  gauges_.push_back(GaugeSlot{std::move(name), 0, 0});
  return Gauge(&gauges_.back().value, &gauges_.back().peak);
}

Histogram MetricSet::histogram(std::string name) {
  for (HistoSlot& s : histos_) {
    if (s.name == name) return Histogram(&s.hist);
  }
  histos_.push_back(HistoSlot{std::move(name), {}});
  return Histogram(&histos_.back().hist);
}

std::uint64_t MetricSet::get(std::string_view name) const {
  for (const CounterSlot& s : counters_) {
    if (s.name == name) return s.value;
  }
  for (const GaugeSlot& s : gauges_) {
    if (s.name == name) return s.value;
    if (name.size() == s.name.size() + 5 && name.substr(0, s.name.size()) == s.name &&
        name.substr(s.name.size()) == ".peak") {
      return s.peak;
    }
  }
  for (const HistoSlot& s : histos_) {
    if (s.name == name) return s.hist.count();
  }
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricSet::all() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size() + 2 * gauges_.size() + 2 * histos_.size());
  for (const CounterSlot& s : counters_) out.emplace_back(s.name, s.value);
  for (const GaugeSlot& s : gauges_) {
    out.emplace_back(s.name, s.value);
    out.emplace_back(s.name + ".peak", s.peak);
  }
  for (const HistoSlot& s : histos_) {
    out.emplace_back(s.name + ".count", s.hist.count());
    out.emplace_back(s.name + ".max", s.hist.maxValue());
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::uint64_t* MetricSet::findScalar(std::string_view name) const {
  for (const CounterSlot& s : counters_) {
    if (s.name == name) return &s.value;
  }
  for (const GaugeSlot& s : gauges_) {
    if (s.name == name) return &s.value;
    if (name.size() == s.name.size() + 5 &&
        name.substr(0, s.name.size()) == s.name &&
        name.substr(s.name.size()) == ".peak") {
      return &s.peak;
    }
  }
  return nullptr;
}

const LatencyHistogram* MetricSet::findHistogram(std::string_view name) const {
  for (const HistoSlot& s : histos_) {
    if (s.name == name) return &s.hist;
  }
  return nullptr;
}

void MetricSet::snapshotInto(MetricSnapshot& out,
                             const std::string& prefix) const {
  for (const CounterSlot& s : counters_) out.counters[prefix + s.name] += s.value;
  for (const GaugeSlot& s : gauges_) {
    out.counters[prefix + s.name] += s.value;
    out.counters[prefix + s.name + ".peak"] += s.peak;
  }
  for (const HistoSlot& s : histos_) {
    out.histograms[prefix + s.name].merge(s.hist);
  }
}

void MetricSnapshot::merge(const MetricSnapshot& o) {
  for (const auto& [name, value] : o.counters) counters[name] += value;
  for (const auto& [name, hist] : o.histograms) histograms[name].merge(hist);
}

bool MetricSnapshot::operator==(const MetricSnapshot& o) const {
  if (counters != o.counters) return false;
  if (histograms.size() != o.histograms.size()) return false;
  auto it = histograms.begin();
  auto jt = o.histograms.begin();
  for (; it != histograms.end(); ++it, ++jt) {
    if (it->first != jt->first || !(it->second == jt->second)) return false;
  }
  return true;
}

}  // namespace dvmc
