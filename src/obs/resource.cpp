#include "obs/resource.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "common/version.hpp"
#include "obs/crash_handler.hpp"
#include "obs/log.hpp"
#include "obs/run_report.hpp"

namespace dvmc::obs {

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t unixMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t timevalMs(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1000u +
         static_cast<std::uint64_t>(tv.tv_usec) / 1000u;
}

const std::vector<std::string>& resourceColumns() {
  static const std::vector<std::string> cols = {
      "rss_bytes", "peak_rss_bytes", "user_cpu_ms", "sys_cpu_ms"};
  return cols;
}

}  // namespace

Json ResourceUsage::toJson() const {
  Json j = Json::object();
  j.set("rssBytes", Json::num(rssBytes));
  j.set("peakRssBytes", Json::num(peakRssBytes));
  j.set("userCpuMs", Json::num(userCpuMs));
  j.set("sysCpuMs", Json::num(sysCpuMs));
  return j;
}

ResourceUsage sampleResourceUsage() {
  ResourceUsage u;
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is kilobytes on Linux.
    u.peakRssBytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
    u.userCpuMs = timevalMs(ru.ru_utime);
    u.sysCpuMs = timevalMs(ru.ru_stime);
  }
  if (std::ifstream statm("/proc/self/statm"); statm) {
    std::uint64_t sizePages = 0, rssPages = 0;
    if (statm >> sizePages >> rssPages) {
      const long page = sysconf(_SC_PAGESIZE);
      u.rssBytes = rssPages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
    }
  }
  if (u.rssBytes == 0) u.rssBytes = u.peakRssBytes;  // no procfs fallback
  // ru_maxrss only updates on certain kernel events and can lag the live
  // statm reading; keep the invariant peak >= current.
  if (u.peakRssBytes < u.rssBytes) u.peakRssBytes = u.rssBytes;
  return u;
}

ResourceSeries::ResourceSeries(std::size_t capacity)
    : series_(resourceColumns(), capacity == 0 ? 1 : capacity) {}

ResourceUsage ResourceSeries::sample(std::uint64_t now) {
  const ResourceUsage u = sampleResourceUsage();
  series_.sample(now, {u.rssBytes, u.peakRssBytes, u.userCpuMs, u.sysCpuMs});
  if (u.peakRssBytes > peakRssBytes_) peakRssBytes_ = u.peakRssBytes;
  return u;
}

Json ResourceSeries::toJson() const {
  Json j = series_.toJson();
  j.set("peakRssBytes", Json::num(peakRssBytes_));
  return j;
}

StatusWriter::StatusWriter(std::string path, std::uint64_t minIntervalMs)
    : path_(std::move(path)), minIntervalMs_(minIntervalMs) {}

bool StatusWriter::update(const Json& body, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t now = steadyMs();
  if (!force && lastWriteMs_ != 0 && now - lastWriteMs_ < minIntervalMs_) {
    return false;
  }

  Json root = Json::object();
  root.set("schema", Json::str(kStatusSchemaName));
  root.set("version", Json::num(std::uint64_t{kStatusSchemaVersion}));
  root.set("generator", Json::str(versionString()));
  root.set("updatedUnixMs", Json::num(unixMs()));
  root.set("resource", sampleResourceUsage().toJson());
  if (body.isObject()) {
    for (const auto& [key, value] : body.members()) root.set(key, value);
  }

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      logError("obs", "cannot write status snapshot",
               Json::object().set("file", Json::str(tmp)));
      return false;
    }
    root.write(os, 2);
    os << "\n";
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    logError("obs", "cannot publish status snapshot",
             Json::object().set("file", Json::str(path_)));
    return false;
  }
  lastWriteMs_ = now;
  ++writes_;
  return true;
}

std::uint64_t StatusWriter::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

namespace {

struct StatusHolder {
  std::mutex mu;
  std::unique_ptr<StatusWriter> writer;
};

StatusHolder& statusHolder() {
  static StatusHolder h;
  return h;
}

}  // namespace

StatusWriter* activeStatusWriter() {
  if (options().statusFile.empty()) return nullptr;
  StatusHolder& h = statusHolder();
  std::lock_guard<std::mutex> lock(h.mu);
  if (!h.writer) {
    h.writer = std::make_unique<StatusWriter>(options().statusFile);
    // Arm the fatal-signal path: if this process dies of SIGSEGV/SIGABRT/
    // SIGBUS the crash handler finalizes this snapshot as state "crashed"
    // instead of leaving a stale "running" file behind.
    setCrashStatusPath(h.writer->path().c_str());
  }
  return h.writer.get();
}

void resetStatusWriterForTests() {
  StatusHolder& h = statusHolder();
  std::lock_guard<std::mutex> lock(h.mu);
  h.writer.reset();
  setCrashStatusPath(nullptr);
}

}  // namespace dvmc::obs
