#include "obs/journal.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/version.hpp"

namespace dvmc::obs {

namespace {

std::uint64_t nowUnixMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool validateMeta(const Json& meta, std::string* err) {
  const Json* schema = meta.find("schema");
  if (schema == nullptr || schema->asString() != kJournalSchemaName) {
    if (err != nullptr) *err = "not a dvmc-journal file";
    return false;
  }
  const Json* version = meta.find("version");
  if (version == nullptr ||
      version->asUint() > static_cast<std::uint64_t>(kJournalSchemaVersion)) {
    if (err != nullptr) {
      *err = "journal version is newer than this build understands";
    }
    return false;
  }
  return true;
}

}  // namespace

std::optional<JournalContents> readJournal(const std::string& path,
                                           std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) *err = "cannot open '" + path + "'";
    return std::nullopt;
  }
  JournalContents out;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::string perr;
    std::optional<Json> parsed = Json::parse(line, &perr);
    if (!parsed) {
      if (lineNo == 1) {
        if (err != nullptr) *err = path + ":1: " + perr;
        return std::nullopt;
      }
      // A torn final line is the one legal corruption (the writer died
      // mid-append, before its fsync); drop it and keep every complete
      // record. A torn line anywhere else would have been followed by a
      // successful fsynced append, which cannot happen.
      break;
    }
    if (lineNo == 1) {
      if (!validateMeta(*parsed, err)) return std::nullopt;
      out.meta = std::move(*parsed);
      continue;
    }
    out.records.push_back(std::move(*parsed));
  }
  if (lineNo == 0) {
    if (err != nullptr) *err = "'" + path + "' is empty";
    return std::nullopt;
  }
  return out;
}

bool JournalWriter::open(const std::string& path, const Json& meta,
                         const std::vector<std::string>& mustMatch,
                         std::string* err) {
  close();

  // Existing non-empty file: validate before appending to it. A torn
  // final line (the previous writer died mid-append) is trimmed first —
  // appending after it would weld the fragment onto the next record, and
  // readJournal would then drop everything from the fragment on.
  bool fresh = true;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe && probe.peek() != std::ifstream::traits_type::eof()) {
      std::ostringstream ss;
      ss << probe.rdbuf();
      const std::string contents = ss.str();
      const std::size_t lastNl = contents.rfind('\n');
      std::error_code ec;
      if (lastNl == std::string::npos) {
        // Only a torn meta line: nothing durable was ever written.
        std::filesystem::resize_file(path, 0, ec);
      } else if (lastNl + 1 != contents.size()) {
        std::filesystem::resize_file(path, lastNl + 1, ec);
        if (ec) {
          if (err != nullptr) {
            *err = "cannot trim torn record in '" + path + "'";
          }
          return false;
        }
      }
      fresh = lastNl == std::string::npos;
    }
    if (!fresh) {
      std::optional<JournalContents> existing = readJournal(path, err);
      if (!existing) return false;
      for (const std::string& key : mustMatch) {
        const Json* have = existing->meta.find(key);
        const Json* want = meta.find(key);
        const std::string haveText = have != nullptr ? have->dump() : "null";
        const std::string wantText = want != nullptr ? want->dump() : "null";
        if (haveText != wantText) {
          if (err != nullptr) {
            *err = "journal '" + path + "' was written by a different " +
                   "campaign: " + key + " is " + haveText + ", expected " +
                   wantText;
          }
          return false;
        }
      }
      appended_ = existing->records.size();
    }
  }

  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    if (err != nullptr) *err = "cannot open '" + path + "' for append";
    return false;
  }
  path_ = path;
  if (fresh) {
    Json envelope = Json::object();
    envelope.set("schema", Json::str(kJournalSchemaName));
    envelope.set("version", Json::num(std::uint64_t{kJournalSchemaVersion}));
    envelope.set("generator", Json::str(versionString()));
    envelope.set("startedUnixMs", Json::num(nowUnixMs()));
    if (meta.isObject()) {
      for (const auto& [key, value] : meta.members()) {
        envelope.set(key, value);
      }
    }
    const std::string line = envelope.dump();
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    fsync(fileno(file_));
  }
  return true;
}

bool JournalWriter::append(const Json& record) {
  if (file_ == nullptr) return false;
  const std::string line = record.dump();
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  std::fputc('\n', file_);
  if (std::fflush(file_) != 0) return false;
  // The durability contract: the record is on disk before append returns,
  // so a SIGKILL between configs never loses a completed one.
  fsync(fileno(file_));
  ++appended_;
  return true;
}

void JournalWriter::close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    fsync(fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
}

}  // namespace dvmc::obs
