#include "obs/spans.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/trace.hpp"

namespace dvmc::obs {

namespace {

std::uint64_t wallNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t cpuNowNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

/// One completed frame buffered for the event tracer (phase track).
struct PhaseEvent {
  const char* name;
  std::uint16_t lane;
  std::uint64_t beginNs;
  std::uint64_t endNs;
};

constexpr std::size_t kMaxPhaseEvents = 1u << 16;

struct ProfilerState {
  mutable std::mutex mu;
  std::vector<SpanProfiler::Node> nodes;
  /// Per-node child list for path lookup (name compared by content: the
  /// same literal may have distinct addresses across TUs).
  std::vector<std::vector<int>> children;
  std::vector<int> roots;
  std::vector<PhaseEvent> phases;
  std::uint64_t phasesDropped = 0;
  std::uint64_t firstWallNs = 0;  // phase-track epoch
  std::vector<std::thread::id> lanes;  // thread id -> phase lane index
};

ProfilerState& state() {
  static ProfilerState s;
  return s;
}

thread_local std::vector<int> t_stack;

int findChild(const ProfilerState& s, const std::vector<int>& ids,
              const char* name) {
  for (int id : ids) {
    if (std::strcmp(s.nodes[static_cast<std::size_t>(id)].name, name) == 0) {
      return id;
    }
  }
  return -1;
}

}  // namespace

SpanProfiler& SpanProfiler::instance() {
  static SpanProfiler p;
  return p;
}

int SpanProfiler::beginSpan(const char* name) {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const int parent = t_stack.empty() ? -1 : t_stack.back();
  int id = findChild(
      s, parent < 0 ? s.roots : s.children[static_cast<std::size_t>(parent)],
      name);
  if (id < 0) {
    id = static_cast<int>(s.nodes.size());
    Node n;
    n.name = name;
    n.parent = parent;
    s.nodes.push_back(n);
    s.children.emplace_back();  // may reallocate: re-index below, no refs
    if (parent < 0) {
      s.roots.push_back(id);
    } else {
      s.children[static_cast<std::size_t>(parent)].push_back(id);
    }
  }
  t_stack.push_back(id);
  return id;
}

void SpanProfiler::endSpan(int node, std::uint64_t wallNs, std::uint64_t cpuNs,
                           std::uint64_t wallStartNs) {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!t_stack.empty() && t_stack.back() == node) t_stack.pop_back();
  Node& n = s.nodes[static_cast<std::size_t>(node)];
  n.count += 1;
  n.wallNs += wallNs;
  n.cpuNs += cpuNs;
  if (s.firstWallNs == 0 || wallStartNs < s.firstWallNs) {
    s.firstWallNs = wallStartNs;
  }
  if (s.phases.size() >= kMaxPhaseEvents) {
    ++s.phasesDropped;
    return;
  }
  const std::thread::id self = std::this_thread::get_id();
  std::size_t lane = 0;
  for (; lane < s.lanes.size(); ++lane) {
    if (s.lanes[lane] == self) break;
  }
  if (lane == s.lanes.size()) s.lanes.push_back(self);
  s.phases.push_back(PhaseEvent{n.name, static_cast<std::uint16_t>(lane),
                                wallStartNs, wallStartNs + wallNs});
}

bool SpanProfiler::empty() const {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.nodes.empty();
}

std::vector<SpanProfiler::Node> SpanProfiler::nodes() const {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.nodes;
}

Json SpanProfiler::toJson() const {
  const std::vector<Node> all = nodes();
  // Children arrays are rebuilt from the parent links so the serializer
  // works off the same snapshot it renders.
  std::vector<std::vector<int>> kids(all.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      kids[static_cast<std::size_t>(all[i].parent)].push_back(
          static_cast<int>(i));
    }
  }
  // Recursive build without recursion: children indices always follow
  // their parent, so building back-to-front completes every subtree first.
  std::vector<Json> built(all.size());
  for (std::size_t i = all.size(); i-- > 0;) {
    const Node& n = all[i];
    Json j = Json::object();
    j.set("name", Json::str(n.name));
    j.set("count", Json::num(n.count));
    j.set("wallNs", Json::num(n.wallNs));
    j.set("cpuNs", Json::num(n.cpuNs));
    if (!kids[i].empty()) {
      Json c = Json::array();
      for (int k : kids[i]) c.push(std::move(built[static_cast<std::size_t>(k)]));
      j.set("children", std::move(c));
    }
    built[i] = std::move(j);
  }
  Json spans = Json::array();
  for (int r : roots) spans.push(std::move(built[static_cast<std::size_t>(r)]));
  return Json::object().set("spans", std::move(spans));
}

void SpanProfiler::writeCollapsed(std::ostream& os) const {
  const std::vector<Node> all = nodes();
  for (std::size_t i = 0; i < all.size(); ++i) {
    // Each line charges the node's *self* wall time so stack totals are
    // not double-counted when a flamegraph sums children into parents.
    std::uint64_t childWall = 0;
    for (const Node& c : all) {
      if (c.parent == static_cast<int>(i)) childWall += c.wallNs;
    }
    const std::uint64_t selfNs =
        all[i].wallNs > childWall ? all[i].wallNs - childWall : 0;
    const std::uint64_t selfUs = selfNs / 1000;
    if (selfUs == 0) continue;
    std::vector<const char*> path;
    for (int k = static_cast<int>(i); k >= 0;
         k = all[static_cast<std::size_t>(k)].parent) {
      path.push_back(all[static_cast<std::size_t>(k)].name);
    }
    for (std::size_t p = path.size(); p-- > 0;) {
      os << path[p];
      if (p != 0) os << ';';
    }
    os << ' ' << selfUs << '\n';
  }
}

std::string SpanProfiler::collapsedStacks() const {
  std::ostringstream os;
  writeCollapsed(os);
  return os.str();
}

void SpanProfiler::resetForTests() {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.nodes.clear();
  s.children.clear();
  s.roots.clear();
  s.phases.clear();
  s.phasesDropped = 0;
  s.firstWallNs = 0;
  s.lanes.clear();
  t_stack.clear();
}

ScopedSpan::ScopedSpan(const char* name)
    : node_(SpanProfiler::instance().beginSpan(name)),
      wallStart_(wallNowNs()),
      cpuStart_(cpuNowNs()) {}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t wall = wallNowNs() - wallStart_;
  const std::uint64_t cpuNow = cpuNowNs();
  const std::uint64_t cpu = cpuNow > cpuStart_ ? cpuNow - cpuStart_ : 0;
  SpanProfiler::instance().endSpan(node_, wall, cpu, wallStart_);
}

/// Replays every buffered phase span into `tracer` as TraceKind::kPhase,
/// timestamped in microseconds since the first span; tid = 0xF000 + the
/// span's thread lane, well clear of real node ids. Called once by
/// finalizeObs (single-threaded) so the tracer is never written
/// concurrently with a live run.
void flushPhaseSpans(EventTracer& tracer) {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const PhaseEvent& p : s.phases) {
    const std::uint64_t begin = (p.beginNs - s.firstWallNs) / 1000;
    const std::uint64_t end = (p.endNs - s.firstWallNs) / 1000;
    tracer.span(begin, end, TraceKind::kPhase, p.name,
                static_cast<NodeId>(0xF000u + p.lane));
  }
  s.phases.clear();
}

}  // namespace dvmc::obs
