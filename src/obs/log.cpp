#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>

#include "common/version.hpp"

namespace dvmc::obs {

namespace {

std::uint64_t nowUnixMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kRingCapacity = 1024;

struct LoggerState {
  std::atomic<LogLevel> level{LogLevel::kInfo};
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<int> jsonlFd{-1};  // crash handler's async-signal-safe view
  mutable std::mutex mu;
  std::deque<LogRecord> ring;  // newest at the back
  std::FILE* jsonl = nullptr;
  std::string jsonlPath;
};

LoggerState& state() {
  static LoggerState s;
  return s;
}

}  // namespace

const char* logLevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parseLogLevel(std::string_view s, LogLevel* out) {
  for (LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError, LogLevel::kOff}) {
    if (s == logLevelName(l)) {
      *out = l;
      return true;
    }
  }
  return false;
}

Json LogRecord::toJson() const {
  Json j = Json::object();
  j.set("ts", Json::num(unixMs));
  j.set("level", Json::str(logLevelName(level)));
  j.set("component", Json::str(component));
  j.set("message", Json::str(message));
  if (fields.isObject()) j.set("fields", fields);
  return j;
}

Logger::Logger() = default;

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::setLevel(LogLevel l) {
  state().level.store(l, std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return state().level.load(std::memory_order_relaxed);
}

bool Logger::openJsonl(const std::string& path) {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.jsonl != nullptr) {
    std::fclose(s.jsonl);
    s.jsonl = nullptr;
  }
  s.jsonl = std::fopen(path.c_str(), "w");
  if (s.jsonl == nullptr) {
    std::fprintf(stderr, "obs: cannot open log file %s\n", path.c_str());
    s.jsonlFd.store(-1, std::memory_order_release);
    return false;
  }
  s.jsonlPath = path;
  s.jsonlFd.store(fileno(s.jsonl), std::memory_order_release);
  // Meta line: consumers (dvmc_inspect) identify a JSONL log stream by
  // this first-line schema stamp.
  Json meta = Json::object();
  meta.set("schema", Json::str(kLogSchemaName));
  meta.set("version", Json::num(std::uint64_t{kLogSchemaVersion}));
  meta.set("generator", Json::str(versionString()));
  meta.set("startedUnixMs", Json::num(nowUnixMs()));
  const std::string line = meta.dump();
  std::fwrite(line.data(), 1, line.size(), s.jsonl);
  std::fputc('\n', s.jsonl);
  std::fflush(s.jsonl);
  return true;
}

void Logger::closeJsonl() {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.jsonlFd.store(-1, std::memory_order_release);
  if (s.jsonl != nullptr) {
    std::fclose(s.jsonl);
    s.jsonl = nullptr;
  }
  s.jsonlPath.clear();
}

int Logger::jsonlFdForCrash() const {
  return state().jsonlFd.load(std::memory_order_acquire);
}

bool Logger::jsonlArmed() const {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.jsonl != nullptr;
}

void Logger::log(LogLevel l, const char* component, std::string message,
                 Json fields) {
  if (!enabled(l)) return;
  LogRecord rec;
  rec.unixMs = nowUnixMs();
  rec.level = l;
  rec.component = component;
  rec.message = std::move(message);
  rec.fields = std::move(fields);

  // Human-readable stderr line: "[warn] campaign: message k=v k=v".
  std::string text = "[";
  text += logLevelName(l);
  text += "] ";
  text += rec.component;
  text += ": ";
  text += rec.message;
  if (rec.fields.isObject()) {
    for (const auto& [key, value] : rec.fields.members()) {
      text += ' ';
      text += key;
      text += '=';
      text += value.isString() ? value.asString() : value.dump();
    }
  }
  text += '\n';

  LoggerState& s = state();
  s.recorded.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mu);
  std::fwrite(text.data(), 1, text.size(), stderr);
  if (s.jsonl != nullptr) {
    const std::string line = rec.toJson().dump();
    std::fwrite(line.data(), 1, line.size(), s.jsonl);
    std::fputc('\n', s.jsonl);
    // Per-line flush: a crashed campaign shard keeps every completed line.
    std::fflush(s.jsonl);
  }
  s.ring.push_back(std::move(rec));
  if (s.ring.size() > kRingCapacity) s.ring.pop_front();
}

std::vector<LogRecord> Logger::recent(std::size_t max) const {
  LoggerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::size_t n = s.ring.size() < max ? s.ring.size() : max;
  return std::vector<LogRecord>(s.ring.end() - static_cast<std::ptrdiff_t>(n),
                                s.ring.end());
}

std::uint64_t Logger::recorded() const {
  return state().recorded.load(std::memory_order_relaxed);
}

void Logger::resetForTests() {
  LoggerState& s = state();
  closeJsonl();
  std::lock_guard<std::mutex> lock(s.mu);
  s.level.store(LogLevel::kInfo, std::memory_order_relaxed);
  s.recorded.store(0, std::memory_order_relaxed);
  s.ring.clear();
}

void log(LogLevel l, const char* component, std::string message, Json fields) {
  Logger::instance().log(l, component, std::move(message), std::move(fields));
}

}  // namespace dvmc::obs
