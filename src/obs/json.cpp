#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dvmc {

Json& Json::set(std::string key, Json v) {
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  elements_.push_back(std::move(v));
  return *this;
}

namespace {

void writeString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void newlineIndent(std::ostream& os, int depth) {
  os << '\n';
  for (int i = 0; i < depth; ++i) os << ' ';
}

}  // namespace

void Json::write(std::ostream& os, int indent) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kUint:
      os << uint_;
      return;
    case Type::kInt:
      os << int_;
      return;
    case Type::kDouble: {
      if (!std::isfinite(dbl_)) {  // JSON has no inf/nan
        os << "null";
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
      os << buf;
      return;
    }
    case Type::kString:
      writeString(os, str_);
      return;
    case Type::kArray: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      bool first = true;
      for (const Json& e : elements_) {
        if (!first) os << ',';
        first = false;
        if (indent > 0) newlineIndent(os, indent + 2);
        e.write(os, indent > 0 ? indent + 2 : 0);
      }
      if (indent > 0) newlineIndent(os, indent);
      os << ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) os << ',';
        first = false;
        if (indent > 0) newlineIndent(os, indent + 2);
        writeString(os, key);
        os << ':';
        if (indent > 0) os << ' ';
        value.write(os, indent > 0 ? indent + 2 : 0);
      }
      if (indent > 0) newlineIndent(os, indent);
      os << '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

}  // namespace dvmc
