#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

namespace dvmc {

Json& Json::set(std::string key, Json v) {
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  elements_.push_back(std::move(v));
  return *this;
}

namespace {

void writeString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void newlineIndent(std::ostream& os, int depth) {
  os << '\n';
  for (int i = 0; i < depth; ++i) os << ' ';
}

}  // namespace

void Json::write(std::ostream& os, int indent) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kUint:
      os << uint_;
      return;
    case Type::kInt:
      os << int_;
      return;
    case Type::kDouble: {
      if (!std::isfinite(dbl_)) {  // JSON has no inf/nan
        os << "null";
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
      os << buf;
      return;
    }
    case Type::kString:
      writeString(os, str_);
      return;
    case Type::kArray: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      bool first = true;
      for (const Json& e : elements_) {
        if (!first) os << ',';
        first = false;
        if (indent > 0) newlineIndent(os, indent + 2);
        e.write(os, indent > 0 ? indent + 2 : 0);
      }
      if (indent > 0) newlineIndent(os, indent);
      os << ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) os << ',';
        first = false;
        if (indent > 0) newlineIndent(os, indent + 2);
        writeString(os, key);
        os << ':';
        if (indent > 0) os << ' ';
        value.write(os, indent > 0 ? indent + 2 : 0);
      }
      if (indent > 0) newlineIndent(os, indent);
      os << '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::size_t i) const {
  static const Json kNullValue;
  if (type_ != Type::kArray || i >= elements_.size()) return kNullValue;
  return elements_[i];
}

std::uint64_t Json::asUint(std::uint64_t fallback) const {
  switch (type_) {
    case Type::kUint: return uint_;
    case Type::kInt: return int_ >= 0 ? static_cast<std::uint64_t>(int_)
                                      : fallback;
    case Type::kDouble:
      return dbl_ >= 0 ? static_cast<std::uint64_t>(dbl_) : fallback;
    default: return fallback;
  }
}

std::int64_t Json::asInt(std::int64_t fallback) const {
  switch (type_) {
    case Type::kUint:
      return uint_ <= static_cast<std::uint64_t>(
                          std::numeric_limits<std::int64_t>::max())
                 ? static_cast<std::int64_t>(uint_)
                 : fallback;
    case Type::kInt: return int_;
    case Type::kDouble: return static_cast<std::int64_t>(dbl_);
    default: return fallback;
  }
}

double Json::asDouble(double fallback) const {
  switch (type_) {
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kInt: return static_cast<double>(int_);
    case Type::kDouble: return dbl_;
    default: return fallback;
  }
}

bool Json::asBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

// --- parser ---------------------------------------------------------------

namespace {

/// Recursive-descent JSON parser over a string_view. Depth-limited so a
/// hostile "[[[[..." input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parseDocument(Json* out, std::string* err) {
    skipWs();
    if (!parseValue(out, 0)) {
      if (err != nullptr) *err = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skipWs();
    if (pos_ != text_.size()) {
      if (err != nullptr) {
        *err = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  // Deep enough for any artifact this repo emits, small enough that a
  // hostile or corrupt document cannot overflow the parser's recursion.
  static constexpr int kMaxDepth = 256;

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(Json* out, int depth) {
    if (depth >= kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"': {
        std::string s;
        if (!parseString(&s)) return false;
        *out = Json::str(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return fail("invalid literal");
        *out = Json::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return fail("invalid literal");
        *out = Json::boolean(false);
        return true;
      case 'n':
        if (!literal("null")) return fail("invalid literal");
        *out = Json();
        return true;
      default: return parseNumber(out);
    }
  }

  bool parseObject(Json* out, int depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skipWs();
    if (consume('}')) {
      *out = std::move(obj);
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(&key)) return fail("expected object key");
      skipWs();
      if (!consume(':')) return fail("expected ':'");
      skipWs();
      Json value;
      if (!parseValue(&value, depth + 1)) return false;
      obj.set(std::move(key), std::move(value));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    *out = std::move(obj);
    return true;
  }

  bool parseArray(Json* out, int depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skipWs();
    if (consume(']')) {
      *out = std::move(arr);
      return true;
    }
    while (true) {
      skipWs();
      Json value;
      if (!parseValue(&value, depth + 1)) return false;
      arr.push(std::move(value));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    *out = std::move(arr);
    return true;
  }

  bool parseString(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parseHex4(&cp)) return false;
          appendUtf8(out, cp);
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    *out = v;
    return true;
  }

  static void appendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parseNumber(Json* out) {
    const std::size_t start = pos_;
    const bool negative = consume('-');
    bool isDouble = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start + (negative ? 1u : 0u)) return fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    if (!isDouble) {
      errno = 0;
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          *out = Json::num(static_cast<std::int64_t>(v));
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          *out = Json::num(static_cast<std::uint64_t>(v));
          return true;
        }
      }
      // Integral but out of 64-bit range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("invalid number");
    *out = Json::num(d);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* err) {
  Json out;
  Parser p(text);
  if (!p.parseDocument(&out, err)) return std::nullopt;
  return out;
}

}  // namespace dvmc
