// Leveled structured logger (observability subsystem).
//
// One process-wide logger replaces the scattered `fprintf(stderr, ...)`
// diagnostics across the runner, campaign driver, oracle, and tools.
// Every record carries a level, a component tag, a message, and optional
// structured fields (a Json object), and lands in up to three places:
//
//   * stderr, as a human-readable line (`[info] obs: wrote run report ...
//     file=r.json`) when the record's level passes --log-level (default
//     info — debug-level progress chatter is off by default so the
//     bit-identical merge output of parallel runs is unchanged);
//   * a JSONL file (--log-json=FILE): one flushed JSON object per line,
//     headed by a {"schema":"dvmc-log",...} meta line, so fleet campaign
//     shards stream machine-readable logs that survive a crash and
//     `dvmc_inspect` can validate/summarize them;
//   * a bounded in-memory ring (newest-kept), so status snapshots and
//     tests can read recent records without re-parsing files.
//
// Thread-safe: campaign/runner workers log concurrently. Cost when a
// record is below the active level: one atomic load and a branch — no
// formatting, no allocation (callers pay for building `fields` though, so
// hot paths should check enabled() first).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace dvmc::obs {

inline constexpr int kLogSchemaVersion = 1;
inline constexpr const char* kLogSchemaName = "dvmc-log";

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* logLevelName(LogLevel l);
/// Accepts "debug" | "info" | "warn" | "error" | "off".
bool parseLogLevel(std::string_view s, LogLevel* out);

struct LogRecord {
  std::uint64_t unixMs = 0;  // wall-clock stamp
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  Json fields;  // object, or null when the record has none

  /// {"ts":..., "level":"info", "component":"...", "message":"...",
  ///  "fields":{...}} — the JSONL line layout.
  Json toJson() const;
};

class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel l);
  LogLevel level() const;
  bool enabled(LogLevel l) const { return l >= level() && l != LogLevel::kOff; }

  /// Arms the JSONL sink: truncates `path`, writes the schema meta line,
  /// then appends one flushed line per record. Returns false (and logs to
  /// stderr) when the file cannot be opened.
  bool openJsonl(const std::string& path);
  void closeJsonl();
  bool jsonlArmed() const;

  void log(LogLevel l, const char* component, std::string message,
           Json fields = Json());

  /// The JSONL sink's file descriptor, or -1 when disarmed. Lock-free
  /// (one atomic load) so the fatal-signal crash handler can append a
  /// final record with raw write(2); every normal record is per-line
  /// flushed, so the stream stays parseable after a crash.
  int jsonlFdForCrash() const;

  /// Newest-last copies of the retained ring (capped at `max`).
  std::vector<LogRecord> recent(std::size_t max = 64) const;
  std::uint64_t recorded() const;

  /// Tests: restore defaults (level info, ring empty, JSONL closed).
  void resetForTests();

 private:
  Logger();
};

/// Convenience free functions on the process logger.
void log(LogLevel l, const char* component, std::string message,
         Json fields = Json());
inline void logDebug(const char* component, std::string message,
                     Json fields = Json()) {
  log(LogLevel::kDebug, component, std::move(message), std::move(fields));
}
inline void logInfo(const char* component, std::string message,
                    Json fields = Json()) {
  log(LogLevel::kInfo, component, std::move(message), std::move(fields));
}
inline void logWarn(const char* component, std::string message,
                    Json fields = Json()) {
  log(LogLevel::kWarn, component, std::move(message), std::move(fields));
}
inline void logError(const char* component, std::string message,
                     Json fields = Json()) {
  log(LogLevel::kError, component, std::move(message), std::move(fields));
}

}  // namespace dvmc::obs
