// In-process resource sampler + live status surface (obs subsystem).
//
// Two pieces, both host-side (the simulated machine has its own telemetry
// in TimeSeries/metrics):
//
//   * Resource sampling: RSS from /proc/self/statm and CPU time from
//     getrusage(RUSAGE_SELF), cheap enough to call per seed or per status
//     update. ResourceSeries rides the bounded TimeSeries ring so a long
//     campaign keeps a windowed history instead of an unbounded log; the
//     final sample lands in the run report's "resource" section and
//     replaces the CI workflow's shell-level getrusage RSS ceiling (the
//     report's peakRssBytes is asserted by tools/check_perf.py --rss).
//
//   * Live status: StatusWriter atomically rewrites a small JSON snapshot
//     ("dvmc-status", version 1) via tmp-file + rename, rate-limited, so
//     `dvmc_inspect watch FILE` — or a plain `watch cat` — can tail a
//     running campaign without ever seeing a torn write. runSeeds and
//     dvmc_campaign publish configs done/running/escaped, per-shard
//     heartbeats, peak RSS, and an ETA through it when --status-file is
//     armed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/json.hpp"
#include "obs/timeseries.hpp"

namespace dvmc::obs {

inline constexpr int kStatusSchemaVersion = 1;
inline constexpr const char* kStatusSchemaName = "dvmc-status";

/// One point-in-time snapshot of this process's footprint.
struct ResourceUsage {
  std::uint64_t rssBytes = 0;      // current resident set (/proc/self/statm)
  std::uint64_t peakRssBytes = 0;  // high-water mark (ru_maxrss)
  std::uint64_t userCpuMs = 0;     // getrusage user time
  std::uint64_t sysCpuMs = 0;      // getrusage system time

  /// {"rssBytes":..., "peakRssBytes":..., "userCpuMs":..., "sysCpuMs":...}
  Json toJson() const;
};

/// Samples the calling process. Fields that cannot be read (no procfs)
/// stay 0; getrusage alone still fills the peak and CPU numbers.
ResourceUsage sampleResourceUsage();

/// A bounded history of ResourceUsage snapshots riding the TimeSeries
/// ring (columns rss_bytes / peak_rss_bytes / user_cpu_ms / sys_cpu_ms).
/// The x-axis is whatever monotonic tick the caller passes — runSeeds
/// uses seeds completed, the campaign uses configs completed.
class ResourceSeries {
 public:
  explicit ResourceSeries(std::size_t capacity = 1024);

  /// Samples the process now and appends a row at tick `now`.
  ResourceUsage sample(std::uint64_t now);

  std::size_t size() const { return series_.size(); }
  std::uint64_t peakRssBytes() const { return peakRssBytes_; }

  /// TimeSeries layout plus the scalar peak:
  /// {"columns":[...], "samples":[[tick, ...]], "dropped":N,
  ///  "peakRssBytes":...}
  Json toJson() const;

 private:
  TimeSeries series_;
  std::uint64_t peakRssBytes_ = 0;
};

/// Atomically rewrites a JSON status snapshot: body fields are wrapped in
/// the dvmc-status envelope (schema/version/generator/updatedUnixMs plus
/// a fresh resource sample), written to `path + ".tmp"`, then renamed
/// over `path`. Rate-limited: non-forced updates within minIntervalMs of
/// the last write are dropped (the final forced write always lands).
/// Thread-safe — campaign workers publish heartbeats concurrently.
class StatusWriter {
 public:
  explicit StatusWriter(std::string path, std::uint64_t minIntervalMs = 250);
  const std::string& path() const { return path_; }

  /// Returns true when the snapshot hit the disk (false = throttled or
  /// I/O error; errors also log through the obs logger).
  bool update(const Json& body, bool force = false);

  std::uint64_t writes() const;

 private:
  std::string path_;
  std::uint64_t minIntervalMs_;
  mutable std::mutex mu_;
  std::uint64_t lastWriteMs_ = 0;  // steady-clock ms of the last landing
  std::uint64_t writes_ = 0;
};

/// The process-global status writer when --status-file was given, else
/// nullptr (mirrors activeTracer / activeForensics).
StatusWriter* activeStatusWriter();

/// Tests / resetObs: drop the global status writer instance.
void resetStatusWriterForTests();

}  // namespace dvmc::obs
