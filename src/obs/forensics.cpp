#include "obs/forensics.hpp"

#include <ostream>
#include <utility>

namespace dvmc {

void ForensicsRecorder::addBundle(Json bundle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bundles_.size() >= cfg_.maxBundles) {
    ++dropped_;
    return;
  }
  bundles_.push_back(std::move(bundle));
}

std::size_t ForensicsRecorder::bundleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_.size();
}

std::uint64_t ForensicsRecorder::droppedBundles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void ForensicsRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  bundles_.clear();
  dropped_ = 0;
}

Json ForensicsRecorder::toJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json bundles = Json::array();
  for (const Json& b : bundles_) bundles.push(b);
  return Json::object()
      .set("schema", Json::str(kForensicsSchemaName))
      .set("version", Json::num(std::uint64_t{kForensicsSchemaVersion}))
      .set("generator",
           Json::str("dvmc (Dynamic Verification of Memory Consistency)"))
      .set("droppedBundles", Json::num(dropped_))
      .set("bundles", std::move(bundles));
}

void ForensicsRecorder::writeTo(std::ostream& os) const {
  toJson().write(os, 2);
  os << "\n";
}

}  // namespace dvmc
