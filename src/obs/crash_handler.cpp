#include "obs/crash_handler.hpp"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "common/version.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"

namespace dvmc::obs {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
constexpr int kNumFatal = sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);

struct CrashState {
  std::atomic<bool> installed{false};
  std::atomic<bool> fired{false};
  // Fixed buffers: the handler may not allocate. Written at arm time
  // (single-threaded flag parsing), read at signal time.
  char statusPath[512] = {0};
  char generator[128] = {0};
  struct sigaction previous[kNumFatal];
};

CrashState& crashState() {
  static CrashState s;
  return s;
}

int signalSlot(int sig) {
  for (int i = 0; i < kNumFatal; ++i) {
    if (kFatalSignals[i] == sig) return i;
  }
  return -1;
}

/// write(2) a NUL-terminated buffer, ignoring short writes beyond a retry
/// (best-effort: this runs between a fault and death).
void writeAll(int fd, const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = write(fd, p, n);
    if (w <= 0) return;
    p += w;
    n -= static_cast<size_t>(w);
  }
}

const char* fatalSignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
  }
  return "SIG?";
}

void crashHandler(int sig) {
  CrashState& s = crashState();
  // One shot: a fault inside the handler (or a second thread crashing)
  // must not recurse into the artifact writes.
  if (!s.fired.exchange(true)) {
    const unsigned long long unixMs =
        static_cast<unsigned long long>(time(nullptr)) * 1000ull;
    char buf[1024];

    // Final structured-log line on the already-line-flushed JSONL sink.
    const int logFd = Logger::instance().jsonlFdForCrash();
    if (logFd >= 0) {
      const int n = snprintf(
          buf, sizeof(buf),
          "{\"ts\":%llu,\"level\":\"error\",\"component\":\"crash\","
          "\"message\":\"fatal signal\",\"fields\":{\"signal\":%d,"
          "\"signalName\":\"%s\"}}\n",
          unixMs, sig, fatalSignalName(sig));
      if (n > 0) writeAll(logFd, buf, static_cast<size_t>(n));
      fdatasync(logFd);
    }

    // Minimal dvmc-status snapshot: state "crashed". Written directly (no
    // tmp+rename dance — a torn status beats a stale "running" one, and
    // the snapshot is small enough to land in one write anyway).
    if (s.statusPath[0] != '\0') {
      const int fd =
          open(s.statusPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        const int n = snprintf(
            buf, sizeof(buf),
            "{\"schema\":\"%s\",\"version\":%d,\"generator\":\"%s\","
            "\"updatedUnixMs\":%llu,\"phase\":\"crash\","
            "\"state\":\"crashed\",\"signal\":%d,\"signalName\":\"%s\"}\n",
            kStatusSchemaName, kStatusSchemaVersion, s.generator, unixMs,
            sig, fatalSignalName(sig));
        if (n > 0) writeAll(fd, buf, static_cast<size_t>(n));
        fdatasync(fd);
        close(fd);
      }
    }
  }

  // Restore the pre-install disposition (sanitizer handler, SIG_DFL, ...)
  // and re-raise so the process dies exactly as it would have without us.
  const int slot = signalSlot(sig);
  if (slot >= 0) {
    sigaction(sig, &s.previous[slot], nullptr);
  } else {
    signal(sig, SIG_DFL);
  }
  raise(sig);
}

}  // namespace

void installCrashHandler() {
  CrashState& s = crashState();
  if (s.installed.exchange(true)) return;
  // Pre-render everything the handler would otherwise have to format.
  snprintf(s.generator, sizeof(s.generator), "%s", versionString());
  struct sigaction act{};
  act.sa_handler = &crashHandler;
  sigemptyset(&act.sa_mask);
  act.sa_flags = SA_NODEFER;  // re-raise from inside the handler must fire
  for (int i = 0; i < kNumFatal; ++i) {
    sigaction(kFatalSignals[i], &act, &s.previous[i]);
  }
}

void setCrashStatusPath(const char* path) {
  CrashState& s = crashState();
  snprintf(s.statusPath, sizeof(s.statusPath), "%s",
           path != nullptr ? path : "");
}

bool crashHandlerInstalled() {
  return crashState().installed.load();
}

}  // namespace dvmc::obs
