// Event tracer (observability subsystem).
//
// A bounded ring buffer of cycle-stamped simulation events: coherence
// transactions, CET/MET epoch begin/end, Inform messages, checker
// detections, SafetyNet checkpoints and rollbacks. When the ring fills,
// the oldest events are overwritten (the tail of a run is what the
// detection-latency and availability analyses need); the dropped count is
// kept so truncation is never silent.
//
// Cost model: a disabled tracer is a null pointer at every instrumentation
// site (`if (auto* t = sim.tracer())` — one predictable branch), so the
// Fig. 3/4 performance numbers are unchanged when tracing is off. An
// enabled tracer appends a fixed-size POD record: no allocation, no
// formatting. Formatting happens once, at export time, as Chrome
// `trace_event` JSON loadable in chrome://tracing or Perfetto.
//
// Event names must be string literals (or otherwise outlive the tracer):
// records store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"

namespace dvmc {

enum class TraceKind : std::uint8_t {
  kCoherence,   // coherence transactions (miss issue, data supply, ...)
  kEpoch,       // CET epoch spans / MET epoch-table activity
  kInform,      // Inform-Epoch / Open / Closed messages
  kDetection,   // checker detections (via the ErrorSink observer)
  kCheckpoint,  // SafetyNet checkpoint taken
  kRollback,    // SafetyNet recovery
  kCpu,         // pipeline-level events (squashes, restarts)
  kPhase,       // harness phase spans from the span profiler (µs timeline)
};

const char* traceKindName(TraceKind k);

struct TraceEvent {
  Cycle ts = 0;            // begin cycle
  Cycle dur = 0;           // span length; 0 = instantaneous event
  const char* name = "";   // static string (not owned)
  TraceKind kind = TraceKind::kCoherence;
  std::uint16_t node = 0;
  Addr addr = 0;
  std::uint64_t arg = 0;   // kind-specific payload (epoch id, distance, ...)
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity = 1u << 16);

  /// Records an instantaneous event.
  void instant(Cycle ts, TraceKind kind, const char* name, NodeId node,
               Addr addr = 0, std::uint64_t arg = 0) {
    push(TraceEvent{ts, 0, name, kind, static_cast<std::uint16_t>(node), addr,
                    arg});
  }

  /// Records a [begin, end] span (emitted as a Chrome complete event).
  void span(Cycle begin, Cycle end, TraceKind kind, const char* name,
            NodeId node, Addr addr = 0, std::uint64_t arg = 0) {
    push(TraceEvent{begin, end >= begin ? end - begin : 0, name, kind,
                    static_cast<std::uint16_t>(node), addr, arg});
  }

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten after the ring filled.
  std::uint64_t dropped() const { return recorded_ - count_; }
  std::uint64_t recorded() const { return recorded_; }
  void clear();

  /// Oldest-first access (test introspection).
  const TraceEvent& at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  /// Writes the buffered events as a Chrome trace_event JSON object
  /// (JSON-object format: {"traceEvents": [...], ...}). Spans become "X"
  /// (complete) events, instants "i" events; tid = node, pid = 0.
  void writeChromeJson(std::ostream& os) const;

 private:
  void push(const TraceEvent& e);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;       // index of the oldest live record
  std::size_t count_ = 0;      // live records
  std::uint64_t recorded_ = 0; // total ever recorded
};

}  // namespace dvmc
