// Hierarchical RAII span profiler (observability subsystem).
//
// Wall-clock plus thread-CPU time attribution for the harness phases the
// fleet cares about — build / run / capture / oracle / report — nestable
// to any depth and safe from any thread. A ScopedSpan opens a frame on
// the calling thread's stack; on destruction the frame's wall and CPU
// deltas are folded into a process-wide aggregation tree keyed by the
// full stack path, so a 500-config campaign costs a few hundred tree
// nodes, not a per-event log.
//
// Outputs:
//   * a "profile" section in the dvmc-run-report (schema version 2):
//     the aggregated tree with count/wallNs/cpuNs per node;
//   * --profile-out=FILE: speedscope-compatible collapsed stacks
//     ("a;b;c <wall_us>" per line) for flamegraph inspection — drop the
//     file on https://speedscope.app or feed it to flamegraph.pl;
//   * main-thread spans are mirrored into the process event tracer
//     (--trace) as TraceKind::kPhase spans, timestamped in microseconds
//     since the first span (the tracer's cycle timeline belongs to the
//     simulated machine; phase spans ride along on their own track).
//
// Span names must be string literals (or otherwise outlive the process):
// frames store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace dvmc {
class EventTracer;
}

namespace dvmc::obs {

class SpanProfiler {
 public:
  /// One aggregation node: a unique stack path (name under parent).
  struct Node {
    const char* name = "";
    int parent = -1;  // index into the node vector; -1 = a root frame
    std::uint64_t count = 0;
    std::uint64_t wallNs = 0;
    std::uint64_t cpuNs = 0;
  };

  static SpanProfiler& instance();

  bool empty() const;
  /// Copy of the aggregation tree (parents always precede children).
  std::vector<Node> nodes() const;

  /// {"spans":[{"name","count","wallNs","cpuNs","children":[...]}]} —
  /// the run report's "profile" section.
  Json toJson() const;

  /// Collapsed-stack flamegraph lines: "build 1200\nrun;oracle 83\n"
  /// (semicolon-joined path, wall microseconds). Speedscope and
  /// flamegraph.pl both accept this format directly.
  void writeCollapsed(std::ostream& os) const;
  std::string collapsedStacks() const;

  /// Tests: drop every node (open spans on live threads keep their
  /// indices valid only until this is called — reset between runs only).
  void resetForTests();

 private:
  friend class ScopedSpan;
  SpanProfiler() = default;
  int beginSpan(const char* name);
  void endSpan(int node, std::uint64_t wallNs, std::uint64_t cpuNs,
               std::uint64_t wallStartNs);
};

/// Replays the buffered per-thread phase spans into `tracer` as
/// TraceKind::kPhase events (timestamps in µs since the first span,
/// tid = 0xF000 + thread lane). Call once from single-threaded teardown
/// (finalizeObs): the tracer is not thread-safe.
void flushPhaseSpans(EventTracer& tracer);

/// Opens a profiling frame for the enclosing scope. Nests: spans opened
/// while this one is live become its children (per thread).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  int node_;
  std::uint64_t wallStart_;
  std::uint64_t cpuStart_;
};

}  // namespace dvmc::obs
