// Append-only, crash-surviving JSONL journals (observability subsystem).
//
// A journal is the durability backbone of a resumable campaign: one meta
// line stamping the schema and the run's identity, then one fsynced JSON
// record per completed unit of work. Because every append is flushed AND
// fsynced before the writer moves on, a SIGKILLed (or power-cut) campaign
// keeps every record it ever reported complete — `--resume <journal>`
// replays them instead of re-running the work, and the merged summary is
// bit-identical to an uninterrupted run (docs/robustness.md).
//
// The container is generic; dvmc_campaign layers its per-config verdict
// records ("dvmc-journal", version 1) on top, and dvmc_inspect summarizes
// any journal by its meta line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace dvmc::obs {

inline constexpr int kJournalSchemaVersion = 1;
inline constexpr const char* kJournalSchemaName = "dvmc-journal";

/// Everything a journal file held when it was read: the meta envelope and
/// the record lines, in append order.
struct JournalContents {
  Json meta;                 // first line, schema-stamped
  std::vector<Json> records; // one per subsequent line
};

/// Parses a journal file. A truncated final line (the writer died mid
/// append; fsync ordering makes this the only possible corruption) is
/// dropped silently — every complete record is kept. Returns nullopt and
/// fills `err` on open failure, a malformed meta line, or a schema/version
/// mismatch.
std::optional<JournalContents> readJournal(const std::string& path,
                                           std::string* err);

/// Append-side handle. open() either creates the file (writing the meta
/// envelope as line one) or appends to an existing journal after
/// validating that its meta line carries the same schema and a compatible
/// version. append() writes one record line, flushes, and fsyncs before
/// returning — the record is on disk or append() did not return.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// `meta` is wrapped in {"schema","version","generator",...} plus the
  /// caller's identity fields. On an existing non-empty file the meta line
  /// is validated (schema/version) and the caller's fields are compared by
  /// `mustMatch` keys: a mismatch is an error (resuming someone else's
  /// campaign would silently corrupt the merge).
  bool open(const std::string& path, const Json& meta,
            const std::vector<std::string>& mustMatch, std::string* err);

  /// One fsynced record line. Returns false on I/O failure.
  bool append(const Json& record);

  bool isOpen() const { return file_ != nullptr; }
  std::uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t appended_ = 0;
};

}  // namespace dvmc::obs
