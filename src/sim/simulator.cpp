#include "sim/simulator.hpp"

namespace dvmc {

void Simulator::scheduleAt(Cycle when, Action fn) {
  DVMC_ASSERT(when >= now_, "event scheduled in the past");
  queue_.push(Event{when, nextOrder_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping so reentrant schedules are safe.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run(Cycle limit) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().when <= limit) {
    step();
    ++n;
  }
  if (now_ < limit && limit != ~Cycle{0}) now_ = limit;
  return n;
}

bool Simulator::runUntil(const std::function<bool()>& pred, Cycle limit) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.top().when <= limit) {
    step();
    if (pred()) return true;
  }
  return false;
}

}  // namespace dvmc
