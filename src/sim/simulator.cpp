#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

namespace dvmc {

namespace {
constexpr Cycle kNoEvent = ~Cycle{0};
}  // namespace

Simulator::Event* Simulator::allocEvent(Cycle when, Action fn) {
  if (freeList_ == nullptr) {
    slabs_.emplace_back(new Event[kSlabEvents]);
    Event* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabEvents; ++i) {
      slab[i].next = freeList_;
      freeList_ = &slab[i];
    }
  }
  Event* e = freeList_;
  freeList_ = e->next;
  e->when = when;
  e->order = nextOrder_++;
  e->fn = std::move(fn);
  e->next = nullptr;
  return e;
}

void Simulator::releaseEvent(Event* e) {
  e->fn.reset();
  e->next = freeList_;
  freeList_ = e;
}

void Simulator::pushBucket(Event* e) {
  const std::size_t idx = static_cast<std::size_t>(e->when % kNearWindow);
  // schedule() hands out monotonically increasing order numbers, so a plain
  // tail append keeps each bucket sorted by order.
  if (bucketHead_[idx] == nullptr) {
    bucketHead_[idx] = bucketTail_[idx] = e;
    bucketMask_ |= std::uint64_t{1} << idx;
  } else {
    bucketTail_[idx]->next = e;
    bucketTail_[idx] = e;
  }
}

void Simulator::insertBucketOrdered(Event* e) {
  // Far-future events migrating out of the heap may carry a smaller order
  // number than same-cycle events appended directly; splice by order so
  // same-cycle execution still follows scheduling order. Same-cycle chains
  // are short, so the linear scan is cheap.
  const std::size_t idx = static_cast<std::size_t>(e->when % kNearWindow);
  Event* head = bucketHead_[idx];
  if (head == nullptr) {
    bucketHead_[idx] = bucketTail_[idx] = e;
    bucketMask_ |= std::uint64_t{1} << idx;
    return;
  }
  if (e->order < head->order) {
    e->next = head;
    bucketHead_[idx] = e;
    return;
  }
  Event* prev = head;
  while (prev->next != nullptr && prev->next->order < e->order) {
    prev = prev->next;
  }
  e->next = prev->next;
  prev->next = e;
  if (e->next == nullptr) bucketTail_[idx] = e;
}

void Simulator::pushHeap(Event* e) {
  const auto later = [](const Event* a, const Event* b) {
    if (a->when != b->when) return a->when > b->when;
    return a->order > b->order;
  };
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Simulator::Event* Simulator::popHeap() {
  const auto later = [](const Event* a, const Event* b) {
    if (a->when != b->when) return a->when > b->when;
    return a->order > b->order;
  };
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event* e = heap_.back();
  heap_.pop_back();
  e->next = nullptr;
  return e;
}

Cycle Simulator::nextBucketTime() const {
  if (bucketMask_ == 0) return kNoEvent;
  // Every bucketed event lies in [now_, now_ + kNearWindow), so rotating the
  // occupancy mask to start at now_'s bucket turns "earliest event cycle"
  // into a count-trailing-zeros.
  const int base = static_cast<int>(now_ % kNearWindow);
  const std::uint64_t rotated = std::rotr(bucketMask_, base);
  return now_ + static_cast<Cycle>(std::countr_zero(rotated));
}

Cycle Simulator::peekWhen() const {
  const Cycle bucketT = nextBucketTime();
  const Cycle heapT = heap_.empty() ? kNoEvent : heap_.front()->when;
  return bucketT < heapT ? bucketT : heapT;
}

void Simulator::scheduleAt(Cycle when, Action fn) {
  DVMC_ASSERT(when >= now_, "event scheduled in the past");
  Event* e = allocEvent(when, std::move(fn));
  if (when - now_ < kNearWindow) {
    pushBucket(e);
  } else {
    pushHeap(e);
  }
  ++size_;
}

void Simulator::dispatch(Cycle t) {
  now_ = t;
  // Heap events whose cycle has arrived join the calendar so that events
  // from both structures interleave in global scheduling order.
  while (!heap_.empty() && heap_.front()->when == t) {
    insertBucketOrdered(popHeap());
  }
  const std::size_t idx = static_cast<std::size_t>(t % kNearWindow);
  Event* e = bucketHead_[idx];
  bucketHead_[idx] = e->next;
  if (bucketHead_[idx] == nullptr) {
    bucketTail_[idx] = nullptr;
    bucketMask_ &= ~(std::uint64_t{1} << idx);
  }
  --size_;
  ++executed_;
  // Move the action out and recycle the node first so reentrant schedules
  // (including ones that reuse this node) are safe.
  Action fn = std::move(e->fn);
  releaseEvent(e);
  fn();
}

bool Simulator::step() {
  if (size_ == 0) return false;
  dispatch(peekWhen());
  return true;
}

std::uint64_t Simulator::run(Cycle limit) {
  // The inner loop is the single hottest path in the whole system, so it
  // resolves the next event time exactly once per event (the old loop paid
  // the bucket-mask rotate/scan twice: once in the loop condition and once
  // again inside step()). There is deliberately no per-event tracer branch
  // here either — the tracer hangs off the kernel for *components* to
  // consult at their instrumentation sites; with no tracer attached the
  // loop below is pop → dispatch → repeat with nothing hoistable left.
  std::uint64_t n = 0;
  while (size_ != 0) {
    const Cycle t = peekWhen();
    if (t > limit) break;
    dispatch(t);
    ++n;
  }
  if (now_ < limit && limit != kNoEvent) now_ = limit;
  return n;
}

bool Simulator::runUntil(const std::function<bool()>& pred, Cycle limit) {
  if (pred()) return true;
  while (size_ != 0) {
    const Cycle t = peekWhen();
    if (t > limit) break;
    dispatch(t);
    if (pred()) return true;
  }
  return false;
}

}  // namespace dvmc
