// Discrete-event simulation kernel.
//
// The whole system is modeled as events on a single global cycle clock.
// Events scheduled for the same cycle execute in scheduling order, which
// makes every run bit-for-bit deterministic for a given seed — a property
// the error-injection experiments and SafetyNet recovery tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace dvmc {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time in cycles.
  Cycle now() const { return now_; }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle).
  void schedule(Cycle delay, Action fn) { scheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at an absolute cycle (must not be in the past).
  void scheduleAt(Cycle when, Action fn);

  /// Executes the next event; returns false if the queue is empty.
  bool step();

  /// Runs until the event queue drains or `limit` cycles have elapsed.
  /// Returns the number of events executed.
  std::uint64_t run(Cycle limit = ~Cycle{0});

  /// Runs until `pred()` becomes true (checked after each event), the queue
  /// drains, or `limit` is reached. Returns true if pred was satisfied.
  bool runUntil(const std::function<bool()>& pred, Cycle limit = ~Cycle{0});

  std::uint64_t eventsExecuted() const { return executed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Cycle when;
    std::uint64_t order;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.order > b.order;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycle now_ = 0;
  std::uint64_t nextOrder_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dvmc
