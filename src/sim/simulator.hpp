// Discrete-event simulation kernel.
//
// The whole system is modeled as events on a single global cycle clock.
// Events scheduled for the same cycle execute in scheduling order, which
// makes every run bit-for-bit deterministic for a given seed — a property
// the error-injection experiments and SafetyNet recovery tests rely on.
//
// Storage is a two-level calendar queue tuned for the hot path. Nearly all
// events in this machine are scheduled a handful of cycles out (cache and
// link latencies), so the kernel keeps a 64-cycle window of FIFO buckets —
// one per upcoming cycle, nonemptiness tracked in a single 64-bit mask —
// and spills only far-future events (checkpoint intervals, membar-injection
// timers) to a binary heap. Event nodes come from a slab-backed free list,
// and the action is an InlineTask whose captures live *inside* the slab
// node (one node = exactly two cache lines), so steady-state scheduling
// performs zero allocations — including for the captures, which under the
// old std::function Action heap-allocated whenever they exceeded ~16 bytes
// (i.e. nearly always).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/inline_task.hpp"
#include "common/types.hpp"

namespace dvmc {

class EventTracer;

class Simulator {
 public:
  /// Inline capture budget for scheduled actions. 96 bytes fits the widest
  /// hot-path capture — a coherence controller's [this, CacheOp,
  /// CacheOpCallback, generation] — and lands sizeof(Event) on exactly two
  /// cache lines. Captures that exceed it fail to compile at the
  /// schedule() call site: pool the payload (see MessagePool) instead of
  /// raising the budget.
  static constexpr std::size_t kActionCapacityBytes = 96;
  using Action = InlineTask<kActionCapacityBytes>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in cycles.
  Cycle now() const { return now_; }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle).
  void schedule(Cycle delay, Action fn) { scheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at an absolute cycle (must not be in the past).
  void scheduleAt(Cycle when, Action fn);

  /// Executes the next event; returns false if the queue is empty.
  bool step();

  /// Runs until the event queue drains or `limit` cycles have elapsed.
  /// Returns the number of events executed.
  std::uint64_t run(Cycle limit = ~Cycle{0});

  /// Runs until `pred()` becomes true (checked after each event), the queue
  /// drains, or `limit` is reached. Returns true if pred was satisfied.
  bool runUntil(const std::function<bool()>& pred, Cycle limit = ~Cycle{0});

  std::uint64_t eventsExecuted() const { return executed_; }
  bool empty() const { return size_ == 0; }
  std::size_t pendingEvents() const { return size_; }

  /// Event tracer attached to this simulation, or nullptr (the default:
  /// tracing off costs one null check per instrumentation site). The
  /// tracer is owned by the caller (System wires SystemConfig::tracer in);
  /// it hangs off the kernel so every component that can schedule events
  /// can also trace them without extra constructor plumbing.
  EventTracer* tracer() const { return tracer_; }
  void setTracer(EventTracer* t) { tracer_ = t; }

 private:
  struct Event {
    Cycle when = 0;
    std::uint64_t order = 0;
    Action fn;              // captures stored inline — see kActionCapacityBytes
    Event* next = nullptr;  // bucket chain / free list
  };
  static_assert(sizeof(Event) == 128,
                "Event should stay exactly two cache lines; re-tune "
                "kActionCapacityBytes if a field changes");

  // Delays below kNearWindow go to the calendar; the window width matches
  // the bucket count so each bucket holds at most one distinct cycle.
  static constexpr Cycle kNearWindow = 64;
  static constexpr std::size_t kSlabEvents = 256;

  Event* allocEvent(Cycle when, Action fn);
  void releaseEvent(Event* e);
  /// Executes the earliest pending event; `t` must equal peekWhen().
  void dispatch(Cycle t);
  void pushBucket(Event* e);
  void insertBucketOrdered(Event* e);
  void pushHeap(Event* e);
  Event* popHeap();
  /// Time of the earliest pending event (~Cycle{0} if none).
  Cycle peekWhen() const;
  Cycle nextBucketTime() const;

  std::array<Event*, kNearWindow> bucketHead_{};
  std::array<Event*, kNearWindow> bucketTail_{};
  std::uint64_t bucketMask_ = 0;  // bit i set iff bucketHead_[i] != nullptr
  std::vector<Event*> heap_;      // min-heap on (when, order)
  std::vector<std::unique_ptr<Event[]>> slabs_;
  Event* freeList_ = nullptr;
  Cycle now_ = 0;
  std::uint64_t nextOrder_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t size_ = 0;
  EventTracer* tracer_ = nullptr;  // non-owning; see tracer()
};

}  // namespace dvmc
