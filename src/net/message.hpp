// Interconnect message format.
//
// One message type serves the coherence protocols (directory and snooping),
// the Cache Coherence checker's Inform-Epoch traffic, and SafetyNet's
// checkpoint-coordination traffic. Sizes follow the paper's accounting:
// control messages carry an address and a few bytes of metadata; data
// messages additionally carry a full 64-byte block; Inform-Epochs carry two
// 16-bit logical times and two 16-bit CRC hashes.
#pragma once

#include <cstdint>
#include <string>

#include "common/data_block.hpp"
#include "common/types.hpp"
#include "common/wrap16.hpp"

namespace dvmc {

enum class MsgType : std::uint8_t {
  // --- Directory protocol ---
  kGetS,      // requester -> home: read permission
  kGetM,      // requester -> home: write permission
  kPutM,      // owner -> home: writeback (carries data)
  kFwdGetS,   // home -> owner: supply data to requester, owner degrades to O
  kFwdGetM,   // home -> owner: supply data to requester, owner invalidates
  kInv,       // home -> sharer: invalidate, ack requester
  kInvAck,    // sharer -> requester
  kData,      // data response; ackCount tells requester how many InvAcks to await
  kPutAck,    // home -> evictor: writeback accepted
  kNackPutM,  // home -> evictor: ownership already transferred, drop WB buffer
  kUnblock,   // requester -> home: transaction complete, release the block

  // --- Snooping protocol (address network carries these, totally ordered) ---
  kSnpGetS,
  kSnpGetM,
  kSnpPutM,   // writeback announcement; data follows on the data network
  kSnpData,   // owner/memory -> requester on the data network
  kSnpWbData, // owner -> memory writeback data

  // --- Cache Coherence checker (DVCC) ---
  kInformEpoch,
  kInformOpenEpoch,
  kInformClosedEpoch,

  // --- SafetyNet-style BER coordination ---
  kCkptSync,
  kCkptLog,   // log-overhead traffic (modeled, proportional to dirty data)
};

const char* msgTypeName(MsgType t);
bool msgCarriesData(MsgType t);

/// Traffic accounting classes (Figure 7 composition).
enum class TrafficClass : std::uint8_t {
  kCoherence = 0,  // protocol control + data messages
  kInform = 1,     // DVMC Inform-Epoch traffic
  kCkpt = 2,       // SafetyNet coordination/log traffic
};
inline constexpr std::size_t kNumTrafficClasses = 3;
TrafficClass trafficClassOf(MsgType t);

/// Epoch descriptor carried by Inform-* messages (Section 4.3).
struct EpochPayload {
  bool readWrite = false;   // Read-Write vs Read-Only epoch
  LTime16 begin = 0;        // logical time at epoch begin
  LTime16 end = 0;          // logical time at epoch end (unused for open)
  std::uint16_t beginHash = 0;  // CRC-16 of block data at epoch begin
  std::uint16_t endHash = 0;    // CRC-16 at end (== beginHash for RO epochs)
  bool endHashValid = true;     // false when the end hash is unavailable
                                // (forced drain of a Read-Write epoch)
};

struct Message {
  MsgType type = MsgType::kData;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  Addr addr = 0;

  // Coherence bookkeeping.
  NodeId requester = kInvalidNode;  // original requester, for forwards
  int ackCount = 0;                 // InvAcks the requester must collect
  bool fromMemory = false;          // data supplied by memory (vs a cache)

  // Payload.
  bool hasData = false;
  DataBlock data;

  // DVCC payload.
  EpochPayload epoch;

  // Unique id (assigned by the network) — used by fault injection and debug.
  std::uint64_t id = 0;

  // Rank in the total broadcast order; assigned by the ordered address
  // network and used as the snooping protocol's logical time base.
  std::uint64_t snoopOrder = 0;

  // Network recovery epoch: stamped at send, checked at delivery. BER
  // recovery bumps the epoch, which atomically squashes every in-flight
  // message from the rolled-back future.
  std::uint32_t netEpoch = 0;

  /// Wire size in bytes, for bandwidth accounting.
  std::size_t sizeBytes() const;

  std::string describe() const;
};

/// Delivery target registered with a network.
class NetworkEndpoint {
 public:
  virtual ~NetworkEndpoint() = default;
  virtual void onMessage(const Message& msg) = 0;
};

/// Fault-injection filter; installed by the fault framework.
/// May mutate the message (bit flips, misroute by changing dest). Return
/// value says whether the message should still be delivered; the filter can
/// inject duplicates by returning kDuplicate (deliver twice).
enum class NetFaultAction : std::uint8_t { kDeliver, kDrop, kDuplicate, kDelay };

}  // namespace dvmc
