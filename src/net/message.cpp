#include "net/message.hpp"

#include <sstream>

namespace dvmc {

const char* msgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetM: return "GetM";
    case MsgType::kPutM: return "PutM";
    case MsgType::kFwdGetS: return "FwdGetS";
    case MsgType::kFwdGetM: return "FwdGetM";
    case MsgType::kInv: return "Inv";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kData: return "Data";
    case MsgType::kPutAck: return "PutAck";
    case MsgType::kNackPutM: return "NackPutM";
    case MsgType::kUnblock: return "Unblock";
    case MsgType::kSnpGetS: return "SnpGetS";
    case MsgType::kSnpGetM: return "SnpGetM";
    case MsgType::kSnpPutM: return "SnpPutM";
    case MsgType::kSnpData: return "SnpData";
    case MsgType::kSnpWbData: return "SnpWbData";
    case MsgType::kInformEpoch: return "InformEpoch";
    case MsgType::kInformOpenEpoch: return "InformOpenEpoch";
    case MsgType::kInformClosedEpoch: return "InformClosedEpoch";
    case MsgType::kCkptSync: return "CkptSync";
    case MsgType::kCkptLog: return "CkptLog";
  }
  return "?";
}

bool msgCarriesData(MsgType t) {
  switch (t) {
    case MsgType::kPutM:
    case MsgType::kData:
    case MsgType::kSnpData:
    case MsgType::kSnpWbData:
      return true;
    default:
      return false;
  }
}

TrafficClass trafficClassOf(MsgType t) {
  switch (t) {
    case MsgType::kInformEpoch:
    case MsgType::kInformOpenEpoch:
    case MsgType::kInformClosedEpoch:
      return TrafficClass::kInform;
    case MsgType::kCkptSync:
    case MsgType::kCkptLog:
      return TrafficClass::kCkpt;
    default:
      return TrafficClass::kCoherence;
  }
}

std::size_t Message::sizeBytes() const {
  // Control header: type + src/dest + 6-byte address.
  std::size_t size = 8;
  if (hasData) size += kBlockSizeBytes;
  switch (type) {
    case MsgType::kInformEpoch:
      size += 8;  // two 16-bit times + two 16-bit hashes
      break;
    case MsgType::kInformOpenEpoch:
      size += 4;  // begin time + begin hash
      break;
    case MsgType::kInformClosedEpoch:
      size += 2;  // end time
      break;
    default:
      break;
  }
  return size;
}

std::string Message::describe() const {
  std::ostringstream os;
  os << msgTypeName(type) << " src=" << src << " dest=" << dest << " addr=0x"
     << std::hex << addr << std::dec;
  if (requester != kInvalidNode) os << " req=" << requester;
  if (ackCount != 0) os << " acks=" << ackCount;
  return os.str();
}

}  // namespace dvmc
