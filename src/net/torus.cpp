#include "net/torus.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dvmc {

TorusNetwork::TorusNetwork(Simulator& sim, std::size_t numNodes,
                           TorusConfig cfg)
    : sim_(sim), n_(numNodes), cfg_(cfg) {
  DVMC_ASSERT(numNodes >= 1, "torus needs at least one node");
  DVMC_ASSERT(cfg_.bytesPerCycle > 0.0, "bandwidth must be positive");
  // Pick the most square cols x rows factorization with cols >= rows.
  cols_ = numNodes;
  rows_ = 1;
  for (std::size_t r = 1; r * r <= numNodes; ++r) {
    if (numNodes % r == 0) {
      rows_ = r;
      cols_ = numNodes / r;
    }
  }
  endpoints_.resize(n_, nullptr);
  linkFree_.resize(n_ * 4, 0);
  linkBytes_.resize(n_ * 4, 0);
  xOf_.resize(n_);
  yOf_.resize(n_);
  for (NodeId node = 0; node < n_; ++node) {
    xOf_[node] = static_cast<std::uint8_t>(node % cols_);
    yOf_[node] = static_cast<std::uint8_t>(node / cols_);
  }
  nbr_.resize(n_ * 4);
  for (NodeId node = 0; node < n_; ++node) {
    for (std::size_t d = 0; d < 4; ++d) {
      nbr_[linkId(node, static_cast<Dir>(d))] =
          neighborArith(node, static_cast<Dir>(d));
    }
  }
  serCache_.resize(256, 0);
}

void TorusNetwork::attach(NodeId node, NetworkEndpoint* ep) {
  DVMC_ASSERT(node < n_, "attach: node out of range");
  endpoints_[node] = ep;
}

NodeId TorusNetwork::neighborArith(NodeId node, Dir d) const {
  const std::size_t x = node % cols_;
  const std::size_t y = node / cols_;
  switch (d) {
    case kEast: return static_cast<NodeId>(y * cols_ + (x + 1) % cols_);
    case kWest: return static_cast<NodeId>(y * cols_ + (x + cols_ - 1) % cols_);
    case kSouth: return static_cast<NodeId>(((y + 1) % rows_) * cols_ + x);
    case kNorth: return static_cast<NodeId>(((y + rows_ - 1) % rows_) * cols_ + x);
  }
  return node;
}

TorusNetwork::Dir TorusNetwork::nextDir(NodeId cur, NodeId dest) const {
  // X dimension first, along the shorter wrap direction. One step of the
  // full dimension-order route: recomputing per hop visits exactly the
  // same link sequence a precomputed route would, without materializing
  // (and heap-allocating) the link list. Coordinates come from the xOf_/
  // yOf_ tables — cols_ is a runtime value, so the %/÷ forms are hardware
  // divides on a per-hop path.
  const std::size_t xc = xOf_[cur];
  const std::size_t xd = xOf_[dest];
  if (xc != xd) {
    const std::size_t dx = xd >= xc ? xd - xc : xd + cols_ - xc;  // eastward
    return (dx <= cols_ - dx) ? kEast : kWest;
  }
  const std::size_t yc = yOf_[cur];
  const std::size_t yd = yOf_[dest];
  const std::size_t dy = yd >= yc ? yd - yc : yd + rows_ - yc;
  return (dy <= rows_ - dy) ? kSouth : kNorth;
}

Cycle TorusNetwork::serializationCycles(std::size_t bytes) {
  if (bytes < serCache_.size()) {
    Cycle& slot = serCache_[bytes];
    if (slot == 0) {
      slot = static_cast<Cycle>(
          std::ceil(static_cast<double>(bytes) / cfg_.bytesPerCycle));
    }
    return slot;
  }
  return static_cast<Cycle>(
      std::ceil(static_cast<double>(bytes) / cfg_.bytesPerCycle));
}

void TorusNetwork::send(Message msg) {
  DVMC_ASSERT(msg.dest < n_, "send: dest out of range");
  msg.id = nextMsgId_++;
  msg.netEpoch = epoch_;
  ++messagesSent_;

  if (faultFilter_) {
    switch (faultFilter_(msg)) {
      case NetFaultAction::kDeliver:
        break;
      case NetFaultAction::kDrop:
        return;
      case NetFaultAction::kDuplicate: {
        Message dup = msg;
        dup.id = nextMsgId_++;
        sim_.schedule(1, [this, pm = pool_.acquire(std::move(dup))]() mutable {
          inject(std::move(pm));
        });
        break;
      }
      case NetFaultAction::kDelay: {
        sim_.schedule(200, [this, pm = pool_.acquire(std::move(msg))]() mutable {
          inject(std::move(pm));
        });
        return;
      }
    }
  }

  if (msg.src == msg.dest) {
    // Local delivery (e.g., the home node is the requester's own node).
    sim_.schedule(cfg_.localLatency,
                  [this, pm = pool_.acquire(std::move(msg))] { deliver(*pm); });
    return;
  }
  if (cfg_.yieldCheckerTraffic &&
      trafficClassOf(msg.type) != TrafficClass::kCoherence &&
      linkFree_[firstLink(msg.src, msg.dest)] > sim_.now()) {
    // Low-priority injection: hold the message at the source until its
    // first link drains, so coherence messages sent meanwhile overtake it.
    const Cycle retryAt = linkFree_[firstLink(msg.src, msg.dest)];
    sim_.scheduleAt(retryAt, [this,
                              pm = pool_.acquire(std::move(msg))]() mutable {
      if (pm->netEpoch != epoch_) return;  // squashed by BER recovery
      const std::size_t l0 = firstLink(pm->src, pm->dest);
      if (cfg_.yieldCheckerTraffic && linkFree_[l0] > sim_.now()) {
        // Still busy (someone grabbed it again): keep yielding.
        const Cycle again = linkFree_[l0];
        sim_.scheduleAt(again, [this, pm = std::move(pm)]() mutable {
          // Second retry proceeds regardless: bounded injection delay.
          inject(std::move(pm));
        });
        return;
      }
      inject(std::move(pm));
    });
    return;
  }
  inject(pool_.acquire(std::move(msg)));
}

void TorusNetwork::inject(PooledMessage pm) {
  const NodeId src = pm->src;
  traverse(std::move(pm), src);
}

void TorusNetwork::traverse(PooledMessage pm, NodeId cur) {
  if (cur == pm->dest) {
    deliver(*pm);  // pm's destruction recycles the node
    return;
  }
  const Dir d = nextDir(cur, pm->dest);
  const std::size_t link = linkId(cur, d);
  const Cycle depart = std::max(sim_.now(), linkFree_[link]);
  const std::size_t bytes = pm->sizeBytes();
  const Cycle ser = serializationCycles(bytes);
  linkFree_[link] = depart + ser;
  linkBytes_[link] += bytes;
  classBytes_[static_cast<std::size_t>(trafficClassOf(pm->type))] += bytes;
  const Cycle arrive = depart + ser + cfg_.hopLatency;
  const NodeId next = neighbor(cur, d);
  sim_.scheduleAt(arrive, [this, pm = std::move(pm), next]() mutable {
    traverse(std::move(pm), next);
  });
}

void TorusNetwork::deliver(const Message& msg) {
  if (msg.netEpoch != epoch_) return;  // squashed by BER recovery
  NetworkEndpoint* ep = endpoints_[msg.dest];
  DVMC_ASSERT(ep != nullptr, "message delivered to unattached node");
  ep->onMessage(msg);
}

void TorusNetwork::resetStats() {
  std::fill(linkBytes_.begin(), linkBytes_.end(), 0);
  classBytes_.fill(0);
  statsStart_ = sim_.now();
  messagesSent_ = 0;
}

std::uint64_t TorusNetwork::totalBytes() const {
  std::uint64_t sum = 0;
  for (auto b : linkBytes_) sum += b;
  return sum;
}

std::uint64_t TorusNetwork::maxLinkBytes() const {
  std::uint64_t m = 0;
  for (auto b : linkBytes_) m = std::max(m, b);
  return m;
}

double TorusNetwork::peakLinkUtilization() const {
  const Cycle elapsed = sim_.now() - statsStart_;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(maxLinkBytes()) / static_cast<double>(elapsed);
}

}  // namespace dvmc
