#include "net/torus.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dvmc {

TorusNetwork::TorusNetwork(Simulator& sim, std::size_t numNodes,
                           TorusConfig cfg)
    : sim_(sim), n_(numNodes), cfg_(cfg) {
  DVMC_ASSERT(numNodes >= 1, "torus needs at least one node");
  DVMC_ASSERT(cfg_.bytesPerCycle > 0.0, "bandwidth must be positive");
  // Pick the most square cols x rows factorization with cols >= rows.
  cols_ = numNodes;
  rows_ = 1;
  for (std::size_t r = 1; r * r <= numNodes; ++r) {
    if (numNodes % r == 0) {
      rows_ = r;
      cols_ = numNodes / r;
    }
  }
  endpoints_.resize(n_, nullptr);
  linkFree_.resize(n_ * 4, 0);
  linkBytes_.resize(n_ * 4, 0);
}

void TorusNetwork::attach(NodeId node, NetworkEndpoint* ep) {
  DVMC_ASSERT(node < n_, "attach: node out of range");
  endpoints_[node] = ep;
}

NodeId TorusNetwork::neighbor(NodeId node, Dir d) const {
  const std::size_t x = node % cols_;
  const std::size_t y = node / cols_;
  switch (d) {
    case kEast: return static_cast<NodeId>(y * cols_ + (x + 1) % cols_);
    case kWest: return static_cast<NodeId>(y * cols_ + (x + cols_ - 1) % cols_);
    case kSouth: return static_cast<NodeId>(((y + 1) % rows_) * cols_ + x);
    case kNorth: return static_cast<NodeId>(((y + rows_ - 1) % rows_) * cols_ + x);
  }
  return node;
}

std::vector<std::size_t> TorusNetwork::route(NodeId src, NodeId dest) const {
  std::vector<std::size_t> links;
  NodeId cur = src;
  // X dimension first, along the shorter wrap direction.
  auto xOf = [this](NodeId v) { return v % cols_; };
  auto yOf = [this](NodeId v) { return v / cols_; };
  while (xOf(cur) != xOf(dest)) {
    const std::size_t dx =
        (xOf(dest) + cols_ - xOf(cur)) % cols_;  // distance going east
    const Dir d = (dx <= cols_ - dx) ? kEast : kWest;
    links.push_back(linkId(cur, d));
    cur = neighbor(cur, d);
  }
  while (yOf(cur) != yOf(dest)) {
    const std::size_t dy = (yOf(dest) + rows_ - yOf(cur)) % rows_;
    const Dir d = (dy <= rows_ - dy) ? kSouth : kNorth;
    links.push_back(linkId(cur, d));
    cur = neighbor(cur, d);
  }
  return links;
}

Cycle TorusNetwork::serializationCycles(std::size_t bytes) const {
  return static_cast<Cycle>(
      std::ceil(static_cast<double>(bytes) / cfg_.bytesPerCycle));
}

void TorusNetwork::send(Message msg) {
  DVMC_ASSERT(msg.dest < n_, "send: dest out of range");
  msg.id = nextMsgId_++;
  msg.netEpoch = epoch_;
  ++messagesSent_;

  if (faultFilter_) {
    switch (faultFilter_(msg)) {
      case NetFaultAction::kDeliver:
        break;
      case NetFaultAction::kDrop:
        return;
      case NetFaultAction::kDuplicate: {
        Message dup = msg;
        dup.id = nextMsgId_++;
        sim_.schedule(1, [this, dup]() mutable {
          traverse(dup, route(dup.src, dup.dest), 0);
        });
        break;
      }
      case NetFaultAction::kDelay: {
        Message delayed = msg;
        sim_.schedule(200, [this, delayed]() mutable {
          traverse(delayed, route(delayed.src, delayed.dest), 0);
        });
        return;
      }
    }
  }

  if (msg.src == msg.dest) {
    // Local delivery (e.g., the home node is the requester's own node).
    Message local = msg;
    sim_.schedule(cfg_.localLatency, [this, local] { deliver(local); });
    return;
  }
  auto links = route(msg.src, msg.dest);
  if (cfg_.yieldCheckerTraffic &&
      trafficClassOf(msg.type) != TrafficClass::kCoherence &&
      !links.empty() && linkFree_[links.front()] > sim_.now()) {
    // Low-priority injection: hold the message at the source until its
    // first link drains, so coherence messages sent meanwhile overtake it.
    const Cycle retryAt = linkFree_[links.front()];
    sim_.scheduleAt(retryAt, [this, msg = std::move(msg),
                              links = std::move(links)]() mutable {
      if (msg.netEpoch != epoch_) return;  // squashed by BER recovery
      if (cfg_.yieldCheckerTraffic && !links.empty() &&
          linkFree_[links.front()] > sim_.now()) {
        // Still busy (someone grabbed it again): keep yielding.
        const Cycle again = linkFree_[links.front()];
        Message m2 = std::move(msg);
        sim_.scheduleAt(again, [this, m2 = std::move(m2),
                                links = std::move(links)]() mutable {
          // Second retry proceeds regardless: bounded injection delay.
          traverse(std::move(m2), std::move(links), 0);
        });
        return;
      }
      traverse(std::move(msg), std::move(links), 0);
    });
    return;
  }
  traverse(std::move(msg), std::move(links), 0);
}

void TorusNetwork::traverse(Message msg, std::vector<std::size_t> links,
                            std::size_t idx) {
  if (idx >= links.size()) {
    deliver(msg);
    return;
  }
  const std::size_t link = links[idx];
  const Cycle depart = std::max(sim_.now(), linkFree_[link]);
  const Cycle ser = serializationCycles(msg.sizeBytes());
  linkFree_[link] = depart + ser;
  linkBytes_[link] += msg.sizeBytes();
  classBytes_[static_cast<std::size_t>(trafficClassOf(msg.type))] +=
      msg.sizeBytes();
  const Cycle arrive = depart + ser + cfg_.hopLatency;
  sim_.scheduleAt(arrive, [this, msg = std::move(msg),
                           links = std::move(links), idx]() mutable {
    traverse(std::move(msg), std::move(links), idx + 1);
  });
}

void TorusNetwork::deliver(const Message& msg) {
  if (msg.netEpoch != epoch_) return;  // squashed by BER recovery
  NetworkEndpoint* ep = endpoints_[msg.dest];
  DVMC_ASSERT(ep != nullptr, "message delivered to unattached node");
  ep->onMessage(msg);
}

void TorusNetwork::resetStats() {
  std::fill(linkBytes_.begin(), linkBytes_.end(), 0);
  classBytes_.fill(0);
  statsStart_ = sim_.now();
  messagesSent_ = 0;
}

std::uint64_t TorusNetwork::totalBytes() const {
  std::uint64_t sum = 0;
  for (auto b : linkBytes_) sum += b;
  return sum;
}

std::uint64_t TorusNetwork::maxLinkBytes() const {
  std::uint64_t m = 0;
  for (auto b : linkBytes_) m = std::max(m, b);
  return m;
}

double TorusNetwork::peakLinkUtilization() const {
  const Cycle elapsed = sim_.now() - statsStart_;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(maxLinkBytes()) / static_cast<double>(elapsed);
}

}  // namespace dvmc
