// Slab-backed free-list pool for in-flight interconnect messages.
//
// A Message carries a full 64-byte DataBlock, so letting the networks
// capture messages by value in scheduled lambdas re-copied the payload at
// every torus hop, retry, and broadcast delivery — and pushed every such
// capture past any inline small-buffer budget. Instead, a message is moved
// into a pooled node once at injection and the scheduled events carry a
// 16-byte RAII handle. Nodes come from slabs and recycle through a free
// list, so steady-state traffic performs zero allocations; the pool only
// grows when the number of simultaneously in-flight messages exceeds every
// previous high-water mark.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "net/message.hpp"

namespace dvmc {

class PooledMessage;

class MessagePool {
 public:
  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  /// Moves `m` into a recycled (or freshly slabbed) node.
  inline PooledMessage acquire(Message m);

  /// Messages currently checked out (for tests and sizing diagnostics).
  std::size_t liveCount() const { return live_; }
  /// Total nodes ever created — the in-flight high-water mark, rounded up
  /// to slab granularity.
  std::size_t capacity() const { return slabs_.size() * kSlabMessages; }

 private:
  friend class PooledMessage;
  struct Node {
    Message msg;
    Node* next = nullptr;
  };
  static constexpr std::size_t kSlabMessages = 64;

  Node* take() {
    if (freeList_ == nullptr) grow();
    Node* n = freeList_;
    freeList_ = n->next;
    ++live_;
    return n;
  }

  void grow() {
    slabs_.emplace_back(new Node[kSlabMessages]);
    Node* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabMessages; ++i) {
      slab[i].next = freeList_;
      freeList_ = &slab[i];
    }
  }

  void releaseNode(Node* n) {
    DVMC_ASSERT(live_ > 0, "MessagePool release without a live message");
    n->next = freeList_;
    freeList_ = n;
    --live_;
  }

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* freeList_ = nullptr;
  std::size_t live_ = 0;
};

/// Move-only owning handle to a pooled Message. Destruction (or release())
/// returns the node to the pool; a moved-from or default-constructed handle
/// is empty and releasing it is a no-op, so double-release cannot corrupt
/// the free list.
class PooledMessage {
 public:
  PooledMessage() = default;
  PooledMessage(PooledMessage&& other) noexcept
      : pool_(other.pool_), node_(other.node_) {
    other.pool_ = nullptr;
    other.node_ = nullptr;
  }
  PooledMessage& operator=(PooledMessage&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      node_ = other.node_;
      other.pool_ = nullptr;
      other.node_ = nullptr;
    }
    return *this;
  }
  PooledMessage(const PooledMessage&) = delete;
  PooledMessage& operator=(const PooledMessage&) = delete;
  ~PooledMessage() { release(); }

  explicit operator bool() const noexcept { return node_ != nullptr; }

  Message& operator*() const {
    DVMC_ASSERT(node_ != nullptr, "dereferencing an empty PooledMessage");
    return node_->msg;
  }
  Message* operator->() const {
    DVMC_ASSERT(node_ != nullptr, "dereferencing an empty PooledMessage");
    return &node_->msg;
  }

  /// Returns the message to the pool early; safe to call repeatedly.
  void release() noexcept {
    if (node_ != nullptr) {
      pool_->releaseNode(node_);
      pool_ = nullptr;
      node_ = nullptr;
    }
  }

 private:
  friend class MessagePool;
  PooledMessage(MessagePool* pool, MessagePool::Node* node)
      : pool_(pool), node_(node) {}

  MessagePool* pool_ = nullptr;
  MessagePool::Node* node_ = nullptr;
};

inline PooledMessage MessagePool::acquire(Message m) {
  Node* n = take();
  n->msg = std::move(m);
  return PooledMessage(this, n);
}

}  // namespace dvmc
