// Totally-ordered broadcast address network for the snooping protocol
// (Table 6: "bcast tree, 2.5 GB/s links, ordered").
//
// All coherence requests are serialized through a root arbiter which
// assigns each broadcast a global rank (`snoopOrder`). Every endpoint —
// including the sender — observes broadcasts in exactly that order, which
// is what makes a snooping protocol's state transitions unambiguous and
// provides DVMC's snooping logical time base ("number of coherence
// requests processed so far").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.hpp"
#include "net/message_pool.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

struct BroadcastTreeConfig {
  double bytesPerCycle = 1.25;  // 2.5 GB/s at 2 GHz
  Cycle treeLatency = 8;        // root -> leaves propagation
};

class BroadcastTree {
 public:
  using FaultFilter = std::function<NetFaultAction(Message&)>;

  BroadcastTree(Simulator& sim, std::size_t numNodes,
                BroadcastTreeConfig cfg = {});

  void attach(NodeId node, NetworkEndpoint* ep);

  /// Broadcasts `msg` to every endpoint in global order (dest is ignored).
  void broadcast(Message msg);

  void setFaultFilter(FaultFilter f) { faultFilter_ = std::move(f); }

  std::uint64_t broadcastsIssued() const { return order_; }
  void bumpEpoch() { ++epoch_; }
  std::uint64_t totalBytes() const { return totalBytes_; }
  void resetStats() { totalBytes_ = 0; }

 private:
  Simulator& sim_;
  std::size_t n_;
  BroadcastTreeConfig cfg_;
  std::vector<NetworkEndpoint*> endpoints_;
  MessagePool pool_;  // in-flight broadcasts; scheduled deliveries carry handles
  Cycle rootFree_ = 0;
  std::uint32_t epoch_ = 0;
  std::uint64_t order_ = 0;
  std::uint64_t nextMsgId_ = 1;
  std::uint64_t totalBytes_ = 0;
  FaultFilter faultFilter_;
};

}  // namespace dvmc
