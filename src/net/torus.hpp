// 2D torus interconnect (Table 6: "2D torus, 2.5 GB/s links, unordered").
//
// Nodes are arranged on a cols x rows grid with wraparound links in both
// dimensions. Routing is dimension-order (X first, then Y) along the
// shorter wrap direction. Each directed link models serialization at a
// configurable bandwidth plus a fixed per-hop latency; messages queue when
// a link is busy. Per-link byte counters feed the Figure-7 "bandwidth on
// the highest loaded link" measurement.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.hpp"
#include "net/message_pool.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

struct TorusConfig {
  double bytesPerCycle = 1.25;  // 2.5 GB/s at a 2 GHz core clock
  Cycle hopLatency = 4;         // router + wire traversal per hop
  Cycle localLatency = 1;       // src == dest shortcut

  // Section 6.2.3: "DVMC traffic has little impact ... as long as the
  // transmission can be delayed until traffic bursts are over." When set,
  // checker/BER messages yield at injection: they wait at the source until
  // their first link is idle, letting coherence traffic overtake them.
  bool yieldCheckerTraffic = false;
};

class TorusNetwork {
 public:
  using FaultFilter = std::function<NetFaultAction(Message&)>;

  TorusNetwork(Simulator& sim, std::size_t numNodes, TorusConfig cfg = {});

  void attach(NodeId node, NetworkEndpoint* ep);

  /// Injects a message into the network. Delivery is asynchronous.
  void send(Message msg);

  /// Installs (or clears, with nullptr-like empty function) the fault hook.
  void setFaultFilter(FaultFilter f) { faultFilter_ = std::move(f); }

  // --- statistics ---
  void resetStats();
  std::uint64_t totalBytes() const;
  std::uint64_t maxLinkBytes() const;
  std::uint64_t classBytes(TrafficClass c) const {
    return classBytes_[static_cast<std::size_t>(c)];
  }
  const std::vector<std::uint64_t>& linkBytes() const { return linkBytes_; }
  Cycle statsStart() const { return statsStart_; }
  std::uint64_t messagesSent() const { return messagesSent_; }

  /// Mean bytes/cycle on the most heavily loaded directed link since the
  /// last resetStats(). (Figure 7's metric.)
  double peakLinkUtilization() const;

  std::size_t numNodes() const { return n_; }

  /// BER recovery: squashes every in-flight message (stale epochs are
  /// dropped at delivery).
  void bumpEpoch() { ++epoch_; }

 private:
  // Directions for directed links out of each node.
  enum Dir : std::size_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

  std::size_t linkId(NodeId node, Dir d) const { return node * 4 + d; }
  /// Table lookup (nbr_, filled once in the constructor): the routing hot
  /// path runs this per hop, and cols_/rows_ are runtime values, so the
  /// arithmetic form costs hardware div/mod per call.
  NodeId neighbor(NodeId node, Dir d) const { return nbr_[linkId(node, d)]; }
  NodeId neighborArith(NodeId node, Dir d) const;
  /// Next hop under dimension-order routing (X first, shorter wrap
  /// direction); requires cur != dest. Routing is stateless, so in-flight
  /// messages carry only their current node — no materialized route.
  Dir nextDir(NodeId cur, NodeId dest) const;
  std::size_t firstLink(NodeId src, NodeId dest) const {
    return linkId(src, nextDir(src, dest));
  }
  /// Advances a pooled message one hop from `cur` (delivering at dest).
  void traverse(PooledMessage pm, NodeId cur);
  void inject(PooledMessage pm);
  void deliver(const Message& msg);
  Cycle serializationCycles(std::size_t bytes);

  Simulator& sim_;
  std::size_t n_;
  std::size_t cols_;
  std::size_t rows_;
  TorusConfig cfg_;
  std::vector<NetworkEndpoint*> endpoints_;
  MessagePool pool_;  // in-flight messages; scheduled hops carry handles
  std::vector<NodeId> nbr_;            // [linkId]: precomputed neighbor
  std::vector<std::uint8_t> xOf_, yOf_;  // [node]: torus coordinates
  // Lazily filled ceil(bytes / bytesPerCycle) for small wire sizes (the
  // handful of distinct Message::sizeBytes() values); 0 marks unfilled.
  std::vector<Cycle> serCache_;
  std::vector<Cycle> linkFree_;
  std::vector<std::uint64_t> linkBytes_;
  std::array<std::uint64_t, kNumTrafficClasses> classBytes_{};
  FaultFilter faultFilter_;
  std::uint32_t epoch_ = 0;
  std::uint64_t nextMsgId_ = 1;
  std::uint64_t messagesSent_ = 0;
  Cycle statsStart_ = 0;
};

}  // namespace dvmc
