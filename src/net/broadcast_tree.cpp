#include "net/broadcast_tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dvmc {

BroadcastTree::BroadcastTree(Simulator& sim, std::size_t numNodes,
                             BroadcastTreeConfig cfg)
    : sim_(sim), n_(numNodes), cfg_(cfg) {
  DVMC_ASSERT(numNodes >= 1, "broadcast tree needs at least one node");
  endpoints_.resize(n_, nullptr);
}

void BroadcastTree::attach(NodeId node, NetworkEndpoint* ep) {
  DVMC_ASSERT(node < n_, "attach: node out of range");
  endpoints_[node] = ep;
}

void BroadcastTree::broadcast(Message msg) {
  msg.id = nextMsgId_++;
  Cycle extraDelay = 0;

  if (faultFilter_) {
    switch (faultFilter_(msg)) {
      case NetFaultAction::kDeliver:
        break;
      case NetFaultAction::kDrop:
        return;
      case NetFaultAction::kDuplicate:
        // Re-enter; the duplicate gets its own slot in the total order.
        sim_.schedule(1, [this, pm = pool_.acquire(msg)]() mutable {
          // Bypass the filter for the duplicate to avoid infinite loops.
          auto saved = std::move(faultFilter_);
          faultFilter_ = nullptr;
          broadcast(std::move(*pm));
          faultFilter_ = std::move(saved);
        });
        break;
      case NetFaultAction::kDelay:
        // Ordered-network reordering fault: the broadcast keeps its slot in
        // the total order but reaches the leaves after later broadcasts.
        extraDelay = 400;
        break;
    }
  }

  // Root arbitration: one broadcast occupies the tree for its serialization
  // time; ranks are assigned in arbitration order.
  const Cycle ser = static_cast<Cycle>(
      std::ceil(static_cast<double>(msg.sizeBytes()) / cfg_.bytesPerCycle));
  const Cycle start = std::max(sim_.now() + 1, rootFree_);
  rootFree_ = start + ser;
  msg.snoopOrder = order_++;
  msg.netEpoch = epoch_;
  totalBytes_ += msg.sizeBytes() * n_;  // fan-out to every leaf

  const Cycle deliverAt = start + ser + cfg_.treeLatency + extraDelay;
  sim_.scheduleAt(deliverAt, [this, pm = pool_.acquire(std::move(msg))] {
    if (pm->netEpoch != epoch_) return;  // squashed by BER recovery
    for (std::size_t node = 0; node < n_; ++node) {
      DVMC_ASSERT(endpoints_[node] != nullptr,
                  "broadcast delivered to unattached node");
      // The leaves see the one pooled copy with dest patched per endpoint;
      // onMessage takes const Message& and may not retain the reference
      // (the old per-leaf stack copy died on return just the same).
      pm->dest = static_cast<NodeId>(node);
      endpoints_[node]->onMessage(*pm);
    }
  });
}

}  // namespace dvmc
