#include "dvmc/memory_epoch_checker.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>

namespace {
dvmc::Addr traceBlock() {
  static const dvmc::Addr blk = [] {
    const char* env = std::getenv("DVMC_TRACE_BLOCK");
    return env ? std::strtoull(env, nullptr, 0) : 0ULL;
  }();
  return blk;
}
}  // namespace

namespace dvmc {

MemoryEpochChecker::MemoryEpochChecker(Simulator& sim, NodeId node,
                                       const DvmcConfig& cfg, ErrorSink* sink,
                                       LogicalClock& clock)
    : sim_(sim), node_(node), cfg_(cfg), sink_(sink), clock_(clock) {}

MemoryEpochChecker::MetEntry* MemoryEpochChecker::entryFor(Addr blk) {
  auto it = met_.find(blk);
  return it == met_.end() ? nullptr : &it->second;
}

void MemoryEpochChecker::onHomeRequest(Addr blk, const DataBlock& memData) {
  auto hit = met_.find(blk);
  if (hit != met_.end()) {
    hit->second.evictPending = false;  // cached again
    return;
  }
  // Fresh MET entry: the current logical time closes a fictitious
  // Read-Write epoch whose end hash is the block's memory image.
  MetEntry e;
  e.lastROEnd = clock_.now16();
  e.lastRWEnd = e.lastROEnd;
  e.lastRWEndHash = hashBlock(memData);
  e.hashValid = true;
  met_.emplace(blk, e);
  gEntries_.set(met_.size());
  cEntryCreated_.inc();
}

void MemoryEpochChecker::onBlockUncached(Addr blk) {
  auto it = met_.find(blk);
  if (it == met_.end()) return;
  it->second.evictPending = true;
  maybeEvict(blk, it->second);
}

void MemoryEpochChecker::maybeEvict(Addr blk, MetEntry& e) {
  if (!e.evictPending) return;
  // Keep the entry while informs for it are still buffered (their checks
  // would otherwise run against a freshly re-seeded entry) or while an
  // announced open epoch references it; eviction retries after each
  // processed inform.
  if (e.openRO != 0 || e.openRW != kInvalidNode) {
    cEvictDeferred_.inc();
    return;
  }
  for (const QueuedInform& q : queue_) {
    if (blockAddr(q.msg.addr) == blk) {
      cEvictDeferred_.inc();
      return;
    }
  }
  met_.erase(blk);
  gEntries_.set(met_.size());
  cEntryEvicted_.inc();
}

void MemoryEpochChecker::onInform(const Message& msg) {
  switch (msg.type) {
    case MsgType::kInformEpoch:
      enqueue(msg);
      return;
    case MsgType::kInformOpenEpoch:
      // Open/Closed announcements are processed immediately, outside the
      // sorting queue: the pair travels the same network path in order,
      // and queue-delaying the Open while the Close processes immediately
      // would wedge the open-epoch state whenever an announced epoch ends
      // within the sorting residence. The announced epoch is old by
      // construction (wraparound scrubbing), so its begin precedes any
      // queued inform and ordering is preserved.
      processInform(msg);
      return;
    case MsgType::kInformClosedEpoch:
      // Closes an epoch announced earlier; processed immediately.
      processClosed(msg);
      return;
    default:
      DVMC_FATAL("non-inform message delivered to MemoryEpochChecker");
  }
}

void MemoryEpochChecker::enqueue(const Message& msg) {
  queue_.push_back(QueuedInform{msg, arrivalCounter_++, sim_.now()});
  std::push_heap(queue_.begin(), queue_.end(),
                 [](const QueuedInform& a, const QueuedInform& b) {
                   // Largest-on-top heap: "a < b" when a begins later.
                   if (a.msg.epoch.begin != b.msg.epoch.begin) {
                     return ltimeBefore(b.msg.epoch.begin, a.msg.epoch.begin);
                   }
                   return a.arrival > b.arrival;
                 });
  cInformsQueued_.inc();
  while (queue_.size() > cfg_.informQueueCapacity) {
    processOldest();
  }
  // Each inform rests in the queue for a bounded sorting delay before the
  // oldest (earliest-begin) entry may be processed; the residence window
  // absorbs network-latency skew between informs from different nodes so
  // that begin-time order is (almost) always restored before processing.
  sim_.schedule(cfg_.informSortDelay, [this] { popTick(); });
}

void MemoryEpochChecker::popTick() {
  if (queue_.empty()) return;
  const QueuedInform& top = queue_.front();  // heap top = earliest begin
  const Cycle rested = sim_.now() - top.arrivalCycle;
  if (rested < cfg_.informSortDelay) {
    // The earliest-begin inform arrived recently; give stragglers with
    // even earlier begins a chance to show up before committing to it.
    sim_.schedule(cfg_.informSortDelay - rested, [this] { popTick(); });
    return;
  }
  processOldest();
}

void MemoryEpochChecker::processOldest() {
  DVMC_ASSERT(!queue_.empty(), "processOldest on empty queue");
  std::pop_heap(queue_.begin(), queue_.end(),
                [](const QueuedInform& a, const QueuedInform& b) {
                  if (a.msg.epoch.begin != b.msg.epoch.begin) {
                    return ltimeBefore(b.msg.epoch.begin, a.msg.epoch.begin);
                  }
                  return a.arrival > b.arrival;
                });
  hSortResidence_.add(sim_.now() - queue_.back().arrivalCycle);
  const Message msg = queue_.back().msg;
  queue_.pop_back();
  processInform(msg);
}

void MemoryEpochChecker::drain() {
  while (!queue_.empty()) processOldest();
}

void MemoryEpochChecker::reportViolation(Addr blk, const char* what) {
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk, what});
  }
  cViolations_.inc();
}

void MemoryEpochChecker::processInform(const Message& msg) {
  const Addr blk = blockAddr(msg.addr);
  MetEntry* e = entryFor(blk);
  if (e == nullptr) {
    // An inform for a block the home never saw requested: either a fault
    // (fabricated / misrouted message) or an inform that outlived its MET
    // entry. Create a fresh entry conservatively and continue.
    cInformWithoutEntry_.inc();
    e = &met_[blk];
    e->lastROEnd = 0;
    e->lastRWEnd = 0;
    e->hashValid = false;
  }
  const EpochPayload& ep = msg.epoch;
  if (blk == traceBlock() && traceBlock() != 0) {
    std::fprintf(stderr,
                 "[%llu] MET n%u proc %s src=%u begin=%u end=%u bh=%04x "
                 "eh=%04x | lastRW=%u lastRO=%u rwHash=%04x hv=%d\n",
                 (unsigned long long)sim_.now(), node_,
                 ep.readWrite ? "RW" : "RO", msg.src, ep.begin, ep.end,
                 ep.beginHash, ep.endHash, e->lastRWEnd, e->lastROEnd,
                 e->lastRWEndHash, e->hashValid);
  }
  cInformsProcessed_.inc();
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kInform,
               ep.readWrite ? "met.informRW" : "met.informRO", node_, blk,
               msg.src);
  }

  // (a) overlap checks.
  if (ep.readWrite) {
    if (ltimeBefore(ep.begin, e->lastRWEnd)) {
      reportViolation(blk, "RW epoch overlaps previous RW epoch");
    }
    if (ltimeBefore(ep.begin, e->lastROEnd)) {
      reportViolation(blk, "RW epoch overlaps previous RO epoch");
    }
    if (e->openRO != 0 || e->openRW != kInvalidNode) {
      reportViolation(blk, "RW epoch overlaps an open epoch");
    }
  } else {
    if (ltimeBefore(ep.begin, e->lastRWEnd)) {
      reportViolation(blk, "RO epoch overlaps previous RW epoch");
    }
    if (e->openRW != kInvalidNode) {
      reportViolation(blk, "RO epoch overlaps an open RW epoch");
    }
  }

  // (b) data propagation: the block seen at epoch begin must match the end
  // of the latest Read-Write epoch.
  if (e->hashValid && ep.beginHash != e->lastRWEndHash) {
    reportViolation(blk, "data propagation hash mismatch");
  }

  if (msg.type == MsgType::kInformOpenEpoch) {
    if (ep.readWrite) {
      e->openRW = msg.src;
    } else {
      e->openRO |= (1ull << (msg.src % 64));
    }
    cOpenEpochs_.inc();
    return;
  }

  // Regular (closed) Inform-Epoch: fold the end time and hash in.
  if (ep.readWrite) {
    if (ltimeBefore(e->lastRWEnd, ep.end)) e->lastRWEnd = ep.end;
    if (ep.endHashValid) {
      e->lastRWEndHash = ep.endHash;
      e->hashValid = true;
    } else {
      e->hashValid = false;
    }
  } else {
    if (ltimeBefore(e->lastROEnd, ep.end)) e->lastROEnd = ep.end;
  }
  maybeEvict(blk, *e);
}

void MemoryEpochChecker::processClosed(const Message& msg) {
  const Addr blk = blockAddr(msg.addr);
  MetEntry* e = entryFor(blk);
  if (e == nullptr) {
    cClosedWithoutEntry_.inc();
    return;
  }
  cClosedEpochs_.inc();
  if (msg.epoch.readWrite) {
    if (e->openRW != msg.src) {
      cClosedWithoutOpen_.inc();
    }
    e->openRW = kInvalidNode;
    if (ltimeBefore(e->lastRWEnd, msg.epoch.end)) {
      e->lastRWEnd = msg.epoch.end;
    }
    // The short Inform-Closed-Epoch carries no end hash (paper): the next
    // data-propagation check for this block must be skipped.
    e->hashValid = false;
  } else {
    e->openRO &= ~(1ull << (msg.src % 64));
    if (ltimeBefore(e->lastROEnd, msg.epoch.end)) {
      e->lastROEnd = msg.epoch.end;
    }
  }
  maybeEvict(blk, *e);
}

void MemoryEpochChecker::reset() {
  met_.clear();
  queue_.clear();
  gEntries_.set(0);
}

void MemoryEpochChecker::dumpForensics(Json& out, Addr focus) const {
  out.set("metEntries", Json::num(static_cast<std::uint64_t>(met_.size())))
      .set("queuedInforms",
           Json::num(static_cast<std::uint64_t>(queue_.size())));
  const Addr blk = blockAddr(focus);
  auto it = met_.find(blk);
  out.set("focusResident", Json::boolean(it != met_.end()));
  if (it == met_.end()) return;
  const MetEntry& e = it->second;
  Json row = Json::object();
  row.set("lastROEnd", Json::num(std::uint64_t{e.lastROEnd}))
      .set("lastRWEnd", Json::num(std::uint64_t{e.lastRWEnd}))
      .set("lastRWEndHash", Json::num(std::uint64_t{e.lastRWEndHash}))
      .set("hashValid", Json::boolean(e.hashValid))
      .set("openROMask", Json::num(e.openRO))
      .set("openRWNode",
           e.openRW == kInvalidNode ? Json() : Json::num(std::uint64_t{e.openRW}))
      .set("evictPending", Json::boolean(e.evictPending));
  out.set("focusEpochRow", std::move(row));
}

}  // namespace dvmc
