#include "dvmc/shadow_checker.hpp"

namespace dvmc {

// ---------------------------------------------------------------------------
// ShadowCacheChecker
// ---------------------------------------------------------------------------

void ShadowCacheChecker::report(Addr blk, const char* what) {
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk, what});
  }
  cViolations_.inc();
}

void ShadowCacheChecker::onEpochBegin(Addr blk, bool readWrite,
                                      const DataBlock& data,
                                      std::uint64_t ltime) {
  (void)data;
  (void)ltime;
  auto [it, inserted] = shadow_.try_emplace(blk, readWrite);
  if (!inserted) {
    report(blk, "shadow: permission granted while already held");
    it->second = readWrite;
  }
  (readWrite ? cBeginRW_ : cBeginRO_).inc();
}

void ShadowCacheChecker::onEpochEnd(Addr blk, const DataBlock& data,
                                    std::uint64_t ltime) {
  (void)data;
  (void)ltime;
  if (shadow_.erase(blk) == 0) {
    report(blk, "shadow: permission revoked but never granted");
  }
}

void ShadowCacheChecker::onPerformAccess(Addr blk, bool isWrite) {
  auto it = shadow_.find(blk);
  if (it == shadow_.end()) {
    report(blk, isWrite ? "shadow: store without any permission"
                        : "shadow: load without any permission");
    return;
  }
  if (isWrite && !it->second) {
    report(blk, "shadow: store under read-only permission");
  }
  cAccessChecks_.inc();
}

// ---------------------------------------------------------------------------
// ShadowHomeChecker
// ---------------------------------------------------------------------------

void ShadowHomeChecker::report(Addr blk, const char* what) {
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk, what});
  }
  cViolations_.inc();
}

void ShadowHomeChecker::onHomeRequest(Addr blk, const DataBlock& memData) {
  auto [it, inserted] = entries_.try_emplace(blk);
  if (inserted) {
    it->second.memHash = hashBlock(memData);
    it->second.hashValid = true;
    it->second.memClean = true;
    cEntryCreated_.inc();
  }
}

void ShadowHomeChecker::onBlockUncached(Addr blk) {
  entries_.erase(blk);
  cEntryEvicted_.inc();
}

void ShadowHomeChecker::onHomeGrant(Addr blk, NodeId to, bool readWrite,
                                    bool fromMemory, std::uint16_t memHash) {
  auto it = entries_.find(blk);
  if (it == entries_.end()) {
    // Requests always precede grants; tolerate (fault paths) and re-seed.
    it = entries_.try_emplace(blk).first;
    cGrantWithoutEntry_.inc();
  }
  Entry& e = it->second;
  (readWrite ? cGrantRW_ : cGrantRO_).inc();

  if (fromMemory) {
    // The home served the memory image. If any cache has held write
    // permission since the last accepted writeback, memory is stale and
    // this grant propagates wrong data.
    if (!e.memClean) {
      report(blk, "shadow: memory data served while a cache copy is dirty");
    } else if (e.hashValid && memHash != e.memHash) {
      report(blk, "shadow: memory image changed without a writeback");
    }
  }

  if (readWrite) {
    e.owner = to;
    e.sharers.clear();
    e.memClean = false;  // a cache may dirty the block from here on
  } else {
    e.sharers.insert(to);
  }
}

void ShadowHomeChecker::onHomeWriteback(Addr blk, NodeId from,
                                        std::uint16_t hash, bool accepted) {
  auto it = entries_.find(blk);
  if (it == entries_.end()) {
    cWbWithoutEntry_.inc();
    return;
  }
  Entry& e = it->second;
  if (accepted) {
    if (e.owner != from) {
      report(blk, "shadow: writeback accepted from a non-owner");
    }
    e.owner = kInvalidNode;
    e.memHash = hash;
    e.hashValid = true;
    e.memClean = true;
    cWbAccepted_.inc();
  } else {
    if (e.owner == from) {
      report(blk, "shadow: writeback from the current owner rejected");
    }
    cWbRejected_.inc();
  }
}

void ShadowCacheChecker::dumpForensics(Json& out, Addr focus) const {
  out.set("entries", Json::num(static_cast<std::uint64_t>(shadow_.size())));
  auto it = shadow_.find(blockAddr(focus));
  out.set("focusResident", Json::boolean(it != shadow_.end()));
  if (it != shadow_.end()) {
    out.set("focusPermission", Json::str(it->second ? "RW" : "RO"));
  }
}

void ShadowHomeChecker::dumpForensics(Json& out, Addr focus) const {
  out.set("entries", Json::num(static_cast<std::uint64_t>(entries_.size())));
  auto it = entries_.find(blockAddr(focus));
  out.set("focusResident", Json::boolean(it != entries_.end()));
  if (it == entries_.end()) return;
  const Entry& e = it->second;
  Json sharers = Json::array();
  for (NodeId n : e.sharers) sharers.push(Json::num(std::uint64_t{n}));
  Json row = Json::object();
  row.set("owner",
          e.owner == kInvalidNode ? Json() : Json::num(std::uint64_t{e.owner}))
      .set("sharers", std::move(sharers))
      .set("memHash", Json::num(std::uint64_t{e.memHash}))
      .set("hashValid", Json::boolean(e.hashValid))
      .set("memClean", Json::boolean(e.memClean));
  out.set("focusRow", std::move(row));
}

}  // namespace dvmc
