// Configuration knobs for the DVMC checkers.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dvmc {

struct DvmcConfig {
  // Which checkers are active (the paper's SN / SN+DVCC / SN+DVUO / full
  // DVMC configurations toggle these). This is the single source of truth
  // for the enables — SystemConfig carries no duplicate flags; a
  // default-constructed system is unprotected, and the withDvmc factory
  // turns all three on.
  bool uniprocOrdering = false;
  bool allowableReordering = false;
  bool cacheCoherence = false;

  bool anyChecker() const {
    return uniprocOrdering || allowableReordering || cacheCoherence;
  }
  void enableAll() {
    uniprocOrdering = allowableReordering = cacheCoherence = true;
  }

  // Uniprocessor Ordering checker.
  std::size_t vcWordCapacity = 64;  // Verification Cache entries (words)

  // Allowable Reordering checker: artificial membar injection period
  // (Section 4.2: about one per 100k cycles).
  Cycle membarInjectionPeriod = 100'000;

  // Cache Coherence checker.
  std::size_t informQueueCapacity = 256;   // MET priority queue (Table 6)
  Cycle informSortDelay = 6'000;           // residence time in the queue
  std::size_t scrubFifoCapacity = 128;     // CET/MET scrub FIFOs
  Cycle scrubCheckPeriod = 4'096;          // FIFO head inspection period
  std::uint64_t scrubAgeTicks = 1u << 14;  // announce epochs older than this
};

}  // namespace dvmc
