// Memory-side half of the Cache Coherence checker (Section 4.3).
//
// Each home memory controller keeps a Memory Epoch Table (MET) with, per
// block: the latest end time of any Read-Only epoch, the latest end time of
// any Read-Write epoch, and the CRC-16 of the block at the end of the
// latest Read-Write epoch (48 bits per entry). Incoming Inform-Epochs are
// sorted by epoch begin time in a fixed-capacity priority queue; when an
// entry is processed the checker verifies
//   (a) no illegal overlap — a Read-Only epoch must not begin before the
//       latest Read-Write end; a Read-Write epoch must not begin before
//       either latest end;
//   (b) data propagation — the epoch's begin hash must equal the hash at
//       the end of the latest Read-Write epoch.
// Open-epoch bookkeeping (wraparound scrubbing) tracks announced-but-open
// epochs in a sharers bitmask / owner id, exactly as described in the
// paper, including the storage-sharing trick with an OpenEpoch bit.
#pragma once

#include <cstdint>
#include <vector>

#include "coherence/interfaces.hpp"
#include "coherence/logical_clock.hpp"
#include "common/crc16.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "common/wrap16.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "dvmc/dvmc_config.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class MemoryEpochChecker final : public HomeObserver {
 public:
  MemoryEpochChecker(Simulator& sim, NodeId node, const DvmcConfig& cfg,
                     ErrorSink* sink, LogicalClock& clock);

  // --- HomeObserver ---
  void onHomeRequest(Addr blk, const DataBlock& memData) override;
  void onBlockUncached(Addr blk) override;

  /// Inform-Epoch / Inform-Open-Epoch / Inform-Closed-Epoch arrival.
  void onInform(const Message& msg);

  /// Processes everything still buffered in the priority queue.
  void drain();

  /// Clears all state (BER recovery).
  void reset();

  const MetricSet& stats() const { return stats_; }
  std::size_t metEntries() const { return met_.size(); }
  std::size_t peakMetEntries() const {
    return static_cast<std::size_t>(gEntries_.peak());
  }
  std::size_t queuedInforms() const { return queue_.size(); }

  /// Modeled MET storage (48 bits per entry, Section 6.3).
  static std::size_t modeledBitsPerEntry() { return 48; }

  /// Forensics dump: MET occupancy, inform-queue depth, and the focus
  /// block's epoch row (latest RO/RW end times, end-of-RW CRC-16 hash,
  /// open-epoch sharers/owner) — the state a DVCC violation is judged
  /// against.
  void dumpForensics(Json& out, Addr focus) const;

 private:
  struct MetEntry {
    LTime16 lastROEnd = 0;
    LTime16 lastRWEnd = 0;
    std::uint16_t lastRWEndHash = 0;
    bool hashValid = false;
    std::uint64_t openRO = 0;        // bitmask of nodes with open RO epochs
    NodeId openRW = kInvalidNode;    // node with an announced open RW epoch
    bool evictPending = false;       // home says uncached; informs buffered
  };

  struct QueuedInform {
    Message msg;
    std::uint64_t arrival;   // tie-break for equal begin times
    Cycle arrivalCycle = 0;  // enforces the minimum sorting residence
  };

  void enqueue(const Message& msg);
  void popTick();
  void maybeEvict(Addr blk, MetEntry& e);
  void processOldest();
  void processInform(const Message& msg);
  void processClosed(const Message& msg);
  MetEntry* entryFor(Addr blk);
  void reportViolation(Addr blk, const char* what);

  Simulator& sim_;
  NodeId node_;
  DvmcConfig cfg_;
  ErrorSink* sink_;
  LogicalClock& clock_;
  FlatMap<Addr, MetEntry> met_;
  std::vector<QueuedInform> queue_;  // heap ordered by wrapping begin time
  std::uint64_t arrivalCounter_ = 0;

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cEntryCreated_ = stats_.counter("met.entryCreated");
  Counter cEntryEvicted_ = stats_.counter("met.entryEvicted");
  Counter cEvictDeferred_ = stats_.counter("met.evictDeferred");
  Counter cInformsQueued_ = stats_.counter("met.informsQueued");
  Counter cInformsProcessed_ = stats_.counter("met.informsProcessed");
  Counter cInformWithoutEntry_ = stats_.counter("met.informWithoutEntry");
  Counter cViolations_ = stats_.counter("met.violations");
  Counter cOpenEpochs_ = stats_.counter("met.openEpochs");
  Counter cClosedEpochs_ = stats_.counter("met.closedEpochs");
  Counter cClosedWithoutEntry_ = stats_.counter("met.closedWithoutEntry");
  Counter cClosedWithoutOpen_ = stats_.counter("met.closedWithoutOpen");
  Gauge gEntries_ = stats_.gauge("met.entries");
  Histogram hSortResidence_ = stats_.histogram("met.informSortResidence");
};

}  // namespace dvmc
