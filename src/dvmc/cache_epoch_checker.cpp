#include "dvmc/cache_epoch_checker.hpp"

#include "common/assert.hpp"
#include "common/crc16.hpp"
#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>

namespace {
dvmc::Addr traceBlock() {
  static const dvmc::Addr blk = [] {
    const char* env = std::getenv("DVMC_TRACE_BLOCK");
    return env ? std::strtoull(env, nullptr, 0) : 0ULL;
  }();
  return blk;
}
}  // namespace

namespace dvmc {

CacheEpochChecker::CacheEpochChecker(Simulator& sim, NodeId node,
                                     const DvmcConfig& cfg, ErrorSink* sink,
                                     SendFn sendInform)
    : sim_(sim), node_(node), cfg_(cfg), sink_(sink), send_(std::move(sendInform)) {
  scrubFifo_.reserve(cfg_.scrubFifoCapacity);
}

void CacheEpochChecker::onEpochBegin(Addr blk, bool readWrite,
                                     const DataBlock& data,
                                     std::uint64_t ltime) {
  lastLtime_ = std::max(lastLtime_, ltime);
  auto [it, inserted] = cet_.try_emplace(blk);
  if (!inserted) {
    // An epoch beginning while one is open means the controller skipped an
    // end transition — only possible under faults. Report and restart.
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                     "epoch begin while epoch open"});
    }
    cDoubleBegin_.inc();
  }
  if (blk == traceBlock() && traceBlock() != 0) {
    std::fprintf(stderr, "[%llu] CET n%u begin %s ltime=%llu hash=%04x\n",
                 (unsigned long long)sim_.now(), node_,
                 readWrite ? "RW" : "RO", (unsigned long long)ltime,
                 hashBlock(data));
  }
  CetEntry& e = it->second;
  e.readWrite = readWrite;
  e.begin16 = ltimeTruncate(ltime);
  e.beginWide = ltime;
  e.beginHash = hashBlock(data);
  e.openAnnounced = false;
  e.epochId = nextEpochId_++;
  e.beginCycle = sim_.now();
  (readWrite ? cBeginRW_ : cBeginRO_).inc();
  gOpenEpochs_.set(cet_.size());

  // Wraparound scrubbing: remember to re-check this epoch before its
  // timestamp can wrap. Entries are popped by the periodic sweep when the
  // epoch has ended or aged into wraparound danger — never force-announced
  // early, which would flood the MET with open/closed informs for young
  // epochs. The simulator models the occupancy beyond the configured
  // hardware capacity as a statistic (a real implementation sizes the FIFO
  // to the cache or walks the CET directly).
  const bool fifoWasEmpty = scrubFifo_.empty();
  scrubFifo_.push_back(ScrubRecord{blk, e.epochId, ltime});
  if (scrubFifo_.size() > cfg_.scrubFifoCapacity) {
    cScrubOverflow_.inc();
  }
  if (fifoWasEmpty && !stopped_) {
    sim_.schedule(cfg_.scrubCheckPeriod, [this] { scrubSweep(); });
  }
}

void CacheEpochChecker::scrubSweep() {
  if (stopped_) return;
  // Pop records whose epoch already ended; announce heads that have aged
  // into wraparound danger.
  while (!scrubFifo_.empty()) {
    const ScrubRecord& head = scrubFifo_.front();
    auto it = cet_.find(head.blk);
    if (it == cet_.end() || it->second.epochId != head.epochId) {
      scrubFifo_.pop_front();
      continue;
    }
    if (lastLtime_ - head.beginWide >= cfg_.scrubAgeTicks) {
      if (!it->second.openAnnounced) announceOpen(head.blk, it->second);
      scrubFifo_.pop_front();
      continue;
    }
    break;  // head (and therefore everything behind it) is still young
  }
  if (!scrubFifo_.empty()) {
    sim_.schedule(cfg_.scrubCheckPeriod, [this] { scrubSweep(); });
  }
}

void CacheEpochChecker::announceOpen(Addr blk, CetEntry& e) {
  e.openAnnounced = true;
  Message m;
  m.type = MsgType::kInformOpenEpoch;
  m.src = node_;
  m.addr = blk;
  m.epoch.readWrite = e.readWrite;
  m.epoch.begin = e.begin16;
  m.epoch.beginHash = e.beginHash;
  send_(std::move(m));
  cInformOpen_.inc();
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kInform, "cet.informOpen", node_, blk,
               e.epochId);
  }
}

void CacheEpochChecker::onEpochEnd(Addr blk, const DataBlock& data,
                                   std::uint64_t ltime) {
  lastLtime_ = std::max(lastLtime_, ltime);
  auto it = cet_.find(blk);
  if (it == cet_.end()) {
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                     "epoch end without open epoch"});
    }
    cEndWithoutBegin_.inc();
    return;
  }
  if (blk == traceBlock() && traceBlock() != 0) {
    std::fprintf(stderr, "[%llu] CET n%u end ltime=%llu hash=%04x\n",
                 (unsigned long long)sim_.now(), node_,
                 (unsigned long long)ltime, hashBlock(data));
  }
  CetEntry& e = it->second;
  Message m;
  m.src = node_;
  m.addr = blk;
  if (e.openAnnounced) {
    m.type = MsgType::kInformClosedEpoch;
    m.epoch.readWrite = e.readWrite;
    m.epoch.end = ltimeTruncate(ltime);
    cInformClosed_.inc();
  } else {
    m.type = MsgType::kInformEpoch;
    m.epoch.readWrite = e.readWrite;
    m.epoch.begin = e.begin16;
    m.epoch.end = ltimeTruncate(ltime);
    m.epoch.beginHash = e.beginHash;
    // For Read-Only epochs the data cannot have changed; the paper omits
    // the second checksum, so we replicate the begin hash on the wire.
    m.epoch.endHash = e.readWrite ? hashBlock(data) : e.beginHash;
    cInformEpoch_.inc();
  }
  if (auto* t = sim_.tracer()) {
    t->span(e.beginCycle, sim_.now(), TraceKind::kEpoch,
            e.readWrite ? "cet.epochRW" : "cet.epochRO", node_, blk,
            e.epochId);
  }
  cet_.erase(it);
  gOpenEpochs_.set(cet_.size());
  send_(std::move(m));
}

void CacheEpochChecker::onPerformAccess(Addr blk, bool isWrite) {
  auto it = cet_.find(blk);
  if (it == cet_.end()) {
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                     isWrite ? "store performed outside any epoch"
                             : "load performed outside any epoch"});
    }
    cAccessOutsideEpoch_.inc();
    return;
  }
  if (isWrite && !it->second.readWrite) {
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kCacheCoherence, sim_.now(), node_, blk,
                     "store performed in Read-Only epoch"});
    }
    cWriteInRO_.inc();
  }
  cAccessChecks_.inc();
}

void CacheEpochChecker::flush(std::uint64_t ltime) {
  // Close every open epoch with its current (unhashable) state: callers
  // flush through the controller, which supplies data; here we only close
  // announced bookkeeping. Used at end-of-run drain in tests/benches.
  std::vector<Addr> blocks;
  blocks.reserve(cet_.size());
  for (const auto& [blk, e] : cet_) blocks.push_back(blk);
  // Canonical inform order: the CET is an open-addressing table whose
  // iteration order depends on insertion history, so sort the drain by
  // address to keep the emitted message sequence deterministic.
  std::sort(blocks.begin(), blocks.end());
  for (Addr blk : blocks) {
    auto it = cet_.find(blk);
    CetEntry& e = it->second;
    Message m;
    m.src = node_;
    m.addr = blk;
    if (e.openAnnounced) {
      m.type = MsgType::kInformClosedEpoch;
      m.epoch.readWrite = e.readWrite;
      m.epoch.end = ltimeTruncate(ltime);
    } else {
      m.type = MsgType::kInformEpoch;
      m.epoch.readWrite = e.readWrite;
      m.epoch.begin = e.begin16;
      m.epoch.end = ltimeTruncate(ltime);
      m.epoch.beginHash = e.beginHash;
      // No data available at a forced drain; RW epochs flushed this way
      // lose end-hash coverage, which the MET is told about explicitly.
      m.epoch.endHash = e.beginHash;
      m.epoch.endHashValid = !e.readWrite;
    }
    cet_.erase(it);
    send_(std::move(m));
  }
  scrubFifo_.clear();
  gOpenEpochs_.set(0);
}

bool CacheEpochChecker::injectEntryCorruption(std::uint64_t rand) {
  if (cet_.empty()) return false;
  // Modeled as a CET array fault touching a span of entries: a single
  // corrupted entry might belong to an epoch that never ends within the
  // observation window, so a realistic array-level fault (row/driver)
  // corrupts several.
  std::size_t start = rand % cet_.size();
  auto it = cet_.begin();
  std::advance(it, static_cast<long>(start));
  std::size_t corrupted = 0;
  for (; it != cet_.end() && corrupted < 32; ++it, ++corrupted) {
    it->second.beginHash ^= static_cast<std::uint16_t>(
        1u << ((rand >> 8) % 16));
  }
  cInjectedCorruption_.inc(corrupted);
  return corrupted > 0;
}

void CacheEpochChecker::reset() {
  cet_.clear();
  scrubFifo_.clear();
  stopped_ = false;
  gOpenEpochs_.set(0);
}

void CacheEpochChecker::dumpForensics(Json& out, Addr focus) const {
  out.set("openEpochs", Json::num(static_cast<std::uint64_t>(cet_.size())))
      .set("scrubFifoDepth",
           Json::num(static_cast<std::uint64_t>(scrubFifo_.size())))
      .set("lastLtime", Json::num(lastLtime_));
  const Addr blk = blockAddr(focus);
  auto it = cet_.find(blk);
  out.set("focusResident", Json::boolean(it != cet_.end()));
  if (it == cet_.end()) return;
  const CetEntry& e = it->second;
  Json row = Json::object();
  row.set("type", Json::str(e.readWrite ? "RW" : "RO"))
      .set("begin16", Json::num(std::uint64_t{e.begin16}))
      .set("beginWide", Json::num(e.beginWide))
      .set("beginHash", Json::num(std::uint64_t{e.beginHash}))
      .set("openAnnounced", Json::boolean(e.openAnnounced))
      .set("epochId", Json::num(e.epochId))
      .set("beginCycle", Json::num(e.beginCycle));
  out.set("focusEpoch", std::move(row));
}

}  // namespace dvmc
