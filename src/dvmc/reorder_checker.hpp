// Allowable Reordering checker (Section 4.2).
//
// Every instruction gets a sequence number at decode (its program-order
// rank). When an operation performs, the checker verifies that no
// operation it is constrained to precede has already performed:
//
//     for every class OPy with a constraint OPx < OPy:
//         seqX > max{OPy}        (else: error)
//     then max{OPx} = max(max{OPx}, seqX)
//
// Membars carry a 4-bit mask, so instead of one max{Membar} counter the
// checker keeps one counter per mask bit (the performed-membar rank is
// meaningful only for the orderings that membar actually enforced).
//
// Lost-operation detection: committed operations are tracked until they
// perform; a periodic artificial membar snapshots the oldest outstanding
// operation per class, and an operation still outstanding at the next
// injection (default 100k cycles, as in the paper) is reported lost.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/error_sink.hpp"
#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "consistency/ordering_table.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class ReorderChecker {
 public:
  ReorderChecker(Simulator& sim, NodeId node, ErrorSink* sink)
      : sim_(sim), node_(node), sink_(sink) {}

  /// An operation was committed (it must eventually perform). Membars are
  /// not tracked here — they perform at commit.
  void onCommit(OpType type, SeqNum seq);

  /// An operation performed. `table` is the ordering table of the model the
  /// instruction executes under (32-bit code runs TSO under PSO/RMO), and
  /// `mask` is the membar's 4-bit mask (ignored for other types).
  void onPerform(OpType type, std::uint8_t mask, SeqNum seq,
                 const OrderingTable& table);

  /// Artificial membar injection: call once per injection period. Compares
  /// the oldest outstanding operations against the previous snapshot and
  /// reports operations that failed to perform for a whole period.
  void injectCheckpointMembar();

  const MetricSet& stats() const { return stats_; }
  SeqNum maxLoad() const { return maxLoad_; }
  SeqNum maxStore() const { return maxStore_; }
  void reset();

  /// Forensics dump: the per-class max{OP} sequence registers (including
  /// the four per-mask-bit membar counters), outstanding-operation
  /// watermarks, and the lost-op snapshot — the state an AR violation is
  /// judged against.
  void dumpForensics(Json& out) const;

 private:
  void checkAgainst(OpClass cls, std::uint8_t instMask, SeqNum seq,
                    const OrderingTable& table, const char* opName);
  void updateCounters(OpType type, std::uint8_t mask, SeqNum seq);
  void removeOutstanding(OpType type, SeqNum seq);
  void reportViolation(SeqNum seq, const char* what);

  Simulator& sim_;
  NodeId node_;
  ErrorSink* sink_;

  SeqNum maxLoad_ = 0;
  SeqNum maxStore_ = 0;
  SeqNum maxMembarBit_[4] = {0, 0, 0, 0};

  std::set<SeqNum> outstandingLoads_;
  std::set<SeqNum> outstandingStores_;
  SeqNum snapshotLoad_ = 0;   // oldest outstanding load at last injection
  SeqNum snapshotStore_ = 0;  // oldest outstanding store at last injection
  bool snapshotValid_ = false;

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cPerforms_ = stats_.counter("ar.performs");
  Counter cViolations_ = stats_.counter("ar.violations");
  Counter cInjectedMembars_ = stats_.counter("ar.injectedMembars");
  Counter cLostLoads_ = stats_.counter("ar.lostLoads");
  Counter cLostStores_ = stats_.counter("ar.lostStores");
};

}  // namespace dvmc
