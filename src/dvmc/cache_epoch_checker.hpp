// Cache-side half of the Cache Coherence checker (Section 4.3).
//
// Maintains the Cache Epoch Table (CET): per cached block, the type of the
// current epoch (Read-Only / Read-Write), the 16-bit logical time and the
// CRC-16 data hash at the epoch's beginning. On every perform-time access
// it checks rule 1 (reads/writes happen only inside appropriate epochs);
// when an epoch ends it emits an Inform-Epoch message to the block's home
// memory controller.
//
// A 128-entry scrub FIFO guards against 16-bit timestamp wraparound: every
// epoch begin pushes a record; a periodic sweep inspects the head and, for
// epochs still open after `scrubAgeTicks` logical ticks, sends an
// Inform-Open-Epoch (the eventual end then sends a short
// Inform-Closed-Epoch that carries only the block address and end time).
#pragma once

#include <cstdint>
#include <functional>

#include "coherence/interfaces.hpp"
#include "coherence/logical_clock.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "common/ring_queue.hpp"
#include "common/wrap16.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "dvmc/dvmc_config.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

class CacheEpochChecker final : public EpochObserver {
 public:
  /// `sendInform` injects a message into the interconnect (the system layer
  /// binds it to the data network with dest = home node of the address).
  using SendFn = std::function<void(Message)>;

  CacheEpochChecker(Simulator& sim, NodeId node, const DvmcConfig& cfg,
                    ErrorSink* sink, SendFn sendInform);

  // --- EpochObserver ---
  void onEpochBegin(Addr blk, bool readWrite, const DataBlock& data,
                    std::uint64_t ltime) override;
  void onEpochEnd(Addr blk, const DataBlock& data,
                  std::uint64_t ltime) override;
  void onPerformAccess(Addr blk, bool isWrite) override;

  /// Closes every open epoch (drain at end of measurement / before BER
  /// recovery resets the checker).
  void flush(std::uint64_t ltime);

  /// Clears all state without sending informs (BER recovery).
  void reset();

  /// Fault injection into the checker itself: flips a bit in a resident
  /// CET entry's begin hash. The paper's claim under test: checker-hardware
  /// errors can cause false positives (an unnecessary recovery) but never
  /// compromise correctness. Returns false when the CET is empty.
  bool injectEntryCorruption(std::uint64_t rand);

  const MetricSet& stats() const { return stats_; }
  std::size_t openEpochs() const { return cet_.size(); }

  /// Forensics dump: CET occupancy, scrub-FIFO depth, and the focus
  /// block's epoch row (type, begin times, begin CRC-16 hash, epoch id).
  void dumpForensics(Json& out, Addr focus) const;

  /// Modeled CET storage (34 bits per cache line, Section 6.3).
  static std::size_t modeledBitsPerLine() { return 34; }

 private:
  struct CetEntry {
    bool readWrite = false;
    LTime16 begin16 = 0;
    std::uint64_t beginWide = 0;
    std::uint16_t beginHash = 0;
    bool openAnnounced = false;  // Inform-Open-Epoch already sent
    std::uint64_t epochId = 0;   // matches scrub FIFO records
    Cycle beginCycle = 0;        // wall-clock begin (event tracing)
  };

  struct ScrubRecord {
    Addr blk;
    std::uint64_t epochId;
    std::uint64_t beginWide;
  };

  void scrubSweep();
  void announceOpen(Addr blk, CetEntry& e);

  Simulator& sim_;
  NodeId node_;
  DvmcConfig cfg_;
  ErrorSink* sink_;
  SendFn send_;
  FlatMap<Addr, CetEntry> cet_;
  RingQueue<ScrubRecord> scrubFifo_;
  std::uint64_t nextEpochId_ = 1;
  std::uint64_t lastLtime_ = 0;  // latest logical time observed
  bool stopped_ = false;

  // Metric registry: registered once here, plain slot increments on the
  // hot path (stats_ must precede the handles — initialization order).
  MetricSet stats_;
  Counter cBeginRO_ = stats_.counter("cet.beginRO");
  Counter cBeginRW_ = stats_.counter("cet.beginRW");
  Counter cDoubleBegin_ = stats_.counter("cet.doubleBegin");
  Counter cScrubOverflow_ = stats_.counter("cet.scrubFifoOverflow");
  Counter cInformOpen_ = stats_.counter("cet.informOpen");
  Counter cInformClosed_ = stats_.counter("cet.informClosed");
  Counter cInformEpoch_ = stats_.counter("cet.informEpoch");
  Counter cEndWithoutBegin_ = stats_.counter("cet.endWithoutBegin");
  Counter cAccessOutsideEpoch_ = stats_.counter("cet.accessOutsideEpoch");
  Counter cWriteInRO_ = stats_.counter("cet.writeInROEpoch");
  Counter cAccessChecks_ = stats_.counter("cet.accessChecks");
  Counter cInjectedCorruption_ = stats_.counter("cet.injectedCorruption");
  Gauge gOpenEpochs_ = stats_.gauge("cet.openEpochs");
};

}  // namespace dvmc
