#include "dvmc/hw_cost.hpp"

#include <sstream>

namespace dvmc {

HwCostReport computeHwCost(const HwCostInputs& in) {
  HwCostReport r;

  const std::size_t l1Lines = in.l1.sets * in.l1.ways;
  const std::size_t l2Lines = in.l2.sets * in.l2.ways;
  const std::size_t cacheLinesPerNode = l1Lines + l2Lines;

  r.cetBytesPerNode = (cacheLinesPerNode * r.cetBitsPerLine + 7) / 8;

  // The MET holds one entry per block present in any processor cache; with
  // N nodes the worst case at one home is every cached block homed there.
  const std::size_t cachedBlocksSystemwide = cacheLinesPerNode * in.numNodes;
  r.metBytesPerController =
      (cachedBlocksSystemwide * r.metBitsPerEntry + 7) / 8;

  r.vcBytesPerNode = in.vcWords * 8;

  // AR checker: an LSQ-sized FIFO of sequence numbers (8 B each), sequence
  // numbers in the write buffer, six 8-byte counter registers, and three
  // 3x3 ordering tables of 4-bit entries.
  r.arCheckerBytesPerNode = in.lsqEntries * 8 + in.writeBufferEntries * 8 +
                            6 * 8 + 3 * (9 * 4 + 7) / 8;

  // Inform priority queue: address (8 B) + epoch payload (~9 B) per slot.
  r.informQueueBytesPerController = in.informQueueEntries * 17;

  r.totalBytesPerNode = r.cetBytesPerNode + r.metBytesPerController +
                        r.vcBytesPerNode + r.arCheckerBytesPerNode +
                        r.informQueueBytesPerController;
  return r;
}

std::string HwCostReport::toString() const {
  std::ostringstream os;
  os << "DVMC hardware cost:\n"
     << "  CET: " << cetBitsPerLine << " bits/line, " << cetBytesPerNode
     << " B per node\n"
     << "  MET: " << metBitsPerEntry << " bits/entry, "
     << metBytesPerController << " B per memory controller (worst case)\n"
     << "  VC:  " << vcBytesPerNode << " B per node\n"
     << "  AR checker: " << arCheckerBytesPerNode << " B per node\n"
     << "  Inform queue: " << informQueueBytesPerController
     << " B per memory controller\n"
     << "  Total per node: " << totalBytesPerNode << " B\n";
  return os.str();
}

}  // namespace dvmc
