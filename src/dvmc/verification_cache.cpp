#include "dvmc/verification_cache.hpp"

#include "common/assert.hpp"

namespace dvmc {

// The simulated ISA issues naturally aligned 8-byte memory operations
// (Appendix A's proofs likewise assume word-granularity access), which
// keeps VC entries exact word images.

bool VerificationCache::canAllocate(Addr addr, std::size_t size) const {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  const Addr w = wordAlign(addr);
  if (words_.count(w) != 0) return true;  // merges into the existing entry
  return words_.size() < capacity_;
}

void VerificationCache::storeCommit(Addr addr, std::size_t size,
                                    std::uint64_t value, SeqNum seq) {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  WordEntry& e = words_[wordAlign(addr)];
  e.stores.push_back(PendingStore{seq, value});
  cStoreCommit_.inc();
  gEntries_.set(words_.size());
}

void VerificationCache::storePerformed(Addr addr, std::size_t size,
                                       std::uint64_t performedValue,
                                       Cycle now) {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  const Addr w = wordAlign(addr);
  auto it = words_.find(w);
  if (it == words_.end() || it->second.stores.empty()) {
    // The write buffer performed a store the VC never saw committed —
    // a fabricated or duplicated store (fault).
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kUniprocessorOrdering, now, node_, addr,
                     "store performed without VC entry"});
    }
    cPerformWithoutEntry_.inc();
    return;
  }
  WordEntry& e = it->second;
  // Same-word stores drain in commit order, so the performing store is the
  // oldest pending one. Deallocation check (Appendix A.1.1): the value
  // that reached the cache must equal the committed value.
  if (performedValue != e.stores.front().value) {
    if (sink_ != nullptr) {
      sink_->report({CheckerKind::kUniprocessorOrdering, now, node_, addr,
                     "write-buffer value mismatch at VC deallocation"});
    }
    cDeallocMismatch_.inc();
  }
  e.stores.erase(e.stores.begin());
  if (e.stores.empty() && !e.parkedLoad) words_.erase(it);
  gEntries_.set(words_.size());
  cStorePerformed_.inc();
}

void VerificationCache::storeSuperseded(Addr addr, std::size_t size,
                                        SeqNum seq,
                                        std::uint64_t bufferedValue,
                                        Cycle now) {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  const Addr w = wordAlign(addr);
  auto it = words_.find(w);
  if (it == words_.end()) {
    cPerformWithoutEntry_.inc();
    return;
  }
  auto& stores = it->second.stores;
  for (auto sit = stores.begin(); sit != stores.end(); ++sit) {
    if (sit->seq != seq) continue;
    if (sit->value != bufferedValue) {
      if (sink_ != nullptr) {
        sink_->report({CheckerKind::kUniprocessorOrdering, now, node_, addr,
                       "write-buffer value mismatch at coalesce"});
      }
      cDeallocMismatch_.inc();
    }
    stores.erase(sit);
    if (stores.empty() && !it->second.parkedLoad) words_.erase(it);
    gEntries_.set(words_.size());
    cStoreSuperseded_.inc();
    return;
  }
  cPerformWithoutEntry_.inc();
}

std::optional<std::uint64_t> VerificationCache::lookupStoreOlderThan(
    Addr addr, std::size_t size, SeqNum seq) const {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  auto it = words_.find(wordAlign(addr));
  if (it == words_.end()) return std::nullopt;
  const auto& stores = it->second.stores;
  for (auto rit = stores.rbegin(); rit != stores.rend(); ++rit) {
    if (rit->seq < seq) return rit->value;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> VerificationCache::lookupStore(
    Addr addr, std::size_t size) const {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  auto it = words_.find(wordAlign(addr));
  if (it == words_.end() || it->second.stores.empty()) return std::nullopt;
  return it->second.stores.back().value;
}

std::optional<std::uint64_t> VerificationCache::lookup(
    Addr addr, std::size_t size) const {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  auto it = words_.find(wordAlign(addr));
  if (it == words_.end()) return std::nullopt;
  if (!it->second.stores.empty()) return it->second.stores.back().value;
  if (it->second.parkedLoad) return it->second.parkedValue;
  return std::nullopt;
}

void VerificationCache::parkLoadValue(Addr addr, std::size_t size,
                                      std::uint64_t value) {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  WordEntry& e = words_[wordAlign(addr)];
  e.parkedValue = value;
  e.parkedLoad = true;
  cParkLoad_.inc();
  gEntries_.set(words_.size());
}

std::optional<std::uint64_t> VerificationCache::consumeParked(
    Addr addr, std::size_t size) {
  DVMC_ASSERT(size == 8, "VC is word (8-byte) granular");
  const Addr w = wordAlign(addr);
  auto it = words_.find(w);
  if (it == words_.end() || !it->second.parkedLoad) return std::nullopt;
  const std::uint64_t v = it->second.parkedValue;
  it->second.parkedLoad = false;
  if (it->second.stores.empty()) words_.erase(it);
  gEntries_.set(words_.size());
  cConsumeParked_.inc();
  return v;
}

void VerificationCache::dumpForensics(Json& out, Addr focus) const {
  out.set("entries", Json::num(static_cast<std::uint64_t>(words_.size())))
      .set("capacityWords", Json::num(static_cast<std::uint64_t>(capacity_)));
  const Addr w = wordAlign(focus);
  out.set("focusWord", Json::num(w));
  auto it = words_.find(w);
  out.set("focusResident", Json::boolean(it != words_.end()));
  if (it == words_.end()) return;
  const WordEntry& e = it->second;
  Json chain = Json::array();
  for (const PendingStore& s : e.stores) {
    Json rec = Json::object();
    rec.set("seq", Json::num(s.seq)).set("value", Json::num(s.value));
    chain.push(std::move(rec));
  }
  out.set("pendingStores", std::move(chain))
      .set("parkedLoad", Json::boolean(e.parkedLoad));
  if (e.parkedLoad) out.set("parkedValue", Json::num(e.parkedValue));
}

}  // namespace dvmc
