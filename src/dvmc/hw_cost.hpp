// Hardware cost model for DVMC (Section 6.3).
//
// The storage costs are pure arithmetic over the system configuration:
//   * CET: 34 bits per line in each cache (epoch type 1b + logical time 16b
//     + data hash 16b + DataReadyBit 1b);
//   * MET: 48 bits per entry, one entry per block present in any cache
//     (16b RO end + 16b RW end + 16b hash, with the open-epoch state
//     sharing storage via the OpenEpoch bit);
//   * VC: a few dozen word entries;
//   * AR checker: an LSQ-sized FIFO, sequence-number registers, ordering
//     tables, and comparators.
#pragma once

#include <cstddef>
#include <string>

#include "coherence/cache_array.hpp"

namespace dvmc {

struct HwCostInputs {
  std::size_t numNodes = 8;
  CacheGeometry l1;
  CacheGeometry l2;
  std::size_t vcWords = 64;
  std::size_t lsqEntries = 64;
  std::size_t writeBufferEntries = 64;
  std::size_t informQueueEntries = 256;
};

struct HwCostReport {
  std::size_t cetBitsPerLine = 34;
  std::size_t cetBytesPerNode = 0;
  std::size_t metBitsPerEntry = 48;
  std::size_t metBytesPerController = 0;  // worst case: all cached blocks
  std::size_t vcBytesPerNode = 0;
  std::size_t arCheckerBytesPerNode = 0;
  std::size_t informQueueBytesPerController = 0;
  std::size_t totalBytesPerNode = 0;

  std::string toString() const;
};

HwCostReport computeHwCost(const HwCostInputs& in);

}  // namespace dvmc
