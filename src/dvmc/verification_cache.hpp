// Verification Cache (VC) for the Uniprocessor Ordering checker (§4.1).
//
// During the verification stage all memory operations are replayed in
// program order. Replayed stores must not touch architectural state, so
// they write into the VC; replayed loads read the VC first and fall back to
// the cache hierarchy on a miss. A VC entry for a word lives from the
// commit of a store until that store performs (leaves the write buffer and
// is written to the cache); at deallocation the value written to the cache
// is compared against the verification copy, extending the checker's
// coverage to the write buffer itself.
//
// Entries are tagged with the committing store's sequence number: a load
// that re-enters the verification stage after a flush must only replay
// against stores older than itself, even though younger stores may have
// committed meanwhile (the replay is logically positioned at the load's
// program-order slot).
//
// Under models that do not order loads (RMO), load values are also parked
// in the VC at execute time and consumed at replay, avoiding cache accesses
// during verification (the optimization at the end of §4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dvmc {

class VerificationCache {
 public:
  VerificationCache(NodeId node, std::size_t wordCapacity, ErrorSink* sink)
      : node_(node), capacity_(wordCapacity), sink_(sink) {
    // The VC is bounded by construction (storeCommit stalls at capacity),
    // so one up-front reserve means it never rehashes.
    words_.reserve(capacity_);
  }

  /// True if a store allocation would fit (otherwise the verification stage
  /// must stall until older stores perform).
  bool canAllocate(Addr addr, std::size_t size) const;

  /// Replayed store: appends the store to the word's pending chain.
  void storeCommit(Addr addr, std::size_t size, std::uint64_t value,
                   SeqNum seq = 0);

  /// The store performed (wrote the cache): releases the oldest pending
  /// store on the word and checks that `performedValue` (what reached the
  /// cache) matches the verification copy.
  void storePerformed(Addr addr, std::size_t size,
                      std::uint64_t performedValue, Cycle now);

  /// A write-buffer entry was coalesced away: the store with rank `seq`
  /// logically performs with the value the buffer carried for it, which is
  /// checked against its committed copy (write-buffer corruption of a
  /// superseded store is still caught).
  void storeSuperseded(Addr addr, std::size_t size, SeqNum seq,
                       std::uint64_t bufferedValue, Cycle now);

  /// Replay lookup for an operation with program-order rank `seq`: value of
  /// the youngest pending store older than `seq` (nullopt = replay reads
  /// the cache instead). Parked values never satisfy this lookup.
  std::optional<std::uint64_t> lookupStoreOlderThan(Addr addr,
                                                    std::size_t size,
                                                    SeqNum seq) const;

  /// Youngest pending store regardless of rank (tests, microbenches).
  std::optional<std::uint64_t> lookupStore(Addr addr, std::size_t size) const;

  /// Any entry's current image (tests).
  std::optional<std::uint64_t> lookup(Addr addr, std::size_t size) const;

  /// RMO optimization: park an executed load's value for replay.
  void parkLoadValue(Addr addr, std::size_t size, std::uint64_t value);

  /// Consume a parked load value (frees it unless a store chain lives on
  /// the same word).
  std::optional<std::uint64_t> consumeParked(Addr addr, std::size_t size);

  std::size_t entries() const { return words_.size(); }
  const MetricSet& stats() const { return stats_; }

  /// Forensics dump: occupancy plus the focus word's full pending-store
  /// chain (sequence numbers and verification copies) and parked-load
  /// state — the evidence behind a UO deallocation-mismatch detection.
  void dumpForensics(Json& out, Addr focus) const;
  void clear() {
    words_.clear();
    gEntries_.set(0);
  }

 private:
  struct PendingStore {
    SeqNum seq = 0;
    std::uint64_t value = 0;
  };
  struct WordEntry {
    std::vector<PendingStore> stores;  // oldest first
    std::uint64_t parkedValue = 0;
    bool parkedLoad = false;
  };

  static Addr wordAlign(Addr a) { return a & ~Addr{7}; }

  NodeId node_;
  std::size_t capacity_;
  ErrorSink* sink_;
  FlatMap<Addr, WordEntry> words_;

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cStoreCommit_ = stats_.counter("vc.storeCommit");
  Counter cStorePerformed_ = stats_.counter("vc.storePerformed");
  Counter cStoreSuperseded_ = stats_.counter("vc.storeSuperseded");
  Counter cPerformWithoutEntry_ = stats_.counter("vc.performWithoutEntry");
  Counter cDeallocMismatch_ = stats_.counter("vc.deallocMismatch");
  Counter cParkLoad_ = stats_.counter("vc.parkLoad");
  Counter cConsumeParked_ = stats_.counter("vc.consumeParked");
  Gauge gEntries_ = stats_.gauge("vc.entries");
};

}  // namespace dvmc
