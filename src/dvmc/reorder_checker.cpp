#include "dvmc/reorder_checker.hpp"

#include "common/assert.hpp"

namespace dvmc {

void ReorderChecker::onCommit(OpType type, SeqNum seq) {
  if (isLoadLike(type)) outstandingLoads_.insert(seq);
  if (isStoreLike(type)) outstandingStores_.insert(seq);
}

void ReorderChecker::reportViolation(SeqNum seq, const char* what) {
  if (sink_ != nullptr) {
    sink_->report({CheckerKind::kAllowableReordering, sim_.now(), node_, seq,
                   what});
  }
  cViolations_.inc();
}

void ReorderChecker::checkAgainst(OpClass cls, std::uint8_t instMask,
                                  SeqNum seq, const OrderingTable& table,
                                  const char* opName) {
  // Constraint cls < Load?
  if (table.classOrder(cls, instMask, OpClass::kLoad, membar::kAll) &&
      seq <= maxLoad_ && maxLoad_ != 0) {
    reportViolation(seq, opName);
  }
  // Constraint cls < Store?
  if (table.classOrder(cls, instMask, OpClass::kStore, membar::kAll) &&
      seq <= maxStore_ && maxStore_ != 0) {
    reportViolation(seq, opName);
  }
  // Constraint cls < Membar(bit b)? One counter per membar mask bit.
  for (int bit = 0; bit < 4; ++bit) {
    const std::uint8_t bitMask = static_cast<std::uint8_t>(1u << bit);
    if (table.classOrder(cls, instMask, OpClass::kMembar, bitMask) &&
        seq <= maxMembarBit_[bit] && maxMembarBit_[bit] != 0) {
      reportViolation(seq, opName);
    }
  }
}

void ReorderChecker::updateCounters(OpType type, std::uint8_t mask,
                                    SeqNum seq) {
  if (isLoadLike(type) && seq > maxLoad_) maxLoad_ = seq;
  if (isStoreLike(type) && seq > maxStore_) maxStore_ = seq;
  if (type == OpType::kMembar) {
    for (int bit = 0; bit < 4; ++bit) {
      if ((mask & (1u << bit)) != 0 && seq > maxMembarBit_[bit]) {
        maxMembarBit_[bit] = seq;
      }
    }
  }
}

void ReorderChecker::removeOutstanding(OpType type, SeqNum seq) {
  if (isLoadLike(type)) outstandingLoads_.erase(seq);
  if (isStoreLike(type)) outstandingStores_.erase(seq);
}

void ReorderChecker::onPerform(OpType type, std::uint8_t mask, SeqNum seq,
                               const OrderingTable& table) {
  cPerforms_.inc();
  switch (type) {
    case OpType::kLoad:
      checkAgainst(OpClass::kLoad, membar::kAll, seq, table,
                   "load performed after a later constrained operation");
      break;
    case OpType::kStore:
      checkAgainst(OpClass::kStore, membar::kAll, seq, table,
                   "store performed after a later constrained operation");
      break;
    case OpType::kAtomic:
      checkAgainst(OpClass::kLoad, membar::kAll, seq, table,
                   "atomic performed after a later constrained operation");
      checkAgainst(OpClass::kStore, membar::kAll, seq, table,
                   "atomic performed after a later constrained operation");
      break;
    case OpType::kMembar:
      checkAgainst(OpClass::kMembar, mask, seq, table,
                   "membar performed after a later constrained operation");
      break;
  }
  updateCounters(type, mask, seq);
  removeOutstanding(type, seq);
}

void ReorderChecker::injectCheckpointMembar() {
  cInjectedMembars_.inc();
  const SeqNum oldestLoad =
      outstandingLoads_.empty() ? 0 : *outstandingLoads_.begin();
  const SeqNum oldestStore =
      outstandingStores_.empty() ? 0 : *outstandingStores_.begin();

  if (snapshotValid_) {
    // An operation outstanding across a full injection period was lost
    // (e.g., a dropped coherence message stranded a write-buffer entry).
    if (snapshotLoad_ != 0 && oldestLoad == snapshotLoad_) {
      if (sink_ != nullptr) {
        sink_->report({CheckerKind::kLostOperation, sim_.now(), node_,
                       snapshotLoad_, "load never performed"});
      }
      cLostLoads_.inc();
    }
    if (snapshotStore_ != 0 && oldestStore == snapshotStore_) {
      if (sink_ != nullptr) {
        sink_->report({CheckerKind::kLostOperation, sim_.now(), node_,
                       snapshotStore_, "store never performed"});
      }
      cLostStores_.inc();
    }
  }
  snapshotLoad_ = oldestLoad;
  snapshotStore_ = oldestStore;
  snapshotValid_ = true;
}

void ReorderChecker::reset() {
  maxLoad_ = 0;
  maxStore_ = 0;
  for (auto& m : maxMembarBit_) m = 0;
  outstandingLoads_.clear();
  outstandingStores_.clear();
  snapshotValid_ = false;
}

void ReorderChecker::dumpForensics(Json& out) const {
  out.set("maxLoad", Json::num(maxLoad_)).set("maxStore", Json::num(maxStore_));
  Json membar = Json::array();
  for (SeqNum m : maxMembarBit_) membar.push(Json::num(m));
  out.set("maxMembarBit", std::move(membar))
      .set("outstandingLoads",
           Json::num(static_cast<std::uint64_t>(outstandingLoads_.size())))
      .set("outstandingStores",
           Json::num(static_cast<std::uint64_t>(outstandingStores_.size())));
  if (!outstandingLoads_.empty())
    out.set("oldestOutstandingLoad", Json::num(*outstandingLoads_.begin()));
  if (!outstandingStores_.empty())
    out.set("oldestOutstandingStore", Json::num(*outstandingStores_.begin()));
  out.set("snapshotValid", Json::boolean(snapshotValid_));
  if (snapshotValid_) {
    out.set("snapshotLoad", Json::num(snapshotLoad_))
        .set("snapshotStore", Json::num(snapshotStore_));
  }
}

}  // namespace dvmc
