// Alternative Cache Coherence checker (modularity demonstration).
//
// Section 8 of the paper: "the coherence checker adapted from DVSC can be
// replaced by the design proposed by Cantin et al." — any mechanism that
// verifies the single-writer/multiple-reader property satisfies the
// framework. This module provides such a replacement in the spirit of
// Cantin's TCSC: instead of epochs with logical timestamps and hashed data
// shipped to a Memory Epoch Table, it
//
//   * keeps a per-node *shadow permission table* (a second, trivially
//     simple state machine fed by the same protocol events) and checks
//     rule 1 (loads/stores only under appropriate permission) against it;
//   * replays the home's serialized grant/writeback stream against an
//     independent simplified directory at each home, catching protocol
//     logic errors (double write grants, writebacks from non-owners);
//   * checks memory-path data integrity (grant-from-memory and writeback
//     hashes must chain).
//
// Coverage/cost tradeoff vs. the epoch checker: no Inform-Epoch traffic at
// all and far less storage (2 bits per cached block instead of 34), but
// cache-to-cache data transfers are NOT hash-checked (the home never sees
// that data), so transfer corruption is only caught when the block later
// flows through memory. `bench_ablation` quantifies the difference.
#pragma once

#include <cstdint>
#include <set>

#include "coherence/interfaces.hpp"
#include "common/crc16.hpp"
#include "common/error_sink.hpp"
#include "common/flat_map.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

/// Cache-side shadow permission table (the CET replacement).
class ShadowCacheChecker final : public EpochObserver {
 public:
  ShadowCacheChecker(Simulator& sim, NodeId node, ErrorSink* sink)
      : sim_(sim), node_(node), sink_(sink) {}

  void onEpochBegin(Addr blk, bool readWrite, const DataBlock& data,
                    std::uint64_t ltime) override;
  void onEpochEnd(Addr blk, const DataBlock& data,
                  std::uint64_t ltime) override;
  void onPerformAccess(Addr blk, bool isWrite) override;

  void reset() { shadow_.clear(); }
  std::size_t entries() const { return shadow_.size(); }
  const MetricSet& stats() const { return stats_; }

  /// Modeled storage: 2 bits per cached block (valid + RW).
  static std::size_t modeledBitsPerLine() { return 2; }

  /// Forensics dump: shadow-table occupancy and the focus block's
  /// permission row.
  void dumpForensics(Json& out, Addr focus) const;

 private:
  void report(Addr blk, const char* what);

  Simulator& sim_;
  NodeId node_;
  ErrorSink* sink_;
  FlatMap<Addr, bool> shadow_;  // present -> readWrite?

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cBeginRO_ = stats_.counter("shadow.beginRO");
  Counter cBeginRW_ = stats_.counter("shadow.beginRW");
  Counter cAccessChecks_ = stats_.counter("shadow.accessChecks");
  Counter cViolations_ = stats_.counter("shadow.violations");
};

/// Home-side simplified-directory replay (the MET replacement). Fed by the
/// home controller's serialized decision stream through the extended
/// HomeObserver interface, so event order is exactly the order the real
/// directory processed them in.
class ShadowHomeChecker final : public HomeObserver {
 public:
  ShadowHomeChecker(Simulator& sim, NodeId node, ErrorSink* sink)
      : sim_(sim), node_(node), sink_(sink) {}

  // --- HomeObserver ---
  void onHomeRequest(Addr blk, const DataBlock& memData) override;
  void onBlockUncached(Addr blk) override;
  void onHomeGrant(Addr blk, NodeId to, bool readWrite, bool fromMemory,
                   std::uint16_t memHash) override;
  void onHomeWriteback(Addr blk, NodeId from, std::uint16_t hash,
                       bool accepted) override;

  void reset() { entries_.clear(); }
  std::size_t entries() const { return entries_.size(); }
  const MetricSet& stats() const { return stats_; }

  /// Forensics dump: simplified-directory occupancy and the focus block's
  /// owner/sharers/memory-hash row.
  void dumpForensics(Json& out, Addr focus) const;

 private:
  struct Entry {
    NodeId owner = kInvalidNode;
    std::set<NodeId> sharers;
    std::uint16_t memHash = 0;  // hash of the block's memory image
    bool hashValid = false;
    bool memClean = true;  // no cache held RW since the last memory update
  };

  void report(Addr blk, const char* what);

  Simulator& sim_;
  NodeId node_;
  ErrorSink* sink_;
  FlatMap<Addr, Entry> entries_;

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cViolations_ = stats_.counter("shadow.violations");
  Counter cEntryCreated_ = stats_.counter("shadow.entryCreated");
  Counter cEntryEvicted_ = stats_.counter("shadow.entryEvicted");
  Counter cGrantRO_ = stats_.counter("shadow.grantRO");
  Counter cGrantRW_ = stats_.counter("shadow.grantRW");
  Counter cGrantWithoutEntry_ = stats_.counter("shadow.grantWithoutEntry");
  Counter cWbWithoutEntry_ = stats_.counter("shadow.wbWithoutEntry");
  Counter cWbAccepted_ = stats_.counter("shadow.wbAccepted");
  Counter cWbRejected_ = stats_.counter("shadow.wbRejected");
};

}  // namespace dvmc
