#include "common/data_block.hpp"

namespace dvmc {

std::uint64_t DataBlock::read(std::size_t offset, std::size_t size) const {
  DVMC_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
              "unsupported access size");
  DVMC_ASSERT(offset % size == 0, "unaligned access");
  DVMC_ASSERT(offset + size <= kBlockSizeBytes, "access crosses block");
  std::uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + offset, size);
  return v;
}

void DataBlock::write(std::size_t offset, std::size_t size,
                      std::uint64_t value) {
  DVMC_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
              "unsupported access size");
  DVMC_ASSERT(offset % size == 0, "unaligned access");
  DVMC_ASSERT(offset + size <= kBlockSizeBytes, "access crosses block");
  std::memcpy(bytes_.data() + offset, &value, size);
}

}  // namespace dvmc
