#include "common/version.hpp"

#include <string>

#include "common/version_info.hpp"

namespace dvmc {

const char* gitDescribe() { return DVMC_GIT_DESCRIBE; }
const char* buildType() { return DVMC_BUILD_TYPE; }
const char* sanitizeConfig() { return DVMC_SANITIZE; }

const char* versionString() {
  static const std::string s = [] {
    std::string v = "dvmc ";
    v += DVMC_GIT_DESCRIBE;
    v += " (";
    v += DVMC_BUILD_TYPE[0] != '\0' ? DVMC_BUILD_TYPE : "unknown";
    if (DVMC_SANITIZE[0] != '\0') {
      v += ", sanitize=";
      v += DVMC_SANITIZE;
    }
    v += ")";
    return v;
  }();
  return s.c_str();
}

}  // namespace dvmc
