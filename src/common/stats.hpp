// Lightweight statistics primitives used across the simulator: counters,
// running mean/stddev accumulators (for the paper's ten-perturbation error
// bars), and fixed-bucket histograms (detection-latency distributions).
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvmc {

/// Welford running mean / standard deviation accumulator.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  void addTracked(double x) {
    add(x);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A histogram over power-of-two latency buckets.
class LatencyHistogram {
 public:
  void add(std::uint64_t v);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t maxValue() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::string toString() const;

  /// Bucket-wise sum with another histogram (metric snapshot merging).
  void merge(const LatencyHistogram& o);
  /// Per-bucket count of values <= 2^i (exposed for report serialization).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  bool operator==(const LatencyHistogram& o) const {
    return buckets_ == o.buckets_ && count_ == o.count_ && sum_ == o.sum_ &&
           max_ == o.max_;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Named counter bag; used for per-component event statistics.
///
/// DEPRECATED: superseded by MetricSet (obs/metrics.hpp), which registers
/// typed metrics once at component construction and makes the hot path a
/// plain slot increment instead of a per-event map lookup. This shim stays
/// for one PR so out-of-tree tests keep compiling; new code must not use
/// it.
class [[deprecated("use MetricSet from obs/metrics.hpp")]] StatSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace dvmc
