// Lightweight statistics primitives used across the simulator: counters,
// running mean/stddev accumulators (for the paper's ten-perturbation error
// bars), and fixed-bucket histograms (detection-latency distributions).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace dvmc {

/// Welford running mean / standard deviation accumulator.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  void addTracked(double x) {
    add(x);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A histogram over power-of-two latency buckets.
class LatencyHistogram {
 public:
  void add(std::uint64_t v);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t maxValue() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::string toString() const;

  /// Bucket-wise sum with another histogram (metric snapshot merging).
  void merge(const LatencyHistogram& o);
  /// Per-bucket count of values <= 2^i (exposed for report serialization).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Percentile estimate from the power-of-two buckets: the upper bound
  /// (2^i) of the first bucket whose cumulative count reaches
  /// ceil(p * count). Deterministic and conservative — the true value lies
  /// in (2^(i-1), 2^i] — so p50/p90/p99 readouts in reports are upper
  /// bounds, never underestimates. `p` is clamped to [0, 1]; an empty
  /// histogram reads as 0.
  std::uint64_t percentile(double p) const;
  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p90() const { return percentile(0.90); }
  std::uint64_t p99() const { return percentile(0.99); }

  bool operator==(const LatencyHistogram& o) const {
    return buckets_ == o.buckets_ && count_ == o.count_ && sum_ == o.sum_ &&
           max_ == o.max_;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dvmc
