// Unified command-line parsing for every dvmc binary (bench, tools,
// examples).
//
// Before this existed, --jobs / --json / the observability flags were
// copy-pasted hand-rolled strncmp loops in every main. CliParser is the
// one implementation: a binary declares its typed options once, layers
// register their standard groups (addRunnerFlags, obs::addObsFlags,
// bench::addBenchFlags), and parse() gives the shared behavior everywhere:
//
//   * --flag=VALUE and --flag VALUE forms, plus short aliases (-j),
//   * eager validation — a zero count or unwritable path is a clear
//     error on stderr and exit(2) before the run, not a surprise after,
//   * auto-generated --help (exit 0) listing every option with its
//     default, and a hidden --help-markdown that emits the same table as
//     GitHub markdown (docs/observability.md embeds it),
//   * unknown `--flag` → usage error, exit 2 (positional operands pass
//     through untouched for the subcommand-style tools),
//   * a passthrough prefix escape hatch for google-benchmark's
//     --benchmark_* flags.
//
// parse() strips recognized flags from argv and returns the new argc
// (the parseJobsFlag convention), so existing positional handling in the
// tools keeps working unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dvmc {

class CliParser {
 public:
  CliParser(std::string binaryName, std::string description);

  /// Value-less boolean option: presence sets *target to true.
  CliParser& flag(const std::string& name, bool* target,
                  const std::string& help);

  /// Typed value options. The value may follow as `--name=V` or `--name V`.
  CliParser& option(const std::string& name, std::string* target,
                    const std::string& valueName, const std::string& help);
  CliParser& option(const std::string& name, int* target,
                    const std::string& valueName, const std::string& help);
  CliParser& option(const std::string& name, std::uint64_t* target,
                    const std::string& valueName, const std::string& help);

  /// Strictly positive count (rejects zero, signs, and non-digits — the
  /// obs::parsePositiveCount contract).
  CliParser& count(const std::string& name, std::uint64_t* target,
                   const std::string& valueName, const std::string& help);

  /// Output-file path validated eagerly (append-mode open probe).
  CliParser& path(const std::string& name, std::string* target,
                  const std::string& valueName, const std::string& help);

  /// Fully custom option: `parse` returns an empty string on success or a
  /// human-readable error. Used by layers whose flags have side effects
  /// (e.g. --jobs feeds setDefaultJobs).
  CliParser& optionFn(const std::string& name, const std::string& valueName,
                      const std::string& help,
                      std::function<std::string(const std::string&)> parse);

  /// Registers a short alias (e.g. "-j") for the most recently added
  /// option.
  CliParser& alias(const std::string& shortName);

  /// Unknown flags beginning with `prefix` stay in argv instead of being
  /// an error (google-benchmark's --benchmark_* passthrough).
  CliParser& passthroughPrefix(const std::string& prefix);

  /// Every unknown flag stays in argv instead of being an error. Backing
  /// for the legacy strip-what-you-know parsers (parseObsFlags,
  /// parseJobsFlag) that run before a later parsing stage.
  CliParser& lenient();

  /// Any argument that still starts with '-' after parsing is an error.
  /// Default: leave non-option operands in argv for the caller.
  CliParser& noPositionals();

  /// Free-form usage line printed under the binary name in --help, e.g.
  /// "usage: dvmc_oracle check|explain|stats FILE".
  CliParser& usageLine(const std::string& usage);

  /// Tests: report errors via parse() returning -1 and error() instead of
  /// exit(2), and --help via helpRequested() instead of exit(0).
  CliParser& exitOnError(bool v);

  /// Strips recognized flags from argv and returns the new argc. On a bad
  /// value or unknown --flag: prints the error plus a usage hint to
  /// stderr and exits 2 (or returns -1 under exitOnError(false)). --help
  /// prints the option table to stdout and exits 0.
  int parse(int argc, char** argv);

  const std::string& error() const { return error_; }
  bool helpRequested() const { return helpRequested_; }
  /// True when --version was seen under exitOnError(false); the normal
  /// mode prints versionString() and exits 0 instead.
  bool versionRequested() const { return versionRequested_; }

  std::string helpText() const;
  /// The option table as a GitHub-markdown table (docs embed this via
  /// --help-markdown).
  std::string markdownTable() const;

 private:
  struct Opt {
    std::string name;        // "--jobs"
    std::string shortName;   // "-j" or empty
    std::string valueName;   // "N", "FILE", ... ; empty = boolean flag
    std::string help;
    std::string defaultValue;  // rendered in --help
    bool* boolTarget = nullptr;
    std::function<std::string(const std::string&)> parseValue;
  };

  CliParser& add(Opt o);
  int fail(const std::string& msg);

  std::string binaryName_;
  std::string description_;
  std::string usage_;
  std::vector<Opt> opts_;
  std::vector<std::string> passthrough_;
  bool lenient_ = false;
  bool noPositionals_ = false;
  bool exitOnError_ = true;
  bool helpRequested_ = false;
  bool versionRequested_ = false;
  std::string error_;
};

}  // namespace dvmc
