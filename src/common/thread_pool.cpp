#include "common/thread_pool.hpp"

#include <atomic>

namespace dvmc {

unsigned ThreadPool::hardwareWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = hardwareWorkers();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  allDone_.wait(lk, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      taskReady_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --inFlight_;
      if (inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& body) {
  if (jobs == 0) jobs = ThreadPool::hardwareWorkers();
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (jobs > count) jobs = static_cast<unsigned>(count);

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      body(i);
    }
  };

  ThreadPool pool(jobs);
  // One claim loop per worker; each loop exits once the index space is
  // exhausted, and wait() covers all of them.
  for (unsigned w = 0; w < jobs; ++w) pool.submit(drain);
  pool.wait();
}

}  // namespace dvmc
