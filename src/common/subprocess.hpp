// Child-process supervision layer (fault-tolerant campaign execution).
//
// DVMC's premise is that verification must keep working when the system
// under test misbehaves — and the harness has to live up to the same
// standard. Before this existed, dvmc_campaign ran every fuzz/fault
// configuration in-process, so one wild pointer from an injected fault,
// one sanitizer abort, or one livelocked config killed the whole nightly
// shard and discarded every completed result. This header is the cure,
// in two pieces:
//
//   * Subprocess: one fork/exec child with its pipes, caps, and clocks
//     managed — stdout/stderr captured into bounded newest-kept tail
//     buffers, setrlimit caps (address space, CPU seconds, core size)
//     applied in the child, a wall-clock deadline enforced by the parent's
//     poll loop with SIGTERM -> grace -> SIGKILL escalation against the
//     child's whole process group, and a typed ExitStatus that
//     distinguishes clean-exit / nonzero-exit / signaled / timed-out /
//     spawn-failed so callers can triage instead of guessing at errno.
//
//   * Supervisor: schedules N tasks across a bounded worker pool with a
//     per-task retry policy — bounded attempts, exponential backoff whose
//     jitter derives deterministically from (seed, task key, attempt) so
//     a rerun of a flaky shard reproduces the exact same schedule.
//
// Everything here is data-in/data-out: no logging, no global state. The
// campaign driver layers triage bundles, journals, and status heartbeats
// on top (tools/dvmc_campaign.cpp, docs/robustness.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace dvmc {

/// Why the child is gone. Timed-out wins over the raw wait status: a child
/// that the deadline escalation terminated reports kTimedOut even though
/// the kernel saw an ordinary SIGTERM/SIGKILL death.
enum class ExitReason : std::uint8_t {
  kCleanExit,    // exited with status 0
  kNonZeroExit,  // exited with a nonzero status
  kSignaled,     // killed by a signal it raised on itself (SEGV, ABRT, ...)
  kTimedOut,     // wall-clock deadline hit; parent escalated TERM -> KILL
  kSpawnFailed,  // fork/exec never produced a running child
};

/// Stable lowercase token for triage bundles and logs.
const char* exitReasonName(ExitReason r);

/// setrlimit caps applied in the child after fork, before exec. Zero means
/// "inherit" for memory/CPU; the core limit is always applied (default 0:
/// crashing children do not litter CI with core files — the triage bundle
/// carries the stderr tail instead).
struct SubprocessLimits {
  std::uint64_t memoryBytes = 0;  // RLIMIT_AS (0 = inherit)
  std::uint64_t cpuSeconds = 0;   // RLIMIT_CPU (0 = inherit)
  std::uint64_t coreBytes = 0;    // RLIMIT_CORE (always applied)
};

struct SubprocessOptions {
  /// argv[0] is the executable (PATH-resolved via execvp).
  std::vector<std::string> argv;
  /// Extra environment entries appended to the parent's environment
  /// (later entries win on duplicate names).
  std::vector<std::pair<std::string, std::string>> extraEnv;
  /// Wall-clock budget in ms; 0 = none. On breach the child's process
  /// group gets SIGTERM, then SIGKILL graceMs later.
  std::uint64_t deadlineMs = 0;
  std::uint64_t graceMs = 2000;
  /// Per-stream capture cap; older bytes are dropped so the buffer keeps
  /// the *tail* (where the crash message lives).
  std::size_t maxCapturedBytes = 64 * 1024;
  SubprocessLimits limits;
  /// Called with the child's pid right after a successful fork (heartbeat
  /// surfaces show it). Runs on the calling thread.
  std::function<void(int pid)> onSpawn;
};

struct ExitStatus {
  ExitReason reason = ExitReason::kSpawnFailed;
  int exitCode = -1;     // WEXITSTATUS when the child exited
  int termSignal = 0;    // WTERMSIG when the child died by signal
  bool coreDumped = false;

  bool clean() const { return reason == ExitReason::kCleanExit; }
  /// Human one-liner: "exit 3", "signal 11 (Segmentation fault)",
  /// "timed out (SIGKILL escalation)", "spawn failed".
  std::string describe() const;
};

struct SubprocessResult {
  ExitStatus status;
  std::string stdoutTail;  // newest maxCapturedBytes of stdout
  std::string stderrTail;  // newest maxCapturedBytes of stderr
  std::uint64_t stdoutBytes = 0;  // total bytes the child produced
  std::uint64_t stderrBytes = 0;
  std::uint64_t wallMs = 0;
  std::uint64_t maxRssBytes = 0;  // child's ru_maxrss via wait4
  std::string spawnError;         // errno text when reason == kSpawnFailed
};

/// Runs one child to completion (or to its deadline). Blocking; safe to
/// call concurrently from pool workers. The child is placed in its own
/// process group so deadline escalation also reaps grandchildren.
SubprocessResult runSubprocess(const SubprocessOptions& opt);

/// Bounded-attempt retry with exponential backoff and deterministic
/// seed-derived jitter: rerunning a campaign with the same seed reproduces
/// the same delays, so flaky-shard timing is replayable.
struct RetryPolicy {
  int maxAttempts = 3;             // total attempts, including the first
  std::uint64_t baseDelayMs = 500;  // delay before the first retry
  std::uint64_t maxDelayMs = 8000;  // exponential growth ceiling
  std::uint64_t seed = 0;           // jitter determinism
};

/// Delay before `attempt` (1-based; attempt 1 is the initial try and waits
/// 0 ms). Exponential in the retry index, capped at maxDelayMs, then
/// jittered into [d/2, d) by an Rng keyed on (seed, taskKey, attempt).
std::uint64_t retryDelayMs(const RetryPolicy& p, std::uint64_t taskKey,
                           int attempt);

struct SupervisedTask {
  std::string name;       // for logs/telemetry only
  std::uint64_t key = 0;  // jitter key (campaign uses the fuzz param)
  /// Builds the attempt's subprocess options (1-based attempt number, so
  /// retries can tag their spec with the attempt).
  std::function<SubprocessOptions(int attempt)> makeOptions;
};

struct TaskOutcome {
  bool succeeded = false;
  int attempts = 0;        // attempts actually made
  SubprocessResult last;   // result of the final attempt
};

/// Runs every task to success or retry exhaustion on up to `workers`
/// threads. Hooks fire on the worker thread running the task; they must be
/// thread-safe. Results are indexed by task, so callers merge in task
/// order regardless of completion interleaving.
class Supervisor {
 public:
  Supervisor(unsigned workers, RetryPolicy policy)
      : workers_(workers), policy_(policy) {}

  /// Success predicate for an attempt; default: a clean exit. Callers that
  /// need the child's payload (e.g. a parseable result line) tighten this.
  std::function<bool(std::size_t task, const SubprocessResult&)> isSuccess;
  std::function<void(std::size_t task, int attempt)> onAttemptStart;
  /// willRetry tells the hook whether another attempt follows (triage
  /// bundles are written per failed attempt either way).
  std::function<void(std::size_t task, int attempt, const SubprocessResult&,
                     bool willRetry)>
      onAttemptDone;
  /// Backoff sleep, overridable so tests run without wall-clock waits.
  std::function<void(std::uint64_t ms)> sleepMs;

  std::vector<TaskOutcome> run(const std::vector<SupervisedTask>& tasks);

  const RetryPolicy& policy() const { return policy_; }

 private:
  unsigned workers_;
  RetryPolicy policy_;
};

}  // namespace dvmc
