// Bounded-window FIFO on a power-of-two ring (common subsystem).
//
// The simulator's per-cycle queues — ROB, write buffer, replay queue,
// scrub FIFO, workload lookahead — are all small sliding windows with a
// configuration-bounded depth. std::deque spends its flexibility budget
// on paged storage (heap blocks, a map of pointers, non-contiguous
// iteration); this ring keeps the window in one contiguous power-of-two
// buffer: push/pop are an index mask away, iteration is cache-linear,
// and a reserve() sized from the config (robSize, wbCapacity,
// scrubFifoCapacity) means zero steady-state allocation. Capacity still
// grows by doubling if a caller outruns its reservation, so the
// semantics stay those of an unbounded deque.
//
// API surface: the std::deque subset the simulator uses — push_back /
// emplace_back, pop_front, front/back, operator[], clear, size/empty,
// random-access iterators (so reverse iteration and middle erase work),
// erase(iterator), and assign(first, last).
#pragma once

#include <cstddef>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace dvmc {

template <class T>
class RingQueue {
 public:
  template <bool Const>
  class Iter {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using reference = std::conditional_t<Const, const T&, T&>;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using Owner = std::conditional_t<Const, const RingQueue, RingQueue>;

    Iter() = default;
    Iter(Owner* q, std::size_t pos) : q_(q), pos_(pos) {}
    /// iterator -> const_iterator conversion.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : q_(o.q_), pos_(o.pos_) {}

    reference operator*() const { return (*q_)[pos_]; }
    pointer operator->() const { return &(*q_)[pos_]; }
    reference operator[](difference_type d) const {
      return (*q_)[pos_ + static_cast<std::size_t>(d)];
    }

    Iter& operator++() { ++pos_; return *this; }
    Iter operator++(int) { Iter t = *this; ++pos_; return t; }
    Iter& operator--() { --pos_; return *this; }
    Iter operator--(int) { Iter t = *this; --pos_; return t; }
    Iter& operator+=(difference_type d) {
      pos_ = static_cast<std::size_t>(static_cast<difference_type>(pos_) + d);
      return *this;
    }
    Iter& operator-=(difference_type d) { return *this += -d; }
    friend Iter operator+(Iter it, difference_type d) { return it += d; }
    friend Iter operator+(difference_type d, Iter it) { return it += d; }
    friend Iter operator-(Iter it, difference_type d) { return it -= d; }
    friend difference_type operator-(const Iter& a, const Iter& b) {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) { return !(a == b); }
    friend bool operator<(const Iter& a, const Iter& b) {
      return a.pos_ < b.pos_;
    }
    friend bool operator>(const Iter& a, const Iter& b) { return b < a; }
    friend bool operator<=(const Iter& a, const Iter& b) { return !(b < a); }
    friend bool operator>=(const Iter& a, const Iter& b) { return !(a < b); }

   private:
    friend class RingQueue;
    template <bool>
    friend class Iter;
    Owner* q_ = nullptr;
    std::size_t pos_ = 0;  // logical index from the queue's front
  };

  using value_type = T;
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  RingQueue() = default;
  explicit RingQueue(std::size_t capacity) { reserve(capacity); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buf_.size(); }

  /// Grows the ring so `n` elements fit without reallocation.
  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(capacityFor(n));
  }

  T& operator[](std::size_t i) { return buf_[(head_ + i) & mask()]; }
  const T& operator[](std::size_t i) const { return buf_[(head_ + i) & mask()]; }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == buf_.size()) regrow(capacityFor(size_ + 1));
    T& slot = buf_[(head_ + size_) & mask()];
    slot = T(std::forward<Args>(args)...);
    ++size_;
    return slot;
  }

  void pop_front() {
    DVMC_ASSERT(size_ > 0, "pop_front on empty RingQueue");
    front() = T();  // drop held resources now, not at overwrite time
    head_ = (head_ + 1) & mask();
    --size_;
  }

  void pop_back() {
    DVMC_ASSERT(size_ > 0, "pop_back on empty RingQueue");
    back() = T();
    --size_;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) (*this)[i] = T();
    head_ = 0;
    size_ = 0;
  }

  /// Removes the element at `it` by shifting the tail forward one slot
  /// (FIFO order preserved). O(distance to back); the queues using this
  /// are a handful of entries deep. Returns the iterator to the next
  /// element, deque-style.
  iterator erase(const_iterator it) {
    const std::size_t pos = it.pos_;
    DVMC_ASSERT(pos < size_, "erase past the end of RingQueue");
    for (std::size_t i = pos; i + 1 < size_; ++i) {
      (*this)[i] = std::move((*this)[i + 1]);
    }
    pop_back();
    return iterator(this, pos);
  }

  template <class It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  std::size_t mask() const { return buf_.size() - 1; }

  static std::size_t capacityFor(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap < n) cap <<= 1;
    return cap;
  }

  void regrow(std::size_t newCap) {
    std::vector<T> next(newCap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move((*this)[i]);
    buf_ = std::move(next);
    head_ = 0;
  }

  // T() placement on pop keeps semantics simple (T is default-constructible
  // POD-ish simulator state everywhere this is used).
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dvmc
