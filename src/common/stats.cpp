#include "common/stats.hpp"

#include <sstream>

namespace dvmc {

void LatencyHistogram::add(std::uint64_t v) {
  std::size_t bucket = 0;
  std::uint64_t bound = 1;
  while (bound < v && bucket < 63) {
    bound <<= 1;
    ++bucket;
  }
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  if (o.buckets_.size() > buckets_.size()) buckets_.resize(o.buckets_.size(), 0);
  for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
    buckets_[i] += o.buckets_[i];
  }
  count_ += o.count_;
  sum_ += o.sum_;
  if (o.max_ > max_) max_ = o.max_;
}

std::uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile sample, 1-based: ceil(p * count), at least 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  std::uint64_t bound = 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return bound;
    bound <<= 1;
  }
  return max_;  // unreachable when the invariants hold
}

std::string LatencyHistogram::toString() const {
  std::ostringstream os;
  std::uint64_t bound = 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      os << "<=" << bound << ":" << buckets_[i] << " ";
    }
    bound <<= 1;
  }
  return os.str();
}

}  // namespace dvmc
