// A 64-byte coherence block holding real data.
//
// The simulator carries actual data values end to end (through caches,
// write buffers, network messages, and memory) so that the Uniprocessor
// Ordering checker can replay loads against real values and the Cache
// Coherence checker can hash block contents, exactly as the paper's
// hardware would.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace dvmc {

class DataBlock {
 public:
  DataBlock() { bytes_.fill(0); }

  /// Reads a naturally-aligned value of `size` bytes (1, 2, 4, or 8) at the
  /// given offset within the block.
  std::uint64_t read(std::size_t offset, std::size_t size) const;

  /// Writes a naturally-aligned value of `size` bytes at the given offset.
  void write(std::size_t offset, std::size_t size, std::uint64_t value);

  /// Flips a single bit (used by the fault injector).
  void flipBit(std::size_t bitIndex) {
    DVMC_ASSERT(bitIndex < kBlockSizeBytes * 8, "bit index out of range");
    bytes_[bitIndex / 8] ^= static_cast<std::uint8_t>(1u << (bitIndex % 8));
  }

  const std::uint8_t* data() const { return bytes_.data(); }
  std::uint8_t* data() { return bytes_.data(); }

  bool operator==(const DataBlock& o) const { return bytes_ == o.bytes_; }
  bool operator!=(const DataBlock& o) const { return !(*this == o); }

 private:
  std::array<std::uint8_t, kBlockSizeBytes> bytes_;
};

}  // namespace dvmc
