#include "common/crc16.hpp"

#include <array>

namespace dvmc {
namespace {

constexpr std::uint16_t kPoly = 0x1021;  // CRC-16/CCITT

constexpr std::array<std::uint16_t, 256> makeTable() {
  std::array<std::uint16_t, 256> t{};
  for (unsigned i = 0; i < 256; ++i) {
    std::uint16_t c = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 0x8000) ? static_cast<std::uint16_t>((c << 1) ^ kPoly)
                       : static_cast<std::uint16_t>(c << 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = makeTable();

}  // namespace

std::uint16_t crc16(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kTable[((crc >> 8) ^ data[i]) & 0xFF]);
  }
  return crc;
}

}  // namespace dvmc
