#include "common/crc16.hpp"

#include <array>

namespace dvmc {
namespace {

constexpr std::uint16_t kPoly = 0x1021;  // CRC-16/CCITT

constexpr std::array<std::uint16_t, 256> makeTable() {
  std::array<std::uint16_t, 256> t{};
  for (unsigned i = 0; i < 256; ++i) {
    std::uint16_t c = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 0x8000) ? static_cast<std::uint16_t>((c << 1) ^ kPoly)
                       : static_cast<std::uint16_t>(c << 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = makeTable();

// Slicing tables: kSlice[k][v] is the CRC (zero-initial) of byte v followed
// by k zero bytes. CRC over GF(2) is linear, so eight input bytes can be
// folded in one step as the XOR of their independently propagated
// contributions — only the first two bytes see the incoming 16-bit state.
// This matters because CET/MET epoch hashing and forensics dumps run
// hashBlock over 64-byte blocks on per-operation hot paths.
constexpr std::size_t kSliceWidth = 8;

constexpr std::array<std::array<std::uint16_t, 256>, kSliceWidth>
makeSliceTables() {
  std::array<std::array<std::uint16_t, 256>, kSliceWidth> t{};
  t[0] = makeTable();
  for (std::size_t k = 1; k < kSliceWidth; ++k) {
    for (unsigned v = 0; v < 256; ++v) {
      const std::uint16_t c = t[k - 1][v];
      t[k][v] = static_cast<std::uint16_t>((c << 8) ^ t[0][(c >> 8) & 0xFF]);
    }
  }
  return t;
}

constexpr auto kSlice = makeSliceTables();

}  // namespace

std::uint16_t crc16Scalar(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kTable[((crc >> 8) ^ data[i]) & 0xFF]);
  }
  return crc;
}

std::uint16_t crc16(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  while (len >= kSliceWidth) {
    // The 16-bit running state folds into the first two bytes; the
    // remaining six contribute position-propagated table terms directly.
    crc = static_cast<std::uint16_t>(
        kSlice[7][(data[0] ^ (crc >> 8)) & 0xFF] ^
        kSlice[6][(data[1] ^ crc) & 0xFF] ^ kSlice[5][data[2]] ^
        kSlice[4][data[3]] ^ kSlice[3][data[4]] ^ kSlice[2][data[5]] ^
        kSlice[1][data[6]] ^ kSlice[0][data[7]]);
    data += kSliceWidth;
    len -= kSliceWidth;
  }
  for (std::size_t i = 0; i < len; ++i) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kTable[((crc >> 8) ^ data[i]) & 0xFF]);
  }
  return crc;
}

}  // namespace dvmc
