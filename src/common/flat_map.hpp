// Cache-friendly open-addressing hash map for the per-operation hot paths
// (VC words, CET/MET epoch tables, MSHRs, write-back buffers, directory and
// memory-storage block maps). Design:
//
//   * power-of-two capacity, index by mixed hash & mask — one AND, no modulo;
//   * linear probing — probe chains are contiguous cache lines, unlike the
//     per-bucket chained nodes of std::unordered_map;
//   * backshift deletion — erase shifts the tail of the probe chain back
//     instead of leaving tombstones, so probe lengths never degrade and
//     wraparound probing stays tombstone-free;
//   * reserve() presizing — callers size tables from SystemConfig footprint
//     hints once, so steady-state operation never rehashes.
//
// Semantics match std::unordered_map where the simulator relies on them:
// pointers/references to mapped values stay valid until rehash or erase of
// that key; iteration visits every element exactly once in slot order
// (deterministic for a given insertion/erase history, but NOT the same
// order as unordered_map — order-sensitive call sites must sort, see
// CacheEpochChecker::flush). Erasing invalidates iterators (backshift moves
// elements), so collect-then-erase is the supported pattern.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <new>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace dvmc {

/// SplitMix64 finalizer: block/word addresses share low zero bits and long
/// runs of equal high bits, so identity hashing would collide whole regions
/// onto a handful of power-of-two buckets. This mixes every input bit into
/// every output bit.
struct FlatHash64 {
  std::size_t operator()(std::uint64_t x) const noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

template <class K, class V, class Hash = FlatHash64>
class FlatMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<const K, V>;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatMap::value_type;
    using difference_type = std::ptrdiff_t;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Map* m, std::size_t i) : m_(m), i_(i) { skipFree(); }
    /// iterator -> const_iterator conversion.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : m_(o.m_), i_(o.i_) {}

    reference operator*() const { return m_->slotRef(i_); }
    pointer operator->() const { return &m_->slotRef(i_); }
    Iter& operator++() {
      ++i_;
      skipFree();
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.i_ != b.i_;
    }

   private:
    friend class FlatMap;
    friend class Iter<true>;
    void skipFree() {
      while (m_ != nullptr && i_ < m_->cap_ && !m_->used_[i_]) ++i_;
    }
    Map* m_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  ~FlatMap() { destroyAll(); }

  FlatMap(const FlatMap& o) { copyFrom(o); }
  FlatMap& operator=(const FlatMap& o) {
    if (this != &o) {
      destroyAll();
      slots_.clear();
      used_.clear();
      cap_ = 0;
      size_ = 0;
      copyFrom(o);
    }
    return *this;
  }
  FlatMap(FlatMap&& o) noexcept
      : slots_(std::move(o.slots_)),
        used_(std::move(o.used_)),
        cap_(o.cap_),
        size_(o.size_) {
    o.cap_ = 0;
    o.size_ = 0;
  }
  FlatMap& operator=(FlatMap&& o) noexcept {
    if (this != &o) {
      destroyAll();
      slots_ = std::move(o.slots_);
      used_ = std::move(o.used_);
      cap_ = o.cap_;
      size_ = o.size_;
      o.cap_ = 0;
      o.size_ = 0;
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return cap_; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, cap_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, cap_); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  /// Presizes so `n` elements fit without rehash (footprint hint path).
  void reserve(std::size_t n) {
    const std::size_t want = capacityFor(n);
    if (want > cap_) rehash(want);
  }

  void clear() {
    destroyAll();
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  iterator find(const K& key) {
    return iterator(this, findIndex(key));
  }
  const_iterator find(const K& key) const {
    return const_iterator(this, findIndex(key));
  }
  std::size_t count(const K& key) const {
    return findIndex(key) < cap_ ? 1 : 0;
  }
  bool contains(const K& key) const { return findIndex(key) < cap_; }

  V& at(const K& key) {
    const std::size_t i = findIndex(key);
    DVMC_ASSERT(i < cap_, "FlatMap::at: key not present");
    return slotRef(i).second;
  }
  const V& at(const K& key) const {
    const std::size_t i = findIndex(key);
    DVMC_ASSERT(i < cap_, "FlatMap::at: key not present");
    return slotRef(i).second;
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    growIfNeeded();
    std::size_t i = home(key);
    while (used_[i]) {
      if (slotRef(i).first == key) return {iterator(this, i), false};
      i = (i + 1) & (cap_ - 1);
    }
    ::new (slotPtr(i)) value_type(std::piecewise_construct,
                                  std::forward_as_tuple(key),
                                  std::forward_as_tuple(
                                      std::forward<Args>(args)...));
    used_[i] = 1;
    ++size_;
    return {iterator(this, i), true};
  }

  template <class VV>
  std::pair<iterator, bool> emplace(const K& key, VV&& value) {
    return try_emplace(key, std::forward<VV>(value));
  }
  std::pair<iterator, bool> insert(const value_type& kv) {
    return try_emplace(kv.first, kv.second);
  }

  std::size_t erase(const K& key) {
    const std::size_t i = findIndex(key);
    if (i >= cap_) return 0;
    eraseIndex(i);
    return 1;
  }

  /// Erases the pointed-to element. Backshift deletion moves later chain
  /// members, so all iterators are invalidated. Returns void (as in
  /// absl::flat_hash_map): producing the std-style "next" iterator would
  /// scan the slot array for the following occupied slot — an O(capacity /
  /// size) hidden cost on the erase-heavy hot paths this map exists for.
  /// To erase while iterating, use eraseAndAdvance.
  void erase(const_iterator pos) {
    DVMC_ASSERT(pos.i_ < cap_ && used_[pos.i_], "FlatMap::erase: bad iterator");
    eraseIndex(pos.i_);
  }

  /// Erase-while-iterating: removes `pos` and returns an iterator that
  /// resumes slot-order iteration at the vacated position (which may now
  /// hold a backshifted later element — it has not been visited before).
  iterator eraseAndAdvance(const_iterator pos) {
    erase(pos);
    return iterator(this, pos.i_);
  }

  /// Order-independent equality (matches std::unordered_map semantics).
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size_ != b.size_) return false;
    for (const auto& [k, v] : a) {
      const std::size_t i = b.findIndex(k);
      if (i >= b.cap_ || !(b.slotRef(i).second == v)) return false;
    }
    return true;
  }
  friend bool operator!=(const FlatMap& a, const FlatMap& b) {
    return !(a == b);
  }

 private:
  // Raw storage so V needs no default constructor and const-keyed pairs can
  // still be relocated (destroy + placement-new) during rehash/backshift.
  struct Slot {
    alignas(value_type) unsigned char raw[sizeof(value_type)];
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Grow past 62.5% load: linear probing wants headroom or chains cluster.
  static bool overloaded(std::size_t size, std::size_t cap) {
    return size * 8 > cap * 5;
  }
  static std::size_t capacityFor(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (overloaded(n, cap)) cap <<= 1;
    return cap;
  }

  value_type* slotPtr(std::size_t i) {
    return std::launder(reinterpret_cast<value_type*>(slots_[i].raw));
  }
  const value_type* slotPtr(std::size_t i) const {
    return std::launder(reinterpret_cast<const value_type*>(slots_[i].raw));
  }
  value_type& slotRef(std::size_t i) { return *slotPtr(i); }
  const value_type& slotRef(std::size_t i) const { return *slotPtr(i); }

  std::size_t home(const K& key) const {
    return Hash{}(key) & (cap_ - 1);
  }
  /// Distance of the element at `pos` from its home bucket.
  std::size_t probeDistance(std::size_t pos) const {
    return (pos - home(slotRef(pos).first)) & (cap_ - 1);
  }

  /// Index of `key`, or cap_ when absent (== end()).
  ///
  /// Probes until a free slot: insertion places a key at the first free
  /// slot after its home, and backshift deletion never leaves a hole
  /// inside a live probe chain, so hitting a free slot proves absence.
  /// (The load cap guarantees free slots exist, so the scan terminates.)
  std::size_t findIndex(const K& key) const {
    if (cap_ == 0) return 0;  // empty map: begin()==end()==0
    std::size_t i = Hash{}(key) & (cap_ - 1);
    while (used_[i]) {
      if (slotRef(i).first == key) return i;
      i = (i + 1) & (cap_ - 1);
    }
    return cap_;
  }

  void eraseIndex(std::size_t i) {
    slotPtr(i)->~value_type();
    used_[i] = 0;
    --size_;
    // Backshift: scan the contiguous occupied run after the hole and pull
    // back every element whose probe chain crosses the hole (its home lies
    // cyclically at or before it). Elements already at/near home are
    // skipped, not stopped at — a displaced element can live beyond them.
    std::size_t hole = i;
    std::size_t j = (i + 1) & (cap_ - 1);
    while (used_[j]) {
      const std::size_t distHome = probeDistance(j);
      const std::size_t distHole = (j - hole) & (cap_ - 1);
      if (distHome >= distHole) {
        ::new (slotPtr(hole)) value_type(std::move(slotRef(j)));
        slotPtr(j)->~value_type();
        used_[hole] = 1;
        used_[j] = 0;
        hole = j;
      }
      j = (j + 1) & (cap_ - 1);
    }
  }

  void growIfNeeded() {
    if (cap_ == 0) {
      rehash(kMinCapacity);
    } else if (overloaded(size_ + 1, cap_)) {
      rehash(cap_ << 1);
    }
  }

  void rehash(std::size_t newCap) {
    std::vector<Slot> oldSlots = std::move(slots_);
    std::vector<std::uint8_t> oldUsed = std::move(used_);
    const std::size_t oldCap = cap_;
    slots_ = std::vector<Slot>(newCap);
    used_.assign(newCap, 0);
    cap_ = newCap;
    size_ = 0;
    for (std::size_t i = 0; i < oldCap; ++i) {
      if (!oldUsed[i]) continue;
      value_type* p =
          std::launder(reinterpret_cast<value_type*>(oldSlots[i].raw));
      try_emplace(p->first, std::move(p->second));
      p->~value_type();
    }
  }

  /// Copies slot-for-slot so the copy iterates in the identical order (the
  /// fault injector picks targets by iteration order; snapshots of the same
  /// table must behave identically).
  void copyFrom(const FlatMap& o) {
    slots_ = std::vector<Slot>(o.cap_);
    used_ = o.used_;
    cap_ = o.cap_;
    size_ = o.size_;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (used_[i]) ::new (slots_[i].raw) value_type(o.slotRef(i));
    }
  }

  void destroyAll() {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (used_[i]) slotPtr(i)->~value_type();
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dvmc
