// Move-only type-erased callable with fixed inline capture storage.
//
// The simulation kernel schedules tens of millions of events per second,
// and nearly every one captures more than the ~16 bytes a libstdc++
// std::function keeps inline — so the old `std::function<void()>` Action
// heap-allocated on almost every schedule() despite the slab-backed event
// queue. InlineTask is the replacement: captures live directly inside the
// task object (and therefore inside the slab Event node), there is no heap
// path at all, and a capture that outgrows the budget is a compile error at
// the schedule() call site rather than a silent allocation.
//
// Differences from std::function, all deliberate:
//   - move-only (captures own pooled handles and moved-in callbacks);
//   - invoking an empty task is a programming error (asserted), not a
//     throw;
//   - the stored callable must be nothrow-move-constructible, because the
//     kernel relocates tasks between the event node and the dispatch frame.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace dvmc {

template <std::size_t Capacity>
class InlineTask {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InlineTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "InlineTask capture exceeds the inline capacity budget — "
                  "shrink the capture (pool large payloads) or raise the "
                  "capacity at the owning declaration");
    static_assert(alignof(Fn) <= alignof(void*),
                  "InlineTask capture is over-aligned: storage is "
                  "pointer-aligned so the task packs tightly into slab "
                  "event nodes");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineTask requires nothrow-move-constructible captures");
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineTask callable must be invocable as void()");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &kOpsFor<Fn>;
  }

  InlineTask(InlineTask&& other) noexcept { moveFrom(other); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  /// Destroys the stored callable (if any); the task becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    DVMC_ASSERT(ops_ != nullptr, "invoking an empty InlineTask");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into `dst` and destroys `src` in one step: the only
    // relocation the kernel needs, and it keeps the vtable to two entries.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kOpsFor = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) noexcept {
        Fn* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  void moveFrom(InlineTask& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(void*) unsigned char storage_[Capacity];
};

}  // namespace dvmc
