// CRC-16 block hashing (Section 4.3, "Data Block Hashing").
//
// The paper hashes 64-byte data blocks down to 16 bits with CRC-16 before
// storing them in the CET/MET and shipping them in Inform-Epoch messages.
// CRC-16 guarantees detection of any corruption touching fewer than 16 bits
// of a block; blocks with >=16 erroneous bits alias with probability
// ~1/65535. We use the CCITT polynomial (0x1021), table-driven: the main
// entry point folds eight bytes per step (slice-by-8), with the classic
// one-byte-at-a-time loop kept as crc16Scalar — both for sub-slice tails
// and as the reference the tests cross-check the sliced path against.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/data_block.hpp"

namespace dvmc {

/// Raw CRC-16/CCITT over an arbitrary byte range (init 0xFFFF).
/// Slice-by-8: identical outputs to crc16Scalar at ~4x the throughput on
/// 64-byte blocks.
std::uint16_t crc16(const std::uint8_t* data, std::size_t len);

/// One-byte-at-a-time reference implementation (same polynomial, same
/// init, same outputs). Kept public so tests can cross-check the sliced
/// fast path against it exhaustively.
std::uint16_t crc16Scalar(const std::uint8_t* data, std::size_t len);

/// Convenience: hash of a whole coherence block.
inline std::uint16_t hashBlock(const DataBlock& b) {
  return crc16(b.data(), kBlockSizeBytes);
}

}  // namespace dvmc
