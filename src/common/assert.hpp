// Always-on invariant checking for the simulator.
//
// The DVMC checkers detect *injected* hardware errors; DVMC_ASSERT detects
// *simulator* bugs. The two must not be conflated: checker detections are
// reported through dvmc::ErrorSink, assertion failures abort the process.
#pragma once

#include <cstdio>
#include <cstdlib>

#define DVMC_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DVMC_ASSERT failed at %s:%d: %s\n  %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DVMC_FATAL(msg)                                                      \
  do {                                                                       \
    std::fprintf(stderr, "DVMC_FATAL at %s:%d: %s\n", __FILE__, __LINE__,    \
                 msg);                                                       \
    std::abort();                                                            \
  } while (0)
