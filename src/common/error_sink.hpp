// Central sink for error detections.
//
// Every DVMC checker (and the ECC machinery) reports detections here rather
// than acting on them directly; the system layer decides whether to trigger
// backward error recovery. Keeping detection and reaction separate mirrors
// the paper's architecture, where checkers raise an error signal and
// SafetyNet performs the recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dvmc {

enum class CheckerKind : std::uint8_t {
  kUniprocessorOrdering,
  kAllowableReordering,
  kCacheCoherence,
  kEcc,
  kLostOperation,
  kOther,
};

const char* checkerKindName(CheckerKind k);

struct Detection {
  CheckerKind kind;
  Cycle cycle;
  NodeId node;
  Addr addr;
  std::string what;
};

class ErrorSink {
 public:
  /// Called synchronously from report() for every detection, after it has
  /// been appended to the vector. Observers replace polling detections():
  /// the event tracer records detections through one, and the system
  /// layer's auto-recovery arms rollback through another. An observer must
  /// not call report() re-entrantly; scheduling follow-up work on the
  /// simulator is the intended reaction pattern.
  using Observer = std::function<void(const Detection&)>;

  void addObserver(Observer fn) { observers_.push_back(std::move(fn)); }

  void report(Detection d) {
    detections_.push_back(std::move(d));
    if (!observers_.empty()) {
      const Detection& ref = detections_.back();
      for (const Observer& fn : observers_) fn(ref);
    }
  }

  bool any() const { return !detections_.empty(); }
  std::size_t count() const { return detections_.size(); }
  /// Vector accessor kept for tests; production reaction paths should
  /// register an observer instead of polling this.
  const std::vector<Detection>& detections() const { return detections_; }
  const Detection& first() const { return detections_.front(); }
  /// Clears recorded detections; registered observers stay.
  void clear() { detections_.clear(); }

 private:
  std::vector<Detection> detections_;
  std::vector<Observer> observers_;
};

inline const char* checkerKindName(CheckerKind k) {
  switch (k) {
    case CheckerKind::kUniprocessorOrdering: return "UniprocessorOrdering";
    case CheckerKind::kAllowableReordering: return "AllowableReordering";
    case CheckerKind::kCacheCoherence: return "CacheCoherence";
    case CheckerKind::kEcc: return "ECC";
    case CheckerKind::kLostOperation: return "LostOperation";
    case CheckerKind::kOther: return "Other";
  }
  return "?";
}

}  // namespace dvmc
