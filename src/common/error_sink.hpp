// Central sink for error detections.
//
// Every DVMC checker (and the ECC machinery) reports detections here rather
// than acting on them directly; the system layer decides whether to trigger
// backward error recovery. Keeping detection and reaction separate mirrors
// the paper's architecture, where checkers raise an error signal and
// SafetyNet performs the recovery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dvmc {

enum class CheckerKind : std::uint8_t {
  kUniprocessorOrdering,
  kAllowableReordering,
  kCacheCoherence,
  kEcc,
  kLostOperation,
  kOther,
};

const char* checkerKindName(CheckerKind k);

struct Detection {
  CheckerKind kind;
  Cycle cycle;
  NodeId node;
  Addr addr;
  std::string what;
};

class ErrorSink {
 public:
  void report(Detection d) { detections_.push_back(std::move(d)); }

  bool any() const { return !detections_.empty(); }
  std::size_t count() const { return detections_.size(); }
  const std::vector<Detection>& detections() const { return detections_; }
  const Detection& first() const { return detections_.front(); }
  void clear() { detections_.clear(); }

 private:
  std::vector<Detection> detections_;
};

inline const char* checkerKindName(CheckerKind k) {
  switch (k) {
    case CheckerKind::kUniprocessorOrdering: return "UniprocessorOrdering";
    case CheckerKind::kAllowableReordering: return "AllowableReordering";
    case CheckerKind::kCacheCoherence: return "CacheCoherence";
    case CheckerKind::kEcc: return "ECC";
    case CheckerKind::kLostOperation: return "LostOperation";
    case CheckerKind::kOther: return "Other";
  }
  return "?";
}

}  // namespace dvmc
