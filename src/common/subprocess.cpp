#include "common/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

extern char** environ;

namespace dvmc {

namespace {

std::uint64_t steadyMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Newest-kept bounded byte buffer: appends drop the *front* once the cap
/// is exceeded, so the retained bytes are always the stream's tail.
struct TailBuffer {
  explicit TailBuffer(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {}

  void append(const char* p, std::size_t n) {
    total_ += n;
    if (n >= cap_) {
      data_.assign(p + (n - cap_), cap_);
      return;
    }
    if (data_.size() + n > cap_) data_.erase(0, data_.size() + n - cap_);
    data_.append(p, n);
  }

  std::string data_;
  std::uint64_t total_ = 0;
  std::size_t cap_;
};

void setCloexec(int fd) { fcntl(fd, F_SETFD, FD_CLOEXEC); }
void setNonblock(int fd) { fcntl(fd, F_SETFL, O_NONBLOCK); }

/// Child-side rlimit application (between fork and exec: only
/// async-signal-safe calls).
void applyLimits(const SubprocessLimits& limits) {
  rlimit rl;
  rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(limits.coreBytes);
  setrlimit(RLIMIT_CORE, &rl);
  if (limits.memoryBytes != 0) {
    rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(limits.memoryBytes);
    setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpuSeconds != 0) {
    rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(limits.cpuSeconds);
    setrlimit(RLIMIT_CPU, &rl);
  }
}

/// Sends `sig` to the child's whole process group (it called setpgid), so
/// shell wrappers and grandchildren die with it. Falls back to the single
/// pid if the group is already gone.
void signalChildGroup(pid_t pid, int sig) {
  if (kill(-pid, sig) != 0) kill(pid, sig);
}

}  // namespace

const char* exitReasonName(ExitReason r) {
  switch (r) {
    case ExitReason::kCleanExit: return "clean-exit";
    case ExitReason::kNonZeroExit: return "nonzero-exit";
    case ExitReason::kSignaled: return "signaled";
    case ExitReason::kTimedOut: return "timed-out";
    case ExitReason::kSpawnFailed: return "spawn-failed";
  }
  return "?";
}

std::string ExitStatus::describe() const {
  switch (reason) {
    case ExitReason::kCleanExit: return "exit 0";
    case ExitReason::kNonZeroExit:
      return "exit " + std::to_string(exitCode);
    case ExitReason::kSignaled: {
      const char* name = strsignal(termSignal);
      return "signal " + std::to_string(termSignal) + " (" +
             (name != nullptr ? name : "?") + ")";
    }
    case ExitReason::kTimedOut:
      return termSignal == SIGKILL
                 ? std::string("timed out (SIGKILL escalation)")
                 : std::string("timed out");
    case ExitReason::kSpawnFailed: return "spawn failed";
  }
  return "?";
}

SubprocessResult runSubprocess(const SubprocessOptions& opt) {
  SubprocessResult res;
  if (opt.argv.empty()) {
    res.spawnError = "empty argv";
    return res;
  }

  // Pre-build the exec vectors: the post-fork child may only touch
  // async-signal-safe calls (the parent is usually multithreaded).
  std::vector<char*> argv;
  argv.reserve(opt.argv.size() + 1);
  for (const std::string& a : opt.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  std::vector<std::string> envStore;
  std::vector<char*> envp;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    envp.push_back(*e);
  }
  envStore.reserve(opt.extraEnv.size());
  for (const auto& [key, value] : opt.extraEnv) {
    envStore.push_back(key + "=" + value);
    envp.push_back(const_cast<char*>(envStore.back().c_str()));
  }
  envp.push_back(nullptr);

  int outPipe[2], errPipe[2], execPipe[2];
  if (pipe(outPipe) != 0 || pipe(errPipe) != 0 || pipe(execPipe) != 0) {
    res.spawnError = std::string("pipe: ") + strerror(errno);
    return res;
  }
  setCloexec(execPipe[0]);
  setCloexec(execPipe[1]);

  const std::uint64_t start = steadyMs();
  const pid_t pid = fork();
  if (pid < 0) {
    res.spawnError = std::string("fork: ") + strerror(errno);
    for (int fd : {outPipe[0], outPipe[1], errPipe[0], errPipe[1],
                   execPipe[0], execPipe[1]}) {
      close(fd);
    }
    return res;
  }

  if (pid == 0) {
    // Child. Own process group so the parent can TERM/KILL the whole tree.
    setpgid(0, 0);
    applyLimits(opt.limits);
    const int devnull = open("/dev/null", O_RDONLY);
    if (devnull >= 0) dup2(devnull, STDIN_FILENO);
    dup2(outPipe[1], STDOUT_FILENO);
    dup2(errPipe[1], STDERR_FILENO);
    close(outPipe[0]);
    close(outPipe[1]);
    close(errPipe[0]);
    close(errPipe[1]);
    close(execPipe[0]);
    execvpe(argv[0], argv.data(), envp.data());
    // exec failed: report errno through the CLOEXEC pipe and die.
    const int err = errno;
    ssize_t ignored = write(execPipe[1], &err, sizeof(err));
    (void)ignored;
    _exit(127);
  }

  // Parent.
  setpgid(pid, pid);  // racing the child's own call is fine
  close(outPipe[1]);
  close(errPipe[1]);
  close(execPipe[1]);
  if (opt.onSpawn) opt.onSpawn(static_cast<int>(pid));

  // Did exec land? A closed pipe (0 bytes) means yes.
  int execErrno = 0;
  const ssize_t n = read(execPipe[0], &execErrno, sizeof(execErrno));
  close(execPipe[0]);
  if (n == static_cast<ssize_t>(sizeof(execErrno))) {
    int status = 0;
    waitpid(pid, &status, 0);
    close(outPipe[0]);
    close(errPipe[0]);
    res.spawnError =
        std::string("exec '") + opt.argv[0] + "': " + strerror(execErrno);
    res.wallMs = steadyMs() - start;
    return res;
  }

  setNonblock(outPipe[0]);
  setNonblock(errPipe[0]);
  TailBuffer outBuf(opt.maxCapturedBytes), errBuf(opt.maxCapturedBytes);
  int fds[2] = {outPipe[0], errPipe[0]};
  TailBuffer* bufs[2] = {&outBuf, &errBuf};

  const std::uint64_t deadlineAt =
      opt.deadlineMs != 0 ? start + opt.deadlineMs : UINT64_MAX;
  std::uint64_t killAt = UINT64_MAX;
  bool timedOut = false, sentKill = false, reaped = false;
  int status = 0;
  rusage childUsage{};

  auto drain = [&](int timeoutMs) {
    pollfd pfds[2];
    nfds_t nf = 0;
    for (int i = 0; i < 2; ++i) {
      if (fds[i] < 0) continue;
      pfds[nf].fd = fds[i];
      pfds[nf].events = POLLIN;
      ++nf;
    }
    if (nf == 0) {
      if (timeoutMs > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(timeoutMs));
      }
      return;
    }
    if (poll(pfds, nf, timeoutMs) <= 0) return;
    for (nfds_t p = 0; p < nf; ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      for (int i = 0; i < 2; ++i) {
        if (fds[i] != pfds[p].fd) continue;
        char chunk[4096];
        ssize_t got;
        while ((got = read(fds[i], chunk, sizeof(chunk))) > 0) {
          bufs[i]->append(chunk, static_cast<std::size_t>(got));
        }
        if (got == 0 || (got < 0 && errno != EAGAIN && errno != EINTR)) {
          close(fds[i]);
          fds[i] = -1;
        }
      }
    }
  };

  while (true) {
    if (!reaped) {
      rusage ru{};
      const pid_t r = wait4(pid, &status, WNOHANG, &ru);
      if (r == pid) {
        reaped = true;
        childUsage = ru;
      }
    }
    if (reaped) {
      // Final drain: pick up whatever is buffered, then stop — a lingering
      // grandchild may hold the pipes open forever, and the capture is
      // explicitly bounded to the supervised child's lifetime.
      drain(0);
      break;
    }
    const std::uint64_t now = steadyMs();
    if (now >= killAt && !sentKill) {
      signalChildGroup(pid, SIGKILL);
      sentKill = true;
    } else if (now >= deadlineAt && !timedOut) {
      timedOut = true;
      signalChildGroup(pid, SIGTERM);
      killAt = now + opt.graceMs;
    }
    std::uint64_t next = deadlineAt;
    if (killAt < next) next = killAt;
    int timeoutMs = 50;
    if (next != UINT64_MAX && next > now &&
        next - now < static_cast<std::uint64_t>(timeoutMs)) {
      timeoutMs = static_cast<int>(next - now);
    }
    drain(timeoutMs);
  }
  for (int i = 0; i < 2; ++i) {
    if (fds[i] >= 0) close(fds[i]);
  }

  res.wallMs = steadyMs() - start;
  res.stdoutTail = std::move(outBuf.data_);
  res.stderrTail = std::move(errBuf.data_);
  res.stdoutBytes = outBuf.total_;
  res.stderrBytes = errBuf.total_;
  res.maxRssBytes = static_cast<std::uint64_t>(childUsage.ru_maxrss) * 1024u;
  res.spawnError.clear();

  ExitStatus& st = res.status;
  if (WIFEXITED(status)) {
    st.exitCode = WEXITSTATUS(status);
    st.reason = timedOut                ? ExitReason::kTimedOut
                : st.exitCode == 0      ? ExitReason::kCleanExit
                                        : ExitReason::kNonZeroExit;
  } else if (WIFSIGNALED(status)) {
    st.termSignal = WTERMSIG(status);
    st.coreDumped = WCOREDUMP(status);
    st.reason = timedOut ? ExitReason::kTimedOut : ExitReason::kSignaled;
  } else {
    st.reason = ExitReason::kSignaled;  // stopped/continued never happens
  }
  return res;
}

std::uint64_t retryDelayMs(const RetryPolicy& p, std::uint64_t taskKey,
                           int attempt) {
  if (attempt <= 1 || p.baseDelayMs == 0) return 0;
  const int retryIndex = attempt - 2;  // 0 for the first retry
  std::uint64_t d = p.baseDelayMs;
  for (int i = 0; i < retryIndex && d < p.maxDelayMs; ++i) d *= 2;
  if (d > p.maxDelayMs) d = p.maxDelayMs;
  if (d <= 1) return d;
  // Deterministic jitter in [d/2, d): same (seed, key, attempt) -> same
  // delay, so a rerun reproduces the schedule exactly.
  Rng rng(p.seed ^ (0x9E3779B97F4A7C15ull * (taskKey + 1)) ^
          (0xBF58476D1CE4E5B9ull * static_cast<std::uint64_t>(attempt)));
  return d / 2 + rng.below(d - d / 2);
}

std::vector<TaskOutcome> Supervisor::run(
    const std::vector<SupervisedTask>& tasks) {
  std::vector<TaskOutcome> outcomes(tasks.size());
  std::function<void(std::uint64_t)> sleep = sleepMs;
  if (!sleep) {
    sleep = [](std::uint64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  parallelFor(tasks.size(), workers_, [&](std::size_t i) {
    const SupervisedTask& task = tasks[i];
    TaskOutcome& out = outcomes[i];
    const int maxAttempts = policy_.maxAttempts > 0 ? policy_.maxAttempts : 1;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
      if (attempt > 1) sleep(retryDelayMs(policy_, task.key, attempt));
      if (onAttemptStart) onAttemptStart(i, attempt);
      SubprocessResult r = runSubprocess(task.makeOptions(attempt));
      const bool ok =
          isSuccess ? isSuccess(i, r) : r.status.clean();
      const bool willRetry = !ok && attempt < maxAttempts;
      if (onAttemptDone) onAttemptDone(i, attempt, r, willRetry);
      out.attempts = attempt;
      out.succeeded = ok;
      out.last = std::move(r);
      if (!willRetry) break;
    }
  });
  return outcomes;
}

}  // namespace dvmc
