// Wraparound-safe 16-bit logical time (Section 4.3, "Logical Time").
//
// The paper stores logical times in 16 bits to bound storage and message
// size, and scrubs stale timestamps before they can wrap. Comparisons use
// modular arithmetic: `a` is considered before `b` when the signed distance
// (b - a) mod 2^16 is positive. This is valid as long as live timestamps
// never span more than half the wheel (2^15 ticks), which the scrub FIFOs
// guarantee.
#pragma once

#include <cstdint>

namespace dvmc {

/// A 16-bit wrapping logical timestamp.
using LTime16 = std::uint16_t;

/// True if a occurred strictly before b on the wrapping wheel.
constexpr bool ltimeBefore(LTime16 a, LTime16 b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(b - a)) > 0;
}

/// True if a occurred before or at b.
constexpr bool ltimeBeforeEq(LTime16 a, LTime16 b) {
  return a == b || ltimeBefore(a, b);
}

/// Wrapping distance from a to b (how far b is ahead of a).
constexpr std::uint16_t ltimeDistance(LTime16 a, LTime16 b) {
  return static_cast<std::uint16_t>(b - a);
}

/// Truncates a wide logical time to the 16-bit wire/storage format.
constexpr LTime16 ltimeTruncate(std::uint64_t wide) {
  return static_cast<LTime16>(wide & 0xFFFF);
}

}  // namespace dvmc
