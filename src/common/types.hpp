// Fundamental types shared by every DVMC subsystem.
//
// The simulator models a physical address space partitioned into fixed-size
// coherence blocks (64 bytes, matching the paper's configuration). Nodes are
// identified by small dense integers; each node hosts a processor, a private
// cache hierarchy, and a slice of memory (its "home" blocks).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dvmc {

/// Simulation time in processor cycles.
using Cycle = std::uint64_t;

/// A full physical byte address.
using Addr = std::uint64_t;

/// Node (processor / memory controller) identifier.
using NodeId = std::uint32_t;

/// Monotonic per-processor instruction sequence number (program order rank).
using SeqNum = std::uint64_t;

/// Coherence block geometry. 64-byte blocks as in Table 6.
inline constexpr std::size_t kBlockSizeBytes = 64;
inline constexpr std::size_t kBlockSizeWords = kBlockSizeBytes / 8;
inline constexpr Addr kBlockOffsetMask = kBlockSizeBytes - 1;

/// Rounds an address down to its containing block.
constexpr Addr blockAddr(Addr a) { return a & ~kBlockOffsetMask; }

/// Byte offset of an address within its block.
constexpr std::size_t blockOffset(Addr a) {
  return static_cast<std::size_t>(a & kBlockOffsetMask);
}

/// Invalid node sentinel.
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Addresses below this boundary are zero-initialized (BSS-style): the
/// synchronization segment (locks, barrier counters) must read as zero
/// before first use. Everything above gets a deterministic fill pattern.
inline constexpr Addr kZeroInitBoundary = Addr{1} << 21;

}  // namespace dvmc
