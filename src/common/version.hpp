// Build identity stamp (configure-time git describe + build type +
// sanitizer config).
//
// Every binary answers `--version` with versionString(), and every
// artifact writer (run reports, status snapshots, JSONL logs, bench
// documents) records it in its "generator" field, so an artifact always
// names exactly the build that produced it — no more guessing whether a
// nightly escape came from a sanitizer build or which commit a baseline
// was measured on.
#pragma once

namespace dvmc {

/// "dvmc <git-describe> (<build-type>[, sanitize=<cfg>])", e.g.
/// "dvmc 3a82399 (Release)" or "dvmc v1.2-4-g0d1e2f3-dirty (RelWithDebInfo,
/// sanitize=address,undefined)". Stable for the life of the process.
const char* versionString();

/// The raw configure-time pieces ("unknown" when git was unavailable).
const char* gitDescribe();
const char* buildType();
/// Comma-separated sanitizer list, or "" for a plain build.
const char* sanitizeConfig();

}  // namespace dvmc
