#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/version.hpp"

namespace dvmc {

namespace {

bool parseCount(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;  // 19 digits < 2^63
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;
  *out = v;
  return true;
}

bool parseInt(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  std::size_t k = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    k = 1;
  }
  if (k == s.size() || s.size() - k > 18) return false;
  std::int64_t v = 0;
  for (; k < s.size(); ++k) {
    if (s[k] < '0' || s[k] > '9') return false;
    v = v * 10 + (s[k] - '0');
  }
  *out = neg ? -v : v;
  return true;
}

}  // namespace

CliParser::CliParser(std::string binaryName, std::string description)
    : binaryName_(std::move(binaryName)),
      description_(std::move(description)) {}

CliParser& CliParser::add(Opt o) {
  opts_.push_back(std::move(o));
  return *this;
}

CliParser& CliParser::flag(const std::string& name, bool* target,
                           const std::string& help) {
  Opt o;
  o.name = name;
  o.help = help;
  o.boolTarget = target;
  return add(std::move(o));
}

CliParser& CliParser::option(const std::string& name, std::string* target,
                             const std::string& valueName,
                             const std::string& help) {
  Opt o;
  o.name = name;
  o.valueName = valueName;
  o.help = help;
  o.defaultValue = *target;
  o.parseValue = [target](const std::string& v) -> std::string {
    *target = v;
    return {};
  };
  return add(std::move(o));
}

CliParser& CliParser::option(const std::string& name, int* target,
                             const std::string& valueName,
                             const std::string& help) {
  Opt o;
  o.name = name;
  o.valueName = valueName;
  o.help = help;
  o.defaultValue = std::to_string(*target);
  o.parseValue = [target](const std::string& v) -> std::string {
    std::int64_t parsed = 0;
    if (!parseInt(v, &parsed)) return "'" + v + "' is not an integer";
    *target = static_cast<int>(parsed);
    return {};
  };
  return add(std::move(o));
}

CliParser& CliParser::option(const std::string& name, std::uint64_t* target,
                             const std::string& valueName,
                             const std::string& help) {
  Opt o;
  o.name = name;
  o.valueName = valueName;
  o.help = help;
  o.defaultValue = std::to_string(*target);
  o.parseValue = [target](const std::string& v) -> std::string {
    // Accepts 0x-prefixed values too (seeds are conventionally hex).
    if (v.size() > 2 && v[0] == '0' && (v[1] == 'x' || v[1] == 'X')) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') {
        return "'" + v + "' is not a number";
      }
      *target = parsed;
      return {};
    }
    std::int64_t parsed = 0;
    if (!parseInt(v, &parsed) || parsed < 0) {
      return "'" + v + "' is not a non-negative integer";
    }
    *target = static_cast<std::uint64_t>(parsed);
    return {};
  };
  return add(std::move(o));
}

CliParser& CliParser::count(const std::string& name, std::uint64_t* target,
                            const std::string& valueName,
                            const std::string& help) {
  Opt o;
  o.name = name;
  o.valueName = valueName;
  o.help = help;
  o.defaultValue = std::to_string(*target);
  o.parseValue = [target](const std::string& v) -> std::string {
    std::uint64_t parsed = 0;
    if (!parseCount(v, &parsed)) {
      return "'" + v + "' is not a positive integer";
    }
    *target = parsed;
    return {};
  };
  return add(std::move(o));
}

CliParser& CliParser::path(const std::string& name, std::string* target,
                           const std::string& valueName,
                           const std::string& help) {
  Opt o;
  o.name = name;
  o.valueName = valueName;
  o.help = help;
  o.defaultValue = *target;
  o.parseValue = [target](const std::string& v) -> std::string {
    if (v.empty()) return "empty output path";
    // Append-mode probe: verifies writability (creating the file if
    // absent) without clobbering content the binary writes later.
    std::ofstream probe(v, std::ios::app);
    if (!probe) return "cannot open '" + v + "' for writing";
    *target = v;
    return {};
  };
  return add(std::move(o));
}

CliParser& CliParser::optionFn(
    const std::string& name, const std::string& valueName,
    const std::string& help,
    std::function<std::string(const std::string&)> parse) {
  Opt o;
  o.name = name;
  o.valueName = valueName;
  o.help = help;
  o.parseValue = std::move(parse);
  return add(std::move(o));
}

CliParser& CliParser::alias(const std::string& shortName) {
  if (!opts_.empty()) opts_.back().shortName = shortName;
  return *this;
}

CliParser& CliParser::passthroughPrefix(const std::string& prefix) {
  passthrough_.push_back(prefix);
  return *this;
}

CliParser& CliParser::lenient() {
  lenient_ = true;
  return *this;
}

CliParser& CliParser::noPositionals() {
  noPositionals_ = true;
  return *this;
}

CliParser& CliParser::usageLine(const std::string& usage) {
  usage_ = usage;
  return *this;
}

CliParser& CliParser::exitOnError(bool v) {
  exitOnError_ = v;
  return *this;
}

int CliParser::fail(const std::string& msg) {
  error_ = msg;
  if (exitOnError_) {
    std::fprintf(stderr, "%s: %s\n", binaryName_.c_str(), msg.c_str());
    std::fprintf(stderr, "try: %s --help\n", binaryName_.c_str());
    std::exit(2);
  }
  return -1;
}

int CliParser::parse(int argc, char** argv) {
  error_.clear();
  helpRequested_ = false;
  versionRequested_ = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      helpRequested_ = true;
      if (exitOnError_) {
        std::fputs(helpText().c_str(), stdout);
        std::exit(0);
      }
      continue;
    }
    if (arg == "--version") {
      versionRequested_ = true;
      if (exitOnError_) {
        std::printf("%s\n", versionString());
        std::exit(0);
      }
      continue;
    }
    if (arg == "--help-markdown") {
      helpRequested_ = true;
      if (exitOnError_) {
        std::fputs(markdownTable().c_str(), stdout);
        std::exit(0);
      }
      continue;
    }
    const Opt* matched = nullptr;
    std::string value;
    bool haveValue = false;
    for (const Opt& o : opts_) {
      if (arg == o.name || (!o.shortName.empty() && arg == o.shortName)) {
        matched = &o;
        break;
      }
      if (o.parseValue && arg.size() > o.name.size() &&
          arg.compare(0, o.name.size(), o.name) == 0 &&
          arg[o.name.size()] == '=') {
        matched = &o;
        value = arg.substr(o.name.size() + 1);
        haveValue = true;
        break;
      }
    }
    if (matched == nullptr) {
      if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
        bool pass = lenient_;
        for (const std::string& p : passthrough_) {
          if (arg.compare(0, p.size(), p) == 0) {
            pass = true;
            break;
          }
        }
        if (!pass) return fail("unknown option '" + arg + "'");
      } else if (noPositionals_ && arg != "-") {
        return fail("unexpected operand '" + arg + "'");
      }
      argv[out++] = argv[i];
      continue;
    }
    if (matched->boolTarget != nullptr) {
      *matched->boolTarget = true;
      continue;
    }
    if (!haveValue) {
      if (i + 1 >= argc) {
        return fail(matched->name + " requires a value");
      }
      value = argv[++i];
    }
    const std::string err = matched->parseValue(value);
    if (!err.empty()) return fail("invalid " + matched->name + ": " + err);
  }
  argv[out] = nullptr;
  return out;
}

std::string CliParser::helpText() const {
  std::string s = binaryName_ + " — " + description_ + "\n";
  if (!usage_.empty()) s += usage_ + "\n";
  s += "\noptions:\n";
  for (const Opt& o : opts_) {
    std::string head = "  " + o.name;
    if (!o.shortName.empty()) head += ", " + o.shortName;
    if (!o.valueName.empty()) head += " " + o.valueName;
    s += head;
    if (head.size() < 30) {
      s += std::string(30 - head.size(), ' ');
    } else {
      s += "\n" + std::string(30, ' ');
    }
    s += o.help;
    if (!o.defaultValue.empty()) s += " (default: " + o.defaultValue + ")";
    s += "\n";
  }
  s += "  --help, -h                  show this message and exit\n";
  s += "  --version                   print the build identity and exit\n";
  return s;
}

std::string CliParser::markdownTable() const {
  std::string s = "| Flag | Value | Description |\n|---|---|---|\n";
  for (const Opt& o : opts_) {
    std::string name = "`" + o.name + "`";
    if (!o.shortName.empty()) name += ", `" + o.shortName + "`";
    std::string value = o.valueName.empty() ? "—" : "`" + o.valueName + "`";
    std::string help = o.help;
    if (!o.defaultValue.empty()) help += " (default: " + o.defaultValue + ")";
    s += "| " + name + " | " + value + " | " + help + " |\n";
  }
  return s;
}

}  // namespace dvmc
