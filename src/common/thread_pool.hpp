// Fixed-size thread pool for embarrassingly parallel experiment work.
//
// The paper's evaluation runs every configuration ten times with perturbed
// seeds; those runs share nothing, so the experiment harness farms them out
// to a small pool of workers. This is deliberately not a work-stealing
// scheduler: tasks are coarse (whole simulations, seconds each), so a single
// mutex-protected FIFO queue is plenty and keeps the dispatch order — and
// therefore any diagnostic output — easy to reason about.
//
// Determinism contract: the pool never reorders *results*. Callers index
// results by task id (see parallelFor) and merge in task order, so a
// parallel run aggregates bit-identically to a sequential one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dvmc {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 = hardwareWorkers()).
  explicit ThreadPool(unsigned workers = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait();

  unsigned workerCount() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency, with a floor of 1.
  static unsigned hardwareWorkers();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;  // queued + currently running
  bool stop_ = false;
};

/// Runs body(0) .. body(count-1) on up to `jobs` threads (0 = hardware
/// concurrency). Iterations are claimed dynamically, so uneven task
/// durations balance out. jobs<=1 or count<=1 degrades to a plain serial
/// loop on the calling thread — the sequential reference path.
///
/// The body must be safe to invoke concurrently for distinct indices; each
/// index is invoked exactly once. parallelFor returns only after every
/// iteration has completed.
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& body);

}  // namespace dvmc
