// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (workload address streams,
// perturbation runs, fault injection sites) draws from an Rng seeded
// explicitly, so that any run can be reproduced exactly from its seed.
// SplitMix64 for seeding, xoshiro256** for the stream.
#pragma once

#include <cstdint>

namespace dvmc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace dvmc
