// SafetyNet-style backward error recovery (Sorin et al.), as used by the
// paper's evaluation (any BER scheme, e.g. ReVive, would work).
//
// The system takes coordinated checkpoints every `interval` cycles and
// keeps the most recent `maxCheckpoints` of them; the recovery window is
// therefore interval * maxCheckpoints cycles (~100k cycles with the
// defaults, matching the paper's "SafetyNet recovery time frame"). A
// checkpoint captures the *architectural* state: the coherent memory image
// (a shadow updated at every performed store) plus each core's program
// state and in-flight instruction list. Recovery rolls every component
// back and restarts the cores after a drain delay that lets stale
// in-flight messages land harmlessly.
//
// Checkpoints are *undo logs*, exactly as in the original SafetyNet design
// (incremental old-value logging): the system records, per checkpoint
// interval, the prior value of each block the first time it is dirtied, so
// taking a checkpoint costs O(blocks dirtied since the last one) instead of
// a deep copy of the whole memory image. Recovery reconstructs the rollback
// image by replaying undo records newest-first back to the target.
//
// Checkpoint traffic (log + coordination messages) is modeled explicitly
// because Figure 7 attributes measurable interconnect load to SafetyNet.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/data_block.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "cpu/core.hpp"
#include "sim/simulator.hpp"

namespace dvmc {

struct BerConfig {
  Cycle interval = 20'000;
  std::size_t maxCheckpoints = 6;
  Cycle restartDrainDelay = 2'000;  // message-drain gap before cores restart
  bool modelTraffic = true;
};

class SafetyNet {
 public:
  /// One old-value log entry: the state of `blk` in the performed-store
  /// shadow at the *start* of the interval that first dirtied it
  /// (wasAbsent: the block was not materialized yet — restore erases it;
  /// an absent block re-materializes to the same deterministic pattern).
  struct UndoRecord {
    Addr blk = 0;
    bool wasAbsent = false;
    DataBlock oldValue;
  };

  struct Snapshot {
    Cycle cycle = 0;
    /// Undo segment for the interval ENDING at this checkpoint: old values
    /// (as of the previous checkpoint) of every block dirtied since then.
    /// Each block appears at most once.
    std::vector<UndoRecord> undo;
    std::vector<Core::ArchSnapshot> cores;
  };

  using CaptureFn = std::function<Snapshot()>;
  /// Restores to `target`. `newerNewestFirst` holds every checkpoint taken
  /// after `target` (newest first): the restorer replays its own live undo
  /// segment, then each of these checkpoints' segments in that order, to
  /// walk the shadow image back to `target.cycle`.
  using RestoreFn = std::function<void(
      const Snapshot& target, const std::vector<const Snapshot*>& newerNewestFirst)>;
  using TrafficFn = std::function<void()>;  // emit log/coordination traffic

  SafetyNet(Simulator& sim, BerConfig cfg, CaptureFn capture,
            RestoreFn restore, TrafficFn traffic);

  /// Begins periodic checkpointing (takes checkpoint 0 immediately).
  void start();
  void stop() { running_ = false; }

  /// Rolls back to the newest checkpoint strictly older than `errorCycle`.
  /// Returns false (no state change) when the error predates the window.
  bool recoverBefore(Cycle errorCycle);

  std::size_t checkpointCount() const { return checkpoints_.size(); }
  Cycle oldestCheckpoint() const {
    return checkpoints_.empty() ? 0 : checkpoints_.front().cycle;
  }
  Cycle newestCheckpoint() const {
    return checkpoints_.empty() ? 0 : checkpoints_.back().cycle;
  }
  Cycle recoveryWindow() const { return cfg_.interval * cfg_.maxCheckpoints; }
  std::uint64_t recoveries() const { return recoveries_; }
  const MetricSet& stats() const { return stats_; }

 private:
  void checkpointTick();

  Simulator& sim_;
  BerConfig cfg_;
  CaptureFn capture_;
  RestoreFn restore_;
  TrafficFn traffic_;
  std::deque<Snapshot> checkpoints_;
  bool running_ = false;
  std::uint64_t recoveries_ = 0;

  // Metric registry (stats_ must precede the handles).
  MetricSet stats_;
  Counter cCheckpoints_ = stats_.counter("ber.checkpoints");
  Counter cUndoBlocks_ = stats_.counter("ber.undoBlocksLogged");
  Counter cRecoveries_ = stats_.counter("ber.recoveries");
  Counter cWindowExpired_ = stats_.counter("ber.windowExpired");
  Gauge gLiveCheckpoints_ = stats_.gauge("ber.liveCheckpoints");
  Histogram hRollbackDistance_ = stats_.histogram("ber.rollbackDistance");
};

}  // namespace dvmc
