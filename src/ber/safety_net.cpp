#include "ber/safety_net.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace dvmc {

SafetyNet::SafetyNet(Simulator& sim, BerConfig cfg, CaptureFn capture,
                     RestoreFn restore, TrafficFn traffic)
    : sim_(sim),
      cfg_(cfg),
      capture_(std::move(capture)),
      restore_(std::move(restore)),
      traffic_(std::move(traffic)) {}

void SafetyNet::start() {
  if (running_) return;
  running_ = true;
  checkpointTick();
}

void SafetyNet::checkpointTick() {
  if (!running_) return;
  checkpoints_.push_back(capture_());
  cCheckpoints_.inc();
  while (checkpoints_.size() > cfg_.maxCheckpoints) {
    checkpoints_.pop_front();  // oldest checkpoint validated & discarded
  }
  gLiveCheckpoints_.set(checkpoints_.size());
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kCheckpoint, "ber.checkpoint", 0, 0,
               cCheckpoints_.value());
  }
  if (cfg_.modelTraffic && traffic_) traffic_();
  sim_.schedule(cfg_.interval, [this] { checkpointTick(); });
}

bool SafetyNet::recoverBefore(Cycle errorCycle) {
  // Newest checkpoint strictly older than the error: anything taken at or
  // after the error may have captured corrupted state.
  const Snapshot* target = nullptr;
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->cycle < errorCycle) {
      target = &*it;
      break;
    }
  }
  if (target == nullptr) {
    cWindowExpired_.inc();
    return false;
  }
  restore_(*target);
  ++recoveries_;
  cRecoveries_.inc();
  hRollbackDistance_.add(sim_.now() - target->cycle);
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kRollback, "ber.rollback", 0, 0,
               sim_.now() - target->cycle);
  }
  // Checkpoints taken after the restored point describe a squashed future.
  while (!checkpoints_.empty() && checkpoints_.back().cycle > target->cycle) {
    checkpoints_.pop_back();
  }
  gLiveCheckpoints_.set(checkpoints_.size());
  return true;
}

}  // namespace dvmc
