#include "ber/safety_net.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace dvmc {

SafetyNet::SafetyNet(Simulator& sim, BerConfig cfg, CaptureFn capture,
                     RestoreFn restore, TrafficFn traffic)
    : sim_(sim),
      cfg_(cfg),
      capture_(std::move(capture)),
      restore_(std::move(restore)),
      traffic_(std::move(traffic)) {}

void SafetyNet::start() {
  if (running_) return;
  running_ = true;
  checkpointTick();
}

void SafetyNet::checkpointTick() {
  if (!running_) return;
  checkpoints_.push_back(capture_());
  cCheckpoints_.inc();
  cUndoBlocks_.inc(checkpoints_.back().undo.size());
  while (checkpoints_.size() > cfg_.maxCheckpoints) {
    checkpoints_.pop_front();  // oldest checkpoint validated & discarded
  }
  gLiveCheckpoints_.set(checkpoints_.size());
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kCheckpoint, "ber.checkpoint", 0, 0,
               cCheckpoints_.value());
  }
  if (cfg_.modelTraffic && traffic_) traffic_();
  sim_.schedule(cfg_.interval, [this] { checkpointTick(); });
}

bool SafetyNet::recoverBefore(Cycle errorCycle) {
  // Newest checkpoint strictly older than the error: anything taken at or
  // after the error may have captured corrupted state.
  std::size_t targetIdx = checkpoints_.size();
  for (std::size_t i = checkpoints_.size(); i-- > 0;) {
    if (checkpoints_[i].cycle < errorCycle) {
      targetIdx = i;
      break;
    }
  }
  if (targetIdx == checkpoints_.size()) {
    cWindowExpired_.inc();
    return false;
  }
  const Snapshot* target = &checkpoints_[targetIdx];
  // Undo segments newer than the target, newest first: the restorer walks
  // the memory image back one checkpoint interval per segment.
  std::vector<const Snapshot*> newer;
  newer.reserve(checkpoints_.size() - targetIdx - 1);
  for (std::size_t i = checkpoints_.size(); i-- > targetIdx + 1;) {
    newer.push_back(&checkpoints_[i]);
  }
  restore_(*target, newer);
  ++recoveries_;
  cRecoveries_.inc();
  hRollbackDistance_.add(sim_.now() - target->cycle);
  if (auto* t = sim_.tracer()) {
    t->instant(sim_.now(), TraceKind::kRollback, "ber.rollback", 0, 0,
               sim_.now() - target->cycle);
  }
  // Checkpoints taken after the restored point describe a squashed future.
  while (!checkpoints_.empty() && checkpoints_.back().cycle > target->cycle) {
    checkpoints_.pop_back();
  }
  gLiveCheckpoints_.set(checkpoints_.size());
  return true;
}

}  // namespace dvmc
