// Snooping MOSI protocol tests: total-order semantics, owner/memory data
// supply, writeback-to-memory flow, and deferred snoop handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "coherence/snoop_cache.hpp"
#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

constexpr Addr kBlk = 0x400000;

SystemConfig baseConfig(std::size_t nodes = 4) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kSnooping,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = nodes;
  cfg.berEnabled = false;
  cfg.maxCycles = 2'000'000;
  return cfg;
}

std::unique_ptr<System> makeSystem(
    SystemConfig cfg, std::map<NodeId, std::vector<Instr>> progs) {
  cfg.programFactory = [progs](NodeId n) -> std::unique_ptr<ThreadProgram> {
    auto it = progs.find(n);
    if (it == progs.end()) {
      return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
    }
    return std::make_unique<ScriptedProgram>(it->second);
  };
  return std::make_unique<System>(cfg);
}

SnoopCacheController& cacheOf(System& sys, NodeId n) {
  return static_cast<SnoopCacheController&>(sys.l2(n));
}

TEST(SnoopingProtocol, MemorySuppliesUnownedBlock) {
  auto sys = makeSystem(baseConfig(), {{0, {Instr::load(kBlk, 1)}}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  auto& prog = static_cast<ScriptedProgram&>(sys->core(0).program());
  ASSERT_EQ(prog.results().size(), 1u);
  EXPECT_EQ(prog.results()[0].second,
            MemoryStorage::initialPattern(kBlk).read(0, 8));
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->state, MosiState::kS);
}

TEST(SnoopingProtocol, StoreTakesOwnershipFromMemory) {
  auto sys = makeSystem(baseConfig(), {{0, {Instr::store(kBlk, 88)}}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->state, MosiState::kM);
  // The home's owner tracking follows the snoop stream.
  NodeId home = MemoryMap{4}.homeOf(kBlk);
  EXPECT_EQ(sys->snoopMem(home)->cacheOwnerOf(kBlk), 0u);
}

TEST(SnoopingProtocol, OwnerSuppliesDataOnGetS) {
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  progs[0] = {Instr::store(kBlk, 500)};
  progs[1] = {Instr::compute(2000), Instr::load(kBlk, 9)};
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  auto& prog = static_cast<ScriptedProgram&>(sys->core(1).program());
  ASSERT_EQ(prog.results().size(), 1u);
  EXPECT_EQ(prog.results()[0].second, 500u);
  // Writer downgraded M -> O (owner still supplies future readers).
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->state, MosiState::kO);
}

TEST(SnoopingProtocol, GetMInvalidatesAllOtherCopies) {
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  progs[1] = {Instr::load(kBlk)};
  progs[2] = {Instr::load(kBlk)};
  progs[0] = {Instr::compute(2500), Instr::store(kBlk, 3)};
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  for (NodeId n = 1; n <= 2; ++n) {
    CacheLine* line = cacheOf(*sys, n).array().find(kBlk);
    EXPECT_TRUE(line == nullptr || !line->valid) << "node " << n;
  }
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->state, MosiState::kM);
}

TEST(SnoopingProtocol, EvictionWritesBackThroughPutM) {
  SystemConfig cfg = baseConfig();
  cfg.l2 = {2, 2};
  cfg.l1 = {1, 1};
  std::vector<Instr> prog = {Instr::store(kBlk, 7777)};
  for (int i = 1; i <= 8; ++i) {
    prog.push_back(Instr::load(kBlk + i * 2 * kBlockSizeBytes));
  }
  auto sys = makeSystem(cfg, {{0, prog}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  NodeId home = MemoryMap{4}.homeOf(kBlk);
  ErrorSink scratch;
  EXPECT_EQ(sys->snoopMem(home)->memory().read(kBlk, &scratch, 0, 0)
                .read(0, 8),
            7777u);
  EXPECT_EQ(sys->snoopMem(home)->cacheOwnerOf(kBlk), kInvalidNode);
}

TEST(SnoopingProtocol, ReloadAfterWritebackFromMemory) {
  SystemConfig cfg = baseConfig();
  cfg.l2 = {2, 2};
  cfg.l1 = {1, 1};
  std::vector<Instr> prog = {Instr::store(kBlk, 999)};
  for (int i = 1; i <= 8; ++i) {
    prog.push_back(Instr::load(kBlk + i * 2 * kBlockSizeBytes));
  }
  prog.push_back(Instr::load(kBlk, 42));
  auto sys = makeSystem(cfg, {{0, prog}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  bool found = false;
  for (auto& [tok, val] : p.results()) {
    if (tok == 42) {
      EXPECT_EQ(val, 999u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SnoopingProtocol, OUpgradeSelfSupplies) {
  // Writer -> reader (M->O at writer) -> writer stores again (O->M with
  // self-supplied data).
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  progs[0] = {Instr::store(kBlk, 1), Instr::compute(4000),
              Instr::store(kBlk + 8, 2)};
  progs[1] = {Instr::compute(1500), Instr::load(kBlk, 5)};
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  CacheLine* line = cacheOf(*sys, 0).array().find(kBlk);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, MosiState::kM);
  EXPECT_EQ(line->data.read(0, 8), 1u);
  EXPECT_EQ(line->data.read(8, 8), 2u);
}

TEST(SnoopingProtocol, ContendedWritersConverge) {
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  for (NodeId n = 0; n < 4; ++n) {
    for (int i = 0; i < 6; ++i) {
      progs[n].push_back(Instr::store(kBlk + n * 8, n * 10 + i));
    }
  }
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // Contention exercises the ordered-but-incomplete deferral path.
  std::uint64_t deferred = 0;
  for (NodeId n = 0; n < 4; ++n) {
    deferred += cacheOf(*sys, n).stats().get("l2.deferredSnoop");
  }
  EXPECT_GT(deferred, 0u) << "deferral path never exercised";
  // The final owner holds every node's last value.
  NodeId home = MemoryMap{4}.homeOf(kBlk);
  const NodeId owner = sys->snoopMem(home)->cacheOwnerOf(kBlk);
  const DataBlock* data = nullptr;
  ErrorSink scratch;
  if (owner != kInvalidNode) {
    CacheLine* line = cacheOf(*sys, owner).array().find(kBlk);
    ASSERT_NE(line, nullptr);
    data = &line->data;
  } else {
    data = &sys->snoopMem(home)->memory().read(kBlk, &scratch, 0, 0);
  }
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(data->read(n * 8, 8), n * 10u + 5u) << "node " << n;
  }
}

TEST(SnoopingProtocol, AtomicSwapSerializesLockAcquisition) {
  // All nodes swap on the same word; exactly one observes 0 (the free
  // value) and every observed old value is distinct.
  SystemConfig cfg = baseConfig();
  constexpr Addr kLock = 0x10000;  // zero-initialized segment
  std::map<NodeId, std::vector<Instr>> progs;
  for (NodeId n = 0; n < 4; ++n) {
    progs[n] = {Instr::swap(kLock, 100 + n, 1)};
  }
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  std::vector<std::uint64_t> seen;
  for (NodeId n = 0; n < 4; ++n) {
    auto& p = static_cast<ScriptedProgram&>(sys->core(n).program());
    ASSERT_EQ(p.results().size(), 1u);
    seen.push_back(p.results()[0].second);
  }
  int zeros = 0;
  for (auto v : seen) {
    if (v == 0) ++zeros;
  }
  EXPECT_EQ(zeros, 1) << "exactly one node wins the free lock";
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end())
      << "swap chain must be a permutation (atomicity)";
}

TEST(SnoopingProtocol, TotalOrderGivesCoherentFinalValue) {
  // All four nodes write the same word; after the dust settles every copy
  // equals one of the written values and the owner's value is final.
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  for (NodeId n = 0; n < 4; ++n) {
    progs[n] = {Instr::store(kBlk, 1000 + n)};
  }
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  NodeId home = MemoryMap{4}.homeOf(kBlk);
  const NodeId owner = sys->snoopMem(home)->cacheOwnerOf(kBlk);
  ASSERT_NE(owner, kInvalidNode);
  const std::uint64_t v =
      cacheOf(*sys, owner).array().find(kBlk)->data.read(0, 8);
  EXPECT_GE(v, 1000u);
  EXPECT_LE(v, 1003u);
}

}  // namespace
}  // namespace dvmc
