// Tests for the Section 6.3 hardware cost arithmetic.
#include <gtest/gtest.h>

#include "dvmc/hw_cost.hpp"

namespace dvmc {
namespace {

TEST(HwCost, PaperScaleConfiguration) {
  // Approximating the paper's system: CET covers L1 + L2 lines at 34 bits
  // per line; with a ~1 MB L2 the CET lands near the paper's ~70 KB.
  HwCostInputs in;
  in.numNodes = 8;
  in.l1 = {128, 4};    // 32 KB
  in.l2 = {4096, 4};   // 1 MB
  in.vcWords = 32;
  HwCostReport r = computeHwCost(in);
  // 512 + 16384 lines * 34 bits = ~71.8 KB.
  EXPECT_NEAR(static_cast<double>(r.cetBytesPerNode), 70.0 * 1024, 4096);
  // MET: one 48-bit entry per cached block in the system, worst case at
  // one controller: 8 * 16896 * 6 B ~ 792 KB... the paper's 102 KB assumes
  // blocks spread evenly; our report is the worst case and must exceed the
  // even-spread value by about the node count.
  EXPECT_GT(r.metBytesPerController, 8u * 100 * 1024 / 8);
  EXPECT_EQ(r.vcBytesPerNode, 32u * 8);
  EXPECT_GT(r.totalBytesPerNode, r.cetBytesPerNode);
}

TEST(HwCost, ScalesWithCacheSize) {
  HwCostInputs small;
  small.l2 = {256, 4};
  HwCostInputs big = small;
  big.l2 = {1024, 4};
  EXPECT_GT(computeHwCost(big).cetBytesPerNode,
            computeHwCost(small).cetBytesPerNode);
  EXPECT_GT(computeHwCost(big).metBytesPerController,
            computeHwCost(small).metBytesPerController);
}

TEST(HwCost, BitConstantsMatchPaper) {
  HwCostReport r = computeHwCost(HwCostInputs{});
  EXPECT_EQ(r.cetBitsPerLine, 34u);   // type + time + hash + DataReadyBit
  EXPECT_EQ(r.metBitsPerEntry, 48u);  // RO end + RW end + hash
}

TEST(HwCost, ReportPrints) {
  const std::string s = computeHwCost(HwCostInputs{}).toString();
  EXPECT_NE(s.find("CET"), std::string::npos);
  EXPECT_NE(s.find("MET"), std::string::npos);
  EXPECT_NE(s.find("VC"), std::string::npos);
}

}  // namespace
}  // namespace dvmc
