// Cross-cutting integration and property tests: determinism, value
// convergence through heavy sharing, checker-activity invariants, mixed
// producer/consumer patterns, and config-sweep properties.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <memory>
#include <vector>

#include "system/runner.hpp"
#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(Integration, RunsAreBitDeterministic) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 80;
  cfg.seed = 99;
  const RunResult a = runOnce(cfg);
  const RunResult b = runOnce(cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retiredInstructions, b.retiredInstructions);
  EXPECT_EQ(a.totalNetBytes, b.totalNetBytes);
  EXPECT_EQ(a.replayL1Misses, b.replayL1Misses);
  EXPECT_EQ(a.detections, b.detections);
}

TEST(Integration, DifferentSeedsDiverge) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 80;
  cfg.seed = 1;
  const RunResult a = runOnce(cfg);
  cfg.seed = 2;
  const RunResult b = runOnce(cfg);
  EXPECT_NE(a.cycles, b.cycles);
}

// ---------------------------------------------------------------------------
// Value convergence under heavy sharing (message-passing chains)
// ---------------------------------------------------------------------------

TEST(Integration, TokenRingPassesValueThroughEveryNode) {
  // Node i spins on word i until it sees i*1000, then writes (i+1)*1000 to
  // word i+1: a dependency chain that only completes if every coherence
  // handoff delivers the freshest data.
  constexpr Addr kBase = 0x600000;
  constexpr std::size_t kNodes = 4;

  class RingProgram final : public ThreadProgram {
   public:
    explicit RingProgram(NodeId self) : self_(self) {}
    std::optional<Instr> next() override {
      if (done_ || waiting_) return std::nullopt;
      if (self_ == 0 && !kicked_) {
        kicked_ = true;
        return Instr::store(kBase + 1 * 8, 1000);
      }
      if (!observed_) {
        waiting_ = true;
        return Instr::load(kBase + (self_ + 1) * 8, 1);
      }
      done_ = true;
      if (self_ + 1 < kNodes) {
        return Instr::store(kBase + (self_ + 2) * 8,
                            (self_ + 2) * 1000ull);
      }
      return std::nullopt;
    }
    void onResult(std::uint64_t, std::uint64_t v) override {
      waiting_ = false;
      if (v == (self_ + 1) * 1000ull) observed_ = true;
    }
    bool finished() const override { return done_; }
    std::uint64_t transactionsCompleted() const override { return done_; }
    std::unique_ptr<ThreadProgram> clone() const override {
      return std::make_unique<RingProgram>(*this);
    }

   private:
    NodeId self_;
    bool kicked_ = false;
    bool waiting_ = false;
    bool observed_ = false;
    bool done_ = false;
  };

  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    SystemConfig cfg = SystemConfig::withDvmc(p, ConsistencyModel::kTSO);
    cfg.numNodes = kNodes;
    cfg.berEnabled = false;
    cfg.maxCycles = 3'000'000;
    cfg.programFactory = [](NodeId n) {
      return std::unique_ptr<ThreadProgram>(new RingProgram(n));
    };
    System sys(cfg);
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed) << protocolName(p);
    EXPECT_EQ(r.detections, 0u) << protocolName(p);
  }
}

TEST(Integration, CriticalSectionCounterIsExact) {
  // Each node increments a shared counter under a swap lock K times; the
  // final value must be exactly nodes * K (mutual exclusion + coherence).
  constexpr Addr kLock = 0x10000;
  constexpr Addr kCounter = 0x600000;
  constexpr int kIncrements = 12;

  class Incrementer final : public ThreadProgram {
   public:
    Incrementer(NodeId self, ConsistencyModel model)
        : self_(self), model_(model) {}
    std::optional<Instr> next() override {
      if (waiting_) return std::nullopt;
      switch (state_) {
        case 0:  // try to take the lock (CAS: failures leave it intact)
          waiting_ = true;
          state_ = 1;
          return Instr::cas(kLock, 0, self_ + 1, 1);
        case 2:  // read the counter
          waiting_ = true;
          state_ = 3;
          return Instr::load(kCounter, 2);
        case 4:  // write counter+1
          state_ = 7;
          return Instr::store(kCounter, counter_ + 1);
        case 7:  // release barrier (RMO: stores must not pass the unlock)
          state_ = 5;
          if (model_ == ConsistencyModel::kRMO) {
            return Instr::membar(membar::kLoadStore | membar::kStoreStore);
          }
          [[fallthrough]];
        case 5:  // release
          state_ = done_ + 1 <= kIncrements && ++done_ < kIncrements ? 0 : 6;
          return Instr::store(kLock, 0);
        default:
          return std::nullopt;
      }
    }
    void onResult(std::uint64_t token, std::uint64_t v) override {
      waiting_ = false;
      if (token == 1) {
        state_ = (v == 0 || v == self_ + 1) ? 2 : 0;  // retry when held
      } else {
        counter_ = v;
        state_ = 4;
      }
    }
    bool finished() const override { return state_ == 6; }
    std::uint64_t transactionsCompleted() const override { return done_; }
    std::unique_ptr<ThreadProgram> clone() const override {
      return std::make_unique<Incrementer>(*this);
    }

   private:
    NodeId self_;
    ConsistencyModel model_;
    int state_ = 0;
    bool waiting_ = false;
    std::uint64_t counter_ = 0;
    int done_ = 0;
  };

  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    for (ConsistencyModel m :
         {ConsistencyModel::kTSO, ConsistencyModel::kRMO}) {
      SystemConfig cfg = SystemConfig::withDvmc(p, m);
      cfg.numNodes = 4;
      cfg.berEnabled = false;
      cfg.maxCycles = 20'000'000;
      cfg.programFactory = [m](NodeId n) {
        return std::unique_ptr<ThreadProgram>(new Incrementer(n, m));
      };
      System sys(cfg);
      RunResult r = sys.run();
      ASSERT_TRUE(r.completed) << protocolName(p) << "/" << modelName(m);
      EXPECT_EQ(r.detections, 0u) << protocolName(p) << "/" << modelName(m);
      // Read the final counter value via a fresh load on node 0.
      // The authoritative value lives wherever the last owner is; check
      // through the shadow: every store passed through the hook, so the
      // architectural memory image carries the result.
      const auto& image = sys.memoryImage();
      const Addr blk = blockAddr(kCounter);
      ASSERT_TRUE(image.count(blk));
      const std::uint64_t init =
          MemoryStorage::initialPattern(blk).read(blockOffset(kCounter), 8);
      EXPECT_EQ(image.at(blk).read(blockOffset(kCounter), 8),
                init + 4u * kIncrements)
          << protocolName(p) << "/" << modelName(m)
          << " lost an increment (mutual exclusion broken?)";
    }
  }
}

// ---------------------------------------------------------------------------
// Checker-activity invariants
// ---------------------------------------------------------------------------

TEST(Integration, InformTrafficProportionalToCoherence) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 100;
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  std::uint64_t epochBegins = 0;
  std::uint64_t informs = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    epochBegins += sys.cet(n)->stats().get("cet.beginRO") +
                   sys.cet(n)->stats().get("cet.beginRW");
    informs += sys.cet(n)->stats().get("cet.informEpoch") +
               sys.cet(n)->stats().get("cet.informClosed");
  }
  EXPECT_GT(epochBegins, 0u);
  // Every ended epoch produced exactly one inform; open epochs at the end
  // of the run account for the difference.
  std::uint64_t stillOpen = 0;
  for (NodeId n = 0; n < sys.numNodes(); ++n) {
    stillOpen += sys.cet(n)->openEpochs();
  }
  EXPECT_EQ(epochBegins, informs + stillOpen);
}

TEST(Integration, DisabledCheckersStaySilent) {
  SystemConfig cfg = SystemConfig::unprotected(Protocol::kDirectory,
                                               ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kApache;
  cfg.targetTransactions = 60;
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sys.cet(0), nullptr);
  EXPECT_EQ(sys.met(0), nullptr);
  EXPECT_EQ(sys.ber(), nullptr);
  EXPECT_EQ(r.detections, 0u);
}

TEST(Integration, DvmcAddsInterconnectTraffic) {
  SystemConfig base = SystemConfig::unprotected(Protocol::kDirectory,
                                                ConsistencyModel::kTSO);
  base.numNodes = 4;
  base.workload = WorkloadKind::kOltp;
  base.targetTransactions = 100;
  const RunResult rb = runOnce(base);

  SystemConfig dvmc = SystemConfig::withDvmc(Protocol::kDirectory,
                                             ConsistencyModel::kTSO);
  dvmc.numNodes = 4;
  dvmc.workload = WorkloadKind::kOltp;
  dvmc.targetTransactions = 100;
  const RunResult rd = runOnce(dvmc);

  const double perCycleBase =
      static_cast<double>(rb.totalNetBytes) / rb.cycles;
  const double perCycleDvmc =
      static_cast<double>(rd.totalNetBytes) / rd.cycles;
  EXPECT_GT(perCycleDvmc, perCycleBase);
}

// ---------------------------------------------------------------------------
// Property sweep: every model/protocol pair behaves across cache sizes
// ---------------------------------------------------------------------------

struct SweepCase {
  Protocol protocol;
  ConsistencyModel model;
  std::size_t l2Sets;
};

class ConfigSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConfigSweep, CompletesCleanly) {
  const SweepCase& c = GetParam();
  SystemConfig cfg = SystemConfig::withDvmc(c.protocol, c.model);
  cfg.numNodes = 4;
  cfg.l2 = {c.l2Sets, 4};
  cfg.workload = WorkloadKind::kMicroMix;
  cfg.targetTransactions = 60;
  cfg.maxCycles = 40'000'000;
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u)
      << (sys.sink().any() ? sys.sink().first().what : "");
}

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> v;
  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    for (ConsistencyModel m :
         {ConsistencyModel::kSC, ConsistencyModel::kTSO,
          ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
      for (std::size_t sets : {8u, 64u}) {  // tiny cache = eviction storm
        v.push_back({p, m, sets});
      }
    }
  }
  return v;
}

std::string sweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(protocolName(info.param.protocol)) + "_" +
         modelName(info.param.model) + "_sets" +
         std::to_string(info.param.l2Sets);
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, ConfigSweep,
                         ::testing::ValuesIn(sweepCases()), sweepName);


// ---------------------------------------------------------------------------
// Value lineage: every word of the final architectural memory must be a
// value some store actually wrote (observed through the audit hook) or the
// deterministic initial pattern — no fabricated or corrupted data anywhere
// after a full workload on either protocol.
// ---------------------------------------------------------------------------

TEST(Integration, FinalMemoryValuesHaveStoreLineage) {
  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    SystemConfig cfg = SystemConfig::withDvmc(p, ConsistencyModel::kTSO);
    cfg.numNodes = 4;
    cfg.workload = WorkloadKind::kOltp;
    cfg.targetTransactions = 120;
    System sys(cfg);
    std::map<Addr, std::set<std::uint64_t>> written;
    sys.setStoreAuditHook([&written](NodeId, Addr addr, std::size_t,
                                     std::uint64_t value) {
      written[addr & ~Addr{7}].insert(value);
    });
    RunResult r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
    ASSERT_FALSE(written.empty());

    std::size_t checked = 0;
    for (const auto& [blk, data] : sys.memoryImage()) {
      const DataBlock initial = MemoryStorage::initialPattern(blk);
      for (std::size_t w = 0; w < kBlockSizeWords; ++w) {
        const Addr addr = blk + w * 8;
        const std::uint64_t v = data.read(w * 8, 8);
        if (v == initial.read(w * 8, 8)) continue;  // never stored
        auto it = written.find(addr);
        ASSERT_NE(it, written.end())
            << protocolName(p) << ": word 0x" << std::hex << addr
            << " changed without any store";
        EXPECT_TRUE(it->second.count(v))
            << protocolName(p) << ": word 0x" << std::hex << addr
            << " holds value 0x" << v << " that no store wrote";
        ++checked;
      }
    }
    EXPECT_GT(checked, 100u) << "lineage check exercised too few words";
  }
}

}  // namespace
}  // namespace dvmc
