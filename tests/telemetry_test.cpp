// Runtime telemetry core: the structured logger, the hierarchical span
// profiler, and the resource/status surface (src/obs/{log,spans,resource}).
// These are the pieces every long campaign leans on — level gating must
// stay cheap and correct, the JSONL sink must be machine-parseable line
// by line, collapsed stacks must charge self time only, and the status
// file must always be a complete document (tmp + rename), never torn.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "obs/spans.hpp"

namespace dvmc::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

// --- logger ---------------------------------------------------------------

class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override { Logger::instance().resetForTests(); }
  void TearDown() override { Logger::instance().resetForTests(); }
};

TEST_F(LoggerTest, ParseLogLevelAcceptsTheDocumentedNames) {
  const struct {
    const char* name;
    LogLevel level;
  } cases[] = {{"debug", LogLevel::kDebug},
               {"info", LogLevel::kInfo},
               {"warn", LogLevel::kWarn},
               {"error", LogLevel::kError},
               {"off", LogLevel::kOff}};
  for (const auto& c : cases) {
    LogLevel got;
    EXPECT_TRUE(parseLogLevel(c.name, &got)) << c.name;
    EXPECT_EQ(got, c.level) << c.name;
    EXPECT_STREQ(logLevelName(c.level), c.name);
  }
  LogLevel got;
  EXPECT_FALSE(parseLogLevel("verbose", &got));
  EXPECT_FALSE(parseLogLevel("", &got));
}

TEST_F(LoggerTest, DefaultLevelIsInfoAndGatesDebug) {
  Logger& lg = Logger::instance();
  EXPECT_EQ(lg.level(), LogLevel::kInfo);
  EXPECT_FALSE(lg.enabled(LogLevel::kDebug));
  EXPECT_TRUE(lg.enabled(LogLevel::kInfo));
  logDebug("test", "below the line");
  EXPECT_EQ(lg.recorded(), 0u);
  logInfo("test", "at the line");
  EXPECT_EQ(lg.recorded(), 1u);
}

TEST_F(LoggerTest, OffSilencesEverything) {
  Logger& lg = Logger::instance();
  lg.setLevel(LogLevel::kOff);
  EXPECT_FALSE(lg.enabled(LogLevel::kError));
  logError("test", "nope");
  EXPECT_EQ(lg.recorded(), 0u);
}

TEST_F(LoggerTest, RingKeepsNewestRecordsWithFields) {
  Logger& lg = Logger::instance();
  lg.setLevel(LogLevel::kDebug);
  logDebug("runner", "seed done",
           Json::object().set("seed", Json::num(std::uint64_t{7})));
  logWarn("oracle", "fallback");
  const std::vector<LogRecord> recent = lg.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].component, "runner");
  EXPECT_EQ(recent[0].level, LogLevel::kDebug);
  ASSERT_TRUE(recent[0].fields.isObject());
  EXPECT_EQ(recent[0].fields.find("seed")->asUint(), 7u);
  EXPECT_EQ(recent[1].message, "fallback");
  EXPECT_GT(recent[1].unixMs, 0u);
}

TEST_F(LoggerTest, JsonlSinkWritesMetaLineThenOneRecordPerLine) {
  const std::string path = ::testing::TempDir() + "telemetry_log.jsonl";
  Logger& lg = Logger::instance();
  ASSERT_TRUE(lg.openJsonl(path));
  EXPECT_TRUE(lg.jsonlArmed());
  logInfo("campaign", "case done",
          Json::object().set("param", Json::num(3)));
  lg.closeJsonl();
  EXPECT_FALSE(lg.jsonlArmed());

  const std::vector<std::string> ls = lines(slurp(path));
  ASSERT_EQ(ls.size(), 2u);
  const auto meta = Json::parse(ls[0]);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->find("schema")->asString(), kLogSchemaName);
  EXPECT_EQ(meta->find("version")->asInt(), kLogSchemaVersion);
  EXPECT_EQ(meta->find("generator")->asString().rfind("dvmc ", 0), 0u);
  const auto rec = Json::parse(ls[1]);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->find("level")->asString(), "info");
  EXPECT_EQ(rec->find("component")->asString(), "campaign");
  EXPECT_EQ(rec->find("message")->asString(), "case done");
  EXPECT_EQ(rec->find("fields")->find("param")->asInt(), 3);
  std::remove(path.c_str());
}

TEST_F(LoggerTest, OpenJsonlRejectsUnwritablePaths) {
  EXPECT_FALSE(
      Logger::instance().openJsonl("/nonexistent-dvmc-dir/x/log.jsonl"));
  EXPECT_FALSE(Logger::instance().jsonlArmed());
}

// --- span profiler --------------------------------------------------------

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override { SpanProfiler::instance().resetForTests(); }
  void TearDown() override { SpanProfiler::instance().resetForTests(); }
};

TEST_F(SpanTest, NestedSpansBuildOnePathPerStack) {
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner("inner"); }
  }
  { ScopedSpan outer("outer"); }
  const auto nodes = SpanProfiler::instance().nodes();
  ASSERT_EQ(nodes.size(), 2u);  // outer + outer/inner, aggregated
  EXPECT_STREQ(nodes[0].name, "outer");
  EXPECT_EQ(nodes[0].parent, -1);
  EXPECT_EQ(nodes[0].count, 2u);
  EXPECT_STREQ(nodes[1].name, "inner");
  EXPECT_EQ(nodes[1].parent, 0);
  EXPECT_EQ(nodes[1].count, 2u);
  EXPECT_GE(nodes[0].wallNs, nodes[1].wallNs);
}

TEST_F(SpanTest, ToJsonNestsChildrenUnderParents) {
  {
    ScopedSpan a("build");
    ScopedSpan b("run");
  }
  const Json j = SpanProfiler::instance().toJson();
  const Json* spans = j.find("spans");
  ASSERT_NE(spans, nullptr);
  const std::string dump = j.dump();
  EXPECT_NE(dump.find("\"build\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"run\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"wallNs\""), std::string::npos);
  EXPECT_NE(dump.find("\"cpuNs\""), std::string::npos);
}

TEST_F(SpanTest, CollapsedStacksJoinPathsWithSemicolons) {
  {
    ScopedSpan a("phase-a");
    ScopedSpan b("phase-b");
    // Lines with zero self-µs are skipped: give the leaf measurable time.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string collapsed = SpanProfiler::instance().collapsedStacks();
  EXPECT_NE(collapsed.find("phase-a;phase-b "), std::string::npos)
      << collapsed;
  // Every line must be "frame[;frame] <count>" — what speedscope accepts.
  for (const std::string& line : lines(collapsed)) {
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    for (char c : line.substr(sp + 1)) EXPECT_TRUE(isdigit(c)) << line;
  }
}

TEST_F(SpanTest, EmptyProfilerReportsEmpty) {
  EXPECT_TRUE(SpanProfiler::instance().empty());
  { ScopedSpan a("x"); }
  EXPECT_FALSE(SpanProfiler::instance().empty());
}

// --- resource sampler + status writer -------------------------------------

TEST(ResourceTest, SampleSeesALiveProcess) {
  const ResourceUsage u = sampleResourceUsage();
  EXPECT_GT(u.peakRssBytes, 0u);
  EXPECT_GE(u.peakRssBytes, u.rssBytes);
  const Json j = u.toJson();
  EXPECT_NE(j.find("rssBytes"), nullptr);
  EXPECT_NE(j.find("peakRssBytes"), nullptr);
  EXPECT_NE(j.find("userCpuMs"), nullptr);
  EXPECT_NE(j.find("sysCpuMs"), nullptr);
}

TEST(ResourceTest, SeriesKeepsAWindowAndTheScalarPeak) {
  ResourceSeries series(8);
  series.sample(1);
  series.sample(2);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_GT(series.peakRssBytes(), 0u);
  const Json j = series.toJson();
  EXPECT_NE(j.find("columns"), nullptr);
  EXPECT_NE(j.find("samples"), nullptr);
  EXPECT_EQ(j.find("peakRssBytes")->asUint(), series.peakRssBytes());
}

TEST(StatusWriterTest, PublishesTheEnvelopeAtomically) {
  const std::string path = ::testing::TempDir() + "telemetry_status.json";
  StatusWriter w(path, /*minIntervalMs=*/0);
  Json body = Json::object();
  body.set("phase", Json::str("campaign"))
      .set("done", Json::num(std::uint64_t{3}));
  ASSERT_TRUE(w.update(body, /*force=*/true));
  EXPECT_EQ(w.writes(), 1u);

  const auto doc = Json::parse(slurp(path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->asString(), kStatusSchemaName);
  EXPECT_EQ(doc->find("version")->asInt(), kStatusSchemaVersion);
  EXPECT_EQ(doc->find("generator")->asString().rfind("dvmc ", 0), 0u);
  EXPECT_GT(doc->find("updatedUnixMs")->asUint(), 0u);
  const Json* resource = doc->find("resource");
  ASSERT_NE(resource, nullptr);
  EXPECT_GT(resource->find("peakRssBytes")->asUint(), 0u);
  EXPECT_EQ(doc->find("phase")->asString(), "campaign");
  EXPECT_EQ(doc->find("done")->asUint(), 3u);
  // No leftover tmp file: the write went through rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(StatusWriterTest, ThrottlesUnforcedUpdatesButNeverForcedOnes) {
  const std::string path = ::testing::TempDir() + "telemetry_throttle.json";
  StatusWriter w(path, /*minIntervalMs=*/60'000);
  const Json body = Json::object();
  EXPECT_TRUE(w.update(body, /*force=*/true));
  EXPECT_FALSE(w.update(body)) << "unforced update inside the interval";
  EXPECT_EQ(w.writes(), 1u);
  EXPECT_TRUE(w.update(body, /*force=*/true));
  EXPECT_EQ(w.writes(), 2u);
  std::remove(path.c_str());
}

TEST(StatusWriterTest, ReportsUnwritablePathsAsFailure) {
  Logger::instance().resetForTests();
  Logger::instance().setLevel(LogLevel::kOff);  // keep stderr quiet
  StatusWriter w("/nonexistent-dvmc-dir/x/status.json", 0);
  EXPECT_FALSE(w.update(Json::object(), /*force=*/true));
  EXPECT_EQ(w.writes(), 0u);
  Logger::instance().resetForTests();
}

}  // namespace
}  // namespace dvmc::obs
