// Oracle-driven conformance sweep for the Allowable Reordering checker:
// for every model, every ordered pair of operation types, and every membar
// mask, present the checker with the two operations performing in REVERSED
// program order and assert that it flags a violation exactly when the
// ordering table says a constraint exists — and stays silent on in-order
// performs. This pins the checker to Definition 4 / Proof 2 of the paper.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error_sink.hpp"
#include "dvmc/reorder_checker.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

struct ConformanceCase {
  ConsistencyModel model;
  OpType first;       // earlier in program order
  OpType second;      // later in program order
  std::uint8_t mask;  // membar mask (applied to whichever op is a membar)
};

std::string caseName(const ::testing::TestParamInfo<ConformanceCase>& info) {
  const auto& c = info.param;
  std::string n = std::string(modelName(c.model)) + "_" +
                  opTypeName(c.first) + "_then_" + opTypeName(c.second) +
                  "_mask" + std::to_string(c.mask);
  return n;
}

class ArConformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(ArConformance, ReversedPerformFlaggedIffTableRequiresOrder) {
  const ConformanceCase& c = GetParam();
  const OrderingTable table = OrderingTable::forModel(c.model);
  const std::uint8_t m1 = c.first == OpType::kMembar ? c.mask : 0;
  const std::uint8_t m2 = c.second == OpType::kMembar ? c.mask : 0;
  const bool constrained = table.requiresOrder(c.first, m1, c.second, m2);

  // Reversed: the later op (seq 2) performs before the earlier one (seq 1).
  {
    Simulator sim;
    ErrorSink sink;
    ReorderChecker checker(sim, 0, &sink);
    checker.onPerform(c.second, m2, 2, table);
    checker.onPerform(c.first, m1, 1, table);
    EXPECT_EQ(sink.any(), constrained)
        << "reversed perform of " << opTypeName(c.first) << " -> "
        << opTypeName(c.second) << " under " << modelName(c.model);
  }

  // In order: never a violation, for any pair under any model.
  {
    Simulator sim;
    ErrorSink sink;
    ReorderChecker checker(sim, 0, &sink);
    checker.onPerform(c.first, m1, 1, table);
    checker.onPerform(c.second, m2, 2, table);
    EXPECT_FALSE(sink.any())
        << "in-order perform flagged for " << opTypeName(c.first) << " -> "
        << opTypeName(c.second) << " under " << modelName(c.model);
  }
}

std::vector<ConformanceCase> allCases() {
  std::vector<ConformanceCase> v;
  const OpType types[] = {OpType::kLoad, OpType::kStore, OpType::kAtomic,
                          OpType::kMembar};
  for (ConsistencyModel m :
       {ConsistencyModel::kSC, ConsistencyModel::kTSO, ConsistencyModel::kPSO,
        ConsistencyModel::kRMO}) {
    for (OpType a : types) {
      for (OpType b : types) {
        if (a == OpType::kMembar || b == OpType::kMembar) {
          if (a == OpType::kMembar && b == OpType::kMembar) continue;
          for (std::uint8_t mask = 1; mask <= membar::kAll; ++mask) {
            v.push_back({m, a, b, mask});
          }
        } else {
          v.push_back({m, a, b, 0});
        }
      }
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArConformance,
                         ::testing::ValuesIn(allCases()), caseName);

// ---------------------------------------------------------------------------
// Three-op transitivity through membars: ST A; MEMBAR #SS; ST B under PSO
// performing as B, membar, A must produce a violation even though the
// checker never compares A and B directly.
// ---------------------------------------------------------------------------

TEST(ArTransitivity, StbarOrdersStoresThroughTheBarrier) {
  Simulator sim;
  ErrorSink sink;
  ReorderChecker checker(sim, 0, &sink);
  const OrderingTable t = OrderingTable::forModel(ConsistencyModel::kPSO);
  // Legal order: A(1), membar(2), B(3). Performed: B, membar, A.
  checker.onPerform(OpType::kStore, 0, 3, t);
  checker.onPerform(OpType::kMembar, membar::kStbar, 2, t);
  EXPECT_TRUE(sink.any()) << "membar performing after a later store";
  sink.clear();

  // Performed: membar, B, A — the membar is fine, B is fine (no
  // store-store under PSO), but A after the membar violates Store<Stbar...
  // no: A (older than the membar) performing after it violates the
  // Store->Membar constraint.
  ReorderChecker checker2(sim, 0, &sink);
  checker2.onPerform(OpType::kMembar, membar::kStbar, 2, t);
  checker2.onPerform(OpType::kStore, 0, 3, t);
  EXPECT_FALSE(sink.any());
  checker2.onPerform(OpType::kStore, 0, 1, t);
  EXPECT_TRUE(sink.any()) << "older store performing after its stbar";
}

TEST(ArTransitivity, RmoLoadChainThroughLoadLoadMembar) {
  Simulator sim;
  ErrorSink sink;
  ReorderChecker checker(sim, 0, &sink);
  const OrderingTable t = OrderingTable::forModel(ConsistencyModel::kRMO);
  // LD(1); MEMBAR #LL(2); LD(3): performing 3 before 2 violates.
  checker.onPerform(OpType::kLoad, 0, 3, t);
  checker.onPerform(OpType::kMembar, membar::kLoadLoad, 2, t);
  EXPECT_TRUE(sink.any());
  sink.clear();
  // ...while performing 3, 1, 2-as-#SS is all legal (no load constraints).
  ReorderChecker checker2(sim, 0, &sink);
  checker2.onPerform(OpType::kLoad, 0, 3, t);
  checker2.onPerform(OpType::kLoad, 0, 1, t);
  checker2.onPerform(OpType::kMembar, membar::kStoreStore, 2, t);
  EXPECT_FALSE(sink.any());
}

}  // namespace
}  // namespace dvmc
