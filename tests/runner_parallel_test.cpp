// Tests for the parallel experiment runner: the thread pool itself, and the
// determinism contract that a parallel runSeeds merges bit-identically to a
// sequential one. Also the TSan smoke target in CI (see ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"
#include "system/runner.hpp"

namespace dvmc {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
  pool.submit([&] { ++ran; });
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelFor, EachIndexExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 4u, 9u}) {
    std::vector<std::atomic<int>> hits(37);
    parallelFor(hits.size(), jobs, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, MoreJobsThanWork) {
  std::atomic<int> sum{0};
  parallelFor(3, 16, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallelFor(0, 4, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(JobsConfig, DefaultJobsOverridable) {
  const int saved = defaultJobs();
  setDefaultJobs(3);
  EXPECT_EQ(defaultJobs(), 3);
  SystemConfig cfg;
  EXPECT_EQ(resolveJobs(cfg), 3);
  cfg.jobs = 7;
  EXPECT_EQ(resolveJobs(cfg), 7);
  setDefaultJobs(saved);
}

TEST(JobsConfig, ParseJobsFlagStripsArgs) {
  const int saved = defaultJobs();
  char a0[] = "bin", a1[] = "--jobs", a2[] = "5", a3[] = "oltp";
  char* argv[] = {a0, a1, a2, a3, nullptr};
  const int argc = parseJobsFlag(4, argv);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bin");
  EXPECT_STREQ(argv[1], "oltp");
  EXPECT_EQ(defaultJobs(), 5);

  char b0[] = "bin", b1[] = "--jobs=2";
  char* argv2[] = {b0, b1, nullptr};
  EXPECT_EQ(parseJobsFlag(2, argv2), 1);
  EXPECT_EQ(defaultJobs(), 2);
  setDefaultJobs(saved);
}

// --- the determinism contract ---------------------------------------------

SystemConfig smallConfig() {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 40;
  cfg.maxCycles = 5'000'000;
  return cfg;
}

void expectBitIdentical(const RunningStat& a, const RunningStat& b,
                        const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(RunningStat)), 0) << what;
}

TEST(RunSeedsParallel, MatchesSequentialBitForBit) {
  SystemConfig cfg = smallConfig();
  cfg.jobs = 1;
  const MultiRunResult seq = runSeeds(cfg, 4);
  cfg.jobs = 4;
  const MultiRunResult par = runSeeds(cfg, 4);

  expectBitIdentical(seq.cycles, par.cycles, "cycles");
  expectBitIdentical(seq.peakLinkBytesPerCycle, par.peakLinkBytesPerCycle,
                     "peakLinkBytesPerCycle");
  expectBitIdentical(seq.replayMissRatio, par.replayMissRatio,
                     "replayMissRatio");
  expectBitIdentical(seq.frac32, par.frac32, "frac32");
  EXPECT_EQ(seq.detections, par.detections);
  EXPECT_EQ(seq.squashes, par.squashes);
  EXPECT_EQ(seq.allCompleted, par.allCompleted);
  EXPECT_TRUE(seq.allCompleted);

  // The merged metric snapshot (typed registry) obeys the same contract:
  // seed-order merging makes the parallel fan-out bit-identical.
  EXPECT_FALSE(seq.metrics.counters.empty());
  EXPECT_GT(seq.metrics.value("cpu.retired"), 0u);
  EXPECT_GT(seq.metrics.value("cet.accessChecks"), 0u);
  EXPECT_TRUE(seq.metrics == par.metrics);
}

TEST(RunSeedsParallel, OversubscribedJobsStillDeterministic) {
  SystemConfig cfg = smallConfig();
  cfg.workload = WorkloadKind::kSlash;
  cfg.jobs = 1;
  const MultiRunResult seq = runSeeds(cfg, 3, /*seedBase=*/11);
  cfg.jobs = 8;  // more workers than seeds
  const MultiRunResult par = runSeeds(cfg, 3, /*seedBase=*/11);
  expectBitIdentical(seq.cycles, par.cycles, "cycles");
  EXPECT_EQ(seq.squashes, par.squashes);
}

TEST(RunSeedsParallel, SnoopingProtocolToo) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kSnooping,
                                            ConsistencyModel::kSC);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kJbb;
  cfg.targetTransactions = 30;
  cfg.maxCycles = 5'000'000;
  cfg.jobs = 1;
  const MultiRunResult seq = runSeeds(cfg, 3);
  cfg.jobs = 3;
  const MultiRunResult par = runSeeds(cfg, 3);
  expectBitIdentical(seq.cycles, par.cycles, "cycles");
  expectBitIdentical(seq.frac32, par.frac32, "frac32");
  EXPECT_EQ(seq.detections, par.detections);
}

// Commit-trace capture obeys the same determinism contract: the serialized
// bytes of every per-seed trace are identical whether the seeds ran on one
// worker or many (the nightly campaign's repro guarantee).
TEST(RunSeedsParallel, CapturedTracesBitIdenticalAcrossJobs) {
  SystemConfig cfg = smallConfig();
  cfg.trace.capture = true;
  cfg.jobs = 1;
  const MultiRunResult seq = runSeeds(cfg, 3);
  cfg.jobs = 4;
  const MultiRunResult par = runSeeds(cfg, 3);

  ASSERT_EQ(seq.traces.size(), 3u);
  ASSERT_EQ(par.traces.size(), 3u);
  for (std::size_t s = 0; s < seq.traces.size(); ++s) {
    ASSERT_NE(seq.traces[s], nullptr) << "seed " << s;
    ASSERT_NE(par.traces[s], nullptr) << "seed " << s;
    EXPECT_GT(seq.traces[s]->records.size(), 0u) << "seed " << s;
    EXPECT_EQ(seq.traces[s]->serialize(), par.traces[s]->serialize())
        << "seed " << s;
  }
}

// Capture off: the traces vector stays empty and RunResult::trace null.
TEST(RunSeedsParallel, NoTracesUnlessCaptureArmed) {
  SystemConfig cfg = smallConfig();
  const MultiRunResult r = runSeeds(cfg, 2);
  EXPECT_TRUE(r.traces.empty());
}

}  // namespace
}  // namespace dvmc
