// Unit tests for the Allowable Reordering checker (§4.2): legal and
// illegal perform orders under each model, membar mask counters, and
// lost-operation detection via injected membars.
#include <gtest/gtest.h>

#include "common/error_sink.hpp"
#include "dvmc/reorder_checker.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

struct ArFixture : ::testing::Test {
  ArFixture() : checker(sim, 0, &sink) {}
  const OrderingTable& table(ConsistencyModel m) {
    tables[static_cast<int>(m)] = OrderingTable::forModel(m);
    return tables[static_cast<int>(m)];
  }
  Simulator sim;
  ErrorSink sink;
  ReorderChecker checker;
  OrderingTable tables[4];
};

TEST_F(ArFixture, InOrderPerformsAreClean) {
  const auto& t = table(ConsistencyModel::kSC);
  for (SeqNum s = 1; s <= 20; ++s) {
    checker.onPerform(s % 2 ? OpType::kLoad : OpType::kStore, 0, s, t);
  }
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, TsoAllowsStoreLoadReorder) {
  const auto& t = table(ConsistencyModel::kTSO);
  // ST(1) buffered; LD(2) performs first — legal under TSO.
  checker.onCommit(OpType::kStore, 1);
  checker.onPerform(OpType::kLoad, 0, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, ScForbidsStoreLoadReorder) {
  const auto& t = table(ConsistencyModel::kSC);
  checker.onPerform(OpType::kLoad, 0, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);  // store after later load
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kAllowableReordering);
}

TEST_F(ArFixture, TsoForbidsStoreStoreReorder) {
  const auto& t = table(ConsistencyModel::kTSO);
  checker.onPerform(OpType::kStore, 0, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);
  EXPECT_TRUE(sink.any());
}

TEST_F(ArFixture, PsoAllowsStoreStoreReorder) {
  const auto& t = table(ConsistencyModel::kPSO);
  checker.onPerform(OpType::kStore, 0, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, TsoForbidsLoadLoadReorder) {
  const auto& t = table(ConsistencyModel::kTSO);
  checker.onPerform(OpType::kLoad, 0, 2, t);
  checker.onPerform(OpType::kLoad, 0, 1, t);
  EXPECT_TRUE(sink.any());
}

TEST_F(ArFixture, RmoAllowsArbitraryDataReorder) {
  const auto& t = table(ConsistencyModel::kRMO);
  checker.onPerform(OpType::kLoad, 0, 4, t);
  checker.onPerform(OpType::kStore, 0, 3, t);
  checker.onPerform(OpType::kLoad, 0, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, RmoMembarEnforcesSelectedOrdering) {
  const auto& t = table(ConsistencyModel::kRMO);
  // ST(1); MEMBAR #SS(2); ST(3): membar performs before ST(1) -> error
  // when ST(1) finally performs (it should have preceded the membar).
  checker.onCommit(OpType::kStore, 1);
  checker.onPerform(OpType::kMembar, membar::kStoreStore, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);
  ASSERT_TRUE(sink.any());
}

TEST_F(ArFixture, RmoMembarWrongMaskBitIsNoConstraint) {
  const auto& t = table(ConsistencyModel::kRMO);
  // A #LoadLoad membar does not order stores at all.
  checker.onCommit(OpType::kStore, 1);
  checker.onPerform(OpType::kMembar, membar::kLoadLoad, 2, t);
  checker.onPerform(OpType::kStore, 0, 1, t);
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, MembarAfterLaterLoadPerformedIsViolation) {
  const auto& t = table(ConsistencyModel::kRMO);
  // LD(3) performs, then MEMBAR #LL (2) performs: the membar required all
  // later loads to perform after it.
  checker.onPerform(OpType::kLoad, 0, 3, t);
  checker.onPerform(OpType::kMembar, membar::kLoadLoad, 2, t);
  EXPECT_TRUE(sink.any());
}

TEST_F(ArFixture, AtomicChecksBothHalves) {
  const auto& t = table(ConsistencyModel::kTSO);
  // Atomic(1) performs after a later load performed: its load half is
  // ordered before later loads under TSO -> violation.
  checker.onPerform(OpType::kLoad, 0, 2, t);
  checker.onPerform(OpType::kAtomic, 0, 1, t);
  EXPECT_TRUE(sink.any());
}

TEST_F(ArFixture, AtomicUpdatesBothCounters) {
  const auto& t = table(ConsistencyModel::kTSO);
  checker.onPerform(OpType::kAtomic, 0, 5, t);
  EXPECT_EQ(checker.maxLoad(), 5u);
  EXPECT_EQ(checker.maxStore(), 5u);
}

TEST_F(ArFixture, MixedModelChecksUsePerOpTable) {
  // A PSO-mode store performing out of order is fine; a TSO-mode (32-bit)
  // store with the same history is flagged.
  checker.onPerform(OpType::kStore, 0, 2, table(ConsistencyModel::kPSO));
  EXPECT_FALSE(sink.any());
  checker.onPerform(OpType::kStore, 0, 1, table(ConsistencyModel::kTSO));
  EXPECT_TRUE(sink.any());
}

// ---------------------------------------------------------------------------
// Lost-operation detection
// ---------------------------------------------------------------------------

TEST_F(ArFixture, LostStoreDetectedAfterTwoInjections) {
  checker.onCommit(OpType::kStore, 7);  // never performs
  checker.injectCheckpointMembar();     // snapshot
  EXPECT_FALSE(sink.any());
  checker.injectCheckpointMembar();  // still outstanding -> lost
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kLostOperation);
}

TEST_F(ArFixture, ProgressingStoreNotFlagged) {
  const auto& t = table(ConsistencyModel::kTSO);
  checker.onCommit(OpType::kStore, 7);
  checker.injectCheckpointMembar();
  checker.onPerform(OpType::kStore, 0, 7, t);  // performs before next check
  checker.injectCheckpointMembar();
  checker.injectCheckpointMembar();
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, NewOutstandingStoreEachPeriodNotFlagged) {
  const auto& t = table(ConsistencyModel::kTSO);
  // A pipeline that keeps retiring: the oldest outstanding store advances
  // between injections, so nothing is lost.
  SeqNum s = 1;
  for (int period = 0; period < 5; ++period) {
    checker.onCommit(OpType::kStore, s);
    checker.injectCheckpointMembar();
    checker.onPerform(OpType::kStore, 0, s, t);
    ++s;
  }
  EXPECT_FALSE(sink.any());
}

TEST_F(ArFixture, LostLoadDetected) {
  checker.onCommit(OpType::kLoad, 3);
  checker.injectCheckpointMembar();
  checker.injectCheckpointMembar();
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kLostOperation);
}

TEST_F(ArFixture, ResetClearsState) {
  const auto& t = table(ConsistencyModel::kSC);
  checker.onPerform(OpType::kLoad, 0, 9, t);
  checker.reset();
  EXPECT_EQ(checker.maxLoad(), 0u);
  // After reset, small sequence numbers are clean again.
  checker.onPerform(OpType::kLoad, 0, 1, t);
  EXPECT_FALSE(sink.any());
}

}  // namespace
}  // namespace dvmc
