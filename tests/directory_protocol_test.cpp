// Directory MOSI protocol tests: targeted coherence scenarios driven by
// scripted per-node programs, checking both values (end-to-end data flow)
// and directory/cache states.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "coherence/directory_cache.hpp"
#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

constexpr Addr kBlk = 0x400000;  // shared test block (non-zero-init region)
constexpr Addr kBlk2 = 0x400040;

SystemConfig baseConfig(std::size_t nodes = 4) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = nodes;
  cfg.berEnabled = false;  // pure protocol tests
  cfg.maxCycles = 2'000'000;
  return cfg;
}

/// Builds a system where node n runs `progs[n]` (missing = empty program).
std::unique_ptr<System> makeSystem(
    SystemConfig cfg, std::map<NodeId, std::vector<Instr>> progs) {
  cfg.programFactory = [progs](NodeId n) -> std::unique_ptr<ThreadProgram> {
    auto it = progs.find(n);
    if (it == progs.end()) {
      return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
    }
    return std::make_unique<ScriptedProgram>(it->second);
  };
  return std::make_unique<System>(cfg);
}

DirectoryCacheController& cacheOf(System& sys, NodeId n) {
  return static_cast<DirectoryCacheController&>(sys.l2(n));
}

TEST(DirectoryProtocol, LoadBringsBlockShared) {
  auto sys = makeSystem(baseConfig(), {{0, {Instr::load(kBlk, 1)}}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  CacheLine* line = cacheOf(*sys, 0).array().find(kBlk);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, MosiState::kS);
  // Home directory: node 0 is a sharer, no owner.
  DirectoryHome* home = sys->home(MemoryMap{4}.homeOf(kBlk));
  EXPECT_EQ(home->ownerOf(kBlk), kInvalidNode);
  EXPECT_EQ(home->sharersOf(kBlk).count(0), 1u);
  EXPECT_FALSE(home->isBusy(kBlk));
  EXPECT_EQ(r.detections, 0u);
}

TEST(DirectoryProtocol, LoadReturnsMemoryPattern) {
  auto sys = makeSystem(baseConfig(), {{0, {Instr::load(kBlk, 1)}}});
  sys->run();
  auto& prog = static_cast<ScriptedProgram&>(sys->core(0).program());
  ASSERT_EQ(prog.results().size(), 1u);
  EXPECT_EQ(prog.results()[0].second,
            MemoryStorage::initialPattern(kBlk).read(0, 8));
}

TEST(DirectoryProtocol, StoreAcquiresM) {
  auto sys = makeSystem(baseConfig(), {{0, {Instr::store(kBlk, 77)}}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  CacheLine* line = cacheOf(*sys, 0).array().find(kBlk);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, MosiState::kM);
  EXPECT_EQ(line->data.read(0, 8), 77u);
  EXPECT_EQ(sys->home(MemoryMap{4}.homeOf(kBlk))->ownerOf(kBlk), 0u);
  EXPECT_EQ(r.detections, 0u);
}

TEST(DirectoryProtocol, ProducerConsumerTransfersData) {
  // Node 0 writes; node 1 spins until it observes the value (real
  // communication through the protocol, not luck).
  std::vector<Instr> producer = {Instr::store(kBlk, 4242)};
  // Consumer: spin-load until 4242 observed (token-driven).
  class Spin final : public ThreadProgram {
   public:
    std::optional<Instr> next() override {
      if (done_ || waiting_) return std::nullopt;
      waiting_ = true;
      return Instr::load(kBlk, 1);
    }
    void onResult(std::uint64_t, std::uint64_t v) override {
      waiting_ = false;
      if (v == 4242) done_ = true;
    }
    bool finished() const override { return done_; }
    std::uint64_t transactionsCompleted() const override { return done_; }
    std::unique_ptr<ThreadProgram> clone() const override {
      return std::make_unique<Spin>(*this);
    }

   private:
    bool waiting_ = false;
    bool done_ = false;
  };

  SystemConfig cfg = baseConfig();
  cfg.programFactory = [](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) {
      return std::make_unique<ScriptedProgram>(
          std::vector<Instr>{Instr::store(kBlk, 4242)});
    }
    if (n == 1) return std::make_unique<Spin>();
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // Writer was downgraded M -> O by the reader's GetS.
  CacheLine* w = cacheOf(sys, 0).array().find(kBlk);
  if (w != nullptr && w->valid) {
    EXPECT_EQ(w->state, MosiState::kO);
  }
  CacheLine* rd = cacheOf(sys, 1).array().find(kBlk);
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->state, MosiState::kS);
  EXPECT_EQ(rd->data.read(0, 8), 4242u);
}

TEST(DirectoryProtocol, WriterInvalidatesSharers) {
  // Nodes 1..3 read the block; node 0 then writes; sharers must lose it.
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  progs[1] = {Instr::load(kBlk)};
  progs[2] = {Instr::load(kBlk)};
  progs[3] = {Instr::load(kBlk)};
  // Give the readers a head start with compute padding on the writer.
  progs[0] = {Instr::compute(2000), Instr::store(kBlk, 5)};
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  for (NodeId n = 1; n <= 3; ++n) {
    CacheLine* line = cacheOf(*sys, n).array().find(kBlk);
    EXPECT_TRUE(line == nullptr || !line->valid) << "node " << n;
  }
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->state, MosiState::kM);
  EXPECT_EQ(sys->home(MemoryMap{4}.homeOf(kBlk))->ownerOf(kBlk), 0u);
}

TEST(DirectoryProtocol, UpgradeFromSharedToModified) {
  auto sys = makeSystem(baseConfig(),
                        {{0, {Instr::load(kBlk, 1), Instr::store(kBlk, 9)}}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  CacheLine* line = cacheOf(*sys, 0).array().find(kBlk);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, MosiState::kM);
  EXPECT_EQ(line->data.read(0, 8), 9u);
}

TEST(DirectoryProtocol, AtomicSwapReturnsOldValue) {
  auto sys = makeSystem(baseConfig(), {{0, {Instr::swap(kBlk, 123, 7)}}});
  sys->run();
  auto& prog = static_cast<ScriptedProgram&>(sys->core(0).program());
  ASSERT_EQ(prog.results().size(), 1u);
  EXPECT_EQ(prog.results()[0].first, 7u);
  EXPECT_EQ(prog.results()[0].second,
            MemoryStorage::initialPattern(kBlk).read(0, 8));
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->data.read(0, 8), 123u);
}

TEST(DirectoryProtocol, EvictionWritesBackDirtyData) {
  // Write a block, then touch enough conflicting blocks to evict it; the
  // home memory must hold the written value afterwards.
  SystemConfig cfg = baseConfig();
  cfg.l2 = {2, 2};  // tiny L2: 4 lines
  cfg.l1 = {1, 1};
  std::vector<Instr> prog = {Instr::store(kBlk, 31415)};
  // kBlk maps to set (kBlk/64) % 2; touch 8 more blocks in the same set.
  for (int i = 1; i <= 8; ++i) {
    prog.push_back(Instr::load(kBlk + i * 2 * kBlockSizeBytes));
  }
  auto sys = makeSystem(cfg, {{0, prog}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // Block must be gone from node 0 and its data must be in home memory.
  CacheLine* line = cacheOf(*sys, 0).array().find(kBlk);
  EXPECT_TRUE(line == nullptr || !line->valid);
  DirectoryHome* home = sys->home(MemoryMap{4}.homeOf(kBlk));
  ErrorSink scratch;
  EXPECT_EQ(home->memory().read(kBlk, &scratch, 0, 0).read(0, 8), 31415u);
  EXPECT_EQ(home->ownerOf(kBlk), kInvalidNode);
}

TEST(DirectoryProtocol, ReloadAfterEvictionSeesWrittenValue) {
  SystemConfig cfg = baseConfig();
  cfg.l2 = {2, 2};
  cfg.l1 = {1, 1};
  std::vector<Instr> prog = {Instr::store(kBlk, 2718)};
  for (int i = 1; i <= 8; ++i) {
    prog.push_back(Instr::load(kBlk + i * 2 * kBlockSizeBytes));
  }
  prog.push_back(Instr::load(kBlk, 55));
  auto sys = makeSystem(cfg, {{0, prog}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  bool found = false;
  for (auto& [tok, val] : p.results()) {
    if (tok == 55) {
      EXPECT_EQ(val, 2718u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DirectoryProtocol, TwoWritersSerializeOnSameBlock) {
  // Both nodes store different words of the same block; final block holds
  // both values (no lost updates).
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  progs[0] = {Instr::store(kBlk, 1)};
  progs[1] = {Instr::store(kBlk + 8, 2)};
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // The final owner (whichever wrote last) must have both words.
  DirectoryHome* home = sys->home(MemoryMap{4}.homeOf(kBlk));
  const NodeId owner = home->ownerOf(kBlk);
  ASSERT_NE(owner, kInvalidNode);
  CacheLine* line = cacheOf(*sys, owner).array().find(kBlk);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->data.read(0, 8), 1u);
  EXPECT_EQ(line->data.read(8, 8), 2u);
}

TEST(DirectoryProtocol, ManyBlocksManyNodesConverge) {
  // Every node writes its own word in every block; afterwards each block
  // holds all four values (heavy MSHR/forward/inv traffic).
  SystemConfig cfg = baseConfig();
  std::map<NodeId, std::vector<Instr>> progs;
  for (NodeId n = 0; n < 4; ++n) {
    for (int b = 0; b < 8; ++b) {
      progs[n].push_back(
          Instr::store(kBlk + b * kBlockSizeBytes + n * 8, 100 + n));
    }
  }
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // Read back via any node's L2 or home memory (drain first).
  for (int b = 0; b < 8; ++b) {
    const Addr blk = kBlk + b * kBlockSizeBytes;
    // Locate the authoritative copy: owner cache or home memory.
    DirectoryHome* home = sys->home(MemoryMap{4}.homeOf(blk));
    const NodeId owner = home->ownerOf(blk);
    const DataBlock* data = nullptr;
    ErrorSink scratch;
    if (owner != kInvalidNode) {
      CacheLine* line = cacheOf(*sys, owner).array().find(blk);
      ASSERT_NE(line, nullptr) << "owner without line, block " << b;
      data = &line->data;
    } else {
      data = &home->memory().read(blk, &scratch, 0, 0);
    }
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_EQ(data->read(n * 8, 8), 100u + n) << "block " << b;
    }
  }
}

TEST(DirectoryProtocol, PrefetchWarmsWritePermission) {
  // A store after compute delay should hit M thanks to the prefetch issued
  // at execute; verify via stats that the L2 saw a hit for the store.
  SystemConfig cfg = baseConfig();
  auto sys = makeSystem(
      cfg, {{0, {Instr::store(kBlk2, 1), Instr::compute(500),
                 Instr::store(kBlk2 + 8, 2)}}});
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk2)->state, MosiState::kM);
}

TEST(DirectoryProtocol, SilentSharerEvictionStillAcksInv) {
  // Reader loads a block, evicts it silently, then the writer's GetM sends
  // an Inv to the stale sharer, which must ack for the writer to proceed.
  SystemConfig cfg = baseConfig(2);
  cfg.l2 = {2, 1};  // 2 lines: trivial to evict
  cfg.l1 = {1, 1};
  std::map<NodeId, std::vector<Instr>> progs;
  progs[1] = {Instr::load(kBlk), Instr::load(kBlk + 2 * kBlockSizeBytes),
              Instr::load(kBlk + 4 * kBlockSizeBytes)};
  progs[0] = {Instr::compute(3000), Instr::store(kBlk, 6)};
  auto sys = makeSystem(cfg, progs);
  RunResult r = sys->run();
  ASSERT_TRUE(r.completed) << "writer deadlocked waiting for InvAck";
  EXPECT_EQ(r.detections, 0u);
  EXPECT_EQ(cacheOf(*sys, 0).array().find(kBlk)->data.read(0, 8), 6u);
}

}  // namespace
}  // namespace dvmc
