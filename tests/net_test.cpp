// Unit tests for the interconnect: torus routing and bandwidth accounting,
// broadcast-tree total ordering, fault filters, and recovery epochs.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/broadcast_tree.hpp"
#include "net/message.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

class Recorder final : public NetworkEndpoint {
 public:
  void onMessage(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

struct TorusFixture : ::testing::Test {
  TorusFixture() : net(sim, 8) {
    for (NodeId n = 0; n < 8; ++n) net.attach(n, &eps[n]);
  }
  Message makeMsg(NodeId src, NodeId dest, MsgType t = MsgType::kGetS) {
    Message m;
    m.type = t;
    m.src = src;
    m.dest = dest;
    m.addr = 0x1000;
    return m;
  }
  Simulator sim;
  TorusNetwork net;
  Recorder eps[8];
};

TEST_F(TorusFixture, DeliversToDestination) {
  net.send(makeMsg(0, 5));
  sim.run();
  EXPECT_EQ(eps[5].received.size(), 1u);
  for (NodeId n = 0; n < 8; ++n) {
    if (n != 5) {
      EXPECT_TRUE(eps[n].received.empty());
    }
  }
}

TEST_F(TorusFixture, LocalDeliveryIsFast) {
  net.send(makeMsg(3, 3));
  sim.run();
  ASSERT_EQ(eps[3].received.size(), 1u);
  EXPECT_LE(sim.now(), 2u);
  EXPECT_EQ(net.totalBytes(), 0u);  // no link traversed
}

TEST_F(TorusFixture, AllPairsDeliver) {
  int expected = 0;
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      net.send(makeMsg(s, d));
      ++expected;
    }
  }
  sim.run();
  int got = 0;
  for (auto& ep : eps) got += static_cast<int>(ep.received.size());
  EXPECT_EQ(got, expected);
}

TEST_F(TorusFixture, BandwidthAccounting) {
  Message m = makeMsg(0, 1, MsgType::kData);
  m.hasData = true;
  net.send(m);
  sim.run();
  // One hop for adjacent nodes: bytes on exactly one link.
  EXPECT_EQ(net.totalBytes(), m.sizeBytes());
  EXPECT_EQ(net.maxLinkBytes(), m.sizeBytes());
}

TEST_F(TorusFixture, SerializationDelaysBackToBackMessages) {
  // Two data messages over the same link: the second serializes behind the
  // first (72 bytes at 1.25 B/cycle ~ 58 cycles each).
  Message a = makeMsg(0, 1, MsgType::kData);
  a.hasData = true;
  net.send(a);
  net.send(a);
  sim.run();
  ASSERT_EQ(eps[1].received.size(), 2u);
  EXPECT_GT(sim.now(), 100u);
}

TEST_F(TorusFixture, ResetStatsClearsCounters) {
  net.send(makeMsg(0, 2));
  sim.run();
  EXPECT_GT(net.totalBytes(), 0u);
  net.resetStats();
  EXPECT_EQ(net.totalBytes(), 0u);
  EXPECT_EQ(net.messagesSent(), 0u);
}

TEST_F(TorusFixture, FaultFilterDrop) {
  net.setFaultFilter([](Message&) { return NetFaultAction::kDrop; });
  net.send(makeMsg(0, 4));
  sim.run();
  EXPECT_TRUE(eps[4].received.empty());
}

TEST_F(TorusFixture, FaultFilterDuplicate) {
  bool once = false;
  net.setFaultFilter([&once](Message&) {
    if (once) return NetFaultAction::kDeliver;
    once = true;
    return NetFaultAction::kDuplicate;
  });
  net.send(makeMsg(0, 4));
  sim.run();
  EXPECT_EQ(eps[4].received.size(), 2u);
}

TEST_F(TorusFixture, FaultFilterMisroute) {
  net.setFaultFilter([](Message& m) {
    m.dest = 6;
    return NetFaultAction::kDeliver;
  });
  net.send(makeMsg(0, 4));
  sim.run();
  EXPECT_TRUE(eps[4].received.empty());
  EXPECT_EQ(eps[6].received.size(), 1u);
}

TEST_F(TorusFixture, EpochBumpSquashesInFlight) {
  net.send(makeMsg(0, 7));
  sim.step();  // let the message start traversing
  net.bumpEpoch();
  sim.run();
  EXPECT_TRUE(eps[7].received.empty());
  // New messages after the bump still deliver.
  net.send(makeMsg(0, 7));
  sim.run();
  EXPECT_EQ(eps[7].received.size(), 1u);
}

TEST(TorusSizes, SingleNodeWorks) {
  Simulator sim;
  TorusNetwork net(sim, 1);
  Recorder ep;
  net.attach(0, &ep);
  Message m;
  m.src = 0;
  m.dest = 0;
  net.send(m);
  sim.run();
  EXPECT_EQ(ep.received.size(), 1u);
}

class TorusAllSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TorusAllSizes, AllPairsConnectivity) {
  const std::size_t n = GetParam();
  Simulator sim;
  TorusNetwork net(sim, n);
  std::vector<Recorder> eps(n);
  for (NodeId i = 0; i < n; ++i) net.attach(i, &eps[i]);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      Message m;
      m.src = s;
      m.dest = d;
      net.send(m);
    }
  }
  sim.run();
  for (NodeId d = 0; d < n; ++d) {
    EXPECT_EQ(eps[d].received.size(), n) << "dest " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TorusAllSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16));

// ---------------------------------------------------------------------------
// Broadcast tree
// ---------------------------------------------------------------------------

struct TreeFixture : ::testing::Test {
  TreeFixture() : tree(sim, 4) {
    for (NodeId n = 0; n < 4; ++n) tree.attach(n, &eps[n]);
  }
  Simulator sim;
  BroadcastTree tree;
  Recorder eps[4];
};

TEST_F(TreeFixture, BroadcastReachesEveryNode) {
  Message m;
  m.type = MsgType::kSnpGetS;
  m.src = 2;
  m.addr = 0x40;
  tree.broadcast(m);
  sim.run();
  for (auto& ep : eps) {
    ASSERT_EQ(ep.received.size(), 1u);
    EXPECT_EQ(ep.received[0].src, 2u);
  }
}

TEST_F(TreeFixture, TotalOrderIsIdenticalEverywhere) {
  for (int i = 0; i < 20; ++i) {
    Message m;
    m.type = MsgType::kSnpGetM;
    m.src = static_cast<NodeId>(i % 4);
    m.addr = static_cast<Addr>(i) * kBlockSizeBytes;
    tree.broadcast(m);
  }
  sim.run();
  for (auto& ep : eps) {
    ASSERT_EQ(ep.received.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(ep.received[i].snoopOrder, static_cast<std::uint64_t>(i));
      EXPECT_EQ(ep.received[i].addr, eps[0].received[i].addr);
    }
  }
}

TEST_F(TreeFixture, OrderAssignedByArbitrationNotIssueOrder) {
  // Two broadcasts in the same cycle: ranks are consecutive and stable.
  Message a, b;
  a.type = b.type = MsgType::kSnpGetS;
  a.src = 0;
  b.src = 1;
  a.addr = 0x40;
  b.addr = 0x80;
  tree.broadcast(a);
  tree.broadcast(b);
  sim.run();
  ASSERT_EQ(eps[2].received.size(), 2u);
  EXPECT_EQ(eps[2].received[0].addr, 0x40u);
  EXPECT_EQ(eps[2].received[1].addr, 0x80u);
}

TEST_F(TreeFixture, EpochBumpSquashesBroadcast) {
  Message m;
  m.type = MsgType::kSnpGetS;
  m.src = 0;
  tree.broadcast(m);
  tree.bumpEpoch();
  sim.run();
  for (auto& ep : eps) EXPECT_TRUE(ep.received.empty());
}

TEST_F(TreeFixture, DelayFaultKeepsSlotButDeliversLate) {
  // The reordering fault: a delayed broadcast keeps its rank but arrives
  // after a later-ranked broadcast.
  bool armed = true;
  tree.setFaultFilter([&armed](Message&) {
    if (!armed) return NetFaultAction::kDeliver;
    armed = false;
    return NetFaultAction::kDelay;
  });
  Message first, second;
  first.type = second.type = MsgType::kSnpGetM;
  first.src = 0;
  first.addr = 0x40;
  second.src = 1;
  second.addr = 0x80;
  tree.broadcast(first);   // delayed, rank 0
  tree.broadcast(second);  // rank 1, arrives first
  sim.run();
  ASSERT_EQ(eps[3].received.size(), 2u);
  EXPECT_EQ(eps[3].received[0].snoopOrder, 1u);  // arrival inverted
  EXPECT_EQ(eps[3].received[1].snoopOrder, 0u);
}

// ---------------------------------------------------------------------------
// Message sizes
// ---------------------------------------------------------------------------

TEST(MessageSize, ControlVsData) {
  Message ctrl;
  ctrl.type = MsgType::kGetS;
  Message data;
  data.type = MsgType::kData;
  data.hasData = true;
  EXPECT_EQ(ctrl.sizeBytes(), 8u);
  EXPECT_EQ(data.sizeBytes(), 8u + kBlockSizeBytes);
}

TEST(MessageSize, InformSizes) {
  Message full;
  full.type = MsgType::kInformEpoch;
  Message open;
  open.type = MsgType::kInformOpenEpoch;
  Message closed;
  closed.type = MsgType::kInformClosedEpoch;
  EXPECT_EQ(full.sizeBytes(), 16u);
  EXPECT_EQ(open.sizeBytes(), 12u);
  EXPECT_EQ(closed.sizeBytes(), 10u);
}

TEST(MessageSize, CarriesDataClassification) {
  EXPECT_TRUE(msgCarriesData(MsgType::kData));
  EXPECT_TRUE(msgCarriesData(MsgType::kPutM));
  EXPECT_FALSE(msgCarriesData(MsgType::kGetS));
  EXPECT_FALSE(msgCarriesData(MsgType::kInformEpoch));
}


TEST_F(TorusFixture, CheckerTrafficYieldsWhenEnabled) {
  // With yielding on, an inform injected while the first link is busy
  // waits; a coherence message injected later overtakes it.
  Simulator sim2;
  TorusConfig cfg;
  cfg.yieldCheckerTraffic = true;
  TorusNetwork net2(sim2, 4, cfg);
  std::vector<Recorder> eps2(4);
  for (NodeId n = 0; n < 4; ++n) net2.attach(n, &eps2[n]);

  // Occupy node 0's eastward link with a data burst.
  Message burst;
  burst.type = MsgType::kData;
  burst.hasData = true;
  burst.src = 0;
  burst.dest = 1;
  net2.send(burst);

  Message inform;
  inform.type = MsgType::kInformEpoch;
  inform.src = 0;
  inform.dest = 1;
  net2.send(inform);  // link busy: held at the source

  Message getS;
  getS.type = MsgType::kGetS;
  getS.src = 0;
  getS.dest = 1;
  net2.send(getS);

  sim2.run();
  ASSERT_EQ(eps2[1].received.size(), 3u);
  EXPECT_EQ(eps2[1].received[0].type, MsgType::kData);
  // The coherence request overtook the yielded inform.
  EXPECT_EQ(eps2[1].received[1].type, MsgType::kGetS);
  EXPECT_EQ(eps2[1].received[2].type, MsgType::kInformEpoch);
}

TEST_F(TorusFixture, CheckerTrafficNotYieldedByDefault) {
  Message burst;
  burst.type = MsgType::kData;
  burst.hasData = true;
  burst.src = 0;
  burst.dest = 1;
  net.send(burst);
  Message inform;
  inform.type = MsgType::kInformEpoch;
  inform.src = 0;
  inform.dest = 1;
  net.send(inform);
  Message getS;
  getS.type = MsgType::kGetS;
  getS.src = 0;
  getS.dest = 1;
  net.send(getS);
  sim.run();
  ASSERT_EQ(eps[1].received.size(), 3u);
  EXPECT_EQ(eps[1].received[1].type, MsgType::kInformEpoch);  // FIFO
  EXPECT_EQ(eps[1].received[2].type, MsgType::kGetS);
}

}  // namespace
}  // namespace dvmc
