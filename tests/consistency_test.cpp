// Exhaustive validation of the ordering tables against the paper's
// Tables 1-4, the membar mask algebra, and the runtime model-switch rule.
#include <gtest/gtest.h>

#include "consistency/model.hpp"
#include "consistency/op.hpp"
#include "consistency/ordering_table.hpp"

namespace dvmc {
namespace {

bool order(const OrderingTable& t, OpType x, OpType y,
           std::uint8_t maskX = 0, std::uint8_t maskY = 0) {
  return t.requiresOrder(x, maskX, y, maskY);
}

// ---------------------------------------------------------------------------
// Table 2: Total Store Order
// ---------------------------------------------------------------------------

TEST(OrderingTable, TsoMatchesTable2) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kTSO);
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kLoad));
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kStore));
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kLoad));
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kStore));
}

TEST(OrderingTable, Table1ProcessorConsistencyEqualsTso) {
  // The paper's Table 1 illustrates Processor Consistency; SPARC TSO is "a
  // variant of Processor Consistency" with identical load/store entries,
  // so the TSO table doubles as Table 1.
  const auto t = OrderingTable::forModel(ConsistencyModel::kTSO);
  EXPECT_EQ(t.entry(OpClass::kLoad, OpClass::kLoad), membar::kAll);
  EXPECT_EQ(t.entry(OpClass::kLoad, OpClass::kStore), membar::kAll);
  EXPECT_EQ(t.entry(OpClass::kStore, OpClass::kLoad), 0);
  EXPECT_EQ(t.entry(OpClass::kStore, OpClass::kStore), membar::kAll);
}

// ---------------------------------------------------------------------------
// Table 3: Partial Store Order (Stbar == Membar #SS)
// ---------------------------------------------------------------------------

TEST(OrderingTable, PsoMatchesTable3) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kPSO);
  const std::uint8_t stbar = membar::kStbar;
  // Load row.
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kLoad));
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kStore));
  EXPECT_FALSE(order(t, OpType::kLoad, OpType::kMembar, 0, stbar));
  // Store row.
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kLoad));
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kStore));
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kMembar, 0, stbar));
  // Stbar row.
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kLoad, stbar, 0));
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kStore, stbar, 0));
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kMembar, stbar, stbar));
}

TEST(OrderingTable, PsoStbarTransitivelyOrdersStores) {
  // ST A; STBAR; ST B — A must perform before the stbar and the stbar
  // before B, giving store-store ordering through the barrier.
  const auto t = OrderingTable::forModel(ConsistencyModel::kPSO);
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kMembar, 0, membar::kStbar));
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kStore, membar::kStbar, 0));
}

// ---------------------------------------------------------------------------
// Table 4: Relaxed Memory Order
// ---------------------------------------------------------------------------

TEST(OrderingTable, RmoDataOpsUnordered) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kRMO);
  EXPECT_FALSE(order(t, OpType::kLoad, OpType::kLoad));
  EXPECT_FALSE(order(t, OpType::kLoad, OpType::kStore));
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kLoad));
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kStore));
}

TEST(OrderingTable, RmoMembarMaskSemantics) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kRMO);
  using namespace membar;
  // Load -> Membar requires #LL or #LS in the membar's mask.
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kMembar, 0, kLoadLoad));
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kMembar, 0, kLoadStore));
  EXPECT_FALSE(order(t, OpType::kLoad, OpType::kMembar, 0, kStoreLoad));
  EXPECT_FALSE(order(t, OpType::kLoad, OpType::kMembar, 0, kStoreStore));
  // Store -> Membar requires #SL or #SS.
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kMembar, 0, kStoreLoad));
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kMembar, 0, kStoreStore));
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kMembar, 0, kLoadLoad));
  EXPECT_FALSE(order(t, OpType::kStore, OpType::kMembar, 0, kLoadStore));
  // Membar -> Load requires #LL or #SL.
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kLoad, kLoadLoad, 0));
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kLoad, kStoreLoad, 0));
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kLoad, kLoadStore, 0));
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kLoad, kStoreStore, 0));
  // Membar -> Store requires #LS or #SS.
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kStore, kLoadStore, 0));
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kStore, kStoreStore, 0));
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kStore, kLoadLoad, 0));
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kStore, kStoreLoad, 0));
}

TEST(OrderingTable, RmoFullMembarOrdersEverything) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kRMO);
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kMembar, 0, membar::kAll));
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kMembar, 0, membar::kAll));
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kLoad, membar::kAll, 0));
  EXPECT_TRUE(order(t, OpType::kMembar, OpType::kStore, membar::kAll, 0));
}

TEST(OrderingTable, ZeroMaskMembarOrdersNothing) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kRMO);
  EXPECT_FALSE(order(t, OpType::kLoad, OpType::kMembar, 0, 0));
  EXPECT_FALSE(order(t, OpType::kMembar, OpType::kStore, 0, 0));
}

// ---------------------------------------------------------------------------
// SC
// ---------------------------------------------------------------------------

TEST(OrderingTable, ScOrdersAllDataPairs) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kSC);
  for (OpType x : {OpType::kLoad, OpType::kStore}) {
    for (OpType y : {OpType::kLoad, OpType::kStore}) {
      EXPECT_TRUE(order(t, x, y));
    }
  }
}

// ---------------------------------------------------------------------------
// Atomics: both load and store obligations (Section 4)
// ---------------------------------------------------------------------------

TEST(OrderingTable, AtomicCarriesBothObligationsUnderTso) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kTSO);
  // Atomic behaves as a load: ordered before stores and loads.
  EXPECT_TRUE(order(t, OpType::kAtomic, OpType::kLoad));
  EXPECT_TRUE(order(t, OpType::kAtomic, OpType::kStore));
  // Store -> Atomic: the atomic's load half gives Load ordering? No:
  // Store->Load is relaxed, but Store->Store applies to the store half.
  EXPECT_TRUE(order(t, OpType::kStore, OpType::kAtomic));
  EXPECT_TRUE(order(t, OpType::kLoad, OpType::kAtomic));
}

TEST(OrderingTable, AtomicUnderRmoOnlyOrderedByMembars) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kRMO);
  EXPECT_FALSE(order(t, OpType::kAtomic, OpType::kLoad));
  EXPECT_FALSE(order(t, OpType::kAtomic, OpType::kAtomic));
  EXPECT_TRUE(order(t, OpType::kAtomic, OpType::kMembar, 0, membar::kAll));
}

// ---------------------------------------------------------------------------
// Strictness hierarchy: SC ⊇ TSO ⊇ PSO ⊇ RMO
// ---------------------------------------------------------------------------

struct ModelPair {
  ConsistencyModel stronger;
  ConsistencyModel weaker;
};

class StrictnessChain : public ::testing::TestWithParam<ModelPair> {};

TEST_P(StrictnessChain, StrongerModelImpliesWeakerConstraints) {
  const auto strong = OrderingTable::forModel(GetParam().stronger);
  const auto weak = OrderingTable::forModel(GetParam().weaker);
  const OpType types[] = {OpType::kLoad, OpType::kStore, OpType::kAtomic,
                          OpType::kMembar};
  for (OpType x : types) {
    for (OpType y : types) {
      for (std::uint8_t mx = 0; mx <= membar::kAll; ++mx) {
        for (std::uint8_t my = 0; my <= membar::kAll; ++my) {
          if (weak.requiresOrder(x, mx, y, my)) {
            EXPECT_TRUE(strong.requiresOrder(x, mx, y, my))
                << opTypeName(x) << "->" << opTypeName(y) << " mx=" << int(mx)
                << " my=" << int(my);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chain, StrictnessChain,
    ::testing::Values(ModelPair{ConsistencyModel::kSC, ConsistencyModel::kTSO},
                      ModelPair{ConsistencyModel::kTSO, ConsistencyModel::kPSO},
                      ModelPair{ConsistencyModel::kPSO,
                                ConsistencyModel::kRMO}));

// ---------------------------------------------------------------------------
// Runtime model switching (32-bit v8 code)
// ---------------------------------------------------------------------------

TEST(ModelSwitch, V8CodeForcesTsoUnderRelaxedModels) {
  EXPECT_EQ(effectiveModel(ConsistencyModel::kPSO, true),
            ConsistencyModel::kTSO);
  EXPECT_EQ(effectiveModel(ConsistencyModel::kRMO, true),
            ConsistencyModel::kTSO);
  EXPECT_EQ(effectiveModel(ConsistencyModel::kTSO, true),
            ConsistencyModel::kTSO);
  EXPECT_EQ(effectiveModel(ConsistencyModel::kSC, true),
            ConsistencyModel::kSC);  // SC is already stronger
}

TEST(ModelSwitch, SixtyFourBitCodeKeepsSystemModel) {
  for (auto m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                 ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
    EXPECT_EQ(effectiveModel(m, false), m);
  }
}

TEST(ModelPredicates, LoadAndStoreBehaviors) {
  EXPECT_TRUE(modelOrdersLoads(ConsistencyModel::kSC));
  EXPECT_TRUE(modelOrdersLoads(ConsistencyModel::kTSO));
  EXPECT_TRUE(modelOrdersLoads(ConsistencyModel::kPSO));
  EXPECT_FALSE(modelOrdersLoads(ConsistencyModel::kRMO));

  EXPECT_FALSE(modelAllowsStoreReorder(ConsistencyModel::kTSO));
  EXPECT_TRUE(modelAllowsStoreReorder(ConsistencyModel::kPSO));
  EXPECT_TRUE(modelAllowsStoreReorder(ConsistencyModel::kRMO));

  EXPECT_FALSE(modelAllowsWriteBuffer(ConsistencyModel::kSC));
  EXPECT_TRUE(modelAllowsWriteBuffer(ConsistencyModel::kTSO));
}

TEST(OrderingTable, ToStringMentionsModel) {
  const auto t = OrderingTable::forModel(ConsistencyModel::kPSO);
  EXPECT_NE(t.toString().find("PSO"), std::string::npos);
}

TEST(OpTypes, Classification) {
  EXPECT_TRUE(isLoadLike(OpType::kLoad));
  EXPECT_TRUE(isLoadLike(OpType::kAtomic));
  EXPECT_FALSE(isLoadLike(OpType::kStore));
  EXPECT_TRUE(isStoreLike(OpType::kStore));
  EXPECT_TRUE(isStoreLike(OpType::kAtomic));
  EXPECT_FALSE(isStoreLike(OpType::kMembar));
}

}  // namespace
}  // namespace dvmc
