// Tests for the alternative (Cantin-style shadow-replay) coherence checker
// and the framework's modularity claim: either checker plugs into the same
// system, stays silent on fault-free runs, and catches coherence faults.
#include <gtest/gtest.h>

#include "dvmc/shadow_checker.hpp"
#include "faults/injector.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"

namespace dvmc {
namespace {

SystemConfig shadowConfig(Protocol p, ConsistencyModel m) {
  SystemConfig cfg = SystemConfig::withDvmc(p, m);
  cfg.coherenceChecker = SystemConfig::CoherenceCheckerKind::kShadow;
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 100;
  cfg.maxCycles = 50'000'000;
  return cfg;
}

// ---------------------------------------------------------------------------
// Unit level
// ---------------------------------------------------------------------------

TEST(ShadowCacheChecker, Rule1Checks) {
  Simulator sim;
  ErrorSink sink;
  ShadowCacheChecker sc(sim, 0, &sink);
  DataBlock d;
  sc.onEpochBegin(0x1000, /*rw=*/false, d, 0);
  sc.onPerformAccess(0x1000, /*isWrite=*/false);
  EXPECT_FALSE(sink.any());
  sc.onPerformAccess(0x1000, /*isWrite=*/true);
  EXPECT_TRUE(sink.any());  // store under RO permission
  sink.clear();
  sc.onEpochEnd(0x1000, d, 1);
  sc.onPerformAccess(0x1000, false);
  EXPECT_TRUE(sink.any());  // access with no permission at all
}

TEST(ShadowCacheChecker, DoubleGrantAndOrphanRevoke) {
  Simulator sim;
  ErrorSink sink;
  ShadowCacheChecker sc(sim, 0, &sink);
  DataBlock d;
  sc.onEpochBegin(0x1000, true, d, 0);
  sc.onEpochBegin(0x1000, true, d, 1);
  EXPECT_TRUE(sink.any());
  sink.clear();
  sc.onEpochEnd(0x1000, d, 2);
  sc.onEpochEnd(0x1000, d, 3);
  EXPECT_TRUE(sink.any());
}

TEST(ShadowHomeChecker, StaleMemoryServeDetected) {
  Simulator sim;
  ErrorSink sink;
  ShadowHomeChecker sh(sim, 0, &sink);
  DataBlock d;
  sh.onHomeRequest(0x1000, d);
  sh.onHomeGrant(0x1000, 1, /*rw=*/true, /*fromMemory=*/true, hashBlock(d));
  EXPECT_FALSE(sink.any());
  // Node 1 may have dirtied the block; serving memory again without a
  // writeback propagates stale data.
  sh.onHomeGrant(0x1000, 2, /*rw=*/false, /*fromMemory=*/true, hashBlock(d));
  EXPECT_TRUE(sink.any());
}

TEST(ShadowHomeChecker, WritebackOwnershipChecks) {
  Simulator sim;
  ErrorSink sink;
  ShadowHomeChecker sh(sim, 0, &sink);
  DataBlock d;
  sh.onHomeRequest(0x1000, d);
  sh.onHomeGrant(0x1000, 1, true, true, hashBlock(d));
  sh.onHomeWriteback(0x1000, 2, 0x1234, /*accepted=*/true);
  EXPECT_TRUE(sink.any());  // accepted from a non-owner
  sink.clear();
  sh.onHomeWriteback(0x1000, 1, 0x1234, /*accepted=*/false);
  // Owner 1's writeback rejected after 2's was accepted: by then the
  // shadow owner is cleared, so this is the "rejected from non-owner"
  // legal case — no report.
  EXPECT_FALSE(sink.any());
}

TEST(ShadowHomeChecker, MemoryImageChangeWithoutWritebackDetected) {
  Simulator sim;
  ErrorSink sink;
  ShadowHomeChecker sh(sim, 0, &sink);
  DataBlock d;
  sh.onHomeRequest(0x1000, d);
  sh.onHomeGrant(0x1000, 1, false, true, hashBlock(d));
  DataBlock corrupted = d;
  corrupted.flipBit(17);
  sh.onHomeGrant(0x1000, 2, false, true, hashBlock(corrupted));
  EXPECT_TRUE(sink.any());
}

// ---------------------------------------------------------------------------
// System level: drop-in replacement
// ---------------------------------------------------------------------------

struct ShadowCase {
  Protocol protocol;
  ConsistencyModel model;
};

class ShadowSystem : public ::testing::TestWithParam<ShadowCase> {};

TEST_P(ShadowSystem, FaultFreeRunIsClean) {
  SystemConfig cfg = shadowConfig(GetParam().protocol, GetParam().model);
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u)
      << (sys.sink().any() ? sys.sink().first().what : "");
  // The shadow checker generates no interconnect traffic at all.
  EXPECT_EQ(r.informBytes, 0u);
  EXPECT_EQ(sys.cet(0), nullptr);
  ASSERT_NE(sys.shadowCache(0), nullptr);
  EXPECT_GT(sys.shadowCache(0)->stats().get("shadow.accessChecks"), 0u);
}

std::string shadowName(const ::testing::TestParamInfo<ShadowCase>& info) {
  return std::string(protocolName(info.param.protocol)) + "_" +
         modelName(info.param.model);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShadowSystem,
    ::testing::Values(ShadowCase{Protocol::kDirectory, ConsistencyModel::kTSO},
                      ShadowCase{Protocol::kDirectory, ConsistencyModel::kSC},
                      ShadowCase{Protocol::kDirectory, ConsistencyModel::kRMO},
                      ShadowCase{Protocol::kSnooping, ConsistencyModel::kTSO},
                      ShadowCase{Protocol::kSnooping, ConsistencyModel::kPSO}),
    shadowName);

TEST(ShadowSystem, DetectsCacheStateFlip) {
  SystemConfig cfg = shadowConfig(Protocol::kDirectory,
                                  ConsistencyModel::kTSO);
  cfg.targetTransactions = 1'000'000;
  System sys(cfg);
  FaultInjector inj(sys, 5);
  sys.runUntil([&] { return sys.sim().now() >= 30'000; });
  ASSERT_EQ(sys.sink().count(), 0u);
  int injections = 0;
  for (int round = 0; round < 40 && !sys.sink().any(); ++round) {
    if (inj.inject(FaultType::kCacheStateFlip)) ++injections;
    sys.runUntil([&, until = sys.sim().now() + 20'000] {
      return sys.sink().any() || sys.sim().now() >= until;
    });
  }
  ASSERT_GT(injections, 0);
  ASSERT_TRUE(sys.sink().any()) << "shadow checker missed the state flip";
  EXPECT_EQ(sys.sink().first().kind, CheckerKind::kCacheCoherence);
}

TEST(ShadowSystem, RecoversLikeTheEpochChecker) {
  SystemConfig cfg = shadowConfig(Protocol::kDirectory,
                                  ConsistencyModel::kTSO);
  cfg.autoRecover = true;
  cfg.ber.interval = 10'000;
  cfg.targetTransactions = 150;
  System sys(cfg);
  FaultInjector inj(sys, 13);
  sys.runUntil([&] { return sys.sim().now() >= 30'000; });
  inj.inject(FaultType::kCacheStateFlip);
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.unrecoverable, 0u);
}

}  // namespace
}  // namespace dvmc
